"""Executor benchmark: serial vs threaded vs process engine backends.

Two entry points:

* under pytest-benchmark (``pytest benchmarks/bench_executors.py``) a
  quick-scale comparison runs as part of the suite;
* as a script (``PYTHONPATH=src python benchmarks/bench_executors.py``)
  it sweeps the executors over a uniform workload of ``N >= 50k``
  objects and appends a machine-readable report to
  ``results/executors_uniform.txt``.

The engine guarantees the executors are interchangeable — identical
pair counts and overlap tests — so the report records wall time only,
together with ``os.cpu_count()``: on single-core machines the parallel
backends are expected to *lose* to serial (coordination overhead with
no cores to spread over), and the report states whatever was measured.
"""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro.core import ThermalJoin  # noqa: E402
from repro.experiments.workloads import scaled_uniform  # noqa: E402
from repro.joins import PBSMJoin  # noqa: E402

EXECUTORS = ("serial", "thread:2", "process:2")

BENCH_N = 50_000
BENCH_STEPS = 2


def _algorithms(executor):
    return {
        "thermal-join": ThermalJoin(
            resolution=1.0, count_only=True, executor=executor
        ),
        "pbsm": PBSMJoin(count_only=True, executor=executor),
    }


@pytest.mark.parametrize("executor", EXECUTORS)
def test_thermal_step_by_executor(benchmark, executor, uniform_dataset):
    """One quick-scale THERMAL-JOIN step per executor backend."""
    join = ThermalJoin(resolution=1.0, count_only=True, executor=executor)
    join.step(uniform_dataset)  # warm the index and any worker pool
    result = benchmark(join.step, uniform_dataset)
    assert result.n_results > 0
    join.executor.close()


def main(n=BENCH_N, out_path=None):
    dataset, _motion = scaled_uniform(n, width=15.0, seed=42)
    lines = [
        f"# executor sweep: uniform n={n}, count_only, {BENCH_STEPS} timed "
        f"steps (best reported), cpu_count={os.cpu_count()}",
        f"# {'algorithm':<14} {'executor':<10} {'best_seconds':>12} "
        f"{'n_results':>10} {'overlap_tests':>14}",
    ]
    reference = {}
    for executor in EXECUTORS:
        for name, join in _algorithms(executor).items():
            join.step(dataset)  # warm-up: index build + pool spin-up
            best, result = min(
                (_timed_step(join, dataset) for _ in range(BENCH_STEPS)),
                key=lambda pair: pair[0],
            )
            # Interchangeability check: every backend must reproduce the
            # serial run's counts exactly.
            key = (name, result.n_results, result.stats.overlap_tests)
            reference.setdefault(name, key)
            assert reference[name] == key, f"executor changed results: {key}"
            lines.append(
                f"{name:<16} {executor:<10} {best:>12.4f} "
                f"{result.n_results:>10d} {result.stats.overlap_tests:>14d}"
            )
            join.executor.close()
    report = "\n".join(lines)
    print(report)
    if out_path is not None:
        out_path = Path(out_path)
        out_path.parent.mkdir(parents=True, exist_ok=True)
        out_path.write_text(report + "\n")
    return report


def _timed_step(join, dataset):
    started = time.perf_counter()
    result = join.step(dataset)
    return time.perf_counter() - started, result


if __name__ == "__main__":
    main(
        n=int(sys.argv[1]) if len(sys.argv) > 1 else BENCH_N,
        out_path=Path(__file__).resolve().parent.parent
        / "results"
        / "executors_uniform.txt",
    )
