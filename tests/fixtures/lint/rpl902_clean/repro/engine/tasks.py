def work(payload, scale):
    return payload * scale
