"""Outside the deterministic scope: RPL002 does not patrol here."""

import random


def nudge(x: float) -> float:
    return x + random.random()
