"""Baseline spatial self-join algorithms from the paper's evaluation.

Static (rebuilt-per-step) joins: nested loop, plane sweep, PBSM, EGO,
MX-CIF Octree, Loose Octree, synchronous R-Tree, CR-Tree, TOUCH, and the
indexed nested-loop R-Tree.  Maintained moving-object index: the
ST2B-style B+-Tree grid join.
"""

from repro.joins.base import (
    JoinResult,
    JoinStatistics,
    SpatialJoinAlgorithm,
)
from repro.joins.crtree import CRTreeJoin
from repro.joins.ego import EGOJoin
from repro.joins.inl_rtree import IndexedNestedLoopRTreeJoin
from repro.joins.loose_octree import LooseOctreeJoin
from repro.joins.nested_loop import NestedLoopJoin
from repro.joins.octree import MXCIFOctreeJoin
from repro.joins.pbsm import PBSMJoin
from repro.joins.plane_sweep import PlaneSweepJoin
from repro.joins.rtree import STRTree, SynchronousRTreeJoin
from repro.joins.st2b import ST2BJoin
from repro.joins.touch import TouchJoin

__all__ = [
    "JoinResult",
    "JoinStatistics",
    "SpatialJoinAlgorithm",
    "NestedLoopJoin",
    "PlaneSweepJoin",
    "PBSMJoin",
    "EGOJoin",
    "MXCIFOctreeJoin",
    "LooseOctreeJoin",
    "STRTree",
    "SynchronousRTreeJoin",
    "CRTreeJoin",
    "TouchJoin",
    "IndexedNestedLoopRTreeJoin",
    "ST2BJoin",
]
