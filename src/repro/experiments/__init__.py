"""Experiment harness: regenerate every figure of the paper."""

from repro.experiments import export, figures, plots, report

from repro.experiments.registry import EXPERIMENTS, list_experiments, run_experiment
from repro.experiments.workloads import (
    SCALES,
    scaled_clustered,
    scaled_neural,
    scaled_uniform,
)

__all__ = [
    "export",
    "figures",
    "plots",
    "report",
    "EXPERIMENTS",
    "list_experiments",
    "run_experiment",
    "SCALES",
    "scaled_uniform",
    "scaled_clustered",
    "scaled_neural",
]
