"""Pluggable task executors: serial, thread pool, process pool.

An executor schedules a plan's tasks and returns one
:class:`~repro.engine.plan.TaskResult` per task, in task order.  Every
task emits into a private :class:`~repro.geometry.PairAccumulator`
shard, so scheduling never changes the merged result — executors differ
only in wall-clock behaviour:

``SerialExecutor``
    Runs tasks in order on the calling thread.  The default, and the
    reference for the statistics every other executor must reproduce.
``ThreadExecutor``
    A persistent ``ThreadPoolExecutor`` (created lazily, released in
    ``close()``); the numpy kernels behind the verify stage release the
    GIL on their bulk operations, so independent tasks overlap on
    multi-core machines.
``ProcessExecutor``
    A ``ProcessPoolExecutor`` over a persistent worker pool.  The plan's
    context arrays (the MBR coordinate and grouping arrays) are published
    once per step through :mod:`multiprocessing.shared_memory`; workers
    attach and cache them for the step, so each task ships only its own
    small index arrays.  Tasks that are not ``process_safe`` (closures
    over live index objects) run inline in the parent.

Fault tolerance
---------------
Tasks are pure functions of the plan's context, so they are retryable
units.  Every executor records robustness *events* (drained into
:class:`~repro.joins.base.JoinStatistics.events` by the step driver):

* a failed task is retried — on the pool for ``ProcessExecutor``, then
  re-executed inline in the parent as a last resort, so a transient
  worker fault never changes the merged pair set;
* ``task_timeout`` is a shared per-step budget: one deadline is taken
  when the step's waits begin and every pooled wait draws on the
  remaining budget, so a slow task queued behind another slow task
  cannot stretch a step to N×timeout.  A task still pending at the
  deadline is abandoned and re-run inline (its late result, if any,
  is discarded);
* ``ProcessExecutor`` climbs a degradation ladder on
  ``BrokenProcessPool``: rebuild the pool once, then permanently
  degrade to thread execution, and to serial if threads fail too —
  recording each downgrade;
* shared-memory publication is a context manager that unlinks every
  segment on *any* exit path (including mid-publication exceptions and
  worker crashes), backed by an ``atexit`` sweep of still-live
  segments.

Injected faults (:mod:`repro.engine.faults`, ``REPRO_FAULTS``) are
applied at first launch only; retries always re-run the original task.

Selection
---------
``resolve_executor`` accepts an :class:`Executor` instance, a spec
string (``"serial"``, ``"thread"``, ``"thread:4"``, ``"process"``,
``"process:2"``), or ``None`` — which falls back to the
``REPRO_EXECUTOR`` environment variable and finally to serial.  Spec
strings additionally honour ``REPRO_TASK_TIMEOUT`` (step timeout
budget, seconds) and ``REPRO_TASK_RETRIES`` (retry budget), so pooled
runs selected purely through the environment get working timeouts.
"""

from __future__ import annotations

import atexit
import os
import time
from collections.abc import Iterator, Mapping, Sequence
from contextlib import contextmanager, suppress
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.engine import faults
from repro.engine.plan import JoinTask, TaskResult

if TYPE_CHECKING:
    from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from repro.geometry import PairAccumulator

__all__ = [
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "ContextPublication",
    "publish_context",
    "resolve_executor",
]

#: Environment variable naming the default executor spec.
EXECUTOR_ENV_VAR = "REPRO_EXECUTOR"

#: Environment variable holding the per-step timeout budget (seconds)
#: applied to executors resolved from spec strings.
TASK_TIMEOUT_ENV_VAR = "REPRO_TASK_TIMEOUT"

#: Environment variable holding the task retry budget applied to
#: executors resolved from spec strings.
TASK_RETRIES_ENV_VAR = "REPRO_TASK_RETRIES"

#: Attach spec for one published context array: (segment name, shape, dtype str).
ContextSpec = tuple[str, tuple[int, ...], str]

#: Picklable result tuple returned by :func:`_process_worker`.
WorkerPayload = tuple[
    dict[str, Any], float, int, "tuple[np.ndarray, np.ndarray] | None", str, float
]


def _run_inline(task: JoinTask, ctx: Mapping[str, np.ndarray], count_only: bool) -> TaskResult:
    accumulator = PairAccumulator(count_only=count_only)
    t0 = time.perf_counter()
    c0 = time.process_time()
    counters = task.run(ctx, accumulator)
    cpu_seconds = time.process_time() - c0
    seconds = time.perf_counter() - t0
    return TaskResult(
        counters=counters,
        seconds=seconds,
        n_pairs=len(accumulator),
        accumulator=accumulator,
        phase=task.phase,
        cpu_seconds=cpu_seconds,
    )


# ----------------------------------------------------------------------
# Shared-memory lifecycle
# ----------------------------------------------------------------------
#: Parent-side registry of live shared-memory segments, swept at exit so
#: no failure path (not even an unhandled KeyboardInterrupt mid-step)
#: leaks /dev/shm space.
_LIVE_SEGMENTS = {}


def _sweep_shared_memory() -> None:  # pragma: no cover - exercised at interpreter exit
    for name in list(_LIVE_SEGMENTS):
        segment = _LIVE_SEGMENTS.pop(name, None)
        if segment is None:
            continue
        with suppress(OSError, BufferError):
            segment.close()
        with suppress(OSError):
            segment.unlink()


atexit.register(_sweep_shared_memory)


class ContextPublication:
    """A persistent shared-memory publication of context arrays.

    Promotes the per-step ``publish_context`` broadcast to an explicit
    lifecycle object: the arrays are copied into shared memory once at
    construction and stay published — across any number of pooled steps
    or queries — until :meth:`close` releases every segment.  The
    sharded join service keeps one publication per shard ring epoch;
    :func:`publish_context` remains the single-step context-manager
    form, now a thin wrapper over this class.

    Lifecycle guarantees match ``publish_context``: every segment
    created — including a partial set when a later
    ``SharedMemory(create=True)`` call raises — is registered in the
    atexit-swept live-segment registry and is closed and unlinked by
    :meth:`close`, whatever the exit path.

    Attributes
    ----------
    specs:
        Attach specs ``{key: (segment name, shape, dtype str)}`` for
        worker-side :func:`_attach_context` calls.
    views:
        Parent-side read-only views over the published bytes (the
        boundary-join path of the shard ring reads these zero-copy).
        Both mappings empty once the publication is closed.
    """

    def __init__(self, ctx: Mapping[str, np.ndarray]) -> None:
        from multiprocessing import shared_memory

        self.specs: dict[str, ContextSpec] = {}
        self.views: dict[str, np.ndarray] = {}
        self._segments: list[Any] = []
        self._closed = False
        try:
            for key, array in ctx.items():
                array = np.ascontiguousarray(array)
                segment = shared_memory.SharedMemory(
                    create=True, size=max(array.nbytes, 1)
                )
                self._segments.append(segment)
                _LIVE_SEGMENTS[segment.name] = segment
                view = np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)
                view[...] = array
                # Lock the parent-side view once filled: from here on the
                # segment is a read-only broadcast to the workers.
                view.setflags(write=False)
                self.specs[key] = (segment.name, array.shape, array.dtype.str)
                self.views[key] = view
        except BaseException:
            self.close()
            raise

    @property
    def closed(self) -> bool:
        """Whether the publication's segments have been released."""
        return self._closed

    def close(self) -> None:
        """Release every published segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self.specs = {}
        self.views = {}
        segments, self._segments = self._segments, []
        for segment in segments:
            _LIVE_SEGMENTS.pop(segment.name, None)
            try:
                segment.close()
            except (OSError, BufferError):  # pragma: no cover
                pass
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass

    def __enter__(self) -> ContextPublication:
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


@contextmanager
def publish_context(ctx: Mapping[str, np.ndarray]) -> Iterator[dict[str, ContextSpec]]:
    """Copy context arrays into shared memory; yield the attach specs.

    The single-step form of :class:`ContextPublication`: the segments
    live exactly as long as the ``with`` block, whatever the exit path
    (normal step completion, worker crash, timeout, or a publication
    error).
    """
    publication = ContextPublication(ctx)
    try:
        yield publication.specs
    finally:
        publication.close()


class Executor:
    """Scheduling strategy for a plan's independent join tasks.

    Parameters
    ----------
    max_retries:
        Scheduled re-attempts for a failed task before the inline
        last resort (pool executors) or before the failure propagates.
    task_timeout:
        Wall-clock budget in seconds shared by all of a step's pooled
        waits; ``None`` (default) disables timeouts.  The deadline is
        taken once when the step starts waiting, so N queued slow
        tasks are bounded by one budget, not N of them.  A task still
        pending at the deadline is re-run inline in the parent and its
        late result discarded.
    """

    name = "abstract"

    def __init__(self, max_retries: int = 1, task_timeout: float | None = None) -> None:
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if task_timeout is not None and task_timeout <= 0:
            raise ValueError(f"task_timeout must be positive, got {task_timeout}")
        self.max_retries = int(max_retries)
        self.task_timeout = task_timeout
        self._events = []

    def run(self, tasks: Sequence[JoinTask], ctx: Mapping[str, np.ndarray], count_only: bool) -> list[TaskResult]:
        """Execute ``tasks`` against ``ctx``; return ordered TaskResults."""
        raise NotImplementedError

    def close(self) -> None:
        """Release pooled resources (no-op for poolless executors)."""

    # ------------------------------------------------------------------
    # Robustness event log
    # ------------------------------------------------------------------
    def _record_event(self, kind: str, **info: Any) -> None:
        self._events.append({"kind": kind, **info})

    def drain_events(self) -> list[dict[str, Any]]:
        """Return and clear the robustness events since the last drain."""
        events, self._events = self._events, []
        return events

    def _attempt_inline(
        self,
        task: JoinTask,
        original: JoinTask,
        ctx: Mapping[str, np.ndarray],
        count_only: bool,
        index: int,
    ) -> TaskResult:
        """Run ``task`` inline, honouring the configured retry budget.

        ``task`` may be a fault-wrapped first launch; retries always use
        ``original`` so a spent injected fault cannot re-fire.  One
        ``task_retry`` event is recorded per re-attempt; a task still
        failing once ``max_retries`` re-attempts are spent propagates —
        genuine, deterministic task bugs must still surface.
        """
        try:
            return _run_inline(task, ctx, count_only)
        except Exception as exc:
            error = exc
        for _ in range(self.max_retries):
            self._record_event("task_retry", task=index, error=repr(error))
            try:
                return _run_inline(original, ctx, count_only)
            except Exception as exc:
                error = exc
        raise error

    def _step_deadline(self) -> float | None:
        """The shared deadline for one step's pooled waits.

        Taken once per step: every subsequent wait passes the remaining
        budget (:func:`_remaining_budget`), so a slow task queued behind
        another slow task is abandoned within the same ``task_timeout``
        window instead of restarting the clock at its own ``.result()``
        call.
        """
        if self.task_timeout is None:
            return None
        return time.monotonic() + self.task_timeout

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(max_retries={self.max_retries}, "
            f"task_timeout={self.task_timeout})"
        )


class SerialExecutor(Executor):
    """Run every task in order on the calling thread."""

    name = "serial"

    def run(self, tasks: Sequence[JoinTask], ctx: Mapping[str, np.ndarray], count_only: bool) -> list[TaskResult]:
        launched = faults.wrap_tasks(tasks)
        return [
            self._attempt_inline(launched[k], tasks[k], ctx, count_only, k)
            for k in range(len(tasks))
        ]


def _default_workers() -> int:
    return max(os.cpu_count() or 1, 1)


def _remaining_budget(deadline: float | None) -> float | None:
    """Seconds left until ``deadline``, floored at zero; ``None`` means
    no limit.  A zero budget makes ``Future.result`` raise immediately
    for any task that has not already finished."""
    if deadline is None:
        return None
    return max(deadline - time.monotonic(), 0.0)


class ThreadExecutor(Executor):
    """Run tasks on a persistent thread pool (GIL-releasing numpy kernels
    overlap).

    The pool is created lazily on first use and kept across steps —
    matching ``ProcessExecutor``'s pool reuse instead of paying pool
    startup every simulation step — and released in :meth:`close`.  A
    failed task is re-run inline in the parent; a task exceeding
    ``task_timeout`` is abandoned on its pool thread and re-run inline
    (the stray thread's late result is discarded).
    """

    name = "thread"

    def __init__(
        self,
        n_workers: int | None = None,
        max_retries: int = 1,
        task_timeout: float | None = None,
    ) -> None:
        if n_workers is not None and n_workers < 1:
            raise ValueError(f"n_workers must be at least 1, got {n_workers}")
        super().__init__(max_retries=max_retries, task_timeout=task_timeout)
        self.n_workers = int(n_workers) if n_workers else _default_workers()
        self._pool = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            from concurrent.futures import ThreadPoolExecutor

            self._pool = ThreadPoolExecutor(max_workers=self.n_workers)
        return self._pool

    def run(self, tasks: Sequence[JoinTask], ctx: Mapping[str, np.ndarray], count_only: bool) -> list[TaskResult]:
        return self._run_tasks(faults.wrap_tasks(tasks), tasks, ctx, count_only)

    def _run_tasks(
        self,
        launched: Sequence[JoinTask],
        tasks: Sequence[JoinTask],
        ctx: Mapping[str, np.ndarray],
        count_only: bool,
    ) -> list[TaskResult]:
        if len(tasks) < 2 or self.n_workers < 2:
            return [
                self._attempt_inline(launched[k], tasks[k], ctx, count_only, k)
                for k in range(len(tasks))
            ]
        import concurrent.futures as cf

        pool = self._ensure_pool()
        futures = [
            pool.submit(_run_inline, launched[k], ctx, count_only)
            for k in range(len(tasks))
        ]
        deadline = self._step_deadline()
        results = []
        for k, future in enumerate(futures):
            try:
                results.append(future.result(timeout=_remaining_budget(deadline)))
            except (cf.TimeoutError, TimeoutError):
                self._record_event(
                    "task_timeout", task=k, timeout=self.task_timeout
                )
                results.append(_run_inline(tasks[k], ctx, count_only))
            except Exception as exc:
                self._record_event("task_retry", task=k, error=repr(exc))
                results.append(_run_inline(tasks[k], ctx, count_only))
        return results

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __repr__(self) -> str:
        return (
            f"ThreadExecutor(n_workers={self.n_workers}, "
            f"max_retries={self.max_retries}, task_timeout={self.task_timeout})"
        )


# ----------------------------------------------------------------------
# Process executor: shared-memory context + persistent worker pool
# ----------------------------------------------------------------------
#: Worker-side cache of the current step's attached context arrays.
_WORKER_STATE = {"token": None, "arrays": None, "segments": ()}


def _attach_context(specs: Mapping[str, ContextSpec], token: tuple[int, int]) -> dict[str, np.ndarray]:
    """Attach (and cache) the step's shared-memory context arrays."""
    from multiprocessing import shared_memory

    state = _WORKER_STATE
    if state["token"] == token:
        return state["arrays"]
    for segment in state["segments"]:
        try:
            segment.close()
        except (OSError, BufferError):  # pragma: no cover - platform cleanup
            pass
    arrays = {}
    segments = []
    for key, (name, shape, dtype) in specs.items():
        segment = shared_memory.SharedMemory(name=name)
        segments.append(segment)
        view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=segment.buf)
        # Read-only: every worker shares these bytes for the whole step,
        # so a task writing through the view would corrupt its siblings.
        view.setflags(write=False)
        arrays[key] = view
    state["token"] = token
    state["arrays"] = arrays
    state["segments"] = tuple(segments)
    return arrays


def _process_worker(
    specs: Mapping[str, ContextSpec],
    token: tuple[int, int],
    task: JoinTask,
    count_only: bool,
) -> WorkerPayload:
    """Run one task in a worker process; return a picklable result.

    The worker times the task itself (wall and CPU) so the measurement
    rides the existing result channel back to the parent's tracer.
    """
    ctx = _attach_context(specs, token)
    accumulator = PairAccumulator(count_only=count_only)
    t0 = time.perf_counter()
    c0 = time.process_time()
    counters = task.run(ctx, accumulator)
    cpu_seconds = time.process_time() - c0
    seconds = time.perf_counter() - t0
    pairs = None if count_only else accumulator.as_arrays()
    return counters, seconds, len(accumulator), pairs, task.phase, cpu_seconds


def _result_from_payload(payload: WorkerPayload, count_only: bool) -> TaskResult:
    """Rehydrate a worker's picklable payload into a TaskResult."""
    counters, seconds, n_pairs, pairs, phase, cpu_seconds = payload
    accumulator = PairAccumulator(count_only=count_only)
    if pairs is not None:
        accumulator.extend_canonical(*pairs)
    else:
        accumulator.add_count(n_pairs)
    return TaskResult(
        counters=counters,
        seconds=seconds,
        n_pairs=n_pairs,
        accumulator=accumulator,
        phase=phase,
        cpu_seconds=cpu_seconds,
    )


class ProcessExecutor(Executor):
    """Run process-safe tasks on a persistent ``ProcessPoolExecutor``.

    The context arrays are copied into shared memory once per step and
    unlinked after the step completes; workers cache their attachment
    for the duration of the step (keyed by a per-step token).  Tasks
    flagged ``process_safe=False`` run inline in the parent process.

    Recovery (see the module docstring): failed tasks are retried on
    the pool then inline; timed-out tasks re-run inline; a broken pool
    is rebuilt once, after which the executor permanently degrades to
    thread and ultimately serial execution for the rest of the run.
    ``degraded`` exposes the current rung (``None`` when healthy).
    """

    name = "process"

    def __init__(
        self,
        n_workers: int | None = None,
        max_retries: int = 1,
        task_timeout: float | None = None,
    ) -> None:
        if n_workers is not None and n_workers < 1:
            raise ValueError(f"n_workers must be at least 1, got {n_workers}")
        super().__init__(max_retries=max_retries, task_timeout=task_timeout)
        self.n_workers = int(n_workers) if n_workers else _default_workers()
        self._pool = None
        self._step_token = 0
        self._pool_failures = 0
        self._degraded = None  # None | "thread" | "serial"
        self._thread_fallback = None

    @property
    def degraded(self) -> str | None:
        """Current degradation rung: ``None``, ``"thread"`` or ``"serial"``."""
        return self._degraded

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            import multiprocessing
            from concurrent.futures import ProcessPoolExecutor

            context = None
            if "fork" in multiprocessing.get_all_start_methods():
                context = multiprocessing.get_context("fork")
            self._pool = ProcessPoolExecutor(
                max_workers=self.n_workers, mp_context=context
            )
        return self._pool

    def _discard_pool(self) -> None:
        """Drop a (broken) pool so the next step starts from a clean one."""
        pool, self._pool = self._pool, None
        if pool is not None:
            try:
                pool.shutdown(wait=False, cancel_futures=True)
            except Exception:  # pragma: no cover - broken-pool teardown
                pass

    def _degrade_to(self, level: str, error: str | None = None) -> None:
        self._degraded = level
        info = {"to": level}
        if error is not None:
            info["error"] = error
        self._record_event("degraded", **info)

    def run(self, tasks: Sequence[JoinTask], ctx: Mapping[str, np.ndarray], count_only: bool) -> list[TaskResult]:
        return self._run_tasks(faults.wrap_tasks(tasks), tasks, ctx, count_only)

    def _run_tasks(
        self,
        launched: Sequence[JoinTask],
        tasks: Sequence[JoinTask],
        ctx: Mapping[str, np.ndarray],
        count_only: bool,
    ) -> list[TaskResult]:
        if self._degraded is not None:
            return self._run_degraded(launched, tasks, ctx, count_only)
        remote_idx = [k for k, task in enumerate(launched) if task.process_safe]
        if len(remote_idx) < 2 or self.n_workers < 2 or not ctx:
            return [
                self._attempt_inline(launched[k], tasks[k], ctx, count_only, k)
                for k in range(len(tasks))
            ]

        import concurrent.futures as cf
        from concurrent.futures.process import BrokenProcessPool

        self._step_token += 1
        token = (os.getpid(), self._step_token)
        deadline = self._step_deadline()
        results = [None] * len(tasks)
        #: Task to submit on the next round: the fault-wrapped first
        #: launch, replaced by the original on retry.
        submission = {k: launched[k] for k in remote_idx}
        attempts = dict.fromkeys(remote_idx, 0)
        remaining = list(remote_idx)
        inline_done = False
        with publish_context(ctx) as specs:
            while remaining:
                broken = None
                futures = {}
                try:
                    pool = self._ensure_pool()
                    for k in remaining:
                        futures[k] = pool.submit(
                            _process_worker, specs, token, submission[k], count_only
                        )
                except BrokenProcessPool as exc:
                    broken = exc
                if not inline_done:
                    # Inline tasks run in the parent while the pool works.
                    for k in range(len(tasks)):
                        if k not in attempts:
                            results[k] = self._attempt_inline(
                                launched[k], tasks[k], ctx, count_only, k
                            )
                    inline_done = True
                retry_round = []
                if broken is None:
                    for k in remaining:
                        try:
                            payload = futures[k].result(
                                timeout=_remaining_budget(deadline)
                            )
                        except (cf.TimeoutError, TimeoutError):
                            self._record_event(
                                "task_timeout", task=k, timeout=self.task_timeout
                            )
                            results[k] = _run_inline(tasks[k], ctx, count_only)
                        except BrokenProcessPool as exc:
                            broken = exc
                            break
                        except Exception as exc:
                            attempts[k] += 1
                            if attempts[k] <= self.max_retries:
                                self._record_event(
                                    "task_retry", task=k, error=repr(exc)
                                )
                                submission[k] = tasks[k]
                                retry_round.append(k)
                            else:
                                self._record_event(
                                    "task_inline", task=k, error=repr(exc)
                                )
                                results[k] = _run_inline(tasks[k], ctx, count_only)
                        else:
                            results[k] = _result_from_payload(payload, count_only)
                if broken is not None:
                    self._record_event("pool_broken", error=repr(broken))
                    self._discard_pool()
                    self._pool_failures += 1
                    unresolved = [k for k in remaining if results[k] is None]
                    for k in unresolved:
                        submission[k] = tasks[k]
                    if self._pool_failures > 1:
                        # Second broken pool: give up on processes for the
                        # rest of the run and finish this step inline.
                        self._degrade_to("thread", error=repr(broken))
                        for k in unresolved:
                            results[k] = _run_inline(tasks[k], ctx, count_only)
                        remaining = []
                    else:
                        self._record_event("pool_rebuild")
                        remaining = unresolved
                else:
                    remaining = retry_round
        return results

    def _run_degraded(
        self,
        launched: Sequence[JoinTask],
        tasks: Sequence[JoinTask],
        ctx: Mapping[str, np.ndarray],
        count_only: bool,
    ) -> list[TaskResult]:
        """Run a step below the process rung: threads, then serial."""
        if self._degraded == "thread":
            if self._thread_fallback is None:
                self._thread_fallback = ThreadExecutor(
                    self.n_workers,
                    max_retries=self.max_retries,
                    task_timeout=self.task_timeout,
                )
            fallback = self._thread_fallback
            try:
                results = fallback._run_tasks(launched, tasks, ctx, count_only)
                self._events.extend(fallback.drain_events())
                return results
            except Exception as exc:
                self._events.extend(fallback.drain_events())
                self._degrade_to("serial", error=repr(exc))
        return [
            self._attempt_inline(launched[k], tasks[k], ctx, count_only, k)
            for k in range(len(tasks))
        ]

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._thread_fallback is not None:
            self._thread_fallback.close()
            self._thread_fallback = None

    def __del__(self) -> None:  # pragma: no cover - interpreter-shutdown best effort
        with suppress(Exception):
            self.close()

    def __repr__(self) -> str:
        return (
            f"ProcessExecutor(n_workers={self.n_workers}, "
            f"max_retries={self.max_retries}, task_timeout={self.task_timeout})"
        )


def _env_task_options() -> dict[str, Any]:
    """Retry/timeout keyword arguments read from the environment.

    ``REPRO_TASK_TIMEOUT`` (seconds, positive float) and
    ``REPRO_TASK_RETRIES`` (non-negative int) apply to every executor
    resolved from a spec string — previously spec strings silently
    dropped both knobs, so a ``REPRO_EXECUTOR=process:2`` run could
    never enable timeouts.  Range validation is the constructors'; this
    helper validates the parse and names the offending variable.
    """
    options: dict[str, Any] = {}
    raw = os.environ.get(TASK_TIMEOUT_ENV_VAR)
    if raw is not None and raw.strip():
        try:
            options["task_timeout"] = float(raw)
        except ValueError:
            raise ValueError(
                f"{TASK_TIMEOUT_ENV_VAR} must be a number of seconds, got {raw!r}"
            ) from None
    raw = os.environ.get(TASK_RETRIES_ENV_VAR)
    if raw is not None and raw.strip():
        try:
            options["max_retries"] = int(raw)
        except ValueError:
            raise ValueError(
                f"{TASK_RETRIES_ENV_VAR} must be an integer, got {raw!r}"
            ) from None
    return options


def resolve_executor(spec: Executor | str | None) -> Executor:
    """Resolve an executor instance from ``spec``.

    ``None`` consults the ``REPRO_EXECUTOR`` environment variable and
    defaults to serial; strings take the form ``name`` or ``name:N``
    with ``N`` the worker count, and additionally honour
    ``REPRO_TASK_TIMEOUT`` / ``REPRO_TASK_RETRIES``.  Instances pass
    through unchanged (so one pool can be shared by many algorithms),
    keeping whatever budgets they were constructed with.
    """
    if isinstance(spec, Executor):
        return spec
    if spec is None:
        spec = os.environ.get(EXECUTOR_ENV_VAR) or "serial"
    if not isinstance(spec, str):
        raise TypeError(f"executor spec must be an Executor, str or None: {spec!r}")
    name, _, workers = spec.partition(":")
    name = name.strip().lower()
    n_workers = None
    if workers:
        try:
            n_workers = int(workers)
        except ValueError:
            raise ValueError(f"invalid executor worker count in {spec!r}") from None
    options = _env_task_options()
    if name == "serial":
        return SerialExecutor(**options)
    if name in ("thread", "threads"):
        return ThreadExecutor(n_workers, **options)
    if name in ("process", "processes"):
        return ProcessExecutor(n_workers, **options)
    raise ValueError(
        f"unknown executor {spec!r}; expected serial, thread[:N] or process[:N]"
    )
