"""Step-trajectory bench driver: BENCH_steps.json producer.

Runs a small matrix of (workload, algorithm, executor) simulations
through :class:`~repro.simulation.SimulationRunner` and writes the
per-step series — the Figure-7 quantities plus engine stage times,
robustness events and the metrics-registry snapshots — as the
schema-versioned ``BENCH_steps.json`` document defined in
:mod:`repro.obs.bench`.

Two entry points:

* under pytest (``pytest benchmarks/bench_steps.py``) a smoke-scale
  matrix runs, the document is validated against the schema, and the
  tracing-on/off bit-identity invariant is asserted;
* as a script::

      PYTHONPATH=src python benchmarks/bench_steps.py            # default scale
      PYTHONPATH=src python benchmarks/bench_steps.py --smoke    # CI scale
      PYTHONPATH=src python benchmarks/bench_steps.py --trace results/trace.jsonl

  writing ``results/BENCH_steps.json`` (and, with ``--trace``, the span
  stream of every step).  The document is validated *before* it is
  written; a schema violation fails the run.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro.core import ThermalJoin  # noqa: E402
from repro.experiments.workloads import scaled_neural, scaled_uniform  # noqa: E402
from repro.joins import PBSMJoin, PlaneSweepJoin  # noqa: E402
from repro.obs import (  # noqa: E402
    BENCH_SCHEMA_VERSION,
    JsonlWriter,
    Tracer,
    environment_info,
    run_aggregates,
    set_tracer,
    step_record_to_json,
    validate_bench,
)
from repro.simulation import SimulationRunner  # noqa: E402

#: serial plus one parallel backend; every backend must reproduce the
#: serial counts exactly (the engine's interchangeability guarantee).
EXECUTORS = ("serial", "thread:2")

SMOKE = {"uniform_n": 500, "neural_n": 500, "n_steps": 3}
DEFAULT = {"uniform_n": 4_000, "neural_n": 4_000, "n_steps": 6}


def _algorithms(executor):
    """The bench matrix's algorithm column: THERMAL-JOIN + 2 baselines."""
    return (
        ThermalJoin(count_only=True, executor=executor),
        PBSMJoin(count_only=True, executor=executor),
        PlaneSweepJoin(count_only=True, executor=executor),
    )


def _workloads(config, seed=7):
    """(name, factory) pairs; factories rebuild the workload from the
    same seed so every run sees an identical, fresh trajectory (motion
    models are stateful and must not be shared across runs)."""

    def uniform():
        dataset, motion = scaled_uniform(config["uniform_n"], seed=seed)
        return dataset, motion

    def neural():
        dataset, motion, _labels = scaled_neural(config["neural_n"], seed=seed)
        return dataset, motion

    return (("uniform", uniform), ("neural", neural))


def run_matrix(config, trace_path=None):
    """Run the bench matrix; returns the (validated) bench document.

    Every (workload, algorithm) pair runs once per executor backend on a
    fresh copy of the workload, so the series are directly comparable;
    a mismatch in result or overlap-test counts across backends is a
    correctness bug and fails the run immediately.
    """
    previous = None
    writer = None
    if trace_path is not None:
        writer = JsonlWriter(trace_path)
        previous = set_tracer(Tracer(sink=writer))
    try:
        runs = _run_matrix_inner(config)
    finally:
        if trace_path is not None:
            set_tracer(previous)
            writer.close()
    document = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "kind": "bench_steps",
        "environment": environment_info(),
        "config": dict(config),
        "runs": runs,
    }
    return validate_bench(document)


def _run_matrix_inner(config):
    runs = []
    reference = {}
    n_steps = config["n_steps"]
    for executor in EXECUTORS:
        for workload, factory in _workloads(config):
            for algorithm in _algorithms(executor):
                dataset, motion = factory()
                runner = SimulationRunner(dataset, motion, algorithm)
                records = runner.run(n_steps)
                if runner.failure is not None:
                    raise runner.failure
                counts = tuple(
                    (record.n_results, record.overlap_tests) for record in records
                )
                key = (workload, algorithm.name)
                reference.setdefault(key, counts)
                if reference[key] != counts:
                    raise AssertionError(
                        f"executor {executor!r} changed the {key} series"
                    )
                runs.append(
                    {
                        "workload": workload,
                        "algorithm": algorithm.name,
                        "executor": executor,
                        "n_objects": len(dataset),
                        "n_steps": len(records),
                        "steps": [step_record_to_json(record) for record in records],
                        "aggregates": run_aggregates(runner),
                    }
                )
                algorithm.executor.close()
    return runs


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI scale: tiny workloads, 3 steps (seconds, not minutes)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent
        / "results"
        / "BENCH_steps.json",
        help="output document path (default results/BENCH_steps.json)",
    )
    parser.add_argument(
        "--trace",
        type=Path,
        default=None,
        metavar="OUT.JSONL",
        help="also stream engine trace spans to this JSONL file",
    )
    args = parser.parse_args(argv)

    config = dict(SMOKE if args.smoke else DEFAULT)
    document = run_matrix(config, trace_path=args.trace)
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(document, indent=2) + "\n")
    print(
        f"wrote {args.out}: {len(document['runs'])} runs, "
        f"schema v{document['schema_version']}"
        + (f", trace at {args.trace}" if args.trace else "")
    )
    return document


# ----------------------------------------------------------------------
# pytest entry point: smoke matrix + schema + bit-identity
# ----------------------------------------------------------------------
def test_smoke_matrix_is_schema_valid(tmp_path):
    trace_path = tmp_path / "trace.jsonl"
    traced = run_matrix(dict(SMOKE), trace_path=trace_path)
    plain = run_matrix(dict(SMOKE))
    # Tracing must be purely observational: identical series either way.
    for run_traced, run_plain in zip(traced["runs"], plain["runs"], strict=True):
        for step_traced, step_plain in zip(
        run_traced["steps"], run_plain["steps"], strict=True
    ):
            assert step_traced["n_results"] == step_plain["n_results"]
            assert step_traced["overlap_tests"] == step_plain["overlap_tests"]
            assert step_traced["memory_bytes"] == step_plain["memory_bytes"]
    assert trace_path.exists()
    spans = [json.loads(line) for line in trace_path.read_text().splitlines()]
    assert spans and all(span["kind"] == "span" for span in spans)


if __name__ == "__main__":
    main()
