"""Self-tuning of the P-Grid resolution (paper Section 4.3.2).

THERMAL-JOIN does not require the user to configure the grid: it tunes
the normalized resolution ``r`` (cell width as a fraction of the largest
object width) at runtime by hill climbing on the observed per-step join
cost ``F_t(r)``, which is convex in ``r`` with a workload-dependent
optimum (the paper's Figure 6).

The tuner follows the paper's protocol:

* start at ``r_1 = 1``;
* move ``r`` step-wise, keeping a move when the cost improved and
  reversing/halving the step otherwise;
* declare convergence when successive costs differ by no more than the
  threshold (Equation 1; the paper uses 10 % and observes convergence in
  6–8 time steps);
* once converged, stop tuning but keep watching the cost at the chosen
  ``r'``; when it drifts by more than the threshold from the fixed
  converged-cost reference (Equation 2 — the workload's distribution
  changed), tuning restarts.  The reference is seeded by the first
  observation after (re)convergence and refreshed only on retune or
  re-convergence, so *cumulative* drift — e.g. 5 % per step, forever —
  re-triggers tuning once it passes the threshold, not just one-step
  jumps.

The cost signal is whatever the caller feeds :meth:`observe` — wall
time, like the paper, or a deterministic operation count for
reproducible tests (see ``ThermalJoin(cost_model="operations")``).
"""

from __future__ import annotations

__all__ = ["HillClimbingTuner"]


class HillClimbingTuner:
    """Hill climber over the normalized P-Grid resolution ``r``.

    Parameters
    ----------
    initial:
        Starting resolution (the paper starts at 1.0).
    initial_step:
        First step size; halved on every direction reversal.
    threshold:
        Relative cost-change threshold for both convergence (Eq. 1) and
        re-tune triggering (Eq. 2).  Paper default: 0.1.
    r_min, r_max:
        Hard bounds on the explored resolution.
    min_step:
        Convergence is also declared when the step shrinks below this.
    """

    def __init__(
        self,
        initial: float = 1.0,
        initial_step: float = 0.25,
        threshold: float = 0.1,
        r_min: float = 0.2,
        r_max: float = 2.0,
        min_step: float = 0.02,
    ) -> None:
        if not r_min < r_max:
            raise ValueError(f"need r_min < r_max, got {r_min} >= {r_max}")
        if not r_min <= initial <= r_max:
            raise ValueError(f"initial resolution {initial} outside [{r_min}, {r_max}]")
        if threshold <= 0:
            raise ValueError(f"threshold must be positive, got {threshold}")
        if initial_step <= 0 or min_step <= 0:
            raise ValueError("step sizes must be positive")
        self.initial = float(initial)
        self.initial_step = float(initial_step)
        self.threshold = float(threshold)
        self.r_min = float(r_min)
        self.r_max = float(r_max)
        self.min_step = float(min_step)

        self.current_r = self.initial
        self.converged = False
        #: (r, cost) pairs in observation order (diagnostics/Figure 6-style plots).
        self.history: list[tuple[float, float]] = []
        #: Number of observations consumed while actively tuning.
        self.tuning_steps = 0
        #: Number of times drift re-triggered tuning (Eq. 2).
        self.retunes = 0

        self._step = self.initial_step
        self._direction = -1.0  # explore finer grids first (Fig. 6 optima sit below 1)
        self._prev_r: float | None = None
        self._prev_cost: float | None = None
        self._converged_cost: float | None = None
        self._best_r: float | None = None
        self._best_cost: float | None = None

    # ------------------------------------------------------------------
    def observe(self, cost: float) -> bool:
        """Feed the cost measured at :attr:`current_r`; may move ``r``.

        Returns True when the observation changed :attr:`current_r`
        (the caller must then rebuild the P-Grid from scratch, as the
        paper notes every resolution change requires).
        """
        if cost < 0:
            raise ValueError(f"cost must be non-negative, got {cost}")
        cost = float(cost)
        self.history.append((self.current_r, cost))
        if self.converged:
            return self._watch_for_drift(cost)
        return self._climb(cost)

    def _watch_for_drift(self, cost: float) -> bool:
        """Equation 2: restart tuning on a significant cost change at r'.

        The reference is the cost observed right after (re)convergence
        and then stays **fixed** until the next retune or re-convergence
        refreshes it.  Comparing each step against the *previous* step
        instead would let a workload drifting just under the threshold
        per step drift forever without re-triggering tuning — Equation 2
        measures departure from the converged operating point, not
        step-to-step noise.
        """
        reference = self._converged_cost
        if reference is None or reference == 0.0:
            # Fresh reference: the first observation at the (newly)
            # converged r seeds it — never a cost measured many steps
            # ago at a different r on a moving workload.
            self._converged_cost = cost
            return False
        if abs(cost - reference) > self.threshold * reference:
            self.converged = False
            self.retunes += 1
            self._step = self.initial_step
            self._prev_r = None
            self._prev_cost = None
            self._converged_cost = None
            # Seed the new phase's best with the point we are leaving:
            # if the exploration finds nothing cheaper than the drifted
            # cost here, the climb returns rather than settling worse.
            self._best_r = self.current_r
            self._best_cost = cost
            return self._propose(self.current_r + self._direction * self._step)
        return False

    def _climb(self, cost: float) -> bool:
        """One hill-climbing update (Equation 1 convergence test).

        The climb keeps the best ``(r, cost)`` seen in the current tuning
        phase; retreats aim at the best point rather than merely the
        previous one, so a walk that wandered into a bad region (or onto
        the clamped boundary) cannot settle there.
        """
        self.tuning_steps += 1
        if self._best_cost is None or cost < self._best_cost:
            self._best_r = self.current_r
            self._best_cost = cost

        if self._prev_cost is None:
            # First probe: remember it and take the initial step.
            self._prev_r = self.current_r
            self._prev_cost = cost
            return self._propose(self.current_r + self._direction * self._step)

        relative_change = (
            abs(cost - self._prev_cost) / self._prev_cost
            if self._prev_cost > 0
            else 0.0
        )
        if relative_change <= self.threshold and cost <= 1.3 * self._best_cost:
            # Equation 1 — and the plateau is genuinely near the best
            # point seen, not a flat stretch of a bad region.
            return self._finalize_at(self.current_r)

        if cost < self._prev_cost:
            # Improvement: keep walking the same direction.
            self._prev_r = self.current_r
            self._prev_cost = cost
            return self._propose(self.current_r + self._direction * self._step)

        # Worse: retreat toward the best point, reverse, halve the step.
        self._direction = -self._direction
        self._step /= 2.0
        if self._step < self.min_step:
            return self._finalize_at(self._best_r)
        self._prev_r = self._best_r
        self._prev_cost = self._best_cost
        return self._propose(self._best_r + self._direction * self._step)

    def _finalize_at(self, r: float) -> None:
        """Converge onto ``r``; the drift reference starts fresh."""
        # Mark converged *before* proposing: at a clamped boundary the
        # proposal is a no-op and must not re-enter the climbing logic.
        self.converged = True
        # The next observation (at the converged r) initialises the
        # Equation-2 reference; comparing against a cost measured at an
        # earlier time step of a moving workload triggers false drift.
        self._converged_cost = None
        return self._propose(r)

    def _propose(self, r: float) -> float:
        """Clamp and adopt a new resolution; report whether it changed."""
        r = min(max(r, self.r_min), self.r_max)
        changed = abs(r - self.current_r) > 1e-12
        self.current_r = r
        if not changed and not self.converged:
            # Clamped onto the boundary we were already sitting on: the
            # climb cannot make progress in this direction.
            self._direction = -self._direction
            self._step /= 2.0
            if self._step < self.min_step:
                best = self._best_r if self._best_r is not None else self.current_r
                return self._finalize_at(best)
        return changed

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, object]:
        """JSON-serializable snapshot of the full tuner state.

        Floats round-trip exactly through JSON (IEEE doubles), so a
        restored tuner makes bit-identical decisions from the same
        observation stream.
        """
        return {
            "initial": self.initial,
            "initial_step": self.initial_step,
            "threshold": self.threshold,
            "r_min": self.r_min,
            "r_max": self.r_max,
            "min_step": self.min_step,
            "current_r": self.current_r,
            "converged": self.converged,
            "history": [[r, cost] for r, cost in self.history],
            "tuning_steps": self.tuning_steps,
            "retunes": self.retunes,
            "step": self._step,
            "direction": self._direction,
            "prev_r": self._prev_r,
            "prev_cost": self._prev_cost,
            "converged_cost": self._converged_cost,
            "best_r": self._best_r,
            "best_cost": self._best_cost,
        }

    def load_state_dict(self, state: dict[str, object]) -> None:
        """Restore state produced by :meth:`state_dict`."""
        for name in ("initial", "initial_step", "threshold", "r_min", "r_max",
                     "min_step", "current_r"):
            setattr(self, name, float(state[name]))  # type: ignore[arg-type]
        self.converged = bool(state["converged"])
        history = state["history"]
        if not isinstance(history, list):
            raise ValueError("tuner history must be a list")
        self.history = [(float(r), float(cost)) for r, cost in history]
        self.tuning_steps = int(state["tuning_steps"])  # type: ignore[call-overload]
        self.retunes = int(state["retunes"])  # type: ignore[call-overload]
        self._step = float(state["step"])  # type: ignore[arg-type]
        self._direction = float(state["direction"])  # type: ignore[arg-type]
        for name in ("prev_r", "prev_cost", "converged_cost", "best_r", "best_cost"):
            value = state[name]
            setattr(self, f"_{name}", None if value is None else float(value))  # type: ignore[arg-type]

    def __repr__(self) -> str:
        state = "converged" if self.converged else "tuning"
        return f"HillClimbingTuner(r={self.current_r:.3f}, {state})"
