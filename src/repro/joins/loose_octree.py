"""Loose Octree join (Samet, Sankaranarayanan & Auerbach [30]).

The loose octree relaxes the MX-CIF containment rule: each cell's
*loose* extent is enlarged by a looseness factor ``p`` (the paper's
sweep found ``p = 0.1`` best), so an object that only slightly straddles
a subdivision plane can still descend to a deeper, smaller cell instead
of being pinned near the root.  Objects are assigned by their center to
the deepest cell whose loose cube still contains them.

The join is the indexed nested loop the paper describes (§5.1.2): the
same dataset is used as the query set; each object performs a range
query that descends into every existing node whose loose cube overlaps
the query MBR and tests the objects stored there.  Every qualifying
pair is therefore discovered twice (once per direction); an
``id < id`` filter reports it exactly once while both discoveries'
overlap tests are counted, as an indexed-nested-loop join pays them.

The traversal is evaluated as a batched breadth-first descent — a
frontier of (query object, node) pairs per depth — so the per-node
work runs through the vectorised group-join primitives.

The tree is rebuilt from scratch every time step.
"""

from __future__ import annotations

import numpy as np

from repro.core.cells import pack_cell_ids
from repro.geometry import cross_join_groups, encloses, group_by_keys
from repro.joins.base import MBR_BYTES, POINTER_BYTES, SpatialJoinAlgorithm
from repro.joins.octree import MAX_DEPTH, octree_root_cube

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.datasets import SpatialDataset
    from repro.engine import Executor
    from repro.geometry import PairAccumulator

__all__ = ["LooseOctreeJoin"]


def loose_containment_depths(
    lo: np.ndarray,
    hi: np.ndarray,
    centers: np.ndarray,
    origin: np.ndarray,
    root_side: float,
    p: float,
    max_depth: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Deepest depth whose loose cell (around each center) contains each box.

    Containment in the loose cube is monotone up the tree (a parent's
    loose cube contains its children's), so the deepest fitting level is
    found by tightening depth by depth.
    """
    n = lo.shape[0]
    depths = np.zeros(n, dtype=np.int64)
    coords = np.zeros((n, 3), dtype=np.int64)
    active = np.arange(n, dtype=np.int64)
    for depth in range(1, max_depth + 1):
        if active.size == 0:
            break
        cell = root_side / (1 << depth)
        slack = p * cell / 2.0
        cell_coords = np.floor((centers[active] - origin) / cell).astype(np.int64)
        cube_lo = origin + cell_coords * cell - slack
        cube_hi = origin + (cell_coords + 1) * cell + slack
        fits = encloses(cube_lo, cube_hi, lo[active], hi[active])
        fitting = active[fits]
        depths[fitting] = depth
        coords[fitting] = cell_coords[fits]
        active = fitting
    return depths, coords


class LooseOctreeJoin(SpatialJoinAlgorithm):
    """Indexed nested-loop self-join over a loose octree.

    Parameters
    ----------
    looseness:
        Looseness factor ``p``; each cell's loose cube extends the cell
        by ``p * cell_width / 2`` on every side (paper default 0.1).
    max_depth:
        Subdivision depth cap.
    """

    name = "loose-octree"

    def __init__(self, count_only: bool = False, looseness: float = 0.1, max_depth: int = MAX_DEPTH, executor: Executor | None = None) -> None:
        super().__init__(count_only=count_only, executor=executor)
        if looseness < 0:
            raise ValueError(f"looseness must be non-negative, got {looseness}")
        self.looseness = float(looseness)
        self.max_depth = int(max_depth)
        self._index = None

    def _build(self, dataset: SpatialDataset) -> None:
        lo, hi = dataset.boxes()
        origin, root_side = octree_root_cube(dataset)
        depths, coords = loose_containment_depths(
            lo, hi, dataset.centers, origin, root_side, self.looseness, self.max_depth
        )
        deepest = int(depths.max()) if depths.size else 0

        # Per-depth structures: occupied node groups plus the "present"
        # node set (occupied nodes and all their ancestors) that the
        # range-query descent must be able to pass through.
        per_depth = []
        for depth in range(deepest + 1):
            mask = depths == depth
            ids = np.flatnonzero(mask)
            if ids.size:
                keys = pack_cell_ids(coords[ids])
                cat, starts, stops, unique_keys = group_by_keys(keys, ids=ids)
            else:
                empty = np.empty(0, dtype=np.int64)
                cat, starts, stops, unique_keys = empty, empty, empty, empty
            per_depth.append(
                {
                    "cat": cat,
                    "starts": starts,
                    "stops": stops,
                    "occ_keys": unique_keys,
                }
            )
        # Present nodes, bottom-up: occupied ∪ parents of deeper present.
        carried = np.empty((0, 3), dtype=np.int64)
        for depth in range(deepest, -1, -1):
            mask = depths == depth
            occupied_coords = coords[mask]
            present_coords = np.unique(
                np.concatenate([occupied_coords, carried]), axis=0
            )
            level = per_depth[depth]
            level["present_keys"] = (
                pack_cell_ids(present_coords)
                if present_coords.size
                else np.empty(0, dtype=np.int64)
            )
            order = np.argsort(level["present_keys"])
            level["present_keys"] = level["present_keys"][order]
            level["present_coords"] = present_coords[order]
            cell = root_side / (1 << depth)
            slack = self.looseness * cell / 2.0
            level["cube_lo"] = origin + level["present_coords"] * cell - slack
            level["cube_hi"] = origin + (level["present_coords"] + 1) * cell + slack
            carried = present_coords >> 1
        self._index = {
            "lo": lo,
            "hi": hi,
            "per_depth": per_depth,
            "deepest": deepest,
        }

    def _join(self, dataset: SpatialDataset, accumulator: PairAccumulator) -> None:
        index = self._index
        lo = index["lo"]
        hi = index["hi"]
        per_depth = index["per_depth"]
        n = lo.shape[0]

        def on_pairs(left, right, _groups):
            # left = stored object, right = query object.  Report the pair
            # only from the query of the larger id: exactly-once emission.
            keep = left < right
            if keep.any():
                accumulator.extend(left[keep], right[keep])

        tests = 0
        # Frontier: every object starts at the root (present by construction
        # whenever the dataset is non-empty).
        queries = np.arange(n, dtype=np.int64)
        nodes = np.zeros(n, dtype=np.int64)  # root slot at depth 0
        for depth in range(index["deepest"] + 1):
            level = per_depth[depth]
            if queries.size == 0 or level["present_keys"].size == 0:
                break
            # (1) Test queries against objects stored at the visited nodes.
            if level["occ_keys"].size:
                visited_keys = level["present_keys"][nodes]
                occ_slots = np.searchsorted(level["occ_keys"], visited_keys)
                occ_slots = np.clip(occ_slots, 0, level["occ_keys"].size - 1)
                at_occupied = level["occ_keys"][occ_slots] == visited_keys
                if at_occupied.any():
                    q_ids = queries[at_occupied]
                    q_groups_cat, q_starts, q_stops, _keys = group_by_keys(
                        occ_slots[at_occupied], ids=q_ids
                    )
                    unique_slots = np.unique(occ_slots[at_occupied])
                    tests += cross_join_groups(
                        lo,
                        hi,
                        level["cat"],
                        level["starts"],
                        level["stops"],
                        q_groups_cat,
                        q_starts,
                        q_stops,
                        unique_slots,
                        np.arange(unique_slots.size, dtype=np.int64),
                        on_pairs,
                        count="full",
                    )
            # (2) Descend: expand each (query, node) to the existing
            # children whose loose cube overlaps the query box.
            if depth == index["deepest"]:
                break
            child_level = per_depth[depth + 1]
            if child_level["present_keys"].size == 0:
                break
            parent_coords = level["present_coords"][nodes]
            next_queries = []
            next_nodes = []
            for ox in (0, 1):
                for oy in (0, 1):
                    for oz in (0, 1):
                        child_coords = parent_coords * 2 + np.asarray(
                            [ox, oy, oz], dtype=np.int64
                        )
                        child_keys = pack_cell_ids(child_coords)
                        slots = np.searchsorted(
                            child_level["present_keys"], child_keys
                        )
                        slots = np.clip(
                            slots, 0, child_level["present_keys"].size - 1
                        )
                        found = (
                            child_level["present_keys"][slots] == child_keys
                        )
                        if not found.any():
                            continue
                        q = queries[found]
                        s = slots[found]
                        overlap = np.logical_and(
                            (lo[q] < child_level["cube_hi"][s]).all(axis=1),
                            (child_level["cube_lo"][s] < hi[q]).all(axis=1),
                        )
                        next_queries.append(q[overlap])
                        next_nodes.append(s[overlap])
            if not next_queries:
                break
            queries = np.concatenate(next_queries)
            nodes = np.concatenate(next_nodes)
        return tests

    def memory_footprint(self) -> int:
        if self._index is None:
            return 0
        # The "present" sets already include every ancestor, so their
        # sizes sum to the materialised node count directly.
        n_nodes = sum(
            level["present_coords"].shape[0] for level in self._index["per_depth"]
        )
        n_objects = self._index["lo"].shape[0]
        node_bytes = MBR_BYTES + 8 * POINTER_BYTES + 16
        return n_nodes * node_bytes + n_objects * POINTER_BYTES
