"""Tests for the extension joins (ST2B, indexed-NL R-Tree) and the
THERMAL-JOIN extensions (parallel external join, memory quota)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ThermalJoin
from repro.datasets import make_uniform_workload
from repro.geometry import brute_force_pairs, pack_pairs, unique_pairs
from repro.joins import IndexedNestedLoopRTreeJoin, ST2BJoin
from tests.conftest import assert_matches_oracle

EXTENSION_ALGORITHMS = [ST2BJoin, IndexedNestedLoopRTreeJoin]


@pytest.mark.parametrize("algorithm_cls", EXTENSION_ALGORITHMS)
class TestExtensionJoinsAgainstOracle:
    def test_uniform(self, algorithm_cls, uniform_small):
        assert_matches_oracle(algorithm_cls(), uniform_small)

    def test_varied_widths(self, algorithm_cls, uniform_varied):
        assert_matches_oracle(algorithm_cls(), uniform_varied)

    def test_clustered(self, algorithm_cls, clustered_small):
        assert_matches_oracle(algorithm_cls(), clustered_small)

    def test_neural(self, algorithm_cls, neural_small):
        assert_matches_oracle(algorithm_cls(), neural_small)

    @pytest.mark.parametrize("n", [1, 2, 5, 17])
    def test_tiny(self, algorithm_cls, n):
        from repro.datasets import SpatialDataset

        rng = np.random.default_rng(n)
        ds = SpatialDataset(rng.uniform(0, 10.0, size=(n, 3)), 3.0)
        assert_matches_oracle(algorithm_cls(), ds)

    def test_across_steps(self, algorithm_cls):
        dataset, motion = make_uniform_workload(
            300, width=15.0, bounds=(np.zeros(3), np.full(3, 110.0)), seed=51
        )
        algo = algorithm_cls()
        n = len(dataset)
        for _ in range(4):
            result = algo.step(dataset)
            got = pack_pairs(*unique_pairs(*result.pairs, n), n)
            exp = pack_pairs(*brute_force_pairs(*dataset.boxes()), n)
            assert np.array_equal(got, exp)
            motion.step(dataset)


class TestST2BMaintenance:
    def test_incremental_updates_tracked(self):
        dataset, motion = make_uniform_workload(
            400, width=15.0, bounds=(np.zeros(3), np.full(3, 120.0)), seed=53
        )
        algo = ST2BJoin()
        algo.step(dataset)
        inserts_after_build = algo.index_inserts
        assert inserts_after_build == 400  # bulk construction
        assert algo.index_deletes == 0
        motion.step(dataset)
        algo.step(dataset)
        # Only objects that changed cell were updated.
        moved = algo.index_deletes
        assert 0 < moved <= 400
        assert algo.index_inserts == inserts_after_build + moved

    def test_footprint_includes_tree_nodes(self, uniform_small):
        algo = ST2BJoin()
        result = algo.step(uniform_small)
        assert result.stats.memory_bytes > 0
        assert algo._tree.node_count() >= 1

    def test_stationary_objects_cause_no_updates(self, uniform_small):
        algo = ST2BJoin()
        algo.step(uniform_small)
        inserts = algo.index_inserts
        algo.step(uniform_small)  # nothing moved
        assert algo.index_inserts == inserts
        assert algo.index_deletes == 0


class TestParallelThermal:
    def test_parallel_equals_serial(self, uniform_small, neural_small):
        for dataset in (uniform_small, neural_small):
            n = len(dataset)
            serial = ThermalJoin(resolution=1.0).step(dataset)
            parallel = ThermalJoin(resolution=1.0, n_workers=4).step(dataset)
            assert parallel.n_results == serial.n_results
            assert parallel.stats.overlap_tests == serial.stats.overlap_tests
            assert np.array_equal(
                pack_pairs(*unique_pairs(*parallel.pairs, n), n),
                pack_pairs(*unique_pairs(*serial.pairs, n), n),
            )

    def test_parallel_across_simulation_steps(self):
        dataset, motion = make_uniform_workload(
            500, width=15.0, bounds=(np.zeros(3), np.full(3, 120.0)), seed=57
        )
        join = ThermalJoin(resolution=1.0, n_workers=3)
        n = len(dataset)
        for _ in range(4):
            result = join.step(dataset)
            exp = pack_pairs(*brute_force_pairs(*dataset.boxes()), n)
            got = pack_pairs(*unique_pairs(*result.pairs, n), n)
            assert np.array_equal(got, exp)
            motion.step(dataset)

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            ThermalJoin(n_workers=0)


class TestMemoryQuota:
    def test_quota_bounds_footprint(self, uniform_small):
        unbounded = ThermalJoin(resolution=0.4).step(uniform_small)
        quota = unbounded.stats.memory_bytes // 3
        bounded = ThermalJoin(resolution=0.4, memory_quota_bytes=quota).step(
            uniform_small
        )
        assert bounded.stats.memory_bytes <= quota
        assert bounded.n_results == unbounded.n_results  # still correct

    def test_quota_correctness(self, neural_small):
        assert_matches_oracle(
            ThermalJoin(resolution=1.0, memory_quota_bytes=50_000), neural_small
        )

    def test_generous_quota_changes_nothing(self, uniform_small):
        base = ThermalJoin(resolution=1.0).step(uniform_small)
        quota = ThermalJoin(
            resolution=1.0, memory_quota_bytes=10**12
        ).step(uniform_small)
        assert quota.stats.memory_bytes == base.stats.memory_bytes
        assert quota.stats.overlap_tests == base.stats.overlap_tests

    def test_invalid_quota(self):
        with pytest.raises(ValueError):
            ThermalJoin(memory_quota_bytes=0)

    def test_infeasible_quota_fails_fast(self, uniform_small):
        # Regression: a quota below the footprint floor (even a single
        # cell over-spends it) used to coarsen forever — the projected
        # footprint is monotone in the cell width with a positive
        # infimum, so the loop never terminated.  Now it raises.
        join = ThermalJoin(memory_quota_bytes=1)
        with pytest.raises(ValueError, match="memory_quota_bytes"):
            join.step(uniform_small)

    def test_quota_just_above_floor_still_runs(self, uniform_small):
        join = ThermalJoin(resolution=1.0, memory_quota_bytes=1)
        floor = join._footprint_floor(uniform_small)
        generous = ThermalJoin(resolution=1.0, memory_quota_bytes=2 * floor)
        result = generous.step(uniform_small)
        assert result.n_results == ThermalJoin(resolution=1.0).step(
            uniform_small
        ).n_results

    def test_quota_with_tuning_stays_correct(self):
        dataset, motion = make_uniform_workload(
            400, width=15.0, bounds=(np.zeros(3), np.full(3, 110.0)), seed=59
        )
        join = ThermalJoin(memory_quota_bytes=40_000)
        n = len(dataset)
        for _ in range(6):
            result = join.step(dataset)
            assert result.stats.memory_bytes <= 40_000
            exp = pack_pairs(*brute_force_pairs(*dataset.boxes()), n)
            got = pack_pairs(*unique_pairs(*result.pairs, n), n)
            assert np.array_equal(got, exp)
            motion.step(dataset)
