"""ST2B-style moving-object index join (Chen, Ooi, Tan & Nascimento [7]).

The ST2B-Tree is the paper's representative of joins over *maintained*
moving-object indexes (§2.2): "maps all objects on a uniform grid and
indexes each object along with its identifier in a B+-Tree (cell
identifiers are assigned based on a space-filling curve)".  This
reproduction builds exactly that stack on the substrates in this
repository:

* a uniform grid over object centers, cell width equal to the largest
  object extent (so one neighbour layer suffices);
* Morton (Z-order) cell keys;
* a real B+-Tree (:class:`~repro.index.bptree.BPlusTree`) holding one
  ``(cell key, object id)`` entry per object;
* **incremental maintenance**: at each step only objects whose cell
  changed are deleted and re-inserted — the selling point of
  moving-object indexes, and precisely the cost that explodes when
  *all* objects move every step (§1: "in case all objects move ...
  executing a full join from scratch is more efficient", the workload
  property that motivates THERMAL-JOIN).

The join queries the index once per occupied cell: a B+-Tree range scan
per neighbour cell key retrieves the candidate objects, which are then
compared with nested-loop accounting.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.cells import half_neighborhood_offsets
from repro.geometry import cross_join_groups, group_by_keys, self_join_groups
from repro.geometry.morton import morton_decode, morton_encode
from repro.index import BPlusTree
from repro.joins.base import ID_BYTES, POINTER_BYTES, SpatialJoinAlgorithm

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.datasets import SpatialDataset
    from repro.engine import Executor
    from repro.geometry import PairAccumulator

__all__ = ["ST2BJoin"]


class ST2BJoin(SpatialJoinAlgorithm):
    """Self-join over a B+-Tree-indexed uniform grid with Morton keys.

    Parameters
    ----------
    order:
        B+-Tree node capacity.
    """

    name = "st2b"

    def __init__(self, count_only: bool = False, order: int = 32, executor: Executor | None = None) -> None:
        super().__init__(count_only=count_only, executor=executor)
        self.order = int(order)
        self._tree = None
        self._object_keys = None
        self._grid = None
        #: Lifetime counters: per-object index updates performed.
        self.index_inserts = 0
        self.index_deletes = 0

    # ------------------------------------------------------------------
    def _cell_keys(self, dataset: SpatialDataset) -> tuple[np.ndarray, np.ndarray]:
        origin, _ = dataset.bounds
        cell_width = self._grid["cell_width"]
        coords = np.floor((dataset.centers - origin) / cell_width).astype(np.int64)
        # The grid is anchored at the domain origin so coordinates are
        # non-negative (Morton keys require it); clamp the occasional
        # floating-point straggler just below the boundary.
        np.maximum(coords, 0, out=coords)
        return morton_encode(coords), coords

    def _build(self, dataset: SpatialDataset) -> None:
        max_width = dataset.max_width
        if self._tree is None or abs(self._grid["cell_width"] - max_width) > 1e-12:
            # First build (or extent change): bulk construction.
            self._grid = {"cell_width": max_width}
            keys, _coords = self._cell_keys(dataset)
            self._tree = BPlusTree(order=self.order)
            for obj, key in enumerate(keys.tolist()):
                self._tree.insert(key, obj)
                self.index_inserts += 1
            self._object_keys = keys
            return
        # Incremental maintenance: move only the objects that changed cell.
        keys, _coords = self._cell_keys(dataset)
        changed = np.flatnonzero(keys != self._object_keys)
        old_keys = self._object_keys
        for obj in changed.tolist():
            self._tree.delete(int(old_keys[obj]), obj)
            self._tree.insert(int(keys[obj]), obj)
            self.index_deletes += 1
            self.index_inserts += 1
        self._object_keys = keys

    def _join(self, dataset: SpatialDataset, accumulator: PairAccumulator) -> None:
        lo, hi = dataset.boxes()
        keys = self._object_keys
        cat, starts, stops, unique_keys = group_by_keys(keys)
        layers = max(
            1,
            math.ceil(dataset.max_width / self._grid["cell_width"] - 1e-9),
        )

        def on_pairs(left, right, _groups):
            accumulator.extend(left, right)

        # Within-cell candidates.
        tests = self_join_groups(
            lo,
            hi,
            cat,
            starts,
            stops,
            np.arange(unique_keys.size, dtype=np.int64),
            on_pairs,
            count="full",
        )

        # Neighbour cells: one B+-Tree range scan per (cell, half-offset).
        cell_coords = morton_decode(unique_keys)
        offsets = half_neighborhood_offsets(layers)
        pair_a = []
        neighbor_lists = []
        for slot in range(unique_keys.size):
            cx, cy, cz = (int(c) for c in cell_coords[slot])
            for ox, oy, oz in offsets:
                nx, ny, nz = cx + ox, cy + oy, cz + oz
                if nx < 0 or ny < 0 or nz < 0:
                    continue
                neighbor_key = int(
                    morton_encode(np.asarray([[nx, ny, nz]], dtype=np.int64))[0]
                )
                members = self._tree.values_for(neighbor_key)
                if members:
                    pair_a.append(slot)
                    neighbor_lists.append(np.asarray(members, dtype=np.int64))
        if pair_a:
            # Assemble the scanned neighbour populations as a second
            # grouped side and join batched.
            cat_b = np.concatenate(neighbor_lists)
            sizes_b = np.asarray([m.size for m in neighbor_lists], dtype=np.int64)
            stops_b = np.cumsum(sizes_b)
            starts_b = stops_b - sizes_b
            tests += cross_join_groups(
                lo,
                hi,
                cat,
                starts,
                stops,
                cat_b,
                starts_b,
                stops_b,
                np.asarray(pair_a, dtype=np.int64),
                np.arange(sizes_b.size, dtype=np.int64),
                on_pairs,
                count="full",
            )
        return tests

    def memory_footprint(self) -> int:
        if self._tree is None:
            return 0
        # B+-Tree nodes: order slots of (key + pointer) each, plus the
        # per-object grid-key table the maintainer diffs against.
        node_bytes = self.order * (ID_BYTES + POINTER_BYTES) + POINTER_BYTES
        return self._tree.node_count() * node_bytes + len(self._tree) * ID_BYTES
