"""Repo-specific configuration for the repro-lint rules.

Everything scope- or policy-shaped lives here so the rule logic in
:mod:`tools.repro_lint.rules` stays mechanical: which directories a rule
patrols, which callables are sanctioned, and the explicit whitelist for
wall-clock use inside the deterministic core.

Scopes are matched as substrings of each file's *resolved* POSIX path,
so they work identically for the real tree (``src/repro/...``) and for
the temporary trees the fixture tests build.
"""

from __future__ import annotations

import re

# ----------------------------------------------------------------------
# Scopes
# ----------------------------------------------------------------------
#: Modules that must be bit-reproducible given the same seed: the grids,
#: the join algorithms and the geometric substrate.  Randomness must
#: arrive as a seed / ``numpy.random.Generator`` parameter (the
#: ``datasets`` convention) and wall-clock reads are banned outside
#: :data:`TIMING_WHITELIST`.
DETERMINISTIC_SCOPE: tuple[str, ...] = (
    "/repro/core/",
    "/repro/joins/",
    "/repro/geometry/",
)

#: The executor module — the only place tasks cross a process boundary.
EXECUTORS_SCOPE: tuple[str, ...] = ("/repro/engine/executors.py",)

#: The engine package: shared-memory views are created here.
ENGINE_SCOPE: tuple[str, ...] = ("/repro/engine/",)

#: Modules whose candidate filtering must charge
#: ``JoinStatistics.overlap_tests`` through the counted helpers of
#: :mod:`repro.geometry` rather than ad-hoc coordinate comparisons.
COUNTED_SCOPE: tuple[str, ...] = ("/repro/joins/", "/repro/core/")

#: The contract module itself (exempt from the write-path rules — its
#: recording methods are the sanctioned writers).
BASE_MODULE: tuple[str, ...] = ("/repro/joins/base.py",)

#: Everything that is part of the shipped library.
LIBRARY_SCOPE: tuple[str, ...] = ("/repro/",)

# ----------------------------------------------------------------------
# RPL001 — numpy global RNG
# ----------------------------------------------------------------------
#: ``numpy.random`` attributes that construct *seedable* generator
#: machinery.  Everything else on the module (``np.random.rand``,
#: ``np.random.seed``, ...) drives the hidden global ``RandomState`` and
#: is banned everywhere in the repo.
NP_RANDOM_ALLOWED: frozenset[str] = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "MT19937",
        "Philox",
        "SFC64",
    }
)

# ----------------------------------------------------------------------
# RPL003 — wall-clock reads
# ----------------------------------------------------------------------
#: ``time`` module functions that read a clock.
WALL_CLOCK_FUNCTIONS: frozenset[str] = frozenset(
    {
        "time",
        "time_ns",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "process_time_ns",
    }
)

#: ``datetime`` constructors that read a clock.
DATETIME_NOW_FUNCTIONS: frozenset[str] = frozenset({"now", "utcnow", "today"})

#: Sanctioned wall-clock sites inside :data:`DETERMINISTIC_SCOPE`, as
#: ``(path substring, dotted scope qualname)`` → one-line justification.
#: A qualname entry also covers scopes nested inside it.
TIMING_WHITELIST: dict[tuple[str, str], str] = {
    (
        "/repro/core/thermal.py",
        "ThermalJoin._build",
    ): "build_seconds instrumentation: the wall time *is* the measured quantity",
}

# ----------------------------------------------------------------------
# RPL201 — ad-hoc overlap predicates
# ----------------------------------------------------------------------
#: Identifier shapes that denote box-bound arrays: ``lo``, ``hi``,
#: ``lo_a``, ``xlo``, ``part_hi``, ``b_center_lo``...  Deliberately
#: name-based: the counted kernels in :mod:`repro.geometry` are out of
#: scope, so inside ``joins/`` and ``core/`` a raw ``lo``-vs-``hi``
#: comparison is either an uncounted overlap test (a bug the paper's
#: Figure 7(c) methodology forbids) or a justified, suppressed kernel.
BOUND_NAME_RE = re.compile(r"(^|_)[xyz]?(lo|hi)\d*(_|$)")

# ----------------------------------------------------------------------
# RPL202 / RPL301 — statistics and result contracts
# ----------------------------------------------------------------------
#: The instrumentation fields of ``JoinStatistics``; writable only from
#: its own recording methods (and its constructor).
STATISTICS_FIELDS: frozenset[str] = frozenset(
    {
        "overlap_tests",
        "build_seconds",
        "join_seconds",
        "memory_bytes",
        "phase_seconds",
        "stage_seconds",
        "task_counters",
        "events",
        "task_retries",
        "index_counters",
    }
)

#: Names an expression may be rooted at for RPL202 to treat it as a
#: statistics object.
STATISTICS_ROOTS: frozenset[str] = frozenset({"stats", "statistics"})

# ----------------------------------------------------------------------
# RPL203 — maintained pair-set writes
# ----------------------------------------------------------------------
#: Internal state of ``MaintainedPairSet``: the sorted packed-key array
#: and the pair-index modulus.  Writable only from the class's own
#: delta-maintenance API (``remove_incident`` / ``merge_delta`` and the
#: constructor) in :data:`PAIRS_MODULE`.
PAIRSET_FIELDS: frozenset[str] = frozenset({"_keys", "n"})

#: Names an expression may be rooted at for RPL203 to treat it as a
#: maintained pair set.
PAIRSET_ROOTS: frozenset[str] = frozenset(
    {"maintained", "_maintained", "pairset", "pair_set", "maintained_pairs"}
)

#: The module that defines ``MaintainedPairSet`` (exempt from RPL203 —
#: its methods are the sanctioned mutators).
PAIRS_MODULE: tuple[str, ...] = ("/repro/geometry/pairs.py",)

#: The exact annotation the ``JoinResult.pairs`` contract requires.
JOIN_RESULT_PAIRS_ANNOTATION = "tuple | None"

# ----------------------------------------------------------------------
# RPL501 — durable writes in the recovery package
# ----------------------------------------------------------------------
#: The checkpoint/restore package: every file write in it must flow
#: through the atomic protocol (tmp + fsync + rename) so a crash can
#: never leave a half-written checkpoint that looks committed.
RECOVERY_SCOPE: tuple[str, ...] = ("/repro/recovery/",)

#: The one sanctioned writer module inside :data:`RECOVERY_SCOPE` — it
#: implements the atomic protocol itself.
ATOMIC_MODULE: tuple[str, ...] = ("/repro/recovery/atomic.py",)

#: ``open()`` mode characters that make the handle writable.
WRITE_MODE_CHARS: frozenset[str] = frozenset({"w", "a", "x", "+"})

#: Module-qualified file writers: ``module attribute -> writer names``.
#: Any ``<module>.<writer>(...)`` call in scope is a durable write that
#: bypassed the atomic protocol.
MODULE_WRITE_CALLS: dict[str, frozenset[str]] = {
    "np": frozenset({"save", "savez", "savez_compressed", "savetxt"}),
    "numpy": frozenset({"save", "savez", "savez_compressed", "savetxt"}),
    "json": frozenset({"dump"}),
    "os": frozenset({"replace", "rename", "renames", "link", "symlink"}),
    "shutil": frozenset({"copy", "copy2", "copyfile", "copyfileobj", "move"}),
}

#: Path-level writer methods, flagged on *any* receiver — inside the
#: tiny recovery package anything calling ``.write_bytes()`` is writing
#: a file.
PATH_WRITE_ATTRS: frozenset[str] = frozenset({"write_text", "write_bytes"})

# ----------------------------------------------------------------------
# RPL601 — event-loop imports confined to the service package
# ----------------------------------------------------------------------
#: The async front-end package: the only library code allowed to import
#: asyncio (or any other event-loop framework).  Everything below the
#: service boundary stays synchronous, so the engine/join layers remain
#: testable and bit-reproducible without a running loop.
SERVICE_SCOPE: tuple[str, ...] = ("/repro/service/",)

#: Event-loop module roots banned outside :data:`SERVICE_SCOPE`.
ASYNC_MODULES: frozenset[str] = frozenset(
    {"asyncio", "selectors", "uvloop", "trio", "anyio", "curio"}
)

# ----------------------------------------------------------------------
# RPL7xx — async-safety in the service layer (whole-program)
# ----------------------------------------------------------------------
#: Resolved dotted call names that block the calling thread.  Reachable
#: from an ``async def`` without an ``asyncio.to_thread`` hop, any of
#: these stalls the event loop (and with it every pending request).
BLOCKING_CALLS: frozenset[str] = frozenset(
    {
        "time.sleep",
        "os.system",
        "os.popen",
        "os.wait",
        "os.waitpid",
        "socket.create_connection",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "subprocess.Popen",
        "urllib.request.urlopen",
    }
)

#: Attribute calls that block on *any* receiver.  ``Future.result()``
#: and pool ``shutdown(wait=True)`` park the thread until remote work
#: finishes; the ``Path`` read/write helpers are synchronous file I/O.
BLOCKING_ATTRS: frozenset[str] = frozenset(
    {"result", "shutdown", "read_text", "read_bytes", "write_text", "write_bytes"}
)

#: Calls that move their callable argument onto a worker thread: edges
#: through these do not block the event loop and are exempt from RPL701.
OFFLOAD_CALLS: frozenset[str] = frozenset({"asyncio.to_thread"})

#: Attribute spelling of the loop-executor offload (``loop.run_in_executor``).
OFFLOAD_ATTRS: frozenset[str] = frozenset({"run_in_executor"})

# ----------------------------------------------------------------------
# RPL8xx — interprocedural determinism (whole-program)
# ----------------------------------------------------------------------
#: Layers whose *job* is timing: wall-clock reads here are sanctioned
#: instrumentation (the measured wall time is the output), so RPL801's
#: reachability closure does not propagate through them.  A clock read
#: anywhere else that the deterministic core can reach through helper
#: calls is a determinism leak exactly like a direct RPL003 hit.
TIMING_LAYER_SCOPE: tuple[str, ...] = ("/repro/engine/", "/repro/obs/")

#: Resolved dotted call names that draw entropy from outside a seeded
#: ``numpy.random.Generator``: the stdlib Mersenne Twister, OS entropy,
#: and clock/MAC-derived UUIDs.  ``random.*`` is matched by prefix.
ENTROPY_CALLS: frozenset[str] = frozenset(
    {
        "os.urandom",
        "os.getrandom",
        "uuid.uuid1",
        "uuid.uuid4",
        "secrets.token_bytes",
        "secrets.token_hex",
        "secrets.token_urlsafe",
        "secrets.randbits",
        "secrets.randbelow",
        "secrets.choice",
    }
)

#: Module roots whose *every* call is an entropy draw.
ENTROPY_MODULE_ROOTS: frozenset[str] = frozenset({"random"})

# ----------------------------------------------------------------------
# RPL9xx — executor-boundary transitivity (whole-program)
# ----------------------------------------------------------------------
#: Module-level global kinds that are process-local: a submitted
#: callable that reads one of these gets a *fresh copy* in every worker
#: process (functions pickle by reference; their globals are re-created
#: by the worker's import), so mutual exclusion / handle identity
#: silently evaporates across the boundary.  Maps the classifier kind
#: to the human-readable description used in diagnostics.
PROCESS_LOCAL_GLOBAL_KINDS: dict[str, str] = {
    "lambda": "a lambda (unpicklable by qualified name)",
    "sync_primitive": "a synchronisation primitive (re-created per worker)",
    "file_handle": "an open file handle (not shared across processes)",
    "pool": "an executor pool (process-local)",
    "shared_memory": "a shared-memory handle (attach explicitly per worker)",
}

#: Constructor call names (resolved through imports) that mark a module
#: global as process-local state for RPL902.
GLOBAL_STATE_CONSTRUCTORS: dict[str, str] = {
    "threading.Lock": "sync_primitive",
    "threading.RLock": "sync_primitive",
    "threading.Condition": "sync_primitive",
    "threading.Event": "sync_primitive",
    "threading.Semaphore": "sync_primitive",
    "threading.BoundedSemaphore": "sync_primitive",
    "threading.local": "sync_primitive",
    "multiprocessing.Lock": "sync_primitive",
    "multiprocessing.RLock": "sync_primitive",
    "multiprocessing.Condition": "sync_primitive",
    "multiprocessing.Event": "sync_primitive",
    "multiprocessing.Semaphore": "sync_primitive",
    "open": "file_handle",
    "concurrent.futures.ThreadPoolExecutor": "pool",
    "concurrent.futures.ProcessPoolExecutor": "pool",
    "multiprocessing.Pool": "pool",
    "multiprocessing.shared_memory.SharedMemory": "shared_memory",
}

# ----------------------------------------------------------------------
# RPL401 — kernel backend dispatch discipline
# ----------------------------------------------------------------------
#: The verify-kernel package: the only place allowed to import backend
#: implementation modules (``numpy_backend``, ``numba_backend``,
#: ``loops``, ``dispatch``) or the optional ``numba`` dependency.
KERNELS_PACKAGE: tuple[str, ...] = ("/repro/geometry/kernels/",)

#: The sanctioned import target outside the package: the package itself,
#: whose public wrappers route every call through the dispatch registry.
KERNELS_PUBLIC_MODULE = "repro.geometry.kernels"
