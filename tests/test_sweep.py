"""Unit tests for the plane-sweep primitives (repro.geometry.sweep)."""

from __future__ import annotations

import numpy as np

from repro.geometry import (
    brute_force_pairs,
    mbr,
    pack_pairs,
    sort_by_x,
    sweep_between,
    sweep_self,
    unique_pairs,
    window_pairs,
)
from tests.conftest import random_boxes


class TestWindowPairs:
    def test_basic_expansion(self):
        left, right = window_pairs([1, 0, 3], [3, 0, 5])
        assert left.tolist() == [0, 0, 2, 2]
        assert right.tolist() == [1, 2, 3, 4]

    def test_empty_windows(self):
        left, right = window_pairs([2, 5], [2, 5])
        assert left.size == 0 and right.size == 0

    def test_inverted_window_clipped(self):
        left, right = window_pairs([5], [2])
        assert left.size == 0

    def test_total_count(self):
        starts = np.array([0, 2, 4])
        stops = np.array([3, 2, 10])
        left, _right = window_pairs(starts, stops)
        assert left.size == 3 + 0 + 6


class TestSweepSelf:
    def test_matches_oracle_random(self, rng):
        lo, hi = random_boxes(rng, 200, span=60.0)
        exp = pack_pairs(*brute_force_pairs(lo, hi), 200)
        s_lo, s_hi, ids = sort_by_x(lo, hi)
        i_ids, j_ids, tests = sweep_self(s_lo, s_hi, ids)
        got = pack_pairs(*unique_pairs(i_ids, j_ids, 200), 200)
        assert np.array_equal(got, exp)
        assert tests >= exp.size  # every found pair was tested

    def test_no_duplicates(self, rng):
        lo, hi = random_boxes(rng, 150, span=40.0)
        s_lo, s_hi, ids = sort_by_x(lo, hi)
        i_ids, j_ids, _tests = sweep_self(s_lo, s_hi, ids)
        keys = pack_pairs(*unique_pairs(i_ids, j_ids, 150), 150)
        assert keys.size == i_ids.size  # emission already duplicate-free

    def test_identical_x_bounds(self):
        # All boxes share the same x interval: ties must not drop pairs.
        centers = np.array([[0.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 50.0, 0.0]])
        lo, hi = mbr.boxes_from_centers(centers, 4.0)
        i_ids, j_ids, _ = sweep_self(*sort_by_x(lo, hi))
        got = set(zip(*unique_pairs(i_ids, j_ids, 3), strict=True))
        assert got == {(0, 1)}

    def test_fewer_than_two_boxes(self):
        lo = np.array([[0.0, 0.0, 0.0]])
        hi = np.array([[1.0, 1.0, 1.0]])
        i_ids, j_ids, tests = sweep_self(lo, hi)
        assert i_ids.size == 0 and tests == 0

    def test_test_count_bounded_by_x_overlaps(self, rng):
        lo, hi = random_boxes(rng, 100, span=30.0)
        s_lo, s_hi, ids = sort_by_x(lo, hi)
        _, _, tests = sweep_self(s_lo, s_hi, ids)
        # Count pairs with overlapping x intervals by brute force.
        x_overlaps = 0
        for a in range(100):
            for b in range(a + 1, 100):
                if s_lo[a, 0] < s_hi[b, 0] and s_lo[b, 0] < s_hi[a, 0]:
                    x_overlaps += 1
        assert tests == x_overlaps


class TestSweepBetween:
    def _cross_oracle(self, lo_a, hi_a, lo_b, hi_b):
        matrix = mbr.overlap_matrix(lo_a, hi_a, lo_b, hi_b)
        return set(zip(*np.nonzero(matrix), strict=True))

    def test_matches_cross_oracle(self, rng):
        lo_a, hi_a = random_boxes(rng, 80, span=30.0)
        lo_b, hi_b = random_boxes(rng, 90, span=30.0)
        sa = sort_by_x(lo_a, hi_a)
        sb = sort_by_x(lo_b, hi_b)
        a_ids, b_ids, tests = sweep_between(*sa, *sb)
        got = set(zip(a_ids.tolist(), b_ids.tolist(), strict=True))
        exp = self._cross_oracle(lo_a, hi_a, lo_b, hi_b)
        assert got == exp
        assert len(got) == a_ids.size  # no duplicates
        assert tests >= len(exp)

    def test_tied_x_bounds_counted_once(self):
        # a and b boxes with identical lower x bounds.
        lo_a = np.array([[0.0, 0.0, 0.0]])
        hi_a = np.array([[2.0, 2.0, 2.0]])
        lo_b = np.array([[0.0, 1.0, 1.0]])
        hi_b = np.array([[2.0, 3.0, 3.0]])
        a_ids, b_ids, _ = sweep_between(
            lo_a, hi_a, np.array([0]), lo_b, hi_b, np.array([0])
        )
        assert a_ids.size == 1

    def test_empty_side(self):
        lo = np.array([[0.0, 0.0, 0.0]])
        hi = np.array([[1.0, 1.0, 1.0]])
        empty = np.empty((0, 3))
        a_ids, b_ids, tests = sweep_between(
            lo, hi, np.array([0]), empty, empty, np.empty(0, dtype=np.int64)
        )
        assert a_ids.size == 0 and tests == 0

    def test_global_ids_passed_through(self, rng):
        lo_a, hi_a = random_boxes(rng, 20, span=10.0)
        lo_b, hi_b = random_boxes(rng, 20, span=10.0)
        ids_a = np.arange(100, 120, dtype=np.int64)
        ids_b = np.arange(500, 520, dtype=np.int64)
        sa = sort_by_x(lo_a, hi_a, ids_a)
        sb = sort_by_x(lo_b, hi_b, ids_b)
        a_out, b_out, _ = sweep_between(*sa, *sb)
        assert set(a_out.tolist()) <= set(ids_a.tolist())
        assert set(b_out.tolist()) <= set(ids_b.tolist())


class TestSortByX:
    def test_sorts_by_lower_x(self, rng):
        lo, hi = random_boxes(rng, 50, span=20.0)
        s_lo, s_hi, ids = sort_by_x(lo, hi)
        assert (np.diff(s_lo[:, 0]) >= 0).all()
        assert np.array_equal(s_lo, lo[ids])
        assert np.array_equal(s_hi, hi[ids])

    def test_custom_ids_follow_boxes(self):
        lo = np.array([[3.0, 0, 0], [1.0, 0, 0], [2.0, 0, 0]])
        hi = lo + 1.0
        ids = np.array([30, 10, 20], dtype=np.int64)
        _s_lo, _s_hi, s_ids = sort_by_x(lo, hi, ids)
        assert s_ids.tolist() == [10, 20, 30]
