"""Unit tests for the MBR substrate (repro.geometry.mbr)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry import mbr


class TestBoxConstruction:
    def test_scalar_width(self):
        centers = np.array([[0.0, 0.0, 0.0], [10.0, 10.0, 10.0]])
        lo, hi = mbr.boxes_from_centers(centers, 4.0)
        assert np.allclose(lo, centers - 2.0)
        assert np.allclose(hi, centers + 2.0)

    def test_per_object_cubic_widths(self):
        centers = np.zeros((3, 3))
        widths = np.array([2.0, 4.0, 6.0])
        lo, hi = mbr.boxes_from_centers(centers, widths)
        assert np.allclose(hi - lo, widths[:, None])

    def test_per_dimension_widths(self):
        centers = np.zeros((2, 3))
        widths = np.array([[1.0, 2.0, 3.0], [4.0, 5.0, 6.0]])
        lo, hi = mbr.boxes_from_centers(centers, widths)
        assert np.allclose(hi - lo, widths)

    def test_roundtrip_centers_widths(self):
        rng = np.random.default_rng(0)
        centers = rng.uniform(-5, 5, size=(20, 3))
        widths = rng.uniform(0.5, 3.0, size=(20, 3))
        lo, hi = mbr.boxes_from_centers(centers, widths)
        assert np.allclose(mbr.centers_from_boxes(lo, hi), centers)
        assert np.allclose(mbr.widths_from_boxes(lo, hi), widths)

    def test_mismatched_width_length_raises(self):
        with pytest.raises(ValueError):
            mbr.boxes_from_centers(np.zeros((3, 3)), np.ones(2))

    def test_mismatched_width_shape_raises(self):
        with pytest.raises(ValueError):
            mbr.boxes_from_centers(np.zeros((3, 3)), np.ones((2, 3)))

    def test_non_2d_centers_raises(self):
        with pytest.raises(ValueError):
            mbr.boxes_from_centers(np.zeros(3), 1.0)


class TestValidation:
    def test_valid_boxes_pass(self):
        lo = np.zeros((2, 3))
        hi = np.ones((2, 3))
        mbr.validate_boxes(lo, hi)  # must not raise

    def test_degenerate_box_rejected(self):
        lo = np.zeros((1, 3))
        hi = np.array([[1.0, 0.0, 1.0]])  # zero extent in y
        with pytest.raises(ValueError):
            mbr.validate_boxes(lo, hi)

    def test_inverted_box_rejected(self):
        with pytest.raises(ValueError):
            mbr.validate_boxes(np.ones((1, 3)), np.zeros((1, 3)))

    def test_nan_rejected(self):
        lo = np.zeros((1, 3))
        hi = np.array([[1.0, np.nan, 1.0]])
        with pytest.raises(ValueError):
            mbr.validate_boxes(lo, hi)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            mbr.validate_boxes(np.zeros((2, 3)), np.ones((3, 3)))


class TestOverlap:
    def test_overlapping_boxes(self):
        assert mbr.overlap_single([0, 0, 0], [2, 2, 2], [1, 1, 1], [3, 3, 3])

    def test_disjoint_boxes(self):
        assert not mbr.overlap_single([0, 0, 0], [1, 1, 1], [2, 2, 2], [3, 3, 3])

    def test_touching_faces_do_not_overlap(self):
        # Strict positive-volume semantics: face contact is not a join result.
        assert not mbr.overlap_single([0, 0, 0], [1, 1, 1], [1, 0, 0], [2, 1, 1])

    def test_touching_edge_does_not_overlap(self):
        assert not mbr.overlap_single([0, 0, 0], [1, 1, 1], [1, 1, 0], [2, 2, 1])

    def test_containment_is_overlap(self):
        assert mbr.overlap_single([0, 0, 0], [10, 10, 10], [4, 4, 4], [5, 5, 5])

    def test_overlap_is_symmetric(self):
        a = ([0.0, 0.0, 0.0], [2.0, 2.0, 2.0])
        b = ([1.5, 1.5, 1.5], [4.0, 4.0, 4.0])
        assert mbr.overlap_single(*a, *b) == mbr.overlap_single(*b, *a)

    def test_elementwise_matches_single(self):
        rng = np.random.default_rng(1)
        centers_a = rng.uniform(0, 10, size=(50, 3))
        centers_b = rng.uniform(0, 10, size=(50, 3))
        lo_a, hi_a = mbr.boxes_from_centers(centers_a, 3.0)
        lo_b, hi_b = mbr.boxes_from_centers(centers_b, 3.0)
        got = mbr.overlap_elementwise(lo_a, hi_a, lo_b, hi_b)
        for k in range(50):
            assert got[k] == mbr.overlap_single(lo_a[k], hi_a[k], lo_b[k], hi_b[k])

    def test_matrix_matches_single(self):
        rng = np.random.default_rng(2)
        lo_a, hi_a = mbr.boxes_from_centers(rng.uniform(0, 10, (8, 3)), 3.0)
        lo_b, hi_b = mbr.boxes_from_centers(rng.uniform(0, 10, (9, 3)), 3.0)
        matrix = mbr.overlap_matrix(lo_a, hi_a, lo_b, hi_b)
        assert matrix.shape == (8, 9)
        for i in range(8):
            for j in range(9):
                assert matrix[i, j] == mbr.overlap_single(
                    lo_a[i], hi_a[i], lo_b[j], hi_b[j]
                )


class TestEnclosure:
    def test_encloses_inner_box(self):
        assert mbr.encloses_single([0, 0, 0], [10, 10, 10], [2, 2, 2], [3, 3, 3])

    def test_does_not_enclose_protruding_box(self):
        assert not mbr.encloses_single([0, 0, 0], [10, 10, 10], [9, 9, 9], [11, 11, 11])

    def test_encloses_itself(self):
        assert mbr.encloses_single([0, 0, 0], [1, 1, 1], [0, 0, 0], [1, 1, 1])

    def test_rowwise_broadcast_against_single_inner(self):
        outer_lo = np.array([[0.0, 0.0, 0.0], [5.0, 5.0, 5.0]])
        outer_hi = np.array([[10.0, 10.0, 10.0], [6.0, 6.0, 6.0]])
        inner_lo = np.array([1.0, 1.0, 1.0])
        inner_hi = np.array([2.0, 2.0, 2.0])
        got = mbr.encloses(outer_lo, outer_hi, inner_lo, inner_hi)
        assert got.tolist() == [True, False]

    def test_contains_points_half_open(self):
        points = np.array([[0.0, 0.0, 0.0], [1.0, 1.0, 1.0], [0.5, 0.5, 0.5]])
        got = mbr.contains_points([0, 0, 0], [1, 1, 1], points)
        # lo inclusive, hi exclusive
        assert got.tolist() == [True, False, True]


class TestVolumes:
    def test_box_volume(self):
        lo = np.array([[0.0, 0.0, 0.0]])
        hi = np.array([[2.0, 3.0, 4.0]])
        assert mbr.box_volume(lo, hi)[0] == pytest.approx(24.0)

    def test_width_volume_roundtrip(self):
        for volume in (10.0, 15.0, 20.0, 30.0):
            width = mbr.width_from_volume(volume)
            assert mbr.volume_from_width(width) == pytest.approx(volume)

    def test_width_from_volume_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            mbr.width_from_volume(0.0)

    def test_intersection_volume_positive_overlap(self):
        vol = mbr.intersection_volume([0, 0, 0], [2, 2, 2], [1, 1, 1], [3, 3, 3])
        assert vol == pytest.approx(1.0)

    def test_intersection_volume_zero_when_disjoint(self):
        vol = mbr.intersection_volume([0, 0, 0], [1, 1, 1], [5, 5, 5], [6, 6, 6])
        assert vol == 0.0

    def test_union_bounds(self):
        lo = np.array([[0.0, 1.0, 2.0], [-1.0, 5.0, 0.0]])
        hi = np.array([[1.0, 2.0, 3.0], [0.0, 6.0, 9.0]])
        u_lo, u_hi = mbr.union_bounds(lo, hi)
        assert u_lo.tolist() == [-1.0, 1.0, 0.0]
        assert u_hi.tolist() == [1.0, 6.0, 9.0]

    def test_union_bounds_empty_raises(self):
        with pytest.raises(ValueError):
            mbr.union_bounds(np.empty((0, 3)), np.empty((0, 3)))


class TestEnlarge:
    def test_enlarge_grows_each_side(self):
        lo, hi = mbr.enlarge_boxes(np.zeros((1, 3)), np.ones((1, 3)), 0.5)
        assert np.allclose(lo, -0.5)
        assert np.allclose(hi, 1.5)

    def test_enlarge_zero_is_identity(self):
        orig_lo = np.zeros((1, 3))
        orig_hi = np.ones((1, 3))
        lo, hi = mbr.enlarge_boxes(orig_lo, orig_hi, 0.0)
        assert np.array_equal(lo, orig_lo)
        assert np.array_equal(hi, orig_hi)

    def test_enlarge_negative_raises(self):
        with pytest.raises(ValueError):
            mbr.enlarge_boxes(np.zeros((1, 3)), np.ones((1, 3)), -1.0)

    def test_distance_join_reduction(self):
        # Two unit boxes 1 apart: within distance 1.5, not within 0.5.
        lo_a = np.array([[0.0, 0.0, 0.0]])
        hi_a = np.array([[1.0, 1.0, 1.0]])
        lo_b = np.array([[2.0, 0.0, 0.0]])
        hi_b = np.array([[3.0, 1.0, 1.0]])
        for d, expected in ((1.5, True), (0.5, False)):
            e_lo, e_hi = mbr.enlarge_boxes(lo_a, hi_a, d)
            assert mbr.overlap_single(e_lo[0], e_hi[0], lo_b[0], hi_b[0]) is expected
