"""Cell-pair join primitive with the paper's enclosure shortcut.

Both the P-Grid external join and the T-Grid cell-pair join use the same
"optimized variant of the plane-sweep approach" (Section 4.2.1): before
sweeping two cells' object lists, objects of cell A whose MBR encloses
the entire extent of cell B are paired with *all* of B's objects without
any overlap test — the cell extent encloses the centers of B's objects,
and an MBR that contains another object's center is guaranteed to
overlap it with positive volume.

Instead of the nominal cell MBR we use the tight bounding box of the
member objects' *centers* (computed during assignment).  It is contained
in the nominal cell box, so every shortcut the paper's check would take
is also taken here (plus some extra), and the overlap guarantee is
immune to objects that sit exactly on a cell boundary after floating-
point assignment.
"""

from __future__ import annotations

import numpy as np

from typing import TYPE_CHECKING

from repro.geometry import encloses, sweep_between, window_pairs

if TYPE_CHECKING:
    from repro.geometry import PairAccumulator

__all__ = ["join_sorted_lists", "join_cell_pairs_batched", "emit_hot_cells_batched"]


def _bisect_runs(
    values: np.ndarray, targets: np.ndarray, lo: np.ndarray, hi: np.ndarray, strict: bool
) -> np.ndarray:
    """Vectorised binary search inside per-row ranges of ``values``.

    For each row ``k`` finds, within ``values[lo[k]:hi[k]]`` (each run
    individually sorted ascending), the first index whose value is
    ``> targets[k]`` (``strict=True``) or ``>= targets[k]``
    (``strict=False``).  This is the batched equivalent of the forward
    plane sweep's window location: thousands of tiny ``searchsorted``
    calls collapsed into ~log2(run length) vectorised passes.
    """
    lo = lo.copy()
    hi = hi.copy()
    if lo.size == 0:
        return lo
    span = int((hi - lo).max())
    guard = values.shape[0] - 1
    for _ in range(max(span, 1).bit_length()):
        active = lo < hi  # repro-lint: ignore[RPL201] binary-search index ranges, not box bounds
        if not active.any():
            break
        mid = (lo + hi) >> 1
        v = values[np.minimum(mid, guard)]
        go_right = (v <= targets) if strict else (v < targets)
        go_right &= active
        stay = active & ~go_right
        lo[go_right] = mid[go_right] + 1
        hi[stay] = mid[stay]
    return lo


def join_sorted_lists(
    lo: np.ndarray,
    hi: np.ndarray,
    a_idx: np.ndarray,
    b_idx: np.ndarray,
    b_center_lo: np.ndarray,
    b_center_hi: np.ndarray,
    accumulator: PairAccumulator,
) -> tuple[int, int]:
    """Join two disjoint, x-sorted object lists (cell A against cell B).

    Parameters
    ----------
    lo, hi:
        Global box arrays for the whole dataset.
    a_idx, b_idx:
        Dataset indices of the two cells' objects, each sorted ascending
        by lower x bound.
    b_center_lo, b_center_hi:
        Tight bounds of cell B's member centers (the enclosure-shortcut
        target).
    accumulator:
        Pair accumulator receiving the results.

    Returns
    -------
    tuple
        ``(tests, shortcut_pairs)`` — the number of pairwise overlap
        tests performed and the number of result pairs emitted without a
        test via the enclosure shortcut.
    """
    if a_idx.size == 0 or b_idx.size == 0:
        return 0, 0

    lo_a = lo[a_idx]
    hi_a = hi[a_idx]
    shortcut_pairs = 0
    # Objects of A that enclose all of B's centers overlap every object
    # of B; emit those pairs combinatorially.
    enclosing = encloses(lo_a, hi_a, b_center_lo, b_center_hi)
    if enclosing.any():
        enclosing_ids = a_idx[enclosing]
        accumulator.extend(
            np.repeat(enclosing_ids, b_idx.size),
            np.tile(b_idx, enclosing_ids.size),
        )
        shortcut_pairs = int(enclosing_ids.size) * int(b_idx.size)
        a_idx = a_idx[~enclosing]
        if a_idx.size == 0:
            return 0, shortcut_pairs
        lo_a = lo_a[~enclosing]
        hi_a = hi_a[~enclosing]

    a_ids, b_ids, tests = sweep_between(lo_a, hi_a, a_idx, lo[b_idx], hi[b_idx], b_idx)
    accumulator.extend(a_ids, b_ids)
    return tests, shortcut_pairs


def join_cell_pairs_batched(
    lo: np.ndarray,
    hi: np.ndarray,
    cat: np.ndarray,
    starts: np.ndarray,
    stops: np.ndarray,
    center_lo: np.ndarray,
    center_hi: np.ndarray,
    pair_a: np.ndarray,
    pair_b: np.ndarray,
    accumulator: PairAccumulator,
    chunk_candidates: int = 2_000_000,
    enclosure_shortcut: bool = True,
    n_workers: int = 1,
) -> tuple[int, int]:
    """External join over *many* cell pairs in vectorised batches.

    Semantically identical to calling :func:`join_sorted_lists` for each
    ``(pair_a[k], pair_b[k])`` cell pair, but with all candidate object
    pairs of a batch generated and tested at once — P-Grid cells hold few
    objects each, so per-pair numpy calls would drown in call overhead.

    The overlap-test count reproduces the plane sweep's accounting: a
    candidate pair is charged one test when its x-intervals overlap (the
    pairs the forward sweep would actually visit); x-disjoint candidates
    are pruned for free by the sort in the sequential formulation and are
    therefore not charged here either.  The enclosure shortcut is applied
    first exactly as in the sequential version.

    Parameters
    ----------
    lo, hi:
        Global box arrays.
    cat, starts, stops:
        Grouped object indices and per-cell ranges (``PGrid.cat`` etc.).
    center_lo, center_hi:
        Per-cell tight center bounds, aligned with ``starts``.
    pair_a, pair_b:
        Cell-slot index arrays naming the cell pairs to join.
    accumulator:
        Pair accumulator receiving the results.
    chunk_candidates:
        Upper bound on candidate object pairs materialised per batch.
    enclosure_shortcut:
        Disable to force every candidate through the sweep test (the
        ablation benchmark's knob).
    n_workers:
        Process the candidate chunks with this many threads.  Cell pairs
        are independent (the paper: "the separation of the grid cells is
        exploited to use multiple threads") and numpy releases the GIL in
        the bulk operations, so the chunks parallelise; each thread fills
        a private accumulator that is merged at the end.

    Returns
    -------
    tuple
        ``(tests, shortcut_pairs)`` summed over all cell pairs.
    """
    pair_a = np.asarray(pair_a, dtype=np.int64)
    pair_b = np.asarray(pair_b, dtype=np.int64)
    if pair_a.size == 0:
        return 0, 0
    sizes = stops - starts
    size_a = sizes[pair_a]
    size_b = sizes[pair_b]
    counts = size_a * size_b

    # Per-column contiguous copies in grouped order: candidate tests then
    # gather 1-D columns by position, and object ids are materialised only
    # for the surviving pairs.
    ordered_lo = lo[cat]
    ordered_hi = hi[cat]
    xlo = np.ascontiguousarray(ordered_lo[:, 0])
    xhi = np.ascontiguousarray(ordered_hi[:, 0])
    ylo = np.ascontiguousarray(ordered_lo[:, 1])
    yhi = np.ascontiguousarray(ordered_hi[:, 1])
    zlo = np.ascontiguousarray(ordered_lo[:, 2])
    zhi = np.ascontiguousarray(ordered_hi[:, 2])

    # Split the pair list into chunks bounded by candidate volume.  With
    # multiple workers, shrink the chunks so every thread gets work.
    cum = np.cumsum(counts)
    total_all = int(cum[-1])
    if n_workers > 1:
        chunk_candidates = min(
            chunk_candidates, max(total_all // (2 * n_workers) + 1, 50_000)
        )
    if total_all <= chunk_candidates:
        chunk_edges = np.asarray([0, counts.size], dtype=np.int64)
    else:
        targets = np.arange(chunk_candidates, total_all, chunk_candidates, dtype=np.int64)
        inner = np.searchsorted(cum, targets, side="left") + 1
        chunk_edges = np.unique(np.concatenate([[0], inner, [counts.size]]))

    def process_chunk(e, chunk_accumulator):
        """Join the cell pairs of chunk ``e``; returns (tests, shortcuts)."""
        tests = 0
        shortcut_pairs = 0
        sel = slice(chunk_edges[e], chunk_edges[e + 1])
        c_counts = counts[sel]
        total = int(c_counts.sum())
        if total == 0:
            return 0, 0
        c_pair_a = pair_a[sel]
        c_pair_b = pair_b[sel]

        def emit_candidates(left_pos, right_pos):
            """Evaluate y/z on x-overlapping candidates and emit."""
            yz = np.logical_and(
                np.logical_and(
                    ylo[left_pos] < yhi[right_pos], ylo[right_pos] < yhi[left_pos]  # repro-lint: ignore[RPL201] y refinement of x-sweep candidates already charged via tests
                ),
                np.logical_and(
                    zlo[left_pos] < zhi[right_pos], zlo[right_pos] < zhi[left_pos]  # repro-lint: ignore[RPL201] z refinement of x-sweep candidates already charged via tests
                ),
            )
            chunk_accumulator.extend(cat[left_pos[yz]], cat[right_pos[yz]])

        # ---- Direction 1: scan from A over B (xlo_b in [a.xlo, a.xhi)).
        # Rows are (cell pair, A-member); the sweep windows inside each
        # B run are located by batched binary search, so x-disjoint
        # candidates are never materialised — as in the pointer-walking
        # sweep the accounting models.
        row_of_a, a_positions = window_pairs(starts[c_pair_a], stops[c_pair_a])
        b_start_rows = starts[c_pair_b][row_of_a]
        b_stop_rows = stops[c_pair_b][row_of_a]
        a_xlo = xlo[a_positions]
        a_xhi = xhi[a_positions]

        full_flags = None
        if enclosure_shortcut:
            # The enclosure predicate depends only on (A-object, B-cell):
            # evaluate per row and emit those rows against all of B.
            bc_lo = center_lo[c_pair_b[row_of_a]]
            bc_hi = center_hi[c_pair_b[row_of_a]]
            flags = encloses(ordered_lo[a_positions], ordered_hi[a_positions], bc_lo, bc_hi)
            if flags.any():
                full_flags = flags  # original (pair, A-member) enumeration
                er = np.flatnonzero(flags)
                rr, b_pos_full = window_pairs(b_start_rows[er], b_stop_rows[er])
                chunk_accumulator.extend(cat[a_positions[er][rr]], cat[b_pos_full])
                shortcut_pairs += int(rr.size)
                keep_rows = ~flags
                a_positions = a_positions[keep_rows]
                b_start_rows = b_start_rows[keep_rows]
                b_stop_rows = b_stop_rows[keep_rows]
                a_xlo = a_xlo[keep_rows]
                a_xhi = a_xhi[keep_rows]

        left_edge = _bisect_runs(xlo, a_xlo, b_start_rows, b_stop_rows, strict=False)
        right_edge = _bisect_runs(xlo, a_xhi, left_edge, b_stop_rows, strict=False)
        r1, right_pos = window_pairs(left_edge, right_edge)
        tests += int(r1.size)
        if r1.size:
            emit_candidates(a_positions[r1], right_pos)

        # ---- Direction 2: scan from B over A (xlo_a in (b.xlo, b.xhi);
        # ties on xlo break toward direction 1, so no pair repeats).
        row_of_b, b_positions = window_pairs(starts[c_pair_b], stops[c_pair_b])
        a_start_rows = starts[c_pair_a][row_of_b]
        a_stop_rows = stops[c_pair_a][row_of_b]
        left_edge = _bisect_runs(
            xlo, xlo[b_positions], a_start_rows, a_stop_rows, strict=True
        )
        right_edge = _bisect_runs(
            xlo, xhi[b_positions], left_edge, a_stop_rows, strict=False
        )
        r2, a_pos2 = window_pairs(left_edge, right_edge)
        if r2.size and full_flags is not None:
            # Pairs whose A-object was already emitted via the enclosure
            # shortcut must not be rediscovered from the B side: map each
            # candidate's A position back to its (pair, A-member) flag in
            # the original (pre-filter) row enumeration.
            pair_idx = row_of_b[r2]
            a_offset = a_pos2 - starts[c_pair_a][pair_idx]
            sizes_a_sel = size_a[sel]
            block_starts = np.cumsum(sizes_a_sel) - sizes_a_sel
            keep = ~full_flags[block_starts[pair_idx] + a_offset]
            r2 = r2[keep]
            a_pos2 = a_pos2[keep]
        tests += int(r2.size)
        if r2.size:
            emit_candidates(a_pos2, b_positions[r2])
        return tests, shortcut_pairs

    n_chunks = len(chunk_edges) - 1
    if n_workers <= 1 or n_chunks < 2:
        total_tests = 0
        total_shortcuts = 0
        for e in range(n_chunks):
            chunk_tests, chunk_shortcuts = process_chunk(e, accumulator)
            total_tests += chunk_tests
            total_shortcuts += chunk_shortcuts
        return total_tests, total_shortcuts

    # Parallel: one private accumulator per chunk, merged in order.
    from concurrent.futures import ThreadPoolExecutor

    from repro.geometry import PairAccumulator

    chunk_accumulators = [
        PairAccumulator(count_only=accumulator.count_only) for _ in range(n_chunks)
    ]
    total_tests = 0
    total_shortcuts = 0
    with ThreadPoolExecutor(max_workers=n_workers) as pool:
        futures = [
            pool.submit(process_chunk, e, chunk_accumulators[e])
            for e in range(n_chunks)
        ]
        for e, future in enumerate(futures):
            chunk_tests, chunk_shortcuts = future.result()
            total_tests += chunk_tests
            total_shortcuts += chunk_shortcuts
            accumulator.merge(chunk_accumulators[e])
    return total_tests, total_shortcuts


def emit_hot_cells_batched(
    cat: np.ndarray,
    starts: np.ndarray,
    stops: np.ndarray,
    hot_slots: np.ndarray,
    accumulator: PairAccumulator,
) -> int:
    """Emit all within-cell combinations for many hot-spot cells at once.

    Vectorised equivalent of running ``all_combinations`` per hot cell:
    for every member position the "window" is the rest of its cell, so
    one :func:`window_pairs` expansion enumerates every unordered pair of
    every hot cell.  Returns the number of pairs emitted (all without
    overlap tests — the hot-spot guarantee).
    """
    hot_slots = np.asarray(hot_slots, dtype=np.int64)
    if hot_slots.size == 0:
        return 0
    h_starts = starts[hot_slots]
    h_stops = stops[hot_slots]
    sizes = h_stops - h_starts
    # Enumerate member positions of all hot cells...
    _cell_row, positions = window_pairs(h_starts, h_stops)
    # ...and pair each position with the remainder of its own cell.
    pos_stops = np.repeat(h_stops, sizes)
    left_row, right_pos = window_pairs(positions + 1, pos_stops)
    if left_row.size == 0:
        return 0
    accumulator.extend(cat[positions[left_row]], cat[right_pos])
    return int(left_row.size)
