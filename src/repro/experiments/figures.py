"""Per-figure experiment drivers: regenerate every figure of the paper.

Each ``figN`` function runs the corresponding experiment at a chosen
scale preset, prints the same series the paper plots, and returns the
structured results.  Results never aim to match the paper's absolute
wall-clock numbers (C++ at 10 M objects vs numpy-Python at 10 k–50 k);
the *shape* — who wins, by what factor, where trends bend — is the
reproduction target recorded in EXPERIMENTS.md.

Experiment index
----------------
======= ==========================================================
fig2    join time vs object volume, 8 static join methods (§3.3)
fig6    THERMAL-JOIN time vs P-Grid resolution r, 4 widths (§4.3.2)
fig7    full neural simulation: results/time/tests/memory per step
fig8    neural scalability vs dataset size and object extent
fig9    synthetic sensitivity sweeps (a–f)
fig10   THERMAL-JOIN phase breakdown and footprint vs r (§6.1)
speedups  headline speedup table (abstract's "8 to 12x")
tuning    hill-climbing convergence and drift re-tuning (§4.3.2)
ablations extension: design-choice ablations called out in DESIGN.md
======= ==========================================================
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.core import ThermalJoin
from repro.experiments.plots import render_chart
from repro.experiments.report import render_series_table, render_speedups, render_table
from repro.experiments.workloads import (
    SCALES,
    scaled_clustered,
    scaled_neural,
    scaled_uniform,
)
from repro.joins import (
    CRTreeJoin,
    EGOJoin,
    IndexedNestedLoopRTreeJoin,
    LooseOctreeJoin,
    MXCIFOctreeJoin,
    NestedLoopJoin,
    PBSMJoin,
    PlaneSweepJoin,
    ST2BJoin,
    SynchronousRTreeJoin,
    TouchJoin,
)
from repro.simulation import SimulationRunner, speedup_table

if TYPE_CHECKING:
    from collections.abc import Callable, Mapping, Sequence

    from repro.datasets import SpatialDataset
    from repro.datasets.motion import MotionModel
    from repro.engine import Executor

__all__ = [
    "ALGORITHM_FACTORIES",
    "FIG2_ALGORITHMS",
    "FIG7_ALGORITHMS",
    "FIG9_ALGORITHMS",
    "fig2",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "speedups",
    "tuning",
    "ablations",
]

#: name -> factory(count_only, executor) for every join algorithm in the
#: evaluation.  ``executor`` selects the engine's verify-stage executor
#: (None honours the ``REPRO_EXECUTOR`` environment default).
ALGORITHM_FACTORIES = {
    "nested-loop": lambda count_only=True, executor=None: NestedLoopJoin(
        count_only=count_only, executor=executor
    ),
    "plane-sweep": lambda count_only=True, executor=None: PlaneSweepJoin(
        count_only=count_only, executor=executor
    ),
    "pbsm": lambda count_only=True, executor=None: PBSMJoin(
        count_only=count_only, executor=executor
    ),
    "mxcif-octree": lambda count_only=True, executor=None: MXCIFOctreeJoin(
        count_only=count_only, executor=executor
    ),
    "loose-octree": lambda count_only=True, executor=None: LooseOctreeJoin(
        count_only=count_only, executor=executor
    ),
    "ego": lambda count_only=True, executor=None: EGOJoin(
        count_only=count_only, executor=executor
    ),
    "touch": lambda count_only=True, executor=None: TouchJoin(
        count_only=count_only, executor=executor
    ),
    "rtree-sync": lambda count_only=True, executor=None: SynchronousRTreeJoin(
        count_only=count_only, executor=executor
    ),
    "inl-rtree": lambda count_only=True, executor=None: IndexedNestedLoopRTreeJoin(
        count_only=count_only, executor=executor
    ),
    "st2b": lambda count_only=True, executor=None: ST2BJoin(
        count_only=count_only, executor=executor
    ),
    "cr-tree": lambda count_only=True, executor=None: CRTreeJoin(
        count_only=count_only, executor=executor
    ),
    # The tuner consumes the deterministic operation-count cost signal:
    # wall-time noise on a shared machine would otherwise trip the 10%
    # drift trigger spuriously (the paper tunes on wall time on a quiet
    # dedicated box; the protocol is identical either way).
    "thermal-join": lambda count_only=True, executor=None: ThermalJoin(
        count_only=count_only, cost_model="operations", executor=executor
    ),
}

#: The eight existing methods of the motivation experiment (Figure 2).
FIG2_ALGORITHMS = [
    "cr-tree",
    "loose-octree",
    "ego",
    "touch",
    "pbsm",
    "mxcif-octree",
    "plane-sweep",
    "nested-loop",
]
#: Competitors of the full-simulation comparison (Figure 7).
FIG7_ALGORITHMS = ["ego", "touch", "cr-tree", "loose-octree", "thermal-join"]
#: Competitors of the synthetic sensitivity analysis (Figure 9).
FIG9_ALGORITHMS = ["loose-octree", "touch", "cr-tree", "thermal-join"]


def _simulate_matrix(
    workload_factory: Callable[[], tuple[SpatialDataset, MotionModel | None]],
    algorithms: Sequence[str],
    n_steps: int,
    time_budget: float | None,
    executor: Executor | str | None = None,
) -> dict[str, SimulationRunner]:
    """Run several algorithms over identical workload replays.

    ``workload_factory(seed_offset)`` must build a *fresh* (dataset,
    motion) pair so every algorithm sees the same motion sequence.
    ``executor`` is threaded into every algorithm factory, so one flag
    sweeps the whole comparison between serial and parallel execution.
    Returns ``{name: runner}``; runners that exhausted the budget carry
    ``timed_out=True`` and partial records, and runners whose step
    failed past executor recovery carry ``failed_step``/``failure``
    (both surfaced by :func:`_robustness_notes`).
    """
    runners = {}
    for name in algorithms:
        dataset, motion = workload_factory()
        runner = SimulationRunner(
            dataset,
            motion,
            ALGORITHM_FACTORIES[name](executor=executor),
            time_budget=time_budget,
        )
        runner.run(n_steps)
        runners[name] = runner
    return runners


def _total_or_none(runner: SimulationRunner) -> float | None:
    """Total join time, or None when the run timed out or failed (DNF)."""
    if runner.timed_out or runner.failed_step is not None:
        return None
    return runner.total_join_seconds()


def _robustness_notes(runners: Mapping[str, SimulationRunner]) -> list[str]:
    """Per-runner recovery/failure summary lines; empty when all clean.

    Degraded or retried steps still produce serial-identical results
    (the engine guarantees it), but a figure measured on a downgraded
    backend is not measuring the requested backend — so say so.
    """
    lines = []
    for name, runner in runners.items():
        if runner.failed_step is not None:
            line = (
                f"{name}: FAILED at step {runner.failed_step} "
                f"({runner.failure!r}); partial records"
            )
            if runner.failure_traceback:
                line += "\n" + runner.failure_traceback.rstrip()
            lines.append(line)
            continue
        retries = runner.total_task_retries()
        degraded = runner.degraded_steps()
        if retries or degraded:
            lines.append(
                f"{name}: {retries} task retries, "
                f"{len(degraded)} degraded steps {degraded}"
            )
    return lines


def _with_robustness(table: str, runners: Mapping[str, SimulationRunner]) -> str:
    """Append recovery notes to a rendered table when any occurred."""
    notes = _robustness_notes(runners)
    if notes:
        table += "\n\nRobustness: " + "; ".join(notes)
    return table


# ----------------------------------------------------------------------
# Figure 2 — motivation: join selectivity vs static join time
# ----------------------------------------------------------------------
def fig2(
    scale: str = "default",
    time_budget: float = 60.0,
    quiet: bool = False,
    executor: Executor | str | None = None,
) -> dict[str, Any]:
    """Self-join time of 8 existing methods vs object volume (Figure 2).

    One static time step over the neural dataset; the object volume
    sweeps 10–30 unit^3 as in the paper.
    """
    preset = SCALES[scale]
    volumes = [10.0, 15.0, 20.0, 25.0, 30.0]
    series = {name: [] for name in FIG2_ALGORITHMS}
    for volume in volumes:
        dataset, _motion, _labels = scaled_neural(
            preset["neural_n"], object_volume=volume, seed=2
        )
        for name in FIG2_ALGORITHMS:
            runner = SimulationRunner(
                dataset,
                None,
                ALGORITHM_FACTORIES[name](executor=executor),
                time_budget=time_budget,
            )
            runner.run(1)
            series[name].append(_total_or_none(runner))
    table = render_series_table(
        "volume", volumes, series,
        title=f"Figure 2 — static self-join time [s] vs object volume (n={preset['neural_n']})",
    )
    if not quiet:
        print(table)
    return {"x": volumes, "series": series, "table": table}


# ----------------------------------------------------------------------
# Figure 6 — convexity of F_t(r)
# ----------------------------------------------------------------------
def fig6(
    scale: str = "default", quiet: bool = False, executor: Executor | str | None = None
) -> dict[str, Any]:
    """THERMAL-JOIN join time vs P-Grid resolution r (Figure 6).

    Four uniform datasets with object widths 10/15/20/25; a static join
    at each fixed resolution exposes the convex cost function the hill
    climber descends.
    """
    preset = SCALES[scale]
    # 0.2 .. 1.2 (an r of 0.1 means ~1000 cells per largest object volume;
    # it is off the charts for every width, exactly as in the paper's plot).
    resolutions = [round(0.1 * k, 1) for k in range(2, 13)]
    widths = [10.0, 15.0, 20.0, 25.0]
    series = {}
    for width in widths:
        dataset, _motion = scaled_uniform(preset["uniform_n"], width=width, seed=3)
        label = f"width {width:g}"
        series[label] = []
        for r in resolutions:
            join = ThermalJoin(resolution=r, count_only=True, executor=executor)
            result = join.step(dataset)
            series[label].append(result.stats.total_seconds)
    table = render_series_table(
        "r", resolutions, series,
        title=f"Figure 6 — F_t(r): join time [s] vs resolution (n={preset['uniform_n']})",
    )
    chart = render_chart(
        resolutions, series, title="F_t(r) (chart)", y_label="join time [s]"
    )
    table = table + "\n\n" + chart
    if not quiet:
        print(table)
    return {"x": resolutions, "series": series, "table": table}


# ----------------------------------------------------------------------
# Figure 7 — full neural simulation
# ----------------------------------------------------------------------
def fig7(
    scale: str = "default",
    time_budget: float = 600.0,
    quiet: bool = False,
    executor: Executor | str | None = None,
) -> dict[str, Any]:
    """Full neural simulation over many steps (Figure 7a–d).

    Records per-step join results, join time, overlap tests and memory
    footprint for EGO, TOUCH, CR-Tree, Loose Octree and THERMAL-JOIN.
    """
    preset = SCALES[scale]
    n_steps = preset["fig7_steps"]

    def workload():
        dataset, motion, _labels = scaled_neural(preset["neural_n"], seed=7)
        return dataset, motion

    runners = _simulate_matrix(workload, FIG7_ALGORITHMS, n_steps, time_budget,
                               executor=executor)
    steps = list(range(n_steps))
    panels = {}
    for field, label in [
        ("n_results", "a) join results"),
        ("total_seconds", "b) join time [s]"),
        ("overlap_tests", "c) overlap tests"),
        ("memory_bytes", "d) memory [bytes]"),
    ]:
        panels[label] = {
            name: [getattr(rec, field) for rec in runner.records]
            for name, runner in runners.items()
        }
    tables = [
        render_series_table("step", steps, panel, title=f"Figure 7 {label} "
                            f"(neural, n={preset['neural_n']}, {n_steps} steps)")
        for label, panel in panels.items()
    ]
    tables.append(
        render_chart(
            steps,
            panels["b) join time [s]"],
            title="Figure 7b (chart)",
            y_label="join time per step [s]",
        )
    )
    table = _with_robustness("\n\n".join(tables), runners)
    if not quiet:
        print(table)
    totals = {name: _total_or_none(runner) for name, runner in runners.items()}
    # Per-step metrics-registry snapshots (tuner resolution, P-Grid cell
    # accounting, ...): the observability series external plots line up
    # against the cost panels; export.jsonable keeps them as-is.
    index_counters = {
        name: [rec.index_counters for rec in runner.records]
        for name, runner in runners.items()
    }
    return {"x": steps, "panels": panels, "totals": totals, "table": table,
            "index_counters": index_counters, "runners": runners}


# ----------------------------------------------------------------------
# Figure 8 — neural scalability
# ----------------------------------------------------------------------
def fig8(
    scale: str = "default",
    time_budget: float = 300.0,
    quiet: bool = False,
    executor: Executor | str | None = None,
) -> dict[str, Any]:
    """Neural scalability: join time vs dataset size and object extent
    (Figure 8a/b), short simulations as in the paper (10 steps there).

    Panel (a) grows the object count *inside a fixed tissue volume* —
    the paper adds neurons to the same space, raising density and
    selectivity together.  Panel (b) fixes the count and grows the
    object extent.
    """
    preset = SCALES[scale]
    n_steps = preset["fig8_steps"]
    sizes = list(preset["fig8_sizes"])
    # The tissue volume is fixed at the generator's default for the
    # *largest* dataset, so density (selectivity) grows with n toward the
    # calibrated neural regime exactly as the paper's panel (a)
    # prescribes (the paper adds neurons to the same space).
    fixed_side = max(20.0, 1.1 * max(sizes) ** (1.0 / 3.0))

    panel_a = {name: [] for name in FIG7_ALGORITHMS}
    for n in sizes:
        def workload(n=n):
            dataset, motion, _labels = scaled_neural(
                n, seed=8, domain_side=fixed_side
            )
            return dataset, motion

        runners = _simulate_matrix(workload, FIG7_ALGORITHMS, n_steps, time_budget,
                                   executor=executor)
        for name, runner in runners.items():
            panel_a[name].append(_total_or_none(runner))

    volumes = [10.0, 15.0, 20.0, 25.0]
    panel_b = {name: [] for name in FIG7_ALGORITHMS}
    for volume in volumes:
        def workload(volume=volume):
            dataset, motion, _labels = scaled_neural(
                preset["neural_n"], object_volume=volume, seed=9
            )
            return dataset, motion

        runners = _simulate_matrix(workload, FIG7_ALGORITHMS, n_steps, time_budget,
                                   executor=executor)
        for name, runner in runners.items():
            panel_b[name].append(_total_or_none(runner))

    table_a = render_series_table(
        "n", sizes, panel_a,
        title=f"Figure 8a — total join time [s] vs dataset size ({n_steps} steps, fixed volume)",
    )
    table_b = render_series_table(
        "volume", volumes, panel_b,
        title=f"Figure 8b — total join time [s] vs object extent (n={preset['neural_n']}, {n_steps} steps)",
    )
    chart_a = render_chart(
        sizes, panel_a, title="Figure 8a (chart)", y_label="total join time [s]"
    )
    table = table_a + "\n\n" + table_b + "\n\n" + chart_a
    if not quiet:
        print(table)
    return {
        "sizes": sizes,
        "volumes": volumes,
        "panel_a": panel_a,
        "panel_b": panel_b,
        "table": table,
    }


# ----------------------------------------------------------------------
# Figure 9 — synthetic sensitivity analysis
# ----------------------------------------------------------------------
def fig9(
    scale: str = "default",
    time_budget: float = 300.0,
    quiet: bool = False,
    executor: Executor | str | None = None,
) -> dict[str, Any]:
    """Synthetic sensitivity sweeps (Figure 9a–f).

    (a) dataset size, (b) object size, (c) object-width variation,
    (d) translation distance, (e) distribution skew, (f) cluster count.
    """
    preset = SCALES[scale]
    n_steps = preset["fig9_steps"]
    n_default = preset["uniform_n"]
    results = {}

    def run_panel(x_values, workload_for, label, x_label):
        panel = {name: [] for name in FIG9_ALGORITHMS}
        for x in x_values:
            runners = _simulate_matrix(
                lambda x=x: workload_for(x), FIG9_ALGORITHMS, n_steps, time_budget,
                executor=executor,
            )
            for name, runner in runners.items():
                panel[name].append(_total_or_none(runner))
        table = render_series_table(x_label, x_values, panel, title=label)
        results[label] = {"x": x_values, "series": panel, "table": table}
        return table

    tables = []
    tables.append(run_panel(
        list(preset["fig9_sizes"]),
        lambda n: scaled_uniform(n, seed=11),
        f"Figure 9a — total join time [s] vs dataset size ({n_steps} steps)",
        "n",
    ))
    tables.append(run_panel(
        [5.0, 10.0, 15.0, 20.0, 25.0],
        lambda w: scaled_uniform(n_default, width=w, seed=12),
        f"Figure 9b — vs object size (n={n_default})",
        "width",
    ))
    tables.append(run_panel(
        [0, 4, 8, 12, 16],
        lambda d: scaled_uniform(
            n_default,
            width_range=(15.0 - d / 2.0, 15.0 + d / 2.0) if d else None,
            width=15.0,
            seed=13,
        ),
        f"Figure 9c — vs object width difference (n={n_default})",
        "width diff",
    ))
    tables.append(run_panel(
        [5.0, 15.0, 25.0, 35.0, 45.0],
        lambda t: scaled_uniform(n_default, translation=t, seed=14),
        f"Figure 9d — vs translation per step (n={n_default})",
        "translation",
    ))
    n_clustered = preset["clustered_n"]
    tables.append(run_panel(
        [0.5, 0.75, 1.0, 1.25, 1.5],
        lambda sd: scaled_clustered(n_clustered, sd_factor=sd, seed=15)[:2],
        f"Figure 9e — vs distribution skew (n={n_clustered})",
        "sd factor",
    ))
    tables.append(run_panel(
        [1, 2, 3, 4, 5],
        lambda c: scaled_clustered(n_clustered, n_clusters=c, seed=16)[:2],
        f"Figure 9f — vs cluster count (n={n_clustered})",
        "clusters",
    ))
    table = "\n\n".join(tables)
    if not quiet:
        print(table)
    results["table"] = table
    return results


# ----------------------------------------------------------------------
# Figure 10 — THERMAL-JOIN internals
# ----------------------------------------------------------------------
def fig10(
    scale: str = "default", quiet: bool = False, executor: Executor | str | None = None
) -> dict[str, Any]:
    """Phase breakdown and footprint vs P-Grid resolution (Figure 10a/b)."""
    preset = SCALES[scale]
    dataset, _motion, _labels = scaled_neural(preset["neural_n"], seed=17)
    resolutions = [0.5, 0.75, 1.0, 1.25, 1.5, 1.75, 2.0]
    breakdown = {"building": [], "internal": [], "external": []}
    footprint = []
    for r in resolutions:
        join = ThermalJoin(resolution=r, count_only=True, executor=executor)
        result = join.step(dataset)
        phases = result.stats.phase_seconds
        for phase in breakdown:
            breakdown[phase].append(phases.get(phase, 0.0))
        footprint.append(result.stats.memory_bytes)
    table_a = render_series_table(
        "r", resolutions, breakdown,
        title=f"Figure 10a — phase time [s] vs resolution (neural, n={preset['neural_n']})",
    )
    table_b = render_series_table(
        "r", resolutions, {"memory [bytes]": footprint},
        title="Figure 10b — P-Grid footprint vs resolution",
    )
    table = table_a + "\n\n" + table_b
    if not quiet:
        print(table)
    return {
        "x": resolutions,
        "breakdown": breakdown,
        "footprint": footprint,
        "table": table,
    }


# ----------------------------------------------------------------------
# Headline speedups
# ----------------------------------------------------------------------
def speedups(
    scale: str = "default",
    time_budget: float = 600.0,
    quiet: bool = False,
    executor: Executor | str | None = None,
) -> dict[str, Any]:
    """Total-time speedup of THERMAL-JOIN over each competitor (the
    abstract's 8–12x claim, measured on the neural simulation)."""
    preset = SCALES[scale]
    n_steps = preset["fig7_steps"]

    def workload():
        dataset, motion, _labels = scaled_neural(preset["neural_n"], seed=21)
        return dataset, motion

    runners = _simulate_matrix(workload, FIG7_ALGORITHMS, n_steps, time_budget,
                               executor=executor)
    records = {
        name: runner.records
        for name, runner in runners.items()
        if not runner.timed_out and runner.failed_step is None
    }
    table_data = speedup_table(records, "thermal-join")
    table = _with_robustness(
        render_speedups(
            table_data,
            title=f"Speedup of THERMAL-JOIN (neural, n={preset['neural_n']}, {n_steps} steps)",
        ),
        runners,
    )
    if not quiet:
        print(table)
    return {"speedups": table_data, "table": table}


# ----------------------------------------------------------------------
# Tuning behaviour
# ----------------------------------------------------------------------
def tuning(
    scale: str = "default", quiet: bool = False, executor: Executor | str | None = None
) -> dict[str, Any]:
    """Hill-climbing convergence on a live workload (§4.3.2 claims)."""
    preset = SCALES[scale]
    dataset, motion, _labels = scaled_neural(preset["neural_n"], seed=23)
    join = ThermalJoin(cost_model="operations", executor=executor)
    resolutions = []
    costs = []
    for _step in range(24):
        join.step(dataset)
        resolutions.append(join.tuner.history[-1][0])
        costs.append(join.tuner.history[-1][1])
        motion.step(dataset)
    rows = [
        (k, f"{resolutions[k]:.3f}", costs[k])
        for k in range(len(resolutions))
    ]
    table = render_table(
        ["step", "r", "cost (ops)"],
        rows,
        title="Tuning — hill-climbing trace (operations cost model)",
    )
    summary = (
        f"converged={join.tuner.converged} after {join.tuner.tuning_steps} tuning "
        f"steps, retunes={join.tuner.retunes}, final r={join.current_resolution:.3f}"
    )
    table = table + "\n" + summary
    if not quiet:
        print(table)
    return {
        "resolutions": resolutions,
        "costs": costs,
        "converged": join.tuner.converged,
        "tuning_steps": join.tuner.tuning_steps,
        "retunes": join.tuner.retunes,
        "table": table,
    }


# ----------------------------------------------------------------------
# Ablations (extensions beyond the paper's figures)
# ----------------------------------------------------------------------
def ablations(
    scale: str = "default", quiet: bool = False, executor: Executor | str | None = None
) -> dict[str, Any]:
    """Design-choice ablations: hot spots, enclosure shortcut,
    incremental maintenance, GC threshold (DESIGN.md §4).

    Each mechanism is measured on the workload — and by the metric — it
    targets: hot spots and the enclosure shortcut by the overlap tests
    they remove on a dense drifting cluster; incremental maintenance by
    the index-building time and cell churn it saves; garbage collection
    by the cell population it bounds.  Results are identical across all
    variants by construction (the oracle tests enforce it).
    """
    preset = SCALES[scale]
    n_steps = max(6, SCALES[scale]["fig8_steps"])
    n = preset["clustered_n"]
    variants = {
        "full": {},
        "no hot spots": {"hot_spots": False},
        "no enclosure shortcut": {"enclosure_shortcut": False},
        "rebuild each step": {"incremental": False},
        "gc off": {"gc_threshold": 1.0},
    }
    rows = []
    for label, kwargs in variants.items():
        dataset, motion, _labels = scaled_clustered(
            n, sd_factor=0.7, translation=25.0, seed=27
        )
        join = ThermalJoin(resolution=1.0, count_only=True, executor=executor, **kwargs)
        runner = SimulationRunner(dataset, motion, join)
        runner.run(n_steps)
        rows.append(
            (
                label,
                runner.total_join_seconds(),
                sum(record.build_seconds for record in runner.records),
                runner.total_overlap_tests(),
                join.pgrid.cells_created,
                len(join.pgrid.cells),
                runner.peak_memory_bytes(),
            )
        )
    table = render_table(
        [
            "variant",
            "total [s]",
            "build [s]",
            "overlap tests",
            "cells created",
            "cells end",
            "peak mem [B]",
        ],
        rows,
        title=(
            f"Ablations (drifting cluster, n={n}, {n_steps} steps, r=1): each "
            "mechanism vs the metric it targets"
        ),
    )
    if not quiet:
        print(table)
    return {"rows": rows, "table": table}
