"""Join-result pair sets: canonical encoding, accumulation and the oracle.

The paper defines the self-join result as the set of unordered object
pairs with strictly overlapping MBRs, excluding reflexive pairs and
counting commutative pairs once (Section 3.2).  Every join algorithm in
this repository emits pairs through the utilities here so that result
semantics are identical across algorithms and trivially comparable in
tests.

Pairs are canonicalised as ``i < j`` over the objects' positional indices
in the dataset and, where a single array is convenient, packed into an
``int64`` key ``i * n + j``.
"""

from __future__ import annotations

import numpy as np

from repro.geometry import mbr

__all__ = [
    "canonicalize_pairs",
    "pack_pairs",
    "unpack_pairs",
    "unique_pairs",
    "pairs_equal",
    "PairAccumulator",
    "MaintainedPairSet",
    "brute_force_pairs",
    "all_combinations",
]


def canonicalize_pairs(i_idx: np.ndarray, j_idx: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Order each pair as ``(min, max)`` and drop reflexive entries.

    Returns two ``int64`` arrays of equal length.
    """
    i_idx = np.asarray(i_idx, dtype=np.int64)
    j_idx = np.asarray(j_idx, dtype=np.int64)
    if i_idx.shape != j_idx.shape:
        raise ValueError("pair index arrays must have the same shape")
    keep = i_idx != j_idx
    i_idx = i_idx[keep]
    j_idx = j_idx[keep]
    lo = np.minimum(i_idx, j_idx)
    hi = np.maximum(i_idx, j_idx)
    return lo, hi


def pack_pairs(i_idx: np.ndarray, j_idx: np.ndarray, n: int) -> np.ndarray:
    """Pack canonical pairs into sortable ``int64`` keys ``i * n + j``."""
    i_idx = np.asarray(i_idx, dtype=np.int64)
    j_idx = np.asarray(j_idx, dtype=np.int64)
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if i_idx.size and (int(i_idx.max()) >= n or int(j_idx.max()) >= n):
        raise ValueError("pair index out of range for the given n")
    return i_idx * np.int64(n) + j_idx


def unpack_pairs(keys: np.ndarray, n: int) -> tuple[np.ndarray, np.ndarray]:
    """Invert :func:`pack_pairs`."""
    keys = np.asarray(keys, dtype=np.int64)
    return keys // np.int64(n), keys % np.int64(n)


def unique_pairs(i_idx: np.ndarray, j_idx: np.ndarray, n: int) -> tuple[np.ndarray, np.ndarray]:
    """Canonicalise, deduplicate and sort pairs; returns ``(i, j)`` arrays."""
    lo, hi = canonicalize_pairs(i_idx, j_idx)
    keys = np.unique(pack_pairs(lo, hi, n))
    return unpack_pairs(keys, n)


def pairs_equal(pairs_a: tuple[np.ndarray, np.ndarray], pairs_b: tuple[np.ndarray, np.ndarray], n: int) -> bool:
    """Set equality of two pair collections given as ``(i, j)`` tuples."""
    keys_a = np.unique(pack_pairs(*canonicalize_pairs(*pairs_a), n))
    keys_b = np.unique(pack_pairs(*canonicalize_pairs(*pairs_b), n))
    return keys_a.shape == keys_b.shape and bool(np.array_equal(keys_a, keys_b))


class PairAccumulator:
    """Collects join-result pairs cheaply during a join.

    Join algorithms produce pairs in many small batches (one per cell
    pair, node pair, sweep window, ...).  Appending numpy arrays to a
    Python list and concatenating once at the end is far cheaper than
    repeated ``np.concatenate`` and keeps the emitting code simple.

    The accumulator canonicalises every batch on entry, so the final
    array is free of reflexive pairs and uses ``i < j`` ordering.  It
    does *not* deduplicate — algorithms that can emit duplicates (PBSM
    without reference points, for instance) must deduplicate themselves
    or call :meth:`as_unique_array`.

    A ``count_only`` accumulator records only the number of pairs, which
    the benchmark harness uses to keep large sweeps memory-friendly.
    """

    def __init__(self, count_only: bool = False) -> None:
        self._batches_i = []
        self._batches_j = []
        self._count = 0
        self.count_only = count_only

    def __len__(self) -> int:
        return self._count

    def extend(self, i_idx: np.ndarray, j_idx: np.ndarray) -> None:
        """Add a batch of pairs (any order; reflexive entries dropped)."""
        lo, hi = canonicalize_pairs(i_idx, j_idx)
        self._count += int(lo.size)
        if not self.count_only and lo.size:
            self._batches_i.append(lo)
            self._batches_j.append(hi)

    def extend_canonical(self, i_idx: np.ndarray, j_idx: np.ndarray) -> None:
        """Add a batch already known to satisfy ``i < j``.

        Skips the canonicalisation pass; used on hot paths such as the
        hot-spot all-combinations emit where ordering holds by
        construction.
        """
        i_idx = np.asarray(i_idx, dtype=np.int64)
        j_idx = np.asarray(j_idx, dtype=np.int64)
        self._count += int(i_idx.size)
        if not self.count_only and i_idx.size:
            self._batches_i.append(i_idx)
            self._batches_j.append(j_idx)

    def add_count(self, n: int) -> None:
        """Record ``n`` pairs without materialising them.

        Only valid in ``count_only`` mode; parallel executors use this to
        fold a worker's count-only shard back into the parent.
        """
        if not self.count_only:
            raise RuntimeError("add_count requires a count_only accumulator")
        self._count += int(n)

    def merge(self, other: PairAccumulator) -> None:
        """Absorb another accumulator's batches (parallel join shards).

        The other accumulator must have the same ``count_only`` mode; it
        is left empty afterwards.
        """
        if other.count_only != self.count_only:
            raise ValueError("cannot merge accumulators with different modes")
        self._count += other._count
        self._batches_i.extend(other._batches_i)
        self._batches_j.extend(other._batches_j)
        other._batches_i = []
        other._batches_j = []
        other._count = 0

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(i, j)`` arrays with all accumulated pairs (unsorted)."""
        if self.count_only:
            raise RuntimeError("accumulator was created count_only; pairs not kept")
        if not self._batches_i:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy()
        return (
            np.concatenate(self._batches_i),
            np.concatenate(self._batches_j),
        )

    def as_unique_arrays(self, n: int) -> tuple[np.ndarray, np.ndarray]:
        """Return deduplicated, sorted ``(i, j)`` arrays."""
        i_idx, j_idx = self.as_arrays()
        return unique_pairs(i_idx, j_idx, n)


class MaintainedPairSet:
    """A join result maintained across simulation steps.

    Incremental pair-set maintenance (ROADMAP item 2) keeps the previous
    step's result and patches it instead of recomputing: pairs incident
    to a moved object are dropped (:meth:`remove_incident`) and the
    freshly re-verified moved-incident pairs are merged back in
    (:meth:`merge_delta`).  Pairs are stored as sorted unique packed
    ``int64`` keys in the canonical ``i < j`` encoding of
    :func:`pack_pairs`, so set algebra is exact and the extracted arrays
    are deterministic regardless of executor or task order.

    These two operations (plus construction from a full join result) are
    the *only* sanctioned mutators — repro-lint rule RPL203 enforces
    that library code never pokes the underlying key array directly,
    which is what makes the bit-identity contract with the full re-join
    auditable.
    """

    def __init__(self, n: int, i_idx: np.ndarray, j_idx: np.ndarray) -> None:
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        self.n = int(n)
        lo, hi = canonicalize_pairs(i_idx, j_idx)
        self._keys = np.unique(pack_pairs(lo, hi, self.n))

    @classmethod
    def from_packed(cls, n: int, keys: np.ndarray) -> MaintainedPairSet:
        """Rebuild a set from :meth:`packed_keys` (checkpoint restore).

        ``keys`` must already be sorted unique canonical packed keys —
        exactly what :meth:`packed_keys` emits; anything else is
        rejected so a corrupted checkpoint cannot smuggle in an
        invariant-breaking key array.
        """
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        keys = np.asarray(keys, dtype=np.int64)
        if keys.ndim != 1:
            raise ValueError(f"packed keys must be 1-D, got shape {keys.shape}")
        if keys.size:
            if keys[0] < 0 or keys[-1] >= n * n:
                raise ValueError("packed keys out of range for the pair modulus")
            if (np.diff(keys) <= 0).any():
                raise ValueError("packed keys must be strictly increasing")
            i_idx, j_idx = unpack_pairs(keys, n)
            if (i_idx >= j_idx).any():
                raise ValueError("packed keys must encode canonical i < j pairs")
        restored = cls.__new__(cls)
        restored.n = int(n)
        restored._keys = keys.copy()
        return restored

    def __len__(self) -> int:
        return int(self._keys.size)

    def remove_incident(self, moved_mask: np.ndarray) -> int:
        """Drop every pair with at least one endpoint in ``moved_mask``.

        ``moved_mask`` is a boolean ``(n,)`` array; returns the number of
        pairs removed.  This is exact: a pair between two *settled*
        objects cannot have changed, so everything that survives is
        reusable verbatim.
        """
        moved_mask = np.asarray(moved_mask, dtype=bool)
        if moved_mask.shape != (self.n,):
            raise ValueError(
                f"moved_mask must have shape ({self.n},), got {moved_mask.shape}"
            )
        i_idx, j_idx = unpack_pairs(self._keys, self.n)
        keep = ~(moved_mask[i_idx] | moved_mask[j_idx])
        removed = int(self._keys.size - int(keep.sum()))
        self._keys = self._keys[keep]
        return removed

    def merge_delta(self, i_idx: np.ndarray, j_idx: np.ndarray) -> int:
        """Insert re-verified pairs (any order); returns the number added.

        Input pairs are canonicalised and deduplicated before the merge,
        so emitting the same pair from two verify tasks is harmless.
        """
        lo, hi = canonicalize_pairs(i_idx, j_idx)
        fresh = np.unique(pack_pairs(lo, hi, self.n))
        # Both sides are sorted, so merge by insertion position instead
        # of re-sorting the whole key set (union1d would): O(P + k log P)
        # for k fresh keys against P maintained ones.
        positions = np.searchsorted(self._keys, fresh)
        bounded = np.minimum(positions, max(self._keys.size - 1, 0))
        if self._keys.size:
            new = (positions == self._keys.size) | (self._keys[bounded] != fresh)
            fresh = fresh[new]
            positions = positions[new]
        self._keys = np.insert(self._keys, positions, fresh)
        return int(fresh.size)

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Current pair set as sorted canonical ``(i, j)`` arrays."""
        return unpack_pairs(self._keys.copy(), self.n)

    def packed_keys(self) -> np.ndarray:
        """Copy of the sorted packed keys (for set comparisons in tests)."""
        return self._keys.copy()


def brute_force_pairs(lo: np.ndarray, hi: np.ndarray, chunk_size: int = 512) -> tuple[np.ndarray, np.ndarray]:
    """Reference oracle: exact self-join by exhaustive comparison.

    Evaluates all ``n * (n - 1) / 2`` strict-overlap predicates in
    blocked, vectorised form and returns sorted canonical ``(i, j)``
    arrays.  Every join algorithm's result is validated against this
    oracle in the test suite.
    """
    lo = np.asarray(lo, dtype=np.float64)
    hi = np.asarray(hi, dtype=np.float64)
    mbr.validate_boxes(lo, hi)
    n = lo.shape[0]
    out_i = []
    out_j = []
    for start in range(0, n, chunk_size):
        stop = min(start + chunk_size, n)
        # Compare block [start:stop] against everything at index > start.
        block = mbr.overlap_matrix(lo[start:stop], hi[start:stop], lo[start:], hi[start:])
        bi, bj = np.nonzero(block)
        keep = bj > bi  # strict upper triangle within the shifted frame
        out_i.append(bi[keep] + start)
        out_j.append(bj[keep] + start)
    if not out_i:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy()
    i_idx = np.concatenate(out_i).astype(np.int64)
    j_idx = np.concatenate(out_j).astype(np.int64)
    order = np.argsort(pack_pairs(i_idx, j_idx, n), kind="stable")
    return i_idx[order], j_idx[order]


def pairs_to_adjacency(i_idx: np.ndarray, j_idx: np.ndarray, n: int) -> tuple[np.ndarray, np.ndarray]:
    """Convert a pair set into CSR-style per-object neighbour lists.

    Simulations consume the join as "the neighbours of each object" (the
    paper's gravitational-force example iterates per object); this turns
    the canonical pair arrays into that form.

    Returns
    -------
    tuple
        ``(offsets, neighbors)`` — object ``k``'s partners are
        ``neighbors[offsets[k]:offsets[k + 1]]``, sorted ascending.
        ``offsets`` has length ``n + 1``.
    """
    i_idx = np.asarray(i_idx, dtype=np.int64)
    j_idx = np.asarray(j_idx, dtype=np.int64)
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    # Each unordered pair contributes both directions.
    sources = np.concatenate([i_idx, j_idx])
    targets = np.concatenate([j_idx, i_idx])
    order = np.lexsort((targets, sources))
    sources = sources[order]
    targets = targets[order]
    counts = np.bincount(sources, minlength=n)
    offsets = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
    return offsets, targets


def all_combinations(indices: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """All unordered pairs among ``indices`` without any overlap testing.

    This is the hot-spot emit of THERMAL-JOIN (Section 4.2.2): objects in
    a hot spot are guaranteed to overlap pairwise, so the ``k (k - 1) / 2``
    result pairs are produced combinatorially.  Returns canonical
    ``(i, j)`` arrays.
    """
    indices = np.asarray(indices, dtype=np.int64)
    k = indices.size
    if k < 2:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy()
    a, b = np.triu_indices(k, k=1)
    first = indices[a]
    second = indices[b]
    return np.minimum(first, second), np.maximum(first, second)
