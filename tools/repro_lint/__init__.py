"""repro-lint: project-specific static analysis for the reproduction.

An AST-based checker enforcing the contracts that keep the parallel
join engine honest — determinism (RPL0xx), executor safety (RPL1xx),
instrumentation honesty (RPL2xx) and API contracts (RPL3xx).  Run as::

    python -m tools.repro_lint src benchmarks tests

See ``docs/static-analysis.md`` for the rule catalogue and
``tools.repro_lint.config`` for scopes and whitelists.
"""

from __future__ import annotations

from tools.repro_lint.cli import main, run_paths
from tools.repro_lint.core import RULES, Diagnostic

__version__ = "1.0.0"

__all__ = ["main", "run_paths", "Diagnostic", "RULES", "__version__"]
