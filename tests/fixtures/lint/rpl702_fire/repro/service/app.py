from .ops import refresh


async def handle() -> None:
    refresh()
