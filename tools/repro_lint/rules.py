"""The repro-lint rule catalogue.

Each rule encodes one repo contract (see ``docs/static-analysis.md`` for
the narrative catalogue):

=======  ==============================================================
RPL001   no numpy global-RNG use; ``default_rng`` must be seeded
RPL002   no stdlib ``random`` in the deterministic core
RPL003   no wall-clock reads in the deterministic core (whitelist)
RPL101   only module-level callables cross the executor boundary
RPL102   shared-memory views must be made read-only
RPL201   overlap predicates go through counted geometry helpers
RPL202   ``JoinStatistics`` fields written only via recording methods
RPL203   maintained pair sets mutated only via the delta-maintenance API
RPL301   ``JoinResult.pairs`` contract (``tuple | None``)
RPL401   verify kernels invoked only via the dispatch registry
RPL501   recovery-package file writes go through the atomic writer
RPL601   event-loop imports confined to ``repro/service/``
=======  ==============================================================
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from tools.repro_lint import config
from tools.repro_lint.core import Diagnostic, FileContext, Rule, register, walk_scoped


def _is_np_random(node: ast.expr) -> bool:
    """True for expressions spelling ``np.random`` / ``numpy.random``."""
    return (
        isinstance(node, ast.Attribute)
        and node.attr == "random"
        and isinstance(node.value, ast.Name)
        and node.value.id in ("np", "numpy")
    )


@register
class NumpyGlobalRandomRule(Rule):
    code = "RPL001"
    title = "numpy global RNG"
    rationale = (
        "Module-level numpy randomness (np.random.rand, np.random.seed, ...) "
        "drives a hidden global RandomState: results then depend on call "
        "order across the whole process, which breaks the bit-reproducibility "
        "the parallel executors promise.  Randomness must flow from a seeded "
        "numpy.random.Generator, as in repro.datasets."
    )

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "numpy.random":
                for alias in node.names:
                    if alias.name not in config.NP_RANDOM_ALLOWED:
                        yield ctx.diagnostic(
                            node,
                            self.code,
                            f"import of legacy numpy.random.{alias.name}; use a "
                            "seeded Generator (numpy.random.default_rng(seed))",
                        )
            elif isinstance(node, ast.Call):
                func = node.func
                if not (isinstance(func, ast.Attribute) and _is_np_random(func.value)):
                    continue
                if func.attr not in config.NP_RANDOM_ALLOWED:
                    yield ctx.diagnostic(
                        node,
                        self.code,
                        f"np.random.{func.attr}() uses the hidden global RNG; "
                        "use a seeded Generator (np.random.default_rng(seed))",
                    )
                elif func.attr == "default_rng" and not node.args and not node.keywords:
                    yield ctx.diagnostic(
                        node,
                        self.code,
                        "np.random.default_rng() without a seed is entropy-seeded "
                        "and nondeterministic; pass an explicit seed",
                    )


@register
class StdlibRandomRule(Rule):
    code = "RPL002"
    title = "stdlib random in deterministic core"
    rationale = (
        "repro.core / repro.joins / repro.geometry must be pure functions of "
        "their inputs: the stdlib random module (global Mersenne Twister, "
        "hash-seeded) has no place there.  Randomness belongs to callers and "
        "arrives as a seed or Generator parameter."
    )

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        if not ctx.in_scope(config.DETERMINISTIC_SCOPE):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        yield ctx.diagnostic(
                            node,
                            self.code,
                            "stdlib random imported in the deterministic core; "
                            "take a seeded numpy Generator parameter instead",
                        )
            elif isinstance(node, ast.ImportFrom) and (
                node.module == "random" or (node.module or "").startswith("random.")
            ):
                yield ctx.diagnostic(
                    node,
                    self.code,
                    "stdlib random imported in the deterministic core; "
                    "take a seeded numpy Generator parameter instead",
                )


@register
class WallClockRule(Rule):
    code = "RPL003"
    title = "wall-clock read in deterministic core"
    rationale = (
        "time.time()/perf_counter() inside the grids, joins or geometry make "
        "behaviour depend on machine speed (e.g. time-based tuning decisions "
        "would diverge between serial and parallel runs).  Timing belongs to "
        "the engine/obs layers; the explicit whitelist covers instrumentation "
        "whose *output* is the measured wall time."
    )

    def _whitelisted(self, ctx: FileContext, qualname: str) -> bool:
        return any(
            pattern in ctx.resolved
            and (qualname == scope or qualname.startswith(scope + "."))
            for (pattern, scope), _why in config.TIMING_WHITELIST.items()
        )

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        if not ctx.in_scope(config.DETERMINISTIC_SCOPE):
            return
        # Names imported straight off the time module, e.g.
        # ``from time import perf_counter``.
        bare_clocks: set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name in config.WALL_CLOCK_FUNCTIONS:
                        bare_clocks.add(alias.asname or alias.name)
        for node, qualname in walk_scoped(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            clock: str | None = None
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "time"
                and func.attr in config.WALL_CLOCK_FUNCTIONS
            ):
                clock = f"time.{func.attr}"
            elif isinstance(func, ast.Name) and func.id in bare_clocks:
                clock = func.id
            elif (
                isinstance(func, ast.Attribute)
                and func.attr in config.DATETIME_NOW_FUNCTIONS
                and isinstance(func.value, ast.Name)
                and func.value.id in ("datetime", "date")
            ):
                clock = f"{func.value.id}.{func.attr}"
            if clock is None or self._whitelisted(ctx, qualname):
                continue
            yield ctx.diagnostic(
                node,
                self.code,
                f"{clock}() read inside the deterministic core; move timing to "
                "the engine/obs layer or whitelist the instrumentation site",
            )


@register
class ExecutorSubmissionRule(Rule):
    code = "RPL101"
    title = "non-module-level callable submitted to a pool"
    rationale = (
        "ProcessPoolExecutor pickles the submitted callable: lambdas, nested "
        "functions and bound closures either fail outright or silently drag "
        "live index state across the boundary.  Only module-level callables "
        "may be submitted from repro.engine.executors."
    )

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        if not ctx.in_scope(config.EXECUTORS_SCOPE):
            return
        module_callables: set[str] = set()
        for node in ctx.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                module_callables.add(node.name)
            elif isinstance(node, (ast.Import, ast.ImportFrom)):
                for alias in node.names:
                    module_callables.add(alias.asname or alias.name.split(".")[0])
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "submit"
                and node.args
            ):
                continue
            target = node.args[0]
            if isinstance(target, ast.Lambda):
                yield ctx.diagnostic(
                    target,
                    self.code,
                    "lambda submitted to an executor pool; submit a "
                    "module-level function",
                )
            elif isinstance(target, ast.Name):
                if target.id not in module_callables:
                    yield ctx.diagnostic(
                        target,
                        self.code,
                        f"locally defined callable {target.id!r} submitted to an "
                        "executor pool; submit a module-level function",
                    )
            elif not isinstance(target, ast.Attribute):
                yield ctx.diagnostic(
                    target,
                    self.code,
                    "computed callable submitted to an executor pool; submit a "
                    "module-level function",
                )


@register
class SharedMemoryReadOnlyRule(Rule):
    code = "RPL102"
    title = "writable shared-memory view"
    rationale = (
        "Context arrays published through multiprocessing.shared_memory are "
        "read concurrently by every worker in the verify stage; a writable "
        "view lets one task corrupt every other task's input.  Each "
        "np.ndarray(..., buffer=...) view must be locked with "
        "setflags(write=False) in the same function."
    )

    @staticmethod
    def _is_buffer_view(node: ast.expr) -> bool:
        if not isinstance(node, ast.Call):
            return False
        func = node.func
        named_ndarray = isinstance(func, ast.Name) and func.id == "ndarray"
        attr_ndarray = (
            isinstance(func, ast.Attribute)
            and func.attr == "ndarray"
            and isinstance(func.value, ast.Name)
            and func.value.id in ("np", "numpy")
        )
        if not (named_ndarray or attr_ndarray):
            return False
        return any(keyword.arg == "buffer" for keyword in node.keywords)

    @staticmethod
    def _readonly_names(body: list[ast.stmt]) -> set[str]:
        names: set[str] = set()
        for node in body:
            for child in ast.walk(node):
                if (
                    isinstance(child, ast.Call)
                    and isinstance(child.func, ast.Attribute)
                    and child.func.attr == "setflags"
                    and isinstance(child.func.value, ast.Name)
                ):
                    for keyword in child.keywords:
                        if (
                            keyword.arg == "write"
                            and isinstance(keyword.value, ast.Constant)
                            and keyword.value.value is False
                        ):
                            names.add(child.func.value.id)
                elif isinstance(child, ast.Assign):
                    for target in child.targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and target.attr == "writeable"
                            and isinstance(target.value, ast.Attribute)
                            and target.value.attr == "flags"
                            and isinstance(target.value.value, ast.Name)
                            and isinstance(child.value, ast.Constant)
                            and child.value.value is False
                        ):
                            names.add(target.value.value.id)
        return names

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        if not ctx.in_scope(config.ENGINE_SCOPE):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            readonly = self._readonly_names(node.body)
            for child in ast.walk(node):
                if not (
                    isinstance(child, ast.Assign)
                    and self._is_buffer_view(child.value)
                ):
                    continue
                target = child.targets[0]
                if len(child.targets) == 1 and isinstance(target, ast.Name):
                    if target.id in readonly:
                        continue
                    yield ctx.diagnostic(
                        child,
                        self.code,
                        f"shared-memory view {target.id!r} is never locked with "
                        f"{target.id}.setflags(write=False)",
                    )
                else:
                    yield ctx.diagnostic(
                        child,
                        self.code,
                        "shared-memory view stored without a read-only lock; "
                        "assign to a name and setflags(write=False) first",
                    )


def _bound_identifiers(node: ast.expr) -> Iterator[str]:
    for child in ast.walk(node):
        if isinstance(child, ast.Name):
            yield child.id
        elif isinstance(child, ast.Attribute):
            yield child.attr


def _is_bound_expr(node: ast.expr) -> bool:
    return any(
        config.BOUND_NAME_RE.search(name) for name in _bound_identifiers(node)
    )


@register
class UncountedOverlapRule(Rule):
    code = "RPL201"
    title = "ad-hoc coordinate comparison"
    rationale = (
        "Figure 7(c) compares algorithms by overlap-test counts, so every "
        "candidate filter must charge JoinStatistics.overlap_tests through "
        "the counted repro.geometry helpers (overlap_*, sweep and batch "
        "kernels).  A raw lo/hi comparison inside joins/ or core/ is "
        "invisible to that accounting; counted kernels carry a justified "
        "suppression."
    )

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        if not ctx.in_scope(config.COUNTED_SCOPE):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for index, op in enumerate(node.ops):
                if not isinstance(op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE)):
                    continue
                left, right = operands[index], operands[index + 1]
                if _is_bound_expr(left) and _is_bound_expr(right):
                    yield ctx.diagnostic(
                        node,
                        self.code,
                        "raw box-bound comparison bypasses overlap-test "
                        "accounting; use the counted repro.geometry helpers "
                        "(or suppress with a justification on counted kernels)",
                    )
                    break


@register
class StatisticsWriteRule(Rule):
    code = "RPL202"
    title = "direct JoinStatistics field write"
    rationale = (
        "JoinStatistics fields are aggregates with invariants (task_retries "
        "mirrors retry-class events; overlap_tests sums task counters). "
        "Writing fields directly bypasses those invariants; all mutation "
        "goes through the recording methods on JoinStatistics itself."
    )

    @staticmethod
    def _is_stats_expr(node: ast.expr) -> bool:
        if isinstance(node, ast.Name):
            return node.id in config.STATISTICS_ROOTS
        if isinstance(node, ast.Attribute):
            return node.attr in config.STATISTICS_ROOTS
        return False

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        if not ctx.in_scope(config.LIBRARY_SCOPE) or ctx.in_scope(config.BASE_MODULE):
            return
        for node in ast.walk(ctx.tree):
            targets: list[ast.expr]
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            else:
                continue
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and target.attr in config.STATISTICS_FIELDS
                    and self._is_stats_expr(target.value)
                ):
                    yield ctx.diagnostic(
                        node,
                        self.code,
                        f"direct write to JoinStatistics.{target.attr}; use the "
                        "recording methods (record_stage, record_task, "
                        "record_events, add_overlap_tests, ...)",
                    )


@register
class PairSetWriteRule(Rule):
    code = "RPL203"
    title = "direct maintained pair-set mutation"
    rationale = (
        "MaintainedPairSet carries a join result across simulation steps; "
        "its bit-identity contract with a full re-join is auditable only "
        "because every mutation flows through remove_incident / merge_delta "
        "(plus construction from a full result).  Poking the packed key "
        "array or the pair-index modulus directly would let an unsorted or "
        "duplicated key slip in and silently corrupt every later step."
    )

    @staticmethod
    def _is_pairset_expr(node: ast.expr) -> bool:
        if isinstance(node, ast.Name):
            return node.id in config.PAIRSET_ROOTS
        if isinstance(node, ast.Attribute):
            return node.attr in config.PAIRSET_ROOTS
        return False

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        if not ctx.in_scope(config.LIBRARY_SCOPE) or ctx.in_scope(
            config.PAIRS_MODULE
        ):
            return
        for node in ast.walk(ctx.tree):
            targets: list[ast.expr]
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            else:
                continue
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and target.attr in config.PAIRSET_FIELDS
                    and self._is_pairset_expr(target.value)
                ):
                    yield ctx.diagnostic(
                        node,
                        self.code,
                        f"direct write to MaintainedPairSet.{target.attr}; "
                        "mutate only through remove_incident / merge_delta "
                        "(or rebuild the set from a full join result)",
                    )


@register
class JoinResultContractRule(Rule):
    code = "RPL301"
    title = "JoinResult.pairs contract"
    rationale = (
        "JoinResult.pairs is `tuple | None`: canonical (i, j) arrays, or "
        "None exactly in count-only mode.  Downstream consumers (engine "
        "merge, unique_pairs, figures) rely on that shape; lists or "
        "post-hoc mutation break the bit-identical-to-serial guarantee."
    )

    def _check_base(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in ctx.tree.body:
            if not (isinstance(node, ast.ClassDef) and node.name == "JoinResult"):
                continue
            annotation = None
            for statement in node.body:
                if (
                    isinstance(statement, ast.AnnAssign)
                    and isinstance(statement.target, ast.Name)
                    and statement.target.id == "pairs"
                ):
                    annotation = ast.unparse(statement.annotation)
            if annotation != config.JOIN_RESULT_PAIRS_ANNOTATION:
                yield ctx.diagnostic(
                    node,
                    self.code,
                    "JoinResult.pairs must stay annotated exactly "
                    f"`{config.JOIN_RESULT_PAIRS_ANNOTATION}` "
                    f"(found {annotation!r})",
                )

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        if ctx.in_scope(config.BASE_MODULE):
            yield from self._check_base(ctx)
            return
        if not ctx.in_scope(config.LIBRARY_SCOPE):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    if isinstance(target, ast.Attribute) and target.attr == "pairs":
                        yield ctx.diagnostic(
                            node,
                            self.code,
                            "JoinResult.pairs is set only by the engine at "
                            "construction; do not assign .pairs after the fact",
                        )
            elif isinstance(node, ast.Call):
                func = node.func
                name = (
                    func.id
                    if isinstance(func, ast.Name)
                    else func.attr
                    if isinstance(func, ast.Attribute)
                    else None
                )
                if name != "JoinResult":
                    continue
                pairs_value: ast.expr | None = None
                for keyword in node.keywords:
                    if keyword.arg == "pairs":
                        pairs_value = keyword.value
                if pairs_value is None and len(node.args) >= 3:
                    pairs_value = node.args[2]
                if isinstance(pairs_value, (ast.List, ast.ListComp)):
                    yield ctx.diagnostic(
                        node,
                        self.code,
                        "JoinResult.pairs must be a tuple of index arrays or "
                        "None, not a list",
                    )


@register
class KernelBackendImportRule(Rule):
    code = "RPL401"
    title = "direct kernel-backend import"
    rationale = (
        "Every candidate verification flows through the dispatch registry "
        "of repro.geometry.kernels: backend resolution (REPRO_KERNELS, "
        "set_backend, fallback-to-oracle) and the dispatch counters only "
        "hold if no caller grabs a backend implementation directly.  "
        "Importing kernels submodules (numpy_backend, numba_backend, "
        "loops, dispatch) or the optional numba dependency outside the "
        "kernels package pins one backend and silently bypasses the "
        "selection, fallback and accounting machinery."
    )

    @staticmethod
    def _is_backend_module(module: str) -> bool:
        return (
            module.startswith(config.KERNELS_PUBLIC_MODULE + ".")
            or module == "numba"
            or module.startswith("numba.")
        )

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        if not ctx.in_scope(config.LIBRARY_SCOPE) or ctx.in_scope(
            config.KERNELS_PACKAGE
        ):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                modules = [alias.name for alias in node.names]
            elif isinstance(node, ast.ImportFrom):
                modules = [node.module or ""]
            else:
                continue
            for module in modules:
                if self._is_backend_module(module):
                    yield ctx.diagnostic(
                        node,
                        self.code,
                        f"direct import of kernel backend module {module!r} "
                        "outside repro/geometry/kernels/; invoke kernels "
                        "through the public dispatch wrappers "
                        f"({config.KERNELS_PUBLIC_MODULE})",
                    )
                    break


@register
class RecoveryAtomicWriteRule(Rule):
    code = "RPL501"
    title = "non-atomic file write in the recovery package"
    rationale = (
        "A checkpoint is only trustworthy because its write path is "
        "crash-safe: bytes go to a temp file, are fsynced, and are "
        "renamed into place, so a manifest can never name a payload "
        "that was not fully durable.  A direct open(..., 'w'), "
        "np.savez, json.dump, Path.write_bytes or os.replace anywhere "
        "else in repro/recovery/ reintroduces exactly the torn-write "
        "window the subsystem exists to close; all durable writes go "
        "through repro.recovery.atomic."
    )

    @staticmethod
    def _open_write_mode(node: ast.Call) -> str | None:
        """The write-mode string of an ``open()`` call, or ``None``."""
        func = node.func
        is_open = (isinstance(func, ast.Name) and func.id == "open") or (
            isinstance(func, ast.Attribute) and func.attr == "open"
        )
        if not is_open:
            return None
        mode_expr: ast.expr | None = None
        if len(node.args) >= 2:
            mode_expr = node.args[1]
        for keyword in node.keywords:
            if keyword.arg == "mode":
                mode_expr = keyword.value
        if mode_expr is None:
            return None  # default "r": read-only
        if isinstance(mode_expr, ast.Constant) and isinstance(mode_expr.value, str):
            mode = mode_expr.value
            if set(mode) & config.WRITE_MODE_CHARS:
                return mode
            return None
        # A computed mode can't be proven read-only; flag it.
        return ast.unparse(mode_expr)

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        if not ctx.in_scope(config.RECOVERY_SCOPE) or ctx.in_scope(
            config.ATOMIC_MODULE
        ):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            mode = self._open_write_mode(node)
            if mode is not None:
                yield ctx.diagnostic(
                    node,
                    self.code,
                    f"open(..., {mode!r}) in repro/recovery/ bypasses the "
                    "atomic write protocol; use repro.recovery.atomic",
                )
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            receiver = func.value
            if (
                isinstance(receiver, ast.Name)
                and func.attr in config.MODULE_WRITE_CALLS.get(receiver.id, frozenset())
            ):
                yield ctx.diagnostic(
                    node,
                    self.code,
                    f"{receiver.id}.{func.attr}() in repro/recovery/ bypasses "
                    "the atomic write protocol; use repro.recovery.atomic "
                    "(write_npz / write_json / atomic_write_bytes)",
                )
            elif func.attr in config.PATH_WRITE_ATTRS:
                yield ctx.diagnostic(
                    node,
                    self.code,
                    f".{func.attr}() in repro/recovery/ bypasses the atomic "
                    "write protocol; use repro.recovery.atomic",
                )


@register
class ServiceAsyncImportRule(Rule):
    code = "RPL601"
    title = "event-loop import outside the service package"
    rationale = (
        "The library below the service boundary is synchronous by "
        "design: join algorithms, executors and the incremental layer "
        "are driven step-by-step and verified bit-identical against a "
        "serial oracle, which an ambient event loop would undermine "
        "(implicit scheduling, loop-bound state, unawaited coroutines).  "
        "asyncio and its kin (selectors, uvloop, trio, anyio, curio) "
        "are therefore importable only from repro/service/, where the "
        "JoinService front-end bridges into the synchronous core via "
        "asyncio.to_thread."
    )

    @staticmethod
    def _is_async_module(module: str) -> bool:
        root = module.partition(".")[0]
        return root in config.ASYNC_MODULES

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        if not ctx.in_scope(config.LIBRARY_SCOPE) or ctx.in_scope(
            config.SERVICE_SCOPE
        ):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                modules = [alias.name for alias in node.names]
            elif isinstance(node, ast.ImportFrom):
                modules = [node.module or ""]
            else:
                continue
            for module in modules:
                if self._is_async_module(module):
                    yield ctx.diagnostic(
                        node,
                        self.code,
                        f"event-loop import {module!r} outside repro/service/; "
                        "the library core is synchronous — async front-ends "
                        "live in repro.service",
                    )
                    break
