"""Unit tests for the hill-climbing resolution tuner."""

from __future__ import annotations

import pytest

from repro.core import HillClimbingTuner


def run_on_function(tuner, fn, n_steps=50):
    """Drive the tuner against a deterministic cost function."""
    for _ in range(n_steps):
        tuner.observe(fn(tuner.current_r))
        if tuner.converged:
            break
    return tuner


class TestValidation:
    def test_bad_bounds(self):
        with pytest.raises(ValueError):
            HillClimbingTuner(r_min=1.0, r_max=0.5)

    def test_initial_outside_bounds(self):
        with pytest.raises(ValueError):
            HillClimbingTuner(initial=5.0, r_max=2.0)

    def test_bad_threshold(self):
        with pytest.raises(ValueError):
            HillClimbingTuner(threshold=0.0)

    def test_bad_steps(self):
        with pytest.raises(ValueError):
            HillClimbingTuner(initial_step=0.0)

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            HillClimbingTuner().observe(-1.0)


class TestClimbing:
    def test_starts_at_one(self):
        # The paper's protocol starts at r_1 = 1.
        assert HillClimbingTuner().current_r == 1.0

    def test_converges_on_convex_function(self):
        # Convex with minimum at 0.5 (the shape of the paper's Figure 6).
        tuner = run_on_function(HillClimbingTuner(), lambda r: 10 + 50 * (r - 0.5) ** 2)
        assert tuner.converged
        assert tuner.current_r < 1.0  # moved toward the optimum

    def test_converges_quickly(self):
        # Paper: convergence typically within 6-8 time steps at 10%.
        tuner = run_on_function(HillClimbingTuner(), lambda r: 10 + 50 * (r - 0.6) ** 2)
        assert tuner.tuning_steps <= 10

    def test_climbs_upward_when_optimum_above_one(self):
        tuner = run_on_function(HillClimbingTuner(), lambda r: 10 + 50 * (r - 1.6) ** 2)
        assert tuner.converged
        assert tuner.current_r > 1.0

    def test_flat_function_converges_immediately(self):
        tuner = run_on_function(HillClimbingTuner(), lambda r: 42.0)
        assert tuner.converged
        assert tuner.tuning_steps <= 2

    def test_respects_bounds(self):
        tuner = HillClimbingTuner(r_min=0.4, r_max=1.5)
        run_on_function(tuner, lambda r: r)  # minimum at the lower bound
        assert all(0.4 <= r <= 1.5 for r, _cost in tuner.history)

    def test_history_records_observations(self):
        tuner = run_on_function(HillClimbingTuner(), lambda r: 10 + (r - 0.5) ** 2)
        assert len(tuner.history) == len(tuner.history)
        assert all(cost > 0 for _r, cost in tuner.history)

    def test_resolution_change_reported(self):
        tuner = HillClimbingTuner()
        changed = tuner.observe(100.0)  # first probe always moves
        assert changed
        assert tuner.current_r != 1.0


class TestDriftRetuning:
    def test_stable_cost_keeps_convergence(self):
        tuner = run_on_function(HillClimbingTuner(), lambda r: 10 + 50 * (r - 0.8) ** 2)
        assert tuner.converged
        for _ in range(10):
            tuner.observe(10.0)
        assert tuner.converged
        assert tuner.retunes == 0

    def test_drift_triggers_retune(self):
        # Converge on one cost landscape...
        tuner = run_on_function(HillClimbingTuner(), lambda r: 10 + 50 * (r - 0.8) ** 2)
        assert tuner.converged
        tuner.observe(10.0)
        # ...then the workload distribution changes: cost jumps > 10%.
        tuner.observe(25.0)
        assert not tuner.converged
        assert tuner.retunes == 1

    def test_retune_reconverges_on_new_landscape(self):
        tuner = run_on_function(HillClimbingTuner(), lambda r: 10 + 50 * (r - 0.8) ** 2)
        tuner.observe(10.0)
        new_landscape = lambda r: 30 + 80 * (r - 1.2) ** 2  # noqa: E731
        tuner.observe(new_landscape(tuner.current_r))  # triggers retune
        run_on_function(tuner, new_landscape)
        assert tuner.converged

    def test_retune_returns_home_when_nothing_beats_it(self):
        """Regression: a drift-triggered exploration that finds nothing
        cheaper than the point it left must come back to it, not settle
        on a worse plateau (or the clamped boundary)."""
        # Converge at the optimum of a convex landscape...
        landscape = lambda r: 100 + 400 * (r - 1.0) ** 2  # noqa: E731
        tuner = run_on_function(HillClimbingTuner(), landscape)
        assert tuner.converged
        home = tuner.current_r
        tuner.observe(landscape(tuner.current_r))  # fresh reference
        # ...trigger a retune with a one-off 2x cost spike, then let the
        # (unchanged) landscape answer the exploration.
        tuner.observe(2.0 * landscape(tuner.current_r))
        assert tuner.retunes == 1
        for _ in range(40):
            tuner.observe(landscape(tuner.current_r))
            if tuner.converged:
                break
        assert tuner.converged
        assert landscape(tuner.current_r) <= 1.5 * landscape(home)

    def test_boundary_plateau_does_not_trap_the_climb(self):
        """Regression: a flat-looking stretch at the clamp must not be
        declared the optimum when a far better point was already seen."""
        # Cost rises steeply toward r_min: best is near the start.
        landscape = lambda r: 10.0 / r  # noqa: E731
        tuner = HillClimbingTuner(r_min=0.2, r_max=2.0)
        for _ in range(60):
            tuner.observe(landscape(tuner.current_r))
            if tuner.converged:
                break
        assert tuner.converged
        # 10/r: anything at the low clamp costs 50; the walk must settle
        # at least as cheap as its starting point (cost 10 at r = 1).
        assert landscape(tuner.current_r) <= 1.5 * landscape(1.0)

    def test_small_fluctuations_tolerated(self):
        # ±3% alternation keeps successive changes below the 10% threshold.
        tuner = run_on_function(HillClimbingTuner(), lambda r: 10 + 50 * (r - 0.8) ** 2)
        base = 10.0
        for k in range(10):
            tuner.observe(base * (1.0 + 0.03 * (-1) ** k))
        assert tuner.retunes == 0

    def test_gradual_drift_triggers_retune(self):
        """Regression: Equation 2 compares against the *fixed* converged
        cost, not the previous step — a workload drifting 5% per step
        (always under the 10% threshold step-to-step) must still retune
        once the cumulative departure crosses the threshold."""
        tuner = run_on_function(HillClimbingTuner(), lambda r: 10 + 50 * (r - 0.8) ** 2)
        assert tuner.converged
        cost = 10.0
        for _ in range(10):
            tuner.observe(cost)
            if tuner.retunes:
                break
            cost *= 1.05  # each step within threshold of the previous
        assert tuner.retunes >= 1
        # 1.05^2 = 1.1025 > 1.10: the third observation crosses Eq. 2.
        assert len(tuner.history) <= tuner.tuning_steps + 4

    def test_gradual_drift_downward_also_triggers(self):
        # Eq. 2 is two-sided: costs *improving* past the threshold also
        # signal a changed distribution worth re-tuning for.
        tuner = run_on_function(HillClimbingTuner(), lambda r: 10 + 50 * (r - 0.8) ** 2)
        cost = 10.0
        for _ in range(10):
            tuner.observe(cost)
            if tuner.retunes:
                break
            cost *= 0.94
        assert tuner.retunes >= 1

    def test_retune_after_drift_settles_no_worse(self):
        """After a gradual-drift retune the re-converged operating point
        must not be worse than the drifted landscape's value at the point
        the tuner left."""
        landscape = lambda r: 100 + 400 * (r - 1.0) ** 2  # noqa: E731
        tuner = run_on_function(HillClimbingTuner(), landscape)
        assert tuner.converged
        # The landscape inflates 5% per observation until the retune fires.
        scale = 1.0
        for _ in range(10):
            tuner.observe(scale * landscape(tuner.current_r))
            if tuner.retunes:
                break
            scale *= 1.05
        assert tuner.retunes == 1
        departure_cost = scale * landscape(tuner.current_r)
        # The inflation stops (new stable landscape); let it re-converge.
        for _ in range(40):
            tuner.observe(scale * landscape(tuner.current_r))
            if tuner.converged:
                break
        assert tuner.converged
        assert scale * landscape(tuner.current_r) <= departure_cost * 1.05

    def test_clamped_boundary_convergence_keeps_drift_watch(self):
        """Converging *on* a clamp bound must still arm Equation 2: the
        next big cost change at the boundary point re-triggers tuning."""
        landscape = lambda r: 10 + 50 * (r - 0.1) ** 2  # optimum below r_min  # noqa: E731
        tuner = HillClimbingTuner(r_min=0.5, r_max=2.0)
        for _ in range(60):
            tuner.observe(landscape(tuner.current_r))
            if tuner.converged:
                break
        assert tuner.converged
        assert tuner.r_min <= tuner.current_r <= tuner.r_max
        tuner.observe(landscape(tuner.current_r))  # seeds the reference
        tuner.observe(5.0 * landscape(tuner.current_r))
        assert tuner.retunes == 1
