"""Spatial shard ring: partitioned joins with cross-shard boundary bands.

The ring slabs the domain along its longest axis into ``n_shards``
contiguous slices (SOLAR's spatial partitioning shape, with
Tsitsigkos & Mamoulis' partition-level parallelism as the unit of
sharding).  Each non-empty slab owns a private
:class:`~repro.datasets.SpatialDataset` plus its own join algorithm
instance; all shards share one engine executor, so the verify stage
parallelises exactly as it does for the monolithic library.

Bit-identity with a direct library call is a theorem, not a hope:

* a pair with both objects in shard ``k`` is found by shard ``k``'s
  own join (its local dataset holds bit-equal copies of the global
  centers and widths, and the overlap predicate is an exact float
  comparison);
* a pair crossing shards ``a < b`` satisfies ``c_b - c_a <= reach``
  along the slab axis (``reach`` bounds ``(w_a + w_b) / 2``), which
  places the ``a`` object in the band ``c >= edges[b] - reach`` and
  the ``b`` object in ``c <= edges[a + 1] + reach``; the bands are
  *supersets* of the crossing pairs and the grouped cross-join kernel
  applies the exact predicate to every band candidate.

The union of per-shard pairs and boundary pairs, canonicalised through
:func:`~repro.geometry.unique_pairs`, therefore equals the library's
pair set bit for bit — the property suite enforces it across executors
and motion models.

Degradation instead of death: a shard whose compute raises is re-homed
(restored from its last :func:`~repro.recovery.snapshot_shard` when
fresh, rebuilt from the ring's authoritative arrays otherwise) and the
query retried once; a shard that fails again is marked dead and its
last successfully served answer is returned *marked stale* rather
than failing the query.  Every transition is recorded as a robustness
event and surfaced through the obs metrics registry.
"""

from __future__ import annotations

import functools
import time
from collections.abc import Callable, Hashable
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.datasets.dataset import SpatialDataset
from repro.datasets.delta import MotionDelta
from repro.engine.executors import ContextPublication, Executor, resolve_executor
from repro.engine.incremental import moved_groups
from repro.geometry import unique_pairs
from repro.geometry.kernels import cross_join_groups
from repro.joins.base import RETRY_EVENT_KINDS, SpatialJoinAlgorithm
from repro.obs.metrics import MetricsRegistry
from repro.recovery.state import restore_shard, snapshot_shard
from repro.service.cache import BOUNDARY_KEY, RING_KEY, ResultCache
from repro.simulation.runner import StepRecord

__all__ = ["RingAnswer", "Shard", "ShardRing"]

#: Query-key tuple: ``("join",)`` or ``("distance", d)``.
QueryKey = tuple[Hashable, ...]

AlgorithmFactory = Callable[[], SpatialJoinAlgorithm]


@dataclass(frozen=True)
class RingAnswer:
    """One assembled ring answer in global object indices.

    ``degraded`` is True when anything about the answer fell short of
    the healthy path — a stale shard, a dead shard, a re-home, or an
    executor running on a degradation rung.  ``stale`` is the stronger
    flag: at least one shard's contribution is a previously computed
    answer served because the shard could not be revived.  A stale
    answer is *marked*, never silently wrong.
    """

    kind: str
    epoch: int
    n_results: int
    pairs: tuple[np.ndarray, np.ndarray]
    degraded: bool
    stale: bool


@dataclass
class Shard:
    """One spatial slab: members, private dataset, private algorithm."""

    shard_id: int
    global_ids: np.ndarray
    dataset: SpatialDataset | None
    join: SpatialJoinAlgorithm | None
    #: Ring epoch (global dataset version) of the last update applied
    #: to this shard; untouched shards keep older versions so their
    #: cached answers stay provably valid.
    version: int
    alive: bool = True
    pending_delta: MotionDelta | None = None
    failures: int = 0
    queries: int = 0
    overlap_tests: int = 0
    seconds: float = 0.0
    #: Analytic index footprint reported by the shard's last step.
    memory_bytes: int = 0


class ShardRing:
    """Sharded join state: slab assignment, per-shard joins, caching.

    The ring owns a private copy of ``dataset`` — updates flow only
    through :meth:`apply_update`, which commits the motion as a
    :class:`~repro.datasets.delta.MotionDelta` and uses
    :func:`~repro.engine.incremental.moved_groups` to touch exactly
    the shards whose membership moved.  All methods are synchronous
    and must be called from one thread at a time (the async front-end
    serialises through its worker task).
    """

    def __init__(
        self,
        dataset: SpatialDataset,
        n_shards: int = 4,
        executor: Executor | str | None = None,
        algorithm_factory: AlgorithmFactory | None = None,
        cache_entries: int = 512,
    ) -> None:
        if n_shards < 1:
            raise ValueError(f"n_shards must be positive, got {n_shards}")
        self.dataset = dataset.copy()
        self.n_shards = int(n_shards)
        self.executor: Executor = resolve_executor(executor)
        self._owns_executor = not isinstance(executor, Executor)
        if algorithm_factory is None:
            algorithm_factory = self._default_factory
        self._factory = algorithm_factory
        self.cache = ResultCache(max_entries=cache_entries)

        lo, hi = self.dataset.bounds
        self._axis = int(np.argmax(hi - lo))
        self._edges = np.linspace(lo[self._axis], hi[self._axis], self.n_shards + 1)
        #: Axis reach bounding ``(w_a + w_b) / 2`` for any object pair.
        self._reach = self.dataset.max_width
        self._assignment = self._assign(self.dataset.centers)

        self._shards: list[Shard] = [
            Shard(
                shard_id=k,
                global_ids=np.empty(0, dtype=np.int64),
                dataset=None,
                join=None,
                version=self.dataset.version,
            )
            for k in range(self.n_shards)
        ]
        #: Last committed (arrays, meta, ring-epoch) snapshot per shard.
        self._snapshots: dict[int, tuple[dict[str, np.ndarray], dict[str, Any], int]] = {}
        #: Last successfully served answer per (shard, query) — the
        #: stale-but-marked fallback for dead shards.
        self._stale: dict[tuple[int, QueryKey], tuple[np.ndarray, np.ndarray]] = {}
        #: Injected shard failures: shard id -> "once" | "permanent".
        self._poison: dict[int, str] = {}
        #: Bumped whenever shard health changes; part of assembled keys.
        self._generation = 0
        self.rehomes = 0
        self.stale_served = 0
        self.updates = 0
        self._publication: ContextPublication | None = None
        self._epoch_events: list[dict[str, Any]] = []
        self._epoch_counters: dict[str, float] = {}

        self.metrics = MetricsRegistry()
        self.metrics.register("cache", self.cache.metrics)
        self.metrics.register("ring", self._ring_metrics)
        for k in range(self.n_shards):
            self.metrics.register(f"shard{k}", functools.partial(self._shard_metrics, k))

        for k in range(self.n_shards):
            self._build_shard(k)
        self._publish()

    def _default_factory(self) -> SpatialJoinAlgorithm:
        from repro.core import ThermalJoin

        return ThermalJoin(executor=self.executor)

    # ------------------------------------------------------------------
    # Assignment and shard construction
    # ------------------------------------------------------------------
    @property
    def epoch(self) -> int:
        """Committed update count — the ring dataset's version."""
        return self.dataset.version

    def _assign(self, centers: np.ndarray) -> np.ndarray:
        """Slab id per object: shard ``k`` owns ``[edges[k], edges[k+1])``."""
        return np.searchsorted(
            self._edges[1:-1], centers[:, self._axis], side="right"
        )

    def _build_shard(self, k: int) -> None:
        """(Re)construct shard ``k`` from the ring's authoritative arrays."""
        shard = self._shards[k]
        members = np.nonzero(self._assignment == k)[0]
        shard.global_ids = members
        if members.size == 0:
            shard.dataset = None
            shard.join = None
            self._snapshots.pop(k, None)
        else:
            shard.dataset = SpatialDataset(
                self.dataset.centers[members],
                self.dataset.widths[members],
                bounds=self.dataset.bounds,
            )
            shard.join = self._factory()
        shard.version = self.dataset.version
        shard.pending_delta = None
        shard.alive = True
        self.cache.invalidate_shard(k)
        self._snapshot(k)

    def _snapshot(self, k: int) -> None:
        """Store shard ``k``'s committed state for post-death re-homing."""
        shard = self._shards[k]
        if shard.dataset is None or shard.join is None:
            return
        arrays, meta = snapshot_shard(shard.dataset, shard.join)
        arrays = {key: value.copy() for key, value in arrays.items()}
        self._snapshots[k] = (arrays, meta, shard.version)

    def _publish(self) -> None:
        """Refresh the persistent shared-memory publication of the boxes.

        The boundary join reads the global ``lo``/``hi`` views from
        here — the promotion of the per-step ``publish_context``
        publication to ring lifetime.  Rebuilt after every committed
        update (the boxes change with the centers).
        """
        if self._publication is not None:
            self._publication.close()
        box_lo, box_hi = self.dataset.boxes()
        self._publication = ContextPublication({"lo": box_lo, "hi": box_hi})

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def apply_update(self, new_centers: np.ndarray) -> int:
        """Commit one motion step; returns the new epoch.

        The delta drives two invalidation sets: shards whose membership
        *changed* (an object crossed a slab edge) are rebuilt; shards
        whose members merely moved in place get a local delta and a
        cache invalidation.  Untouched shards keep their version — and
        therefore their cached answers — across the epoch bump.
        """
        new_centers = np.asarray(new_centers, dtype=np.float64)
        if new_centers.shape != self.dataset.centers.shape:
            raise ValueError(
                f"update shape {new_centers.shape} does not match "
                f"{self.dataset.centers.shape}"
            )
        before = self.dataset.centers.copy()
        self.dataset.centers[:] = new_centers
        delta = self.dataset.commit_motion(before)
        self.updates += 1
        self._epoch_events = []
        self._epoch_counters = {}

        old_assignment = self._assignment
        new_assignment = self._assign(self.dataset.centers)
        migrated = np.nonzero(old_assignment != new_assignment)[0]
        rebuild = set(old_assignment[migrated].tolist())
        rebuild.update(new_assignment[migrated].tolist())
        touched = set(moved_groups(delta, old_assignment).tolist())
        self._assignment = new_assignment

        for k in sorted(rebuild):
            self._build_shard(k)
        for k in sorted(touched - rebuild):
            self._refresh_shard(k)
        self.cache.invalidate_shard(BOUNDARY_KEY)
        self.cache.invalidate_shard(RING_KEY)
        self._publish()
        return self.epoch

    def _refresh_shard(self, k: int) -> None:
        """Propagate in-place motion to shard ``k`` (no membership change)."""
        shard = self._shards[k]
        if shard.dataset is None:
            return
        local_before = shard.dataset.centers.copy()
        shard.dataset.centers[:] = self.dataset.centers[shard.global_ids]
        local_delta = shard.dataset.commit_motion(local_before)
        # Two deltas since the last join cannot be composed into one
        # version-pinned MotionDelta; dropping to None forces the next
        # query into a (correct, merely slower) full re-join.
        shard.pending_delta = local_delta if shard.pending_delta is None else None
        shard.version = self.dataset.version
        self.cache.invalidate_shard(k)
        self._snapshot(k)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def join_pairs(self) -> RingAnswer:
        """Assembled overlap self-join, bit-identical to the library."""
        return self._query(("join",), None)

    def distance_pairs(self, distance: float) -> RingAnswer:
        """Assembled distance join (the paper's §3.1 reduction)."""
        if distance < 0:
            raise ValueError(f"distance must be non-negative, got {distance}")
        return self._query(("distance", float(distance)), float(distance))

    def _query(self, qkey: QueryKey, distance: float | None) -> RingAnswer:
        ring_key = (RING_KEY, self.epoch, self._generation, qkey)
        cached = self.cache.get(ring_key)
        if cached is not None:
            assert isinstance(cached, RingAnswer)
            return cached

        events_before = len(self._epoch_events)
        any_stale = False
        left_parts: list[np.ndarray] = []
        right_parts: list[np.ndarray] = []
        for shard in self._shards:
            if shard.dataset is None:
                continue
            (gi, gj), stale = self._shard_pairs(shard, qkey, distance)
            any_stale = any_stale or stale
            left_parts.append(gi)
            right_parts.append(gj)
        boundary_i, boundary_j = self._boundary_pairs(qkey, distance)
        left_parts.append(boundary_i)
        right_parts.append(boundary_j)

        empty = np.empty(0, dtype=np.int64)
        all_i = np.concatenate(left_parts) if left_parts else empty
        all_j = np.concatenate(right_parts) if right_parts else empty
        pair_i, pair_j = unique_pairs(all_i, all_j, len(self.dataset))

        degraded = (
            any_stale
            or any(not shard.alive for shard in self._shards)
            or len(self._epoch_events) > events_before
            or getattr(self.executor, "degraded", None) is not None
        )
        answer = RingAnswer(
            kind=str(qkey[0]),
            epoch=self.epoch,
            n_results=int(pair_i.shape[0]),
            pairs=(pair_i, pair_j),
            degraded=degraded,
            stale=any_stale,
        )
        self.cache.put(ring_key, answer)
        return answer

    def _shard_pairs(
        self, shard: Shard, qkey: QueryKey, distance: float | None
    ) -> tuple[tuple[np.ndarray, np.ndarray], bool]:
        """Shard contribution with the degradation ladder around it."""
        if not shard.alive and self._poison.get(shard.shard_id) == "permanent":
            stale = self._stale.get((shard.shard_id, qkey))
            if stale is not None:
                self.stale_served += 1
                return stale, True
        try:
            return self._compute_shard(shard, qkey, distance), False
        except Exception as exc:
            shard.failures += 1
            self._generation += 1
            self._record_event(
                "shard_failed", shard=shard.shard_id, error=repr(exc)
            )
            self._rehome(shard)
            try:
                pairs = self._compute_shard(shard, qkey, distance)
            except Exception as retry_exc:
                shard.alive = False
                self._record_event(
                    "shard_dead", shard=shard.shard_id, error=repr(retry_exc)
                )
                stale = self._stale.get((shard.shard_id, qkey))
                if stale is None:
                    raise
                self.stale_served += 1
                return stale, True
            shard.alive = True
            self._record_event("shard_rehomed", shard=shard.shard_id)
            return pairs, False

    def _compute_shard(
        self, shard: Shard, qkey: QueryKey, distance: float | None
    ) -> tuple[np.ndarray, np.ndarray]:
        """One shard's pairs in global indices (cached per shard version)."""
        if self._poison.get(shard.shard_id) is not None:
            raise RuntimeError(
                f"injected shard failure on shard {shard.shard_id}"
            )
        key = (shard.shard_id, shard.version, qkey)
        cached = self.cache.get(key)
        if cached is not None:
            gi, gj = cached
            return gi, gj
        assert shard.dataset is not None and shard.join is not None
        started = time.perf_counter()
        if distance is None:
            result = shard.join.step_delta(shard.dataset, shard.pending_delta)
            shard.pending_delta = None
        else:
            result = shard.join.distance_join(shard.dataset, distance)
        seconds = time.perf_counter() - started
        assert result.pairs is not None
        li, lj = unique_pairs(*result.pairs, len(shard.dataset))
        gi = shard.global_ids[li]
        gj = shard.global_ids[lj]

        shard.queries += 1
        shard.overlap_tests += result.stats.overlap_tests
        shard.seconds += seconds
        shard.memory_bytes = result.stats.memory_bytes
        self._epoch_events.extend(result.stats.events)
        self._bump("overlap_tests", result.stats.overlap_tests)
        self._bump("build_seconds", result.stats.build_seconds)
        self._bump("join_seconds", result.stats.join_seconds)

        pairs = (gi, gj)
        self.cache.put(key, pairs)
        self._stale[(shard.shard_id, qkey)] = pairs
        return pairs

    def _rehome(self, shard: Shard) -> None:
        """Revive a failed shard from its snapshot or the ring's arrays."""
        if self._poison.get(shard.shard_id) == "once":
            self._poison.pop(shard.shard_id)
        self.rehomes += 1
        algorithm = self._factory()
        restored = False
        snapshot = self._snapshots.get(shard.shard_id)
        if snapshot is not None:
            arrays, meta, version = snapshot
            if version == shard.version:
                try:
                    shard.dataset = restore_shard(arrays, meta, algorithm)
                except ValueError:
                    restored = False
                else:
                    restored = True
        if not restored:
            # The ring's arrays are authoritative: a shard whose
            # members have not moved since ``shard.version`` rebuilds
            # to bit-equal state from the current global positions.
            shard.dataset = SpatialDataset(
                self.dataset.centers[shard.global_ids],
                self.dataset.widths[shard.global_ids],
                bounds=self.dataset.bounds,
            )
        shard.join = algorithm
        shard.pending_delta = None
        self.cache.invalidate_shard(shard.shard_id)

    # ------------------------------------------------------------------
    # Boundary joins
    # ------------------------------------------------------------------
    def _boundary_pairs(
        self, qkey: QueryKey, distance: float | None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Exact cross-shard pairs from the slab-edge candidate bands."""
        key = (BOUNDARY_KEY, self.epoch, qkey)
        cached = self.cache.get(key)
        if cached is not None:
            lo_ids, hi_ids = cached
            return lo_ids, hi_ids

        started = time.perf_counter()
        if distance is None:
            assert self._publication is not None
            box_lo = self._publication.views["lo"]
            box_hi = self._publication.views["hi"]
            reach = self._reach
        else:
            # Bit-equal to ``with_enlarged_extent(distance).boxes()``:
            # centers ± (widths + d) / 2, in that association order.
            half = (self.dataset.widths + distance) / 2.0
            box_lo = self.dataset.centers - half
            box_hi = self.dataset.centers + half
            reach = self._reach + distance

        axis_centers = self.dataset.centers[:, self._axis]
        bands_a: list[np.ndarray] = []
        bands_b: list[np.ndarray] = []
        for a in range(self.n_shards - 1):
            members_a = self._shards[a].global_ids
            for b in range(a + 1, self.n_shards):
                if self._edges[b] - self._edges[a + 1] > reach:
                    break
                members_b = self._shards[b].global_ids
                band_a = members_a[
                    axis_centers[members_a] >= self._edges[b] - reach
                ]
                band_b = members_b[
                    axis_centers[members_b] <= self._edges[a + 1] + reach
                ]
                if band_a.size and band_b.size:
                    bands_a.append(band_a)
                    bands_b.append(band_b)

        empty = np.empty(0, dtype=np.int64)
        if not bands_a:
            pairs = (empty, empty)
            self.cache.put(key, pairs)
            return pairs

        cat_a = np.concatenate(bands_a)
        cat_b = np.concatenate(bands_b)
        stops_a = np.cumsum([band.size for band in bands_a], dtype=np.int64)
        starts_a = np.concatenate([[0], stops_a[:-1]]).astype(np.int64)
        stops_b = np.cumsum([band.size for band in bands_b], dtype=np.int64)
        starts_b = np.concatenate([[0], stops_b[:-1]]).astype(np.int64)
        n_band_pairs = len(bands_a)
        group_index = np.arange(n_band_pairs, dtype=np.int64)

        emitted_left: list[np.ndarray] = []
        emitted_right: list[np.ndarray] = []

        def on_pairs(
            left_ids: np.ndarray, right_ids: np.ndarray, pair_index: np.ndarray
        ) -> None:
            emitted_left.append(np.asarray(left_ids, dtype=np.int64))
            emitted_right.append(np.asarray(right_ids, dtype=np.int64))

        tests = cross_join_groups(
            box_lo,
            box_hi,
            cat_a,
            starts_a,
            stops_a,
            cat_b,
            starts_b,
            stops_b,
            group_index,
            group_index,
            on_pairs,
            count="full",
        )
        self._bump("boundary_tests", tests)
        self._bump("join_seconds", time.perf_counter() - started)

        if emitted_left:
            raw_i = np.concatenate(emitted_left)
            raw_j = np.concatenate(emitted_right)
            pairs = (np.minimum(raw_i, raw_j), np.maximum(raw_i, raw_j))
        else:
            pairs = (empty, empty)
        self.cache.put(key, pairs)
        return pairs

    # ------------------------------------------------------------------
    # Fault injection and accounting
    # ------------------------------------------------------------------
    def kill_shard(self, shard_id: int, permanent: bool = False) -> None:
        """Poison ``shard_id`` so its next compute raises (test/CI hook).

        A one-shot kill is cleared by the re-home, exercising the
        recover-and-retry rung; a permanent kill keeps raising, driving
        the shard to ``dead`` and its answers to stale-but-marked.
        """
        if not 0 <= shard_id < self.n_shards:
            raise ValueError(f"no shard {shard_id} in a {self.n_shards}-shard ring")
        self._poison[shard_id] = "permanent" if permanent else "once"
        self._generation += 1
        self._record_event(
            "shard_killed", shard=shard_id, permanent=bool(permanent)
        )

    def _record_event(self, kind: str, **info: Any) -> None:
        self._epoch_events.append({"kind": kind, **info})

    def _bump(self, counter: str, amount: float) -> None:
        self._epoch_counters[counter] = (
            self._epoch_counters.get(counter, 0.0) + amount
        )

    def _ring_metrics(self) -> dict[str, Any]:
        return {
            "epoch": self.epoch,
            "generation": self._generation,
            "updates": self.updates,
            "rehomes": self.rehomes,
            "stale_served": self.stale_served,
            "dead_shards": sum(1 for shard in self._shards if not shard.alive),
            "boundary_tests": int(self._epoch_counters.get("boundary_tests", 0)),
        }

    def _shard_metrics(self, k: int) -> dict[str, Any]:
        shard = self._shards[k]
        return {
            "objects": int(shard.global_ids.shape[0]),
            "queries": shard.queries,
            "overlap_tests": shard.overlap_tests,
            "seconds": shard.seconds,
            "failures": shard.failures,
            "alive": shard.alive,
        }

    def epoch_record(self, step: int, n_results: int) -> StepRecord:
        """This epoch's accumulated work as a bench-schema step record."""
        events = [dict(event) for event in self._epoch_events]
        retries = sum(1 for event in events if event.get("kind") in RETRY_EVENT_KINDS)
        memory = sum(shard.memory_bytes for shard in self._shards)
        return StepRecord(
            step=int(step),
            n_results=int(n_results),
            join_seconds=float(self._epoch_counters.get("join_seconds", 0.0)),
            build_seconds=float(self._epoch_counters.get("build_seconds", 0.0)),
            overlap_tests=int(
                self._epoch_counters.get("overlap_tests", 0)
                + self._epoch_counters.get("boundary_tests", 0)
            ),
            memory_bytes=int(memory),
            phase_seconds={},
            stage_seconds={},
            events=events,
            task_retries=retries,
            index_counters=self.metrics.snapshot(),
            incremental={},
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the publication and (if owned) the shared executor."""
        if self._publication is not None:
            self._publication.close()
            self._publication = None
        if self._owns_executor:
            self.executor.close()

    def __enter__(self) -> ShardRing:
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __repr__(self) -> str:
        alive = sum(1 for shard in self._shards if shard.alive)
        return (
            f"ShardRing(n_shards={self.n_shards}, epoch={self.epoch}, "
            f"alive={alive}/{self.n_shards})"
        )
