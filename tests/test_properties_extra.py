"""Additional property-based tests: B+-Tree state machine, adjacency,
Morton codes, ST2B over random motion, parallel THERMAL equivalence."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.core import ThermalJoin
from repro.datasets import SpatialDataset
from repro.geometry import (
    brute_force_pairs,
    pack_pairs,
    pairs_to_adjacency,
    unique_pairs,
)
from repro.geometry.morton import MORTON_COORD_BITS, morton_decode, morton_encode
from repro.index import BPlusTree
from repro.joins import ST2BJoin


class BPlusTreeMachine(RuleBasedStateMachine):
    """Hypothesis-driven churn against a reference set, with invariant
    checks after every operation."""

    def __init__(self):
        super().__init__()
        self.tree = BPlusTree(order=6)
        self.reference = set()

    @rule(key=st.integers(0, 60), value=st.integers(0, 4))
    def insert(self, key, value):
        outcome = self.tree.insert(key, value)
        assert outcome == ((key, value) not in self.reference)
        self.reference.add((key, value))

    @rule(key=st.integers(0, 60), value=st.integers(0, 4))
    def delete(self, key, value):
        outcome = self.tree.delete(key, value)
        assert outcome == ((key, value) in self.reference)
        self.reference.discard((key, value))

    @rule(lo=st.integers(0, 60), hi=st.integers(0, 60))
    def range_scan(self, lo, hi):
        lo, hi = min(lo, hi), max(lo, hi)
        got = sorted(self.tree.range_values(lo, hi))
        expected = sorted(v for (k, v) in self.reference if lo <= k <= hi)
        assert got == expected

    @invariant()
    def structurally_sound(self):
        self.tree.check_invariants()
        assert len(self.tree) == len(self.reference)


TestBPlusTreeStateMachine = BPlusTreeMachine.TestCase
TestBPlusTreeStateMachine.settings = settings(
    max_examples=25, stateful_step_count=40, deadline=None
)


class TestAdjacencyProperties:
    @given(st.integers(2, 60), st.integers(0, 200))
    @settings(max_examples=60)
    def test_adjacency_mirrors_pairs(self, n, seed):
        rng = np.random.default_rng(seed)
        k = int(rng.integers(0, 3 * n))
        i_idx = rng.integers(0, n, size=k)
        j_idx = rng.integers(0, n, size=k)
        ui, uj = unique_pairs(i_idx, j_idx, n)
        offsets, neighbors = pairs_to_adjacency(ui, uj, n)
        assert offsets[-1] == 2 * ui.size
        # Symmetry and exact reconstruction.
        rebuilt = set()
        for obj in range(n):
            for other in neighbors[offsets[obj]:offsets[obj + 1]]:
                assert obj != other
                rebuilt.add((min(obj, int(other)), max(obj, int(other))))
        assert rebuilt == set(zip(ui.tolist(), uj.tolist(), strict=True))

    @given(st.integers(1, 40))
    @settings(max_examples=20)
    def test_empty_pairs(self, n):
        offsets, neighbors = pairs_to_adjacency(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64), n
        )
        assert offsets.tolist() == [0] * (n + 1)
        assert neighbors.size == 0


class TestMortonProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(0, (1 << MORTON_COORD_BITS) - 1),
                st.integers(0, (1 << MORTON_COORD_BITS) - 1),
                st.integers(0, (1 << MORTON_COORD_BITS) - 1),
            ),
            min_size=1,
            max_size=64,
        )
    )
    @settings(max_examples=100)
    def test_roundtrip(self, coords):
        arr = np.asarray(coords, dtype=np.int64)
        assert np.array_equal(morton_decode(morton_encode(arr)), arr)

    @given(
        st.integers(0, (1 << MORTON_COORD_BITS) - 2),
        st.integers(0, (1 << MORTON_COORD_BITS) - 2),
        st.integers(0, (1 << MORTON_COORD_BITS) - 2),
    )
    @settings(max_examples=80)
    def test_strict_monotone_in_each_axis(self, x, y, z):
        base = morton_encode(np.asarray([[x, y, z]]))[0]
        for bumped in ([x + 1, y, z], [x, y + 1, z], [x, y, z + 1]):
            assert morton_encode(np.asarray([bumped]))[0] > base


@st.composite
def moving_boxes(draw):
    n = draw(st.integers(4, 40))
    seed = draw(st.integers(0, 10_000))
    rng = np.random.default_rng(seed)
    centers = rng.uniform(5.0, 55.0, size=(n, 3))
    width = draw(st.floats(1.0, 20.0))
    steps = draw(st.integers(1, 3))
    moves = rng.normal(scale=8.0, size=(steps, n, 3))
    return centers, width, moves


class TestMovingJoins:
    @given(moving_boxes())
    @settings(max_examples=30, deadline=None)
    def test_st2b_stays_exact_under_motion(self, scenario):
        centers, width, moves = scenario
        dataset = SpatialDataset(
            centers.copy(), width, bounds=(np.zeros(3), np.full(3, 60.0))
        )
        join = ST2BJoin()
        n = len(dataset)
        for move in moves:
            result = join.step(dataset)
            got = pack_pairs(*unique_pairs(*result.pairs, n), n)
            exp = pack_pairs(*brute_force_pairs(*dataset.boxes()), n)
            assert np.array_equal(got, exp)
            new_centers = np.clip(dataset.centers + move, 0.0, 60.0)
            dataset.update_positions(new_centers)
        join._tree.check_invariants()

    @given(moving_boxes(), st.integers(2, 4))
    @settings(max_examples=25, deadline=None)
    def test_parallel_thermal_equals_serial_under_motion(self, scenario, workers):
        centers, width, moves = scenario
        serial_ds = SpatialDataset(
            centers.copy(), width, bounds=(np.zeros(3), np.full(3, 60.0))
        )
        parallel_ds = SpatialDataset(
            centers.copy(), width, bounds=(np.zeros(3), np.full(3, 60.0))
        )
        serial = ThermalJoin(resolution=1.0)
        threaded = ThermalJoin(resolution=1.0, n_workers=workers)
        n = len(serial_ds)
        for move in moves:
            a = serial.step(serial_ds)
            b = threaded.step(parallel_ds)
            assert a.n_results == b.n_results
            assert a.stats.overlap_tests == b.stats.overlap_tests
            assert np.array_equal(
                pack_pairs(*unique_pairs(*a.pairs, n), n),
                pack_pairs(*unique_pairs(*b.pairs, n), n),
            )
            for ds in (serial_ds, parallel_ds):
                ds.update_positions(np.clip(ds.centers + move, 0.0, 60.0))
