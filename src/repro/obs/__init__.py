"""Step-level observability: trace spans, metrics registry, JSONL.

Three small, dependency-free pieces threaded through the whole stack:

:mod:`repro.obs.trace`
    Lightweight spans (name, phase, wall/CPU time, counters, parent)
    opened by the engine around the prepare/partition/verify/merge
    stages and recorded for every executed task — including tasks that
    ran in worker processes, whose measurements travel back through the
    existing result channel.  A process-wide active tracer defaults to
    a no-op; install one with :func:`set_tracer` or the ``REPRO_TRACE``
    environment variable.
:mod:`repro.obs.metrics`
    A registry of read-only providers snapshotting the index-internal
    counters each component already maintains (P-Grid cell accounting,
    T-Grid fallbacks, tuner state, executor degradation) into
    ``JoinStatistics.index_counters`` / ``StepRecord.index_counters``.
:mod:`repro.obs.jsonl` / :mod:`repro.obs.bench`
    JSON Lines emission and the schema-versioned ``BENCH_steps.json``
    bench-trajectory document (built by ``benchmarks/bench_steps.py``,
    validated in CI).

Hard invariant, enforced by the test suite: pair sets, overlap-test
totals and tuner decisions are bit-identical with observability on or
off; with everything off the overhead is a few attribute checks per
step.
"""

from repro.obs.bench import (
    BENCH_SCHEMA_VERSION,
    environment_info,
    run_aggregates,
    step_record_to_json,
    validate_bench,
)
from repro.obs.jsonl import JsonlWriter, json_default, to_jsonable
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import (
    TRACE_SCHEMA_VERSION,
    NullTracer,
    Span,
    Tracer,
    emit_record,
    get_tracer,
    set_tracer,
)

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "Span",
    "Tracer",
    "NullTracer",
    "get_tracer",
    "set_tracer",
    "emit_record",
    "MetricsRegistry",
    "JsonlWriter",
    "json_default",
    "to_jsonable",
    "BENCH_SCHEMA_VERSION",
    "environment_info",
    "step_record_to_json",
    "run_aggregates",
    "validate_bench",
]
