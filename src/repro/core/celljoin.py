"""Cell-pair join: sequential reference + kernel-dispatch entry points.

Both the P-Grid external join and the T-Grid cell-pair join use the same
"optimized variant of the plane-sweep approach" (Section 4.2.1): before
sweeping two cells' object lists, objects of cell A whose MBR encloses
the entire extent of cell B are paired with *all* of B's objects without
any overlap test — the cell extent encloses the centers of B's objects,
and an MBR that contains another object's center is guaranteed to
overlap it with positive volume.

Instead of the nominal cell MBR we use the tight bounding box of the
member objects' *centers* (computed during assignment).  It is contained
in the nominal cell box, so every shortcut the paper's check would take
is also taken here (plus some extra), and the overlap guarantee is
immune to objects that sit exactly on a cell boundary after floating-
point assignment.

:func:`join_sorted_lists` is the sequential one-cell-pair formulation,
kept as the readable reference (and oracle for the kernel tests).  The
batched entry points delegate to the dispatchable verify kernels of
:mod:`repro.geometry.kernels` — backend selected via ``REPRO_KERNELS``;
chunk-level parallelism belongs to the engine executors, which schedule
many independent tasks, not to a thread pool inside one task.
"""

from __future__ import annotations

import numpy as np

from typing import TYPE_CHECKING

from repro.geometry import encloses, sweep_between
from repro.geometry.kernels import cell_pair_sweep, hot_cell_emit

if TYPE_CHECKING:
    from repro.geometry import PairAccumulator

__all__ = ["join_sorted_lists", "join_cell_pairs_batched", "emit_hot_cells_batched"]


def join_sorted_lists(
    lo: np.ndarray,
    hi: np.ndarray,
    a_idx: np.ndarray,
    b_idx: np.ndarray,
    b_center_lo: np.ndarray,
    b_center_hi: np.ndarray,
    accumulator: PairAccumulator,
) -> tuple[int, int]:
    """Join two disjoint, x-sorted object lists (cell A against cell B).

    Parameters
    ----------
    lo, hi:
        Global box arrays for the whole dataset.
    a_idx, b_idx:
        Dataset indices of the two cells' objects, each sorted ascending
        by lower x bound.
    b_center_lo, b_center_hi:
        Tight bounds of cell B's member centers (the enclosure-shortcut
        target).
    accumulator:
        Pair accumulator receiving the results.

    Returns
    -------
    tuple
        ``(tests, shortcut_pairs)`` — the number of pairwise overlap
        tests performed and the number of result pairs emitted without a
        test via the enclosure shortcut.
    """
    if a_idx.size == 0 or b_idx.size == 0:
        return 0, 0

    lo_a = lo[a_idx]
    hi_a = hi[a_idx]
    shortcut_pairs = 0
    # Objects of A that enclose all of B's centers overlap every object
    # of B; emit those pairs combinatorially.
    enclosing = encloses(lo_a, hi_a, b_center_lo, b_center_hi)
    if enclosing.any():
        enclosing_ids = a_idx[enclosing]
        accumulator.extend(
            np.repeat(enclosing_ids, b_idx.size),
            np.tile(b_idx, enclosing_ids.size),
        )
        shortcut_pairs = int(enclosing_ids.size) * int(b_idx.size)
        a_idx = a_idx[~enclosing]
        if a_idx.size == 0:
            return 0, shortcut_pairs
        lo_a = lo_a[~enclosing]
        hi_a = hi_a[~enclosing]

    a_ids, b_ids, tests = sweep_between(lo_a, hi_a, a_idx, lo[b_idx], hi[b_idx], b_idx)
    accumulator.extend(a_ids, b_ids)
    return tests, shortcut_pairs


def join_cell_pairs_batched(
    lo: np.ndarray,
    hi: np.ndarray,
    cat: np.ndarray,
    starts: np.ndarray,
    stops: np.ndarray,
    center_lo: np.ndarray,
    center_hi: np.ndarray,
    pair_a: np.ndarray,
    pair_b: np.ndarray,
    accumulator: PairAccumulator,
    chunk_candidates: int = 2_000_000,
    enclosure_shortcut: bool = True,
) -> tuple[int, int]:
    """External join over *many* cell pairs via the ``cell_pair_sweep`` kernel.

    Semantically identical to calling :func:`join_sorted_lists` for each
    ``(pair_a[k], pair_b[k])`` cell pair — same pair set, same
    plane-sweep overlap-test accounting, same enclosure shortcut —
    evaluated by whichever kernel backend ``REPRO_KERNELS`` selects.
    Returns ``(tests, shortcut_pairs)`` summed over all cell pairs.
    """
    return cell_pair_sweep(
        lo,
        hi,
        cat,
        starts,
        stops,
        center_lo,
        center_hi,
        pair_a,
        pair_b,
        accumulator,
        chunk_candidates=chunk_candidates,
        enclosure_shortcut=enclosure_shortcut,
    )


def emit_hot_cells_batched(
    cat: np.ndarray,
    starts: np.ndarray,
    stops: np.ndarray,
    hot_slots: np.ndarray,
    accumulator: PairAccumulator,
) -> int:
    """Emit all within-cell combinations for many hot-spot cells at once.

    Delegates to the ``hot_cell_emit`` kernel; returns the number of
    pairs emitted (all without overlap tests — the hot-spot guarantee).
    """
    return hot_cell_emit(cat, starts, stops, hot_slots, accumulator)
