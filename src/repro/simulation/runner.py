"""Iterative-simulation driver: move all objects, join, record, repeat.

Reproduces the paper's experimental loop (§5.1.1): the simulation
application mutates the object list in place at every time step; once
the list is consistent, the self-join executes atomically; per-step
metrics are recorded.  The driver is algorithm-agnostic — anything
implementing :class:`~repro.joins.base.SpatialJoinAlgorithm` plugs in,
which is how the benchmark harness runs THERMAL-JOIN and every baseline
over identical workloads.

The loop is fault-aware on three levels:

* the engine's executors recover from task failures, hangs and worker
  death on their own (surfaced per step in :attr:`StepRecord.events` /
  :attr:`StepRecord.task_retries`);
* a step that still raises past all executor recovery is **escalated**:
  the algorithm's cross-step state is discarded
  (:meth:`~repro.joins.base.SpatialJoinAlgorithm.reset_for_retry`) and
  the step retried once as a full from-scratch re-join; only a second
  failure ends the run — cleanly, with the failing step in
  :attr:`SimulationRunner.failed_step` / :attr:`~SimulationRunner.failure`
  / :attr:`~SimulationRunner.failure_traceback` and no half-written
  record;
* with ``checkpoint_dir=`` set, the full resumable state is durably
  checkpointed every ``checkpoint_every`` steps through
  :mod:`repro.recovery`, and :meth:`resume` continues a crashed run
  from the newest valid checkpoint — bit-identically to a run that was
  never interrupted (see ``docs/robustness.md``).
"""

from __future__ import annotations

import time
import traceback
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:
    import os

    from repro.datasets import SpatialDataset
    from repro.datasets.motion import MotionModel
    from repro.joins.base import JoinResult, SpatialJoinAlgorithm
    from repro.recovery.checkpoint import CheckpointManager
    from repro.recovery.metrics import RecoveryMetrics

__all__ = ["StepRecord", "SimulationRunner"]

#: Event kinds that mean the step ran below the requested backend.
_DEGRADED_EVENT_KINDS = ("pool_broken", "pool_rebuild", "degraded")


@dataclass
class StepRecord:
    """Metrics of one simulation time step.

    Attributes mirror the series of the paper's Figure 7: result count
    (join selectivity), join time, overlap tests and memory footprint,
    plus the finer phase breakdown used by Figure 10(a).  ``events``
    and ``task_retries`` carry the step's robustness record (see
    :class:`~repro.joins.base.JoinStatistics`); both are empty/zero on
    a clean step.  ``index_counters`` is the step's metrics-registry
    snapshot (tuner resolution, P-Grid cell accounting, executor rung —
    see :class:`~repro.obs.MetricsRegistry`), so bench trajectories and
    traces can line the index internals up with the cost series.

    Recovery surfaces here as events: ``{"kind": "checkpoint",
    "step": N}`` when the step was durably checkpointed and
    ``{"kind": "step_retry", "error": ...}`` when the step only
    succeeded on its escalated from-scratch retry.
    """

    step: int
    n_results: int
    join_seconds: float
    build_seconds: float
    overlap_tests: int
    memory_bytes: int
    phase_seconds: dict[str, float]
    stage_seconds: dict[str, float] = field(default_factory=dict)
    events: list[dict[str, Any]] = field(default_factory=list)
    task_retries: int = 0
    index_counters: dict[str, dict[str, Any]] = field(default_factory=dict)
    #: Pair-maintenance counters for the step (the ``incremental``
    #: provider of the metrics registry: mode, moved_fraction,
    #: pairs_reused, pairs_reverified, fallbacks, ...).  Empty for
    #: algorithms without the provider, so pre-existing records and
    #: readers keep working unchanged.
    incremental: dict[str, Any] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        """Build plus join time of the step."""
        return self.build_seconds + self.join_seconds

    @property
    def degraded(self) -> bool:
        """True when the step's executor broke, rebuilt or downgraded."""
        return any(
            event.get("kind") in _DEGRADED_EVENT_KINDS for event in self.events
        )


class SimulationRunner:
    """Runs a moving-object simulation against one join algorithm.

    Parameters
    ----------
    dataset:
        The shared in-memory object list (mutated in place).
    motion:
        A :class:`~repro.datasets.motion.MotionModel`; ``None`` runs a
        static dataset (the single-time-step experiments of Figures 2
        and 6).
    algorithm:
        The join algorithm under test.  Its ``executor`` attribute (set
        via the ``executor=`` constructor argument or ``REPRO_EXECUTOR``)
        carries the serial/parallel choice for every step of the run.
    time_budget:
        Optional wall-clock budget in seconds for the *whole* run; when
        exceeded the run stops early and :attr:`timed_out` is set — the
        equivalent of the paper's 72-hour cut-off in Figure 9(a).
    checkpoint_dir:
        Directory for durable checkpoints; ``None`` (default) disables
        checkpointing entirely.
    checkpoint_every:
        Checkpoint cadence in steps (a checkpoint is committed after
        every ``checkpoint_every``-th completed step).  Ignored without
        ``checkpoint_dir``.
    keep_last:
        Checkpoint retention depth (see
        :class:`~repro.recovery.CheckpointManager`).

    Attributes
    ----------
    timed_out:
        True when the run stopped on the time budget.
    failed_step:
        Index of the step whose join raised past all executor recovery
        *and* past the from-scratch step retry, or ``None``.  The run
        stops cleanly at that step: ``records`` holds every *completed*
        step and the motion model is not advanced past the failure.
    failure:
        The exception that ended the run, or ``None``.
    failure_traceback:
        The formatted traceback of :attr:`failure`, or ``None`` —
        preserved because the exception object alone loses the stack
        once the run moves on (figures/reports include it).
    recovery:
        The run's :class:`~repro.recovery.RecoveryMetrics` counters
        when checkpointing is enabled, else ``None``; also exposed as
        the ``recovery`` metrics provider.
    """

    def __init__(
        self,
        dataset: SpatialDataset,
        motion: MotionModel | None,
        algorithm: SpatialJoinAlgorithm,
        time_budget: float | None = None,
        checkpoint_dir: str | os.PathLike[str] | None = None,
        checkpoint_every: int = 10,
        keep_last: int = 3,
    ) -> None:
        if time_budget is not None and time_budget <= 0:
            raise ValueError(f"time_budget must be positive, got {time_budget}")
        if checkpoint_every <= 0:
            raise ValueError(
                f"checkpoint_every must be positive, got {checkpoint_every}"
            )
        self.dataset = dataset
        self.motion = motion
        self.algorithm = algorithm
        self.time_budget = time_budget
        self.records: list[StepRecord] = []
        self.timed_out = False
        self.failed_step: int | None = None
        self.failure: Exception | None = None
        self.failure_traceback: str | None = None
        self.checkpoint_every = int(checkpoint_every)
        self.recovery: RecoveryMetrics | None = None
        self._checkpoints: CheckpointManager | None = None
        #: First step the next :meth:`run` call will execute (advanced
        #: by :meth:`resume` past the checkpointed prefix).
        self._next_step = 0
        if checkpoint_dir is not None:
            from repro.recovery import CheckpointManager, RecoveryMetrics

            self._checkpoints = CheckpointManager(checkpoint_dir, keep_last=keep_last)
            self.recovery = RecoveryMetrics()
            # Guarded: a resumed runner re-wraps an algorithm whose
            # registry may already carry the provider.
            if "recovery" not in self.algorithm.metrics:
                self.algorithm.metrics.register("recovery", self.recovery.snapshot)

    # ------------------------------------------------------------------
    # The step loop
    # ------------------------------------------------------------------
    def run(self, n_steps: int) -> list[StepRecord]:
        """Execute steps up to trajectory length ``n_steps``; returns records.

        Each step joins the dataset's *current* state; the motion model
        advances at the top of every step after the first, so step 0
        measures the initial configuration exactly as the paper's
        time-step 0 does.  On a resumed runner the loop continues from
        the first un-checkpointed step — ``n_steps`` is always the total
        trajectory length, not an increment.
        """
        if n_steps <= 0:
            raise ValueError(f"n_steps must be positive, got {n_steps}")
        from repro.engine.faults import SimulatedCrash, active_plan

        started = time.perf_counter()
        # The delta committed by the previous motion step, threaded into
        # the next join step.  Step 0 has none (initial configuration).
        # After a resume the restored motion model produces the exact
        # delta the uninterrupted run would have produced here.
        pending_delta = None
        for step in range(self._next_step, n_steps):
            if self.motion is not None and step > 0:
                pending_delta = self.motion.step(self.dataset)
            result = self._run_step(step, pending_delta)
            if result is None:
                break
            stats = result.stats
            self.records.append(
                StepRecord(
                    step=step,
                    n_results=result.n_results,
                    join_seconds=stats.join_seconds,
                    build_seconds=stats.build_seconds,
                    overlap_tests=stats.overlap_tests,
                    memory_bytes=stats.memory_bytes,
                    phase_seconds=dict(stats.phase_seconds),
                    stage_seconds=dict(stats.stage_seconds),
                    events=list(stats.events),
                    task_retries=stats.task_retries,
                    index_counters=dict(stats.index_counters),
                    incremental=dict(stats.index_counters.get("incremental", {})),
                )
            )
            self._next_step = step + 1
            if (
                self._checkpoints is not None
                and (step + 1) % self.checkpoint_every == 0
            ):
                self._write_checkpoint(step)
            plan = active_plan()
            if plan is not None and plan.crash_after_step(step):
                # Simulated process death: propagate like a real crash —
                # completed records (and checkpoints) survive, nothing
                # is recorded as a failed step.
                raise SimulatedCrash(f"injected crash after step {step}")
            if (
                self.time_budget is not None
                and time.perf_counter() - started > self.time_budget
            ):
                # Check the budget here so a timed-out run doesn't burn
                # one extra motion step at the top of the next iteration.
                self.timed_out = True
                break
        return self.records

    def _run_step(self, step: int, pending_delta: Any) -> JoinResult | None:
        """One join step with escalation; ``None`` when the run must stop.

        A first failure past all executor recovery discards the
        algorithm's cross-step state and retries the step as a full
        from-scratch re-join (fresh index build, incremental state
        dropped); the retry's success is recorded as a ``step_retry``
        event on the step.  A second failure declares
        :attr:`failed_step`.
        """
        try:
            return self.algorithm.step_delta(self.dataset, pending_delta)
        except Exception as first:
            if self.recovery is not None:
                self.recovery.record_step_retry()
            try:
                self.algorithm.reset_for_retry()
                result = self.algorithm.step_delta(self.dataset, None)
            except Exception as second:
                if self.recovery is not None:
                    self.recovery.record_escalation()
                self.failed_step = step
                self.failure = second
                self.failure_traceback = "".join(
                    traceback.format_exception(type(second), second, second.__traceback__)
                )
                return None
            result.stats.record_events(
                [{"kind": "step_retry", "error": repr(first)}]
            )
            return result

    # ------------------------------------------------------------------
    # Checkpoint / resume
    # ------------------------------------------------------------------
    def _write_checkpoint(self, step: int) -> None:
        """Durably commit the state needed to resume after ``step``."""
        from repro.recovery import (
            snapshot_dataset,
            snapshot_motion,
            step_record_to_jsonable,
        )

        assert self._checkpoints is not None and self.recovery is not None
        started = time.perf_counter()
        # The event goes on the record *before* the records are
        # serialized: a resumed run restores this record from the
        # checkpoint, and the uninterrupted run's copy carries the
        # event — bit-identity requires both to agree.  No byte count
        # in the event on purpose: manifest sizes vary run-to-run
        # (wall-time floats), and the event stream is part of the
        # bit-identity contract.
        self.records[-1].events.append({"kind": "checkpoint", "step": step})
        arrays: dict[str, Any] = {}
        dataset_arrays, dataset_meta = snapshot_dataset(self.dataset)
        for key, value in dataset_arrays.items():
            arrays[f"dataset/{key}"] = value
        motion_meta = None
        if self.motion is not None:
            motion_arrays, motion_meta = snapshot_motion(self.motion)
            for key, value in motion_arrays.items():
                arrays[f"motion/{key}"] = value
        algo_arrays, algo_meta = self.algorithm.snapshot_state()
        for key, value in algo_arrays.items():
            arrays[f"algorithm/{key}"] = value
        meta = {
            "dataset": dataset_meta,
            "motion": motion_meta,
            "algorithm": algo_meta,
            "runner": {
                "next_step": step + 1,
                "checkpoint_every": self.checkpoint_every,
                "records": [step_record_to_jsonable(r) for r in self.records],
            },
        }
        nbytes = self._checkpoints.write(step, arrays, meta)
        self.recovery.record_checkpoint(nbytes, time.perf_counter() - started)

    @classmethod
    def resume(
        cls,
        checkpoint_dir: str | os.PathLike[str],
        algorithm: SpatialJoinAlgorithm,
        time_budget: float | None = None,
        checkpoint_every: int | None = None,
        keep_last: int = 3,
    ) -> SimulationRunner:
        """Reconstruct a runner from the newest valid checkpoint.

        ``algorithm`` must be constructed with the same configuration
        the checkpointed run used (validated via its config
        fingerprint); its cross-step state is restored wholesale.
        Corrupt checkpoints are skipped newest-first (counted in
        ``recovery.corrupt_skipped``); :class:`~repro.recovery.
        CheckpointError` is raised when nothing loads.  The returned
        runner's next :meth:`run` call continues the trajectory
        bit-identically to a run that was never interrupted.
        """
        from repro.recovery import (
            CheckpointManager,
            restore_dataset,
            restore_motion,
            step_record_from_jsonable,
        )

        manager = CheckpointManager(checkpoint_dir, keep_last=keep_last)
        checkpoint, skipped = manager.load_latest()
        meta = checkpoint.meta

        def split(prefix: str) -> dict[str, Any]:
            return {
                key.split("/", 1)[1]: value
                for key, value in checkpoint.arrays.items()
                if key.startswith(prefix + "/")
            }

        dataset = restore_dataset(split("dataset"), meta["dataset"])
        motion = None
        if meta["motion"] is not None:
            motion = restore_motion(split("motion"), meta["motion"])
        algorithm.restore_state(split("algorithm"), meta["algorithm"], dataset)
        runner_meta = meta["runner"]
        runner = cls(
            dataset,
            motion,
            algorithm,
            time_budget=time_budget,
            checkpoint_dir=checkpoint_dir,
            checkpoint_every=(
                int(runner_meta["checkpoint_every"])
                if checkpoint_every is None
                else checkpoint_every
            ),
            keep_last=keep_last,
        )
        runner.records = [
            step_record_from_jsonable(doc) for doc in runner_meta["records"]
        ]
        runner._next_step = int(runner_meta["next_step"])
        assert runner.recovery is not None
        runner.recovery.record_load(skipped)
        return runner

    # ------------------------------------------------------------------
    # Aggregates over the recorded steps
    # ------------------------------------------------------------------
    def total_join_seconds(self) -> float:
        """Sum of build + join time over all recorded steps."""
        return sum(record.total_seconds for record in self.records)

    def total_overlap_tests(self) -> int:
        """Sum of overlap tests over all recorded steps."""
        return sum(record.overlap_tests for record in self.records)

    def peak_memory_bytes(self) -> int:
        """Largest per-step footprint observed."""
        return max((record.memory_bytes for record in self.records), default=0)

    def total_task_retries(self) -> int:
        """Sum of task re-executions over all recorded steps."""
        return sum(record.task_retries for record in self.records)

    def degraded_steps(self) -> list[int]:
        """Step indices whose executor broke, rebuilt or downgraded."""
        return [record.step for record in self.records if record.degraded]
