"""Project index: per-module summaries, import tables and a disk cache.

This is the substrate of repro-lint's whole-program pass.  Every linted
file is distilled into a :class:`ModuleSummary` — its import table, its
functions (with call sites, sink calls and executor submissions), its
classes (methods, attribute types, bases) and its module-level globals.
The summaries are pure data (JSON round-trippable), which buys two
things:

* the **call graph** (:mod:`tools.repro_lint.callgraph`) is built from
  summaries alone, never from live ASTs, so cross-file rules see one
  uniform model whether a module was parsed this run or restored from
  cache;
* the **cache** (:class:`IndexCache`) can persist summaries *and* the
  per-file diagnostics keyed on a content hash — a warm run re-parses
  only files whose bytes changed, while the cross-file rules always run
  against the fully reassembled index, so editing a transitively-called
  helper re-analyses every dependent module for free.

The cache is invalidated wholesale when the linter itself changes: the
fingerprint hashes every source file of ``tools/repro_lint``.
"""

from __future__ import annotations

import ast
import contextlib
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from tools.repro_lint import config

__all__ = [
    "CallSite",
    "ClassInfo",
    "FunctionInfo",
    "IndexCache",
    "ModuleSummary",
    "ProjectIndex",
    "SubmitSite",
    "linter_fingerprint",
    "module_name_for_path",
    "summarize_module",
]

#: Bump when the summary shape changes incompatibly.
INDEX_VERSION = 1


# ----------------------------------------------------------------------
# Summary data model
# ----------------------------------------------------------------------
@dataclass
class CallSite:
    """One call expression inside a function body."""

    callee: str  #: dotted name as written ("time.sleep", "self._compute", "helper")
    lineno: int
    col: int
    awaited: bool = False
    bare_stmt: bool = False  #: expression statement whose value is discarded
    offloaded: bool = False  #: callable passed through asyncio.to_thread / run_in_executor

    def to_json(self) -> list[Any]:
        return [
            self.callee,
            self.lineno,
            self.col,
            self.awaited,
            self.bare_stmt,
            self.offloaded,
        ]

    @classmethod
    def from_json(cls, data: list[Any]) -> CallSite:
        return cls(*data)


@dataclass
class SubmitSite:
    """An ``<pool>.submit(target, ...)`` call."""

    target: str  #: dotted name, "<lambda>" or "<computed>"
    kind: str  #: "name" | "lambda" | "computed"
    lineno: int
    col: int

    def to_json(self) -> list[Any]:
        return [self.target, self.kind, self.lineno, self.col]

    @classmethod
    def from_json(cls, data: list[Any]) -> SubmitSite:
        return cls(*data)


@dataclass
class FunctionInfo:
    """One function or method, flattened for the call graph."""

    qualname: str
    lineno: int
    col: int
    is_async: bool = False
    kind: str = "function"  #: "function" | "method" | "nested"
    owner: str = ""  #: enclosing class name for methods
    params: dict[str, str] = field(default_factory=dict)  #: name -> annotation ref
    local_types: dict[str, str] = field(default_factory=dict)  #: name -> class ref
    calls: list[CallSite] = field(default_factory=list)
    #: sink kind ("blocking" | "clock" | "entropy") -> [(label, line, col)]
    sinks: dict[str, list[tuple[str, int, int]]] = field(default_factory=dict)
    submits: list[SubmitSite] = field(default_factory=list)
    reads: list[str] = field(default_factory=list)  #: non-local names read

    def to_json(self) -> dict[str, Any]:
        return {
            "qualname": self.qualname,
            "lineno": self.lineno,
            "col": self.col,
            "is_async": self.is_async,
            "kind": self.kind,
            "owner": self.owner,
            "params": self.params,
            "local_types": self.local_types,
            "calls": [call.to_json() for call in self.calls],
            "sinks": {k: [list(site) for site in v] for k, v in self.sinks.items()},
            "submits": [submit.to_json() for submit in self.submits],
            "reads": self.reads,
        }

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> FunctionInfo:
        return cls(
            qualname=data["qualname"],
            lineno=data["lineno"],
            col=data["col"],
            is_async=data["is_async"],
            kind=data["kind"],
            owner=data["owner"],
            params=data["params"],
            local_types=data["local_types"],
            calls=[CallSite.from_json(c) for c in data["calls"]],
            sinks={
                k: [(s[0], s[1], s[2]) for s in v] for k, v in data["sinks"].items()
            },
            submits=[SubmitSite.from_json(s) for s in data["submits"]],
            reads=data["reads"],
        )


@dataclass
class ClassInfo:
    """One class: methods, inferred attribute types, base references."""

    name: str
    lineno: int
    methods: list[str] = field(default_factory=list)
    attr_types: dict[str, str] = field(default_factory=dict)  #: attr -> class ref
    bases: list[str] = field(default_factory=list)  #: dotted refs as written

    def to_json(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "lineno": self.lineno,
            "methods": self.methods,
            "attr_types": self.attr_types,
            "bases": self.bases,
        }

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> ClassInfo:
        return cls(**data)


@dataclass
class ModuleSummary:
    """Everything the whole-program pass needs to know about one file."""

    module: str
    path: str  #: display path (current run; not part of the cached identity)
    resolved: str  #: resolved POSIX path (cache key, scope matching)
    sha256: str
    imports: dict[str, str] = field(default_factory=dict)  #: local name -> dotted target
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    globals: dict[str, str] = field(default_factory=dict)  #: name -> kind
    #: line -> suppressed codes (None = all), mirroring core.collect_suppressions
    suppressions: dict[int, frozenset[str] | None] = field(default_factory=dict)
    #: per-file rule findings, post-suppression: (code, line, col, message)
    diagnostics: list[tuple[str, int, int, str]] = field(default_factory=list)
    #: error text when the file failed to parse (None = parsed fine)
    parse_error: str | None = None

    def in_scope(self, patterns: tuple[str, ...]) -> bool:
        return any(pattern in self.resolved for pattern in patterns)

    def suppressed(self, line: int, code: str) -> bool:
        if line not in self.suppressions:
            return False
        codes = self.suppressions[line]
        return codes is None or code in codes

    def to_json(self) -> dict[str, Any]:
        return {
            "module": self.module,
            "path": self.path,
            "resolved": self.resolved,
            "sha256": self.sha256,
            "imports": self.imports,
            "functions": {k: v.to_json() for k, v in self.functions.items()},
            "classes": {k: v.to_json() for k, v in self.classes.items()},
            "globals": self.globals,
            "suppressions": {
                str(line): (None if codes is None else sorted(codes))
                for line, codes in self.suppressions.items()
            },
            "diagnostics": [list(d) for d in self.diagnostics],
            "parse_error": self.parse_error,
        }

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> ModuleSummary:
        return cls(
            module=data["module"],
            path=data["path"],
            resolved=data["resolved"],
            sha256=data["sha256"],
            imports=data["imports"],
            functions={
                k: FunctionInfo.from_json(v) for k, v in data["functions"].items()
            },
            classes={k: ClassInfo.from_json(v) for k, v in data["classes"].items()},
            globals=data["globals"],
            suppressions={
                int(line): (None if codes is None else frozenset(codes))
                for line, codes in data["suppressions"].items()
            },
            diagnostics=[(d[0], d[1], d[2], d[3]) for d in data["diagnostics"]],
            parse_error=data["parse_error"],
        )


# ----------------------------------------------------------------------
# Module naming
# ----------------------------------------------------------------------
def module_name_for_path(resolved: str) -> str:
    """Dotted module name for a resolved POSIX path.

    Files under a ``repro`` directory get their canonical library name
    (``.../repro/service/service.py`` → ``repro.service.service``), so
    absolute imports in the tree resolve against the index whether the
    file lives in ``src/`` or in a fixture tree.  Files outside any
    ``repro`` directory (benchmarks, tests, tools) get a path-derived
    name under ``_ext`` — unique, but never the target of an import.
    """
    parts = resolved.split("/")
    stem_parts = list(parts)
    if stem_parts[-1].endswith(".py"):
        stem_parts[-1] = stem_parts[-1][: -len(".py")]
    if "repro" in parts:
        anchor = len(parts) - 1 - parts[::-1].index("repro")
        rel = stem_parts[anchor:]
        if rel[-1] == "__init__":
            rel = rel[:-1]
        return ".".join(rel)
    digest = hashlib.sha256(resolved.encode("utf-8")).hexdigest()[:8]
    tail = [part for part in stem_parts[-3:] if part]
    return "_ext." + ".".join(tail) + "_" + digest


# ----------------------------------------------------------------------
# Extraction helpers
# ----------------------------------------------------------------------
def _dotted(node: ast.expr) -> str | None:
    """Render ``a.b.c`` chains; None for anything not a pure name chain."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted(node.value)
        if base is None:
            return None
        return f"{base}.{node.attr}"
    return None


def _annotation_ref(node: ast.expr | None) -> str | None:
    """A class-reference string from an annotation expression.

    Handles plain names, dotted names, string annotations, ``X | None``
    unions (the non-None side) and ``Optional[X]``.  Anything more
    structured is skipped — the call graph stays conservative.
    """
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        text = node.value.strip()
        with contextlib.suppress(SyntaxError):
            return _annotation_ref(ast.parse(text, mode="eval").body)
        return None
    if isinstance(node, (ast.Name, ast.Attribute)):
        return _dotted(node)
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        for side in (node.left, node.right):
            if isinstance(side, ast.Constant) and side.value is None:
                continue
            ref = _annotation_ref(side)
            if ref is not None and ref != "None":
                return ref
        return None
    if isinstance(node, ast.Subscript):
        base = _dotted(node.value)
        if base in ("Optional", "typing.Optional"):
            return _annotation_ref(node.slice)
    return None


def _resolve_root(name: str, imports: dict[str, str]) -> str:
    """Rewrite a dotted name's root through the import table."""
    root, dot, rest = name.partition(".")
    target = imports.get(root)
    if target is None:
        return name
    return target + (("." + rest) if dot else "")


def _classify_sink(
    callee: str, node: ast.Call, imports: dict[str, str]
) -> tuple[str, str] | None:
    """``(sink kind, label)`` when the resolved call is a sink."""
    resolved = _resolve_root(callee, imports)
    last = resolved.rsplit(".", 1)[-1]
    root = resolved.partition(".")[0]
    # Blocking calls (RPL701 sinks).
    if resolved in config.BLOCKING_CALLS:
        return "blocking", resolved
    if resolved == "open" and "open" not in imports:
        return "blocking", "open"
    if "." in callee and callee.rsplit(".", 1)[-1] in config.BLOCKING_ATTRS:
        return "blocking", f".{callee.rsplit('.', 1)[-1]}"
    # Wall-clock reads (RPL801 sinks).
    if root == "time" and last in config.WALL_CLOCK_FUNCTIONS:
        return "clock", resolved
    if root in ("datetime", "date") and last in config.DATETIME_NOW_FUNCTIONS:
        return "clock", resolved
    # Entropy draws (RPL802 sinks).
    if resolved in config.ENTROPY_CALLS:
        return "entropy", resolved
    if root in config.ENTROPY_MODULE_ROOTS and "." in resolved:
        return "entropy", resolved
    if resolved.startswith("numpy.random."):
        attr = resolved.split(".", 2)[2].partition(".")[0]
        if attr not in config.NP_RANDOM_ALLOWED:
            return "entropy", resolved
        if attr == "default_rng" and not node.args and not node.keywords:
            return "entropy", "numpy.random.default_rng()  # unseeded"
    return None


def _classify_global(value: ast.expr, imports: dict[str, str]) -> str:
    """Kind of a module-level binding (for RPL901/902)."""
    if isinstance(value, ast.Lambda):
        return "lambda"
    if isinstance(value, ast.Call):
        callee = _dotted(value.func)
        if callee is not None:
            resolved = _resolve_root(callee, imports)
            kind = config.GLOBAL_STATE_CONSTRUCTORS.get(resolved)
            if kind is None:
                # Bare constructor names imported from the defining module
                # (``from threading import Lock``) resolve above; also catch
                # the unqualified class names for robustness.
                tail = resolved.rsplit(".", 1)[-1]
                for ctor, ctor_kind in config.GLOBAL_STATE_CONSTRUCTORS.items():
                    if "." in ctor and ctor.rsplit(".", 1)[-1] == tail:
                        return ctor_kind
                return "other"
            return kind
    return "other"


class _FunctionExtractor:
    """Collect calls, sinks, submits and reads from one function body."""

    def __init__(self, imports: dict[str, str]) -> None:
        self.imports = imports
        self.calls: list[CallSite] = []
        self.sinks: dict[str, list[tuple[str, int, int]]] = {}
        self.submits: list[SubmitSite] = []
        self.bound: set[str] = set()
        self.read: list[str] = []

    def visit_body(self, stmts: list[ast.stmt]) -> None:
        for stmt in stmts:
            self._visit(stmt, awaited=False, bare=False)

    def _visit(self, node: ast.AST, awaited: bool, bare: bool) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self.bound.add(node.name)
            return  # nested defs are their own FunctionInfo
        if isinstance(node, ast.ClassDef):
            self.bound.add(node.name)
            return
        if isinstance(node, ast.Expr):
            self._visit(node.value, awaited=False, bare=True)
            return
        if isinstance(node, ast.Await):
            self._visit(node.value, awaited=True, bare=False)
            return
        if isinstance(node, ast.Call):
            self._handle_call(node, awaited=awaited, bare=bare)
            return
        if isinstance(node, ast.Name):
            if isinstance(node.ctx, ast.Load):
                if node.id not in self.bound:
                    self.read.append(node.id)
            else:
                self.bound.add(node.id)
            return
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                self.bound.add(alias.asname or alias.name.split(".")[0])
            return
        for child in ast.iter_child_nodes(node):
            self._visit(child, awaited=False, bare=False)

    def _handle_call(self, node: ast.Call, awaited: bool, bare: bool) -> None:
        callee = _dotted(node.func)
        offload_args: list[ast.expr] = []
        if callee is not None:
            resolved = _resolve_root(callee, self.imports)
            if resolved in config.OFFLOAD_CALLS and node.args:
                offload_args.append(node.args[0])
            elif (
                callee.rsplit(".", 1)[-1] in config.OFFLOAD_ATTRS
                and len(node.args) >= 2
            ):
                offload_args.append(node.args[1])
            self.calls.append(
                CallSite(
                    callee,
                    node.lineno,
                    node.col_offset,
                    awaited=awaited,
                    bare_stmt=bare,
                )
            )
            sink = _classify_sink(callee, node, self.imports)
            if sink is not None:
                kind, label = sink
                self.sinks.setdefault(kind, []).append(
                    (label, node.lineno, node.col_offset)
                )
            if callee.rsplit(".", 1)[-1] == "submit" and "." in callee and node.args:
                self._handle_submit(node)
        # Offloaded callables still become (flagged) edges so the
        # determinism rules can traverse them.
        for arg in offload_args:
            target = _dotted(arg)
            if target is not None:
                self.calls.append(
                    CallSite(
                        target, arg.lineno, arg.col_offset, offloaded=True
                    )
                )
        # Recurse into receiver and arguments.
        for child in ast.iter_child_nodes(node):
            self._visit(child, awaited=False, bare=False)

    def _handle_submit(self, node: ast.Call) -> None:
        target = node.args[0]
        if isinstance(target, ast.Lambda):
            self.submits.append(
                SubmitSite("<lambda>", "lambda", target.lineno, target.col_offset)
            )
            return
        dotted = _dotted(target)
        if dotted is None:
            self.submits.append(
                SubmitSite(
                    "<computed>", "computed", target.lineno, target.col_offset
                )
            )
        else:
            self.submits.append(
                SubmitSite(dotted, "name", target.lineno, target.col_offset)
            )


def _function_params(node: ast.FunctionDef | ast.AsyncFunctionDef) -> dict[str, str]:
    params: dict[str, str] = {}
    args = node.args
    for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
        ref = _annotation_ref(arg.annotation)
        if ref is not None:
            params[arg.arg] = ref
    return params


def _extract_functions(
    summary: ModuleSummary,
    body: list[ast.stmt],
    prefix: str,
    owner: str,
    kind: str,
) -> None:
    for node in body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qualname = f"{prefix}{node.name}"
            extractor = _FunctionExtractor(summary.imports)
            extractor.bound.update(_function_params(node).keys())
            extractor.bound.update(
                arg.arg
                for arg in [
                    *node.args.posonlyargs,
                    *node.args.args,
                    *node.args.kwonlyargs,
                ]
            )
            if node.args.vararg:
                extractor.bound.add(node.args.vararg.arg)
            if node.args.kwarg:
                extractor.bound.add(node.args.kwarg.arg)
            extractor.visit_body(node.body)
            info = FunctionInfo(
                qualname=qualname,
                lineno=node.lineno,
                col=node.col_offset,
                is_async=isinstance(node, ast.AsyncFunctionDef),
                kind=kind,
                owner=owner,
                params=_function_params(node),
                local_types=_local_types(node.body, summary.imports),
                calls=extractor.calls,
                sinks=extractor.sinks,
                submits=extractor.submits,
                reads=sorted(set(extractor.read)),
            )
            summary.functions[qualname] = info
            _extract_functions(
                summary, node.body, prefix=f"{qualname}.", owner="", kind="nested"
            )
        elif isinstance(node, ast.ClassDef):
            _extract_class(summary, node, prefix)


def _local_types(stmts: list[ast.stmt], imports: dict[str, str]) -> dict[str, str]:
    """``name -> class ref`` for ``x = Cls(...)`` / ``x: Cls`` locals."""
    types: dict[str, str] = {}
    for stmt in stmts:
        for node in ast.walk(stmt):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                ref = _annotation_ref(node.annotation)
                if ref is not None:
                    types[node.target.id] = ref
            elif (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Call)
            ):
                callee = _dotted(node.value.func)
                if callee is not None and callee.rsplit(".", 1)[-1][:1].isupper():
                    types[node.targets[0].id] = callee
    return types


def _extract_class(summary: ModuleSummary, node: ast.ClassDef, prefix: str) -> None:
    info = ClassInfo(name=f"{prefix}{node.name}", lineno=node.lineno)
    for base in node.bases:
        ref = _dotted(base)
        if ref is not None:
            info.bases.append(ref)
    for stmt in node.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info.methods.append(stmt.name)
            # Attribute types: ``self.x: Cls = ...`` / ``self.x = Cls(...)``.
            for child in ast.walk(stmt):
                if (
                    isinstance(child, ast.AnnAssign)
                    and isinstance(child.target, ast.Attribute)
                    and isinstance(child.target.value, ast.Name)
                    and child.target.value.id == "self"
                ):
                    ref = _annotation_ref(child.annotation)
                    if ref is not None:
                        info.attr_types.setdefault(child.target.attr, ref)
                elif (
                    isinstance(child, ast.Assign)
                    and len(child.targets) == 1
                    and isinstance(child.targets[0], ast.Attribute)
                    and isinstance(child.targets[0].value, ast.Name)
                    and child.targets[0].value.id == "self"
                    and isinstance(child.value, ast.Call)
                ):
                    callee = _dotted(child.value.func)
                    if callee is not None and callee.rsplit(".", 1)[-1][:1].isupper():
                        info.attr_types.setdefault(child.targets[0].attr, callee)
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            ref = _annotation_ref(stmt.annotation)
            if ref is not None:
                info.attr_types.setdefault(stmt.target.id, ref)
    summary.classes[info.name] = info
    class_prefix = f"{info.name}."
    for stmt in node.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            _extract_methods(summary, stmt, class_prefix, node.name)


def _extract_methods(
    summary: ModuleSummary,
    node: ast.FunctionDef | ast.AsyncFunctionDef,
    class_prefix: str,
    owner: str,
) -> None:
    qualname = f"{class_prefix}{node.name}"
    extractor = _FunctionExtractor(summary.imports)
    for arg in [*node.args.posonlyargs, *node.args.args, *node.args.kwonlyargs]:
        extractor.bound.add(arg.arg)
    if node.args.vararg:
        extractor.bound.add(node.args.vararg.arg)
    if node.args.kwarg:
        extractor.bound.add(node.args.kwarg.arg)
    extractor.visit_body(node.body)
    summary.functions[qualname] = FunctionInfo(
        qualname=qualname,
        lineno=node.lineno,
        col=node.col_offset,
        is_async=isinstance(node, ast.AsyncFunctionDef),
        kind="method",
        owner=owner,
        params=_function_params(node),
        local_types=_local_types(node.body, summary.imports),
        calls=extractor.calls,
        sinks=extractor.sinks,
        submits=extractor.submits,
        reads=sorted(set(extractor.read)),
    )
    _extract_functions(summary, node.body, prefix=f"{qualname}.", owner="", kind="nested")


def _collect_imports(summary: ModuleSummary, tree: ast.Module) -> None:
    """Gather every import in the file into one flat table.

    Function-local and ``TYPE_CHECKING`` imports are included: the call
    graph resolves *names*, and a lazily imported helper is exactly the
    kind of edge a whole-program analysis exists to see.
    """
    package = summary.module.rsplit(".", 1)[0] if "." in summary.module else ""
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                summary.imports.setdefault(local, target)
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                parts = summary.module.split(".")
                # level 1 = the containing package, each extra level one up.
                anchor = parts[: len(parts) - node.level]
                if not anchor:
                    anchor = [parts[0]] if parts else []
                base = ".".join([*anchor, base]) if base else ".".join(anchor)
            for alias in node.names:
                local = alias.asname or alias.name
                if alias.name == "*":
                    continue
                summary.imports.setdefault(
                    local, f"{base}.{alias.name}" if base else alias.name
                )


def summarize_module(
    module: str,
    path: str,
    resolved: str,
    sha256: str,
    tree: ast.Module,
) -> ModuleSummary:
    """Distill one parsed module into a :class:`ModuleSummary`."""
    summary = ModuleSummary(
        module=module, path=path, resolved=resolved, sha256=sha256
    )
    _collect_imports(summary, tree)
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            summary.globals[node.name] = (
                "class"
                if isinstance(node, ast.ClassDef)
                else "async_function"
                if isinstance(node, ast.AsyncFunctionDef)
                else "function"
            )
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    summary.globals[target.id] = _classify_global(
                        node.value, summary.imports
                    )
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            if node.value is not None:
                summary.globals[node.target.id] = _classify_global(
                    node.value, summary.imports
                )
    _extract_functions(summary, tree.body, prefix="", owner="", kind="function")
    return summary


# ----------------------------------------------------------------------
# The index
# ----------------------------------------------------------------------
class ProjectIndex:
    """All module summaries of one lint run, keyed by module and path."""

    def __init__(self, summaries: list[ModuleSummary]) -> None:
        self.summaries = summaries
        self.modules: dict[str, ModuleSummary] = {}
        self.by_resolved: dict[str, ModuleSummary] = {}
        for summary in summaries:
            self.modules[summary.module] = summary
            self.by_resolved[summary.resolved] = summary

    def __len__(self) -> int:
        return len(self.summaries)


# ----------------------------------------------------------------------
# Disk cache
# ----------------------------------------------------------------------
def linter_fingerprint() -> str:
    """Hash of the linter's own sources: any rule change voids the cache."""
    package_dir = Path(__file__).resolve().parent
    digest = hashlib.sha256(str(INDEX_VERSION).encode())
    for source in sorted(package_dir.glob("*.py")):
        digest.update(source.name.encode())
        digest.update(source.read_bytes())
    return digest.hexdigest()


def file_digest(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


class IndexCache:
    """Content-hash-keyed store of module summaries and their findings.

    ``get`` hits only when the file's bytes are unchanged *and* the
    linter fingerprint matches; everything else re-indexes.  The cache
    deliberately stores per-file state only — cross-file rules always
    run on the reassembled index, which is what makes editing one
    helper correctly re-analyse every module that can reach it.
    """

    def __init__(self, path: Path | None) -> None:
        self.path = path
        self.fingerprint = linter_fingerprint()
        self.entries: dict[str, dict[str, Any]] = {}
        self.hits = 0
        self.misses = 0
        if path is not None and path.exists():
            try:
                doc = json.loads(path.read_text(encoding="utf-8"))
                if (
                    doc.get("version") == INDEX_VERSION
                    and doc.get("fingerprint") == self.fingerprint
                ):
                    self.entries = doc.get("entries", {})
            except (OSError, ValueError):
                self.entries = {}

    def get(self, resolved: str, sha256: str, display: str) -> ModuleSummary | None:
        entry = self.entries.get(resolved)
        if entry is None or entry.get("sha256") != sha256:
            self.misses += 1
            return None
        try:
            summary = ModuleSummary.from_json(entry)
        except (KeyError, TypeError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        summary.path = display  # display names follow the current invocation
        return summary

    def put(self, summary: ModuleSummary) -> None:
        self.entries[summary.resolved] = summary.to_json()

    def save(self) -> None:
        if self.path is None:
            return
        doc = {
            "version": INDEX_VERSION,
            "fingerprint": self.fingerprint,
            "entries": self.entries,
        }
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            tmp = self.path.with_suffix(self.path.suffix + ".tmp")
            tmp.write_text(json.dumps(doc), encoding="utf-8")
            tmp.replace(self.path)
        except OSError:
            pass  # caching is an optimisation, never a failure mode
