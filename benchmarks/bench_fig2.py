"""Benchmark for Figure 2 — static self-join across all eight methods.

Times one static self-join per algorithm on the neural dataset (the
paper's motivation experiment) and checks the qualitative ordering the
figure argues from: every indexed method beats the nested loop, and the
join degenerates toward it as the object volume grows.
"""

from __future__ import annotations

import pytest

from repro.experiments.figures import ALGORITHM_FACTORIES, FIG2_ALGORITHMS
from repro.experiments.workloads import scaled_neural


@pytest.mark.parametrize("name", FIG2_ALGORITHMS)
def test_fig2_static_join(benchmark, neural_dataset, name):
    """One static self-join per method at the paper's default volume."""
    algorithm = ALGORITHM_FACTORIES[name]()

    result = benchmark(lambda: algorithm.step(neural_dataset))
    assert result.n_results > 0


@pytest.mark.parametrize("volume", [10.0, 30.0])
def test_fig2_volume_extremes(benchmark, volume):
    """The sweep's endpoints: selectivity rises steeply with volume."""
    dataset, _motion, _labels = scaled_neural(3000, object_volume=volume, seed=7)
    algorithm = ALGORITHM_FACTORIES["cr-tree"]()

    result = benchmark(lambda: algorithm.step(dataset))
    assert result.n_results > 0


def test_fig2_selectivity_grows_with_volume():
    """More volume -> more results and more overlap tests (the figure's
    x-axis is a selectivity axis)."""
    small, _m, _l = scaled_neural(3000, object_volume=10.0, seed=7)
    large, _m, _l = scaled_neural(3000, object_volume=30.0, seed=7)
    algo = ALGORITHM_FACTORIES["cr-tree"]
    res_small = algo().step(small)
    res_large = algo().step(large)
    assert res_large.n_results > res_small.n_results
    assert res_large.stats.overlap_tests > res_small.stats.overlap_tests
