"""Benchmark for Figure 8 — neural scalability in size and extent.

Times THERMAL-JOIN and the best tree competitor at the sweep endpoints
and asserts the scalability claim: THERMAL-JOIN's advantage grows as the
join gets more selective.
"""

from __future__ import annotations

import pytest

from repro.core import ThermalJoin
from repro.experiments.figures import ALGORITHM_FACTORIES
from repro.experiments.workloads import scaled_neural

SIZES = [2000, 8000]
VOLUMES = [10.0, 25.0]


@pytest.mark.parametrize("n", SIZES)
def test_fig8a_thermal_vs_size(benchmark, n):
    """THERMAL-JOIN step time as the object count grows in fixed space."""
    dataset, _motion, _labels = scaled_neural(n, seed=301, domain_side=30.0)
    join = ThermalJoin(resolution=1.0, count_only=True)

    result = benchmark(lambda: join.step(dataset))
    assert result.n_results > 0


@pytest.mark.parametrize("volume", VOLUMES)
def test_fig8b_thermal_vs_extent(benchmark, volume):
    """THERMAL-JOIN step time as the object extent grows."""
    dataset, _motion, _labels = scaled_neural(4000, object_volume=volume, seed=302)
    join = ThermalJoin(resolution=1.0, count_only=True)

    result = benchmark(lambda: join.step(dataset))
    assert result.n_results > 0


def test_fig8_thermal_least_sensitive_to_selectivity():
    """The paper's scalability claim, in its machine-independent form:
    as the object extent (and with it the selectivity) grows,
    THERMAL-JOIN's overlap tests per *result* stay flat — the cost of
    the join tracks its unavoidable output — while the CR-Tree pays a
    multiple of that at every point of the sweep."""
    thermal_ratios = []
    for volume in VOLUMES:
        dataset, _motion, _labels = scaled_neural(4000, object_volume=volume, seed=303)
        thermal = ThermalJoin(resolution=1.0, count_only=True).step(dataset)
        crtree = ALGORITHM_FACTORIES["cr-tree"]().step(dataset)
        thermal_per_result = thermal.stats.overlap_tests / thermal.n_results
        crtree_per_result = crtree.stats.overlap_tests / crtree.n_results
        thermal_ratios.append(thermal_per_result)
        assert thermal_per_result < crtree_per_result / 2
    spread = max(thermal_ratios) / min(thermal_ratios)
    assert spread < 1.25, f"thermal cost-per-result drifted: {thermal_ratios}"
