from ..engine.timing import stamp


def decide(budget: float) -> bool:
    return budget > 0 and stamp() >= 0
