"""The sanctioned durable-write primitives of the recovery subsystem.

Every byte the checkpoint layer puts on disk flows through
:func:`atomic_write_bytes`: the payload is serialized fully in memory,
written to a sibling temporary file, flushed and fsynced, then renamed
over the final name (``os.replace`` is atomic on POSIX), and finally
the containing directory is fsynced so the rename itself is durable.
A reader therefore either sees the complete previous file or the
complete new one — never a torn write — which is what lets the loader
treat any checksum mismatch as corruption rather than a race.

repro-lint rule RPL501 forbids any other file-write primitive inside
``repro/recovery/``; this module is the single exemption.
"""

from __future__ import annotations

import io
import json
import os
from typing import Any

import numpy as np

__all__ = ["atomic_write_bytes", "write_json", "write_npz"]


def atomic_write_bytes(path: str | os.PathLike[str], data: bytes) -> int:
    """Durably write ``data`` at ``path`` via tmp + fsync + rename.

    Returns the number of bytes written.  The temporary file lives in
    the same directory (``os.replace`` requires the same filesystem);
    a crash mid-write leaves at worst a stale ``*.tmp`` beside an
    intact previous version.
    """
    path = os.fspath(path)
    tmp = path + ".tmp"
    with open(tmp, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    directory = os.path.dirname(path) or "."
    dir_fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)
    return len(data)


def write_json(path: str | os.PathLike[str], document: dict[str, Any]) -> int:
    """Atomically write ``document`` as UTF-8 JSON; returns bytes written.

    Compact separators, no indentation: the manifest sits on the hot
    simulation loop and its dominant cost is serialization, not I/O.
    """
    data = json.dumps(document, separators=(",", ":")).encode("utf-8") + b"\n"
    return atomic_write_bytes(path, data)


def write_npz(path: str | os.PathLike[str], arrays: dict[str, np.ndarray]) -> int:
    """Atomically write ``arrays`` as an uncompressed ``.npz``.

    Uncompressed on purpose: checkpoints sit on the hot simulation loop
    and the ≤5 % overhead budget buys fsyncs, not deflate passes.
    Returns the number of bytes written.
    """
    buffer = io.BytesIO()
    np.savez(buffer, **arrays)
    return atomic_write_bytes(path, buffer.getvalue())
