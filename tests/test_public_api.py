"""Guard rails on the public API surface.

Downstream users import from ``repro`` directly; this test pins the
names that constitute the supported surface so an accidental removal or
rename fails loudly here rather than in user code.
"""

from __future__ import annotations

import pytest


EXPECTED_ROOT_API = [
    # core
    "ThermalJoin",
    "PGrid",
    "TGrid",
    "HillClimbingTuner",
    # joins
    "SpatialJoinAlgorithm",
    "JoinResult",
    "JoinStatistics",
    "NestedLoopJoin",
    "PlaneSweepJoin",
    "PBSMJoin",
    "EGOJoin",
    "MXCIFOctreeJoin",
    "LooseOctreeJoin",
    "SynchronousRTreeJoin",
    "CRTreeJoin",
    "TouchJoin",
    "IndexedNestedLoopRTreeJoin",
    "ST2BJoin",
    "STRTree",
    "BPlusTree",
    # engine
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "resolve_executor",
    "JoinPlan",
    "JoinTask",
    "execute_step",
    # datasets
    "SpatialDataset",
    "RandomTranslation",
    "ClusterDrift",
    "BranchJitter",
    "make_uniform_workload",
    "make_clustered_workload",
    "make_neural_workload",
    "save_dataset",
    "load_dataset",
    # simulation
    "SimulationRunner",
    "StepRecord",
    "speedup",
    "speedup_table",
    # analysis
    "expected_partners_per_object",
    "measured_selectivity",
]


@pytest.mark.parametrize("name", EXPECTED_ROOT_API)
def test_root_export_present(name):
    import repro

    assert getattr(repro, name) is not None


def test_lazy_surface_matches_api_all():
    """Every ``_api.__all__`` name resolves through ``repro.__getattr__``.

    Catches drift between the aggregated re-export module and the lazy
    root surface when new public names (e.g. engine classes) are added.
    """
    import repro
    from repro import _api

    for name in _api.__all__:
        assert getattr(repro, name) is getattr(_api, name), name
    # And the eagerly-bound root names stay disjoint from the lazy ones,
    # so no name silently shadows a different object.
    overlap = set(repro.__all__) & set(_api.__all__)
    assert not overlap, f"names bound both eagerly and lazily: {sorted(overlap)}"


def test_unknown_attribute_raises_attributeerror():
    import repro

    with pytest.raises(AttributeError):
        repro.DoesNotExist  # noqa: B018

    with pytest.raises(AttributeError):
        repro._private_thing  # noqa: B018


def test_join_algorithms_share_interface():
    """Every join exposes the full SpatialJoinAlgorithm contract."""
    import repro

    algorithms = [
        repro.ThermalJoin,
        repro.NestedLoopJoin,
        repro.PlaneSweepJoin,
        repro.PBSMJoin,
        repro.EGOJoin,
        repro.MXCIFOctreeJoin,
        repro.LooseOctreeJoin,
        repro.SynchronousRTreeJoin,
        repro.CRTreeJoin,
        repro.TouchJoin,
        repro.IndexedNestedLoopRTreeJoin,
        repro.ST2BJoin,
    ]
    for cls in algorithms:
        for method in ("step", "join_pairs", "distance_join", "neighbors",
                       "memory_footprint"):
            assert callable(getattr(cls, method)), f"{cls.__name__}.{method}"
        assert isinstance(cls.name, str) and cls.name


def test_version_string():
    import repro

    assert repro.__version__.count(".") == 2
