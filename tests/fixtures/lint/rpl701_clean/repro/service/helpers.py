import time


def settle() -> None:
    time.sleep(0.05)
