"""Synchronous helper: per-file analysis sees nothing async here."""

import time


def settle() -> None:
    time.sleep(0.05)
