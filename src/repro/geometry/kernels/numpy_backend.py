"""Vectorised numpy implementations of the verify-kernel primitives.

This backend is the repository's **permanent oracle**: every other
backend must match its emitted pair sets and counters bit-for-bit (the
parity suite in ``tests/test_kernels.py`` enforces this).  It is also
the default — always available, no optional dependencies.

The implementations consolidate what used to live in four places:

* the batched group joins of the former ``repro.geometry.batch``
  (Python-level loops with one numpy call per group pair would drown in
  call overhead, so many group pairs are evaluated per numpy call);
* the cell-pair sweep with the paper's enclosure shortcut from
  ``repro.core.celljoin`` (Section 4.2.1's "optimized variant of the
  plane-sweep approach", minus the legacy nested thread pool — chunk
  parallelism belongs to the engine executors);
* the partitioned global plane sweep's strip + carry predicate that was
  inlined in ``engine/plan.py::SweepStripTask``;
* the hot-cell combinatorial emission.

Overlap-test accounting (the machine-independent cost metric of the
paper's Figure 7(c)) is preserved exactly:

* ``count="full"`` — nested-loop accounting: every candidate pair is
  charged one overlap test (EGO's per-cell nested loops, octree
  node-vs-ancestor comparisons, R-Tree leaf processing);
* ``count="x-sweep"`` — forward plane-sweep accounting: only candidates
  whose x-intervals overlap are charged (PBSM's per-partition sweep,
  THERMAL-JOIN's external join); group object lists must then be sorted
  by lower x bound.

Emission goes through an ``on_pairs`` callback (group joins) or a
:class:`~repro.geometry.pairs.PairAccumulator` (sweeps), so algorithms
can layer their own deduplication — PBSM's reference-point test — on
the matching pairs of each batch.
"""

from __future__ import annotations

import numpy as np

from typing import TYPE_CHECKING, Callable

from repro.geometry.chunking import chunk_edges_by_volume
from repro.geometry.mbr import encloses
from repro.geometry.sweep import sweep_self, window_pairs

if TYPE_CHECKING:
    from repro.geometry.pairs import PairAccumulator

__all__ = [
    "PairCallback",
    "self_join_groups",
    "cross_join_groups",
    "cell_pair_sweep",
    "strip_sweep",
    "hot_cell_emit",
]

#: Per-batch emission callback: ``(left_ids, right_ids, pair_index)``.
PairCallback = Callable[[np.ndarray, np.ndarray, np.ndarray], None]

#: Upper bound on candidate object pairs materialised per numpy batch.
DEFAULT_CHUNK_CANDIDATES = 2_000_000


def _expand_windows(starts: np.ndarray, stops: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Flat enumeration of ``[starts, stops)`` windows: (row, position)."""
    counts = np.maximum(stops - starts, 0)
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy()
    rows = np.repeat(np.arange(starts.size, dtype=np.int64), counts)
    ends = np.cumsum(counts)
    positions = (
        np.arange(total, dtype=np.int64)
        - np.repeat(ends - counts, counts)
        + np.repeat(starts, counts)
    )
    return rows, positions


class _Columns:
    """Per-column contiguous copies of one side's grouped boxes.

    Candidate evaluation gathers individual coordinate columns by
    *position* in the grouped order; contiguous 1-D gathers are several
    times cheaper than row gathers on ``(n, 3)`` arrays, and object ids
    are only materialised for the surviving pairs.
    """

    __slots__ = ("cat", "xlo", "xhi", "ylo", "yhi", "zlo", "zhi")

    def __init__(self, lo: np.ndarray, hi: np.ndarray, cat: np.ndarray) -> None:
        self.cat = cat
        ordered_lo = lo[cat]
        ordered_hi = hi[cat]
        self.xlo = np.ascontiguousarray(ordered_lo[:, 0])
        self.xhi = np.ascontiguousarray(ordered_hi[:, 0])
        self.ylo = np.ascontiguousarray(ordered_lo[:, 1])
        self.yhi = np.ascontiguousarray(ordered_hi[:, 1])
        self.zlo = np.ascontiguousarray(ordered_lo[:, 2])
        self.zhi = np.ascontiguousarray(ordered_hi[:, 2])


def _test_and_emit(
    side_a: _Columns,
    side_b: _Columns,
    left_pos: np.ndarray,
    right_pos: np.ndarray,
    pair_groups: np.ndarray,
    count: str,
    on_pairs: PairCallback,
) -> int:
    """Shared candidate evaluation on positional indices.

    Tests dimensions progressively (x first, y/z on the survivors) and
    gathers object ids only for the pairs that overlap.  Returns the
    charged test count under the requested accounting.
    """
    x_overlap = np.logical_and(
        side_a.xlo[left_pos] < side_b.xhi[right_pos],
        side_b.xlo[right_pos] < side_a.xhi[left_pos],
    )
    # "x-sweep" charges only the x-overlapping candidates.
    tests = int(left_pos.size) if count == "full" else int(x_overlap.sum())
    left_pos = left_pos[x_overlap]
    right_pos = right_pos[x_overlap]
    if left_pos.size == 0:
        return tests
    pair_groups = pair_groups[x_overlap]
    keep = np.logical_and(
        np.logical_and(
            side_a.ylo[left_pos] < side_b.yhi[right_pos],
            side_b.ylo[right_pos] < side_a.yhi[left_pos],
        ),
        np.logical_and(
            side_a.zlo[left_pos] < side_b.zhi[right_pos],
            side_b.zlo[right_pos] < side_a.zhi[left_pos],
        ),
    )
    if keep.any():
        on_pairs(
            side_a.cat[left_pos[keep]],
            side_b.cat[right_pos[keep]],
            pair_groups[keep],
        )
    return tests


def cross_join_groups(
    lo: np.ndarray,
    hi: np.ndarray,
    cat_a: np.ndarray,
    starts_a: np.ndarray,
    stops_a: np.ndarray,
    cat_b: np.ndarray,
    starts_b: np.ndarray,
    stops_b: np.ndarray,
    pair_a: np.ndarray,
    pair_b: np.ndarray,
    on_pairs: PairCallback,
    count: str = "full",
    chunk_candidates: int = DEFAULT_CHUNK_CANDIDATES,
) -> int:
    """Join group ``pair_a[k]`` of side A against ``pair_b[k]`` of side B.

    Parameters
    ----------
    lo, hi:
        Global box arrays (shared by both sides).
    cat_a, starts_a, stops_a:
        Side A: concatenated object ids and per-group ranges.
    cat_b, starts_b, stops_b:
        Side B grouping (may be the same arrays as side A).
    pair_a, pair_b:
        Group-index arrays naming the group pairs to join.
    on_pairs:
        ``on_pairs(left_ids, right_ids, pair_index)`` called per batch
        with the overlapping pairs; ``pair_index`` gives each pair's
        position in ``pair_a``/``pair_b`` (for per-pair metadata such as
        PBSM's partition bounds).
    count:
        ``"full"`` or ``"x-sweep"`` (see module docstring).

    Returns
    -------
    int
        Total overlap tests charged.
    """
    if count not in ("full", "x-sweep"):
        raise ValueError(f"unknown count mode {count!r}")
    pair_a = np.asarray(pair_a, dtype=np.int64)
    pair_b = np.asarray(pair_b, dtype=np.int64)
    if pair_a.size == 0:
        return 0
    sizes_a = (stops_a - starts_a)[pair_a]
    sizes_b = (stops_b - starts_b)[pair_b]
    counts = sizes_a * sizes_b
    edges = chunk_edges_by_volume(counts, max_volume=chunk_candidates)
    side_a = _Columns(lo, hi, cat_a)
    side_b = side_a if cat_b is cat_a else _Columns(lo, hi, cat_b)

    tests = 0
    for e in range(len(edges) - 1):
        sel = slice(int(edges[e]), int(edges[e + 1]))
        c_counts = counts[sel]
        total = int(c_counts.sum())
        if total == 0:
            continue
        c_pair_a = pair_a[sel]
        c_pair_b = pair_b[sel]
        # Nested window expansion: every (group pair, A-member) row, then
        # each row's B window — avoids per-candidate integer division.
        row_of_a, a_positions = _expand_windows(
            starts_a[c_pair_a], stops_a[c_pair_a]
        )
        a_row_idx, right_pos = _expand_windows(
            starts_b[c_pair_b][row_of_a], stops_b[c_pair_b][row_of_a]
        )
        left_pos = a_positions[a_row_idx]
        pair_groups = row_of_a[a_row_idx] + int(edges[e])
        tests += _test_and_emit(
            side_a, side_b, left_pos, right_pos, pair_groups, count, on_pairs
        )
    return tests


def self_join_groups(
    lo: np.ndarray,
    hi: np.ndarray,
    cat: np.ndarray,
    starts: np.ndarray,
    stops: np.ndarray,
    groups: np.ndarray,
    on_pairs: PairCallback,
    count: str = "full",
    chunk_candidates: int = DEFAULT_CHUNK_CANDIDATES,
) -> int:
    """All unordered object pairs within each listed group.

    Same contract as :func:`cross_join_groups` with both sides equal;
    candidates enumerate only the strict upper triangle of each group, so
    ``count="full"`` charges the nested-loop's ``k (k - 1) / 2`` tests
    per group.  ``pair_index`` passed to ``on_pairs`` is the position in
    ``groups``.
    """
    if count not in ("full", "x-sweep"):
        raise ValueError(f"unknown count mode {count!r}")
    groups = np.asarray(groups, dtype=np.int64)
    if groups.size == 0:
        return 0
    g_starts = starts[groups]
    g_stops = stops[groups]
    sizes = g_stops - g_starts
    counts = sizes * (sizes - 1) // 2
    edges = chunk_edges_by_volume(counts, max_volume=chunk_candidates)
    side = _Columns(lo, hi, cat)

    tests = 0
    for e in range(len(edges) - 1):
        sel = slice(int(edges[e]), int(edges[e + 1]))
        c_starts = g_starts[sel]
        c_stops = g_stops[sel]
        if int(counts[sel].sum()) == 0:
            continue
        # Enumerate member positions, then pair each with the remainder
        # of its own group (strict upper triangle).
        row_of_pos, positions = _expand_windows(c_starts, c_stops)
        left_row, right_pos = _expand_windows(
            positions + 1, np.repeat(c_stops, c_stops - c_starts)
        )
        if left_row.size == 0:
            continue
        left_pos = positions[left_row]
        pair_groups = row_of_pos[left_row] + int(edges[e])
        tests += _test_and_emit(
            side, side, left_pos, right_pos, pair_groups, count, on_pairs
        )
    return tests


def _bisect_runs(
    values: np.ndarray, targets: np.ndarray, lo: np.ndarray, hi: np.ndarray, strict: bool
) -> np.ndarray:
    """Vectorised binary search inside per-row ranges of ``values``.

    For each row ``k`` finds, within ``values[lo[k]:hi[k]]`` (each run
    individually sorted ascending), the first index whose value is
    ``> targets[k]`` (``strict=True``) or ``>= targets[k]``
    (``strict=False``).  This is the batched equivalent of the forward
    plane sweep's window location: thousands of tiny ``searchsorted``
    calls collapsed into ~log2(run length) vectorised passes.
    """
    lo = lo.copy()
    hi = hi.copy()
    if lo.size == 0:
        return lo
    span = int((hi - lo).max())
    guard = values.shape[0] - 1
    for _ in range(max(span, 1).bit_length()):
        active = lo < hi
        if not active.any():
            break
        mid = (lo + hi) >> 1
        v = values[np.minimum(mid, guard)]
        go_right = (v <= targets) if strict else (v < targets)
        go_right &= active
        stay = active & ~go_right
        lo[go_right] = mid[go_right] + 1
        hi[stay] = mid[stay]
    return lo


def cell_pair_sweep(
    lo: np.ndarray,
    hi: np.ndarray,
    cat: np.ndarray,
    starts: np.ndarray,
    stops: np.ndarray,
    center_lo: np.ndarray,
    center_hi: np.ndarray,
    pair_a: np.ndarray,
    pair_b: np.ndarray,
    accumulator: PairAccumulator,
    chunk_candidates: int = DEFAULT_CHUNK_CANDIDATES,
    enclosure_shortcut: bool = True,
) -> tuple[int, int]:
    """External join over *many* cell pairs in vectorised batches.

    Semantically identical to joining each ``(pair_a[k], pair_b[k])``
    cell pair with the sequential optimized sweep
    (:func:`repro.core.celljoin.join_sorted_lists`), but with all
    candidate object pairs of a batch generated and tested at once —
    P-Grid cells hold few objects each, so per-pair numpy calls would
    drown in call overhead.

    The overlap-test count reproduces the plane sweep's accounting: a
    candidate pair is charged one test when its x-intervals overlap (the
    pairs the forward sweep would actually visit); x-disjoint candidates
    are pruned for free by the sort in the sequential formulation and are
    therefore not charged here either.  The enclosure shortcut is applied
    first exactly as in the sequential version: objects of cell A whose
    MBR encloses cell B's tight center bounds pair with all of B without
    any tests.

    Parameters
    ----------
    lo, hi:
        Global box arrays.
    cat, starts, stops:
        Grouped object indices and per-cell ranges (``PGrid.cat`` etc.).
    center_lo, center_hi:
        Per-cell tight center bounds, aligned with ``starts``.
    pair_a, pair_b:
        Cell-slot index arrays naming the cell pairs to join.
    accumulator:
        Pair accumulator receiving the results.
    chunk_candidates:
        Upper bound on candidate object pairs materialised per batch.
    enclosure_shortcut:
        Disable to force every candidate through the sweep test (the
        ablation benchmark's knob).

    Returns
    -------
    tuple
        ``(tests, shortcut_pairs)`` summed over all cell pairs.
    """
    pair_a = np.asarray(pair_a, dtype=np.int64)
    pair_b = np.asarray(pair_b, dtype=np.int64)
    if pair_a.size == 0:
        return 0, 0
    sizes = stops - starts
    size_a = sizes[pair_a]
    size_b = sizes[pair_b]
    counts = size_a * size_b

    # Per-column contiguous copies in grouped order: candidate tests then
    # gather 1-D columns by position, and object ids are materialised only
    # for the surviving pairs.
    ordered_lo = lo[cat]
    ordered_hi = hi[cat]
    xlo = np.ascontiguousarray(ordered_lo[:, 0])
    xhi = np.ascontiguousarray(ordered_hi[:, 0])
    ylo = np.ascontiguousarray(ordered_lo[:, 1])
    yhi = np.ascontiguousarray(ordered_hi[:, 1])
    zlo = np.ascontiguousarray(ordered_lo[:, 2])
    zhi = np.ascontiguousarray(ordered_hi[:, 2])

    chunk_edges = chunk_edges_by_volume(counts, max_volume=chunk_candidates)

    def emit_candidates(left_pos: np.ndarray, right_pos: np.ndarray) -> None:
        """Evaluate y/z on x-overlapping candidates and emit."""
        yz = np.logical_and(
            np.logical_and(
                ylo[left_pos] < yhi[right_pos], ylo[right_pos] < yhi[left_pos]
            ),
            np.logical_and(
                zlo[left_pos] < zhi[right_pos], zlo[right_pos] < zhi[left_pos]
            ),
        )
        accumulator.extend(cat[left_pos[yz]], cat[right_pos[yz]])

    total_tests = 0
    total_shortcuts = 0
    for e in range(len(chunk_edges) - 1):
        sel = slice(int(chunk_edges[e]), int(chunk_edges[e + 1]))
        c_counts = counts[sel]
        if int(c_counts.sum()) == 0:
            continue
        c_pair_a = pair_a[sel]
        c_pair_b = pair_b[sel]

        # ---- Direction 1: scan from A over B (xlo_b in [a.xlo, a.xhi)).
        # Rows are (cell pair, A-member); the sweep windows inside each
        # B run are located by batched binary search, so x-disjoint
        # candidates are never materialised — as in the pointer-walking
        # sweep the accounting models.
        row_of_a, a_positions = window_pairs(starts[c_pair_a], stops[c_pair_a])
        b_start_rows = starts[c_pair_b][row_of_a]
        b_stop_rows = stops[c_pair_b][row_of_a]
        a_xlo = xlo[a_positions]
        a_xhi = xhi[a_positions]

        full_flags = None
        if enclosure_shortcut:
            # The enclosure predicate depends only on (A-object, B-cell):
            # evaluate per row and emit those rows against all of B.
            bc_lo = center_lo[c_pair_b[row_of_a]]
            bc_hi = center_hi[c_pair_b[row_of_a]]
            flags = encloses(ordered_lo[a_positions], ordered_hi[a_positions], bc_lo, bc_hi)
            if flags.any():
                full_flags = flags  # original (pair, A-member) enumeration
                er = np.flatnonzero(flags)
                rr, b_pos_full = window_pairs(b_start_rows[er], b_stop_rows[er])
                accumulator.extend(cat[a_positions[er][rr]], cat[b_pos_full])
                total_shortcuts += int(rr.size)
                keep_rows = ~flags
                a_positions = a_positions[keep_rows]
                b_start_rows = b_start_rows[keep_rows]
                b_stop_rows = b_stop_rows[keep_rows]
                a_xlo = a_xlo[keep_rows]
                a_xhi = a_xhi[keep_rows]

        left_edge = _bisect_runs(xlo, a_xlo, b_start_rows, b_stop_rows, strict=False)
        right_edge = _bisect_runs(xlo, a_xhi, left_edge, b_stop_rows, strict=False)
        r1, right_pos = window_pairs(left_edge, right_edge)
        total_tests += int(r1.size)
        if r1.size:
            emit_candidates(a_positions[r1], right_pos)

        # ---- Direction 2: scan from B over A (xlo_a in (b.xlo, b.xhi);
        # ties on xlo break toward direction 1, so no pair repeats).
        row_of_b, b_positions = window_pairs(starts[c_pair_b], stops[c_pair_b])
        a_start_rows = starts[c_pair_a][row_of_b]
        a_stop_rows = stops[c_pair_a][row_of_b]
        left_edge = _bisect_runs(
            xlo, xlo[b_positions], a_start_rows, a_stop_rows, strict=True
        )
        right_edge = _bisect_runs(
            xlo, xhi[b_positions], left_edge, a_stop_rows, strict=False
        )
        r2, a_pos2 = window_pairs(left_edge, right_edge)
        if r2.size and full_flags is not None:
            # Pairs whose A-object was already emitted via the enclosure
            # shortcut must not be rediscovered from the B side: map each
            # candidate's A position back to its (pair, A-member) flag in
            # the original (pre-filter) row enumeration.
            pair_idx = row_of_b[r2]
            a_offset = a_pos2 - starts[c_pair_a][pair_idx]
            sizes_a_sel = size_a[sel]
            block_starts = np.cumsum(sizes_a_sel) - sizes_a_sel
            keep = ~full_flags[block_starts[pair_idx] + a_offset]
            r2 = r2[keep]
            a_pos2 = a_pos2[keep]
        total_tests += int(r2.size)
        if r2.size:
            emit_candidates(a_pos2, b_positions[r2])
    return total_tests, total_shortcuts


def strip_sweep(
    lo: np.ndarray,
    hi: np.ndarray,
    ids: np.ndarray,
    start: int,
    stop: int,
    carry: np.ndarray,
    accumulator: PairAccumulator,
) -> int:
    """One strip of the partitioned global plane sweep.

    ``lo``/``hi``/``ids`` are the *whole* dataset sorted ascending by
    lower x bound; the strip owns the contiguous sorted positions
    ``[start, stop)``.  Runs the forward sweep within the strip plus the
    carried-in windows of ``carry`` (sorted positions ``< start`` whose
    x-extent reaches into the strip), so each x-overlapping pair is
    charged exactly once, in the strip of its later object — the global
    sweep's candidate set and test count, decomposed.

    Returns the number of overlap tests charged.
    """
    i_ids, j_ids, tests = sweep_self(lo[start:stop], hi[start:stop], ids[start:stop])
    accumulator.extend(i_ids, j_ids)

    if carry.size:
        # Each carried object scans strip members while xlo < its xhi
        # (members' xlo ≥ the carried xlo by sort order).
        strip_xlo = lo[start:stop, 0]
        windows = np.searchsorted(strip_xlo, hi[carry, 0], side="left")
        left, right = window_pairs(
            np.zeros(carry.size, dtype=np.int64), windows.astype(np.int64)
        )
        tests += int(left.size)
        if left.size:
            c_pos = carry[left]
            s_pos = right + start
            keep = np.logical_and(
                np.logical_and(
                    lo[c_pos, 1] < hi[s_pos, 1], lo[s_pos, 1] < hi[c_pos, 1]
                ),
                np.logical_and(
                    lo[c_pos, 2] < hi[s_pos, 2], lo[s_pos, 2] < hi[c_pos, 2]
                ),
            )
            accumulator.extend(ids[c_pos[keep]], ids[s_pos[keep]])
    return tests


def hot_cell_emit(
    cat: np.ndarray,
    starts: np.ndarray,
    stops: np.ndarray,
    hot_slots: np.ndarray,
    accumulator: PairAccumulator,
) -> int:
    """Emit all within-cell combinations for many hot-spot cells at once.

    Vectorised equivalent of running ``all_combinations`` per hot cell:
    for every member position the "window" is the rest of its cell, so
    one :func:`window_pairs` expansion enumerates every unordered pair of
    every hot cell.  Returns the number of pairs emitted (all without
    overlap tests — the hot-spot guarantee).
    """
    hot_slots = np.asarray(hot_slots, dtype=np.int64)
    if hot_slots.size == 0:
        return 0
    h_starts = starts[hot_slots]
    h_stops = stops[hot_slots]
    sizes = h_stops - h_starts
    # Enumerate member positions of all hot cells...
    _cell_row, positions = window_pairs(h_starts, h_stops)
    # ...and pair each position with the remainder of its own cell.
    pos_stops = np.repeat(h_stops, sizes)
    left_row, right_pos = window_pairs(positions + 1, pos_stops)
    if left_row.size == 0:
        return 0
    accumulator.extend(cat[positions[left_row]], cat[right_pos])
    return int(left_row.size)
