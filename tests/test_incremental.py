"""Incremental pair-set maintenance: bit-identity with the full re-join.

The tentpole contract of the motion-delta pipeline (ROADMAP item 2):
whatever the motion model, the executor backend or the churn regime,
the maintained pair set after every step is *bit-identical* to what a
from-scratch re-join of the current positions produces, and the
overlap-test accounting stays deterministic.  These tests drive the
whole pipeline — ``MotionModel.step`` deltas, ``SpatialDataset.commit_motion``
versioning, ``MaintainedPairSet`` set algebra, ``ChurnPolicy`` mode
decisions, ``ThermalJoin.step_delta`` and the runner's delta threading —
against the brute-force oracle and a clean full-join reference.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ThermalJoin
from repro.datasets import (
    IntermittentTranslation,
    MotionDelta,
    RandomTranslation,
    make_uniform_dataset,
)
from repro.datasets.motion import BranchJitter, ClusterDrift
from repro.engine import ChurnPolicy, install_fault_plan
from repro.engine import faults as faults_module
from repro.geometry import MaintainedPairSet, brute_force_pairs, pack_pairs
from repro.geometry.pairs import canonicalize_pairs
from repro.joins import PlaneSweepJoin
from repro.simulation import SimulationRunner

BOUNDS = (np.zeros(3), np.full(3, 140.0))


def small_dataset(n=350, seed=7):
    return make_uniform_dataset(n, width=15.0, bounds=BOUNDS, seed=seed)


def oracle_keys(dataset):
    lo, hi = dataset.boxes()
    i_idx, j_idx = brute_force_pairs(lo, hi)
    return pack_pairs(i_idx, j_idx, len(dataset))


def result_keys(result, n):
    lo, hi = canonicalize_pairs(
        np.asarray(result.pairs[0]), np.asarray(result.pairs[1])
    )
    return np.unique(pack_pairs(lo, hi, n))


MOTIONS = {
    "intermittent-low": lambda ds: IntermittentTranslation(
        ds, distance=4.0, move_fraction=0.05, seed=3
    ),
    "intermittent-high": lambda ds: IntermittentTranslation(
        ds, distance=20.0, move_fraction=0.4, seed=3
    ),
    "random-translation": lambda ds: RandomTranslation(ds, distance=6.0, seed=3),
    "cluster-drift": lambda ds: ClusterDrift(
        ds, np.arange(len(ds)) % 7, distance=5.0, seed=3
    ),
    "branch-jitter": lambda ds: BranchJitter(
        ds, np.arange(len(ds)) % 7, drift=2.0, jitter=0.5, seed=3
    ),
}


def run_maintained(motion_name, n_steps=6, executor="serial", **algo_kwargs):
    """Drive a maintained ThermalJoin through ``n_steps`` of motion.

    Returns ``(per-step packed keys, per-step (n_results, overlap_tests),
    per-step modes)`` with every step's keys checked against the oracle.
    """
    dataset = small_dataset()
    motion = MOTIONS[motion_name](dataset)
    algorithm = ThermalJoin(
        pair_maintenance=True, executor=executor, **algo_kwargs
    )
    delta = None
    keys, series, modes = [], [], []
    for _ in range(n_steps):
        result = algorithm.step_delta(dataset, delta)
        got = result_keys(result, len(dataset))
        assert np.array_equal(got, oracle_keys(dataset))
        keys.append(got)
        series.append((result.n_results, result.stats.overlap_tests))
        modes.append(algorithm._incr["mode"])
        delta = motion.step(dataset)
    algorithm.executor.close()
    return keys, series, modes


# ----------------------------------------------------------------------
# The bit-identity property: every motion model, every executor
# ----------------------------------------------------------------------
class TestBitIdentity:
    @pytest.mark.parametrize("motion_name", sorted(MOTIONS))
    def test_serial_matches_oracle_every_step(self, motion_name):
        _, _, modes = run_maintained(motion_name)
        assert modes[0] == "full"

    @pytest.mark.parametrize("motion_name", ["intermittent-low", "random-translation"])
    def test_thread_backend_matches_serial_series(self, motion_name):
        keys_serial, series_serial, modes_serial = run_maintained(motion_name)
        keys_thread, series_thread, modes_thread = run_maintained(
            motion_name, executor="thread:2"
        )
        assert series_thread == series_serial
        assert modes_thread == modes_serial
        for a, b in zip(keys_serial, keys_thread, strict=True):
            assert np.array_equal(a, b)

    def test_process_backend_matches_serial_series(self):
        keys_serial, series_serial, modes_serial = run_maintained(
            "intermittent-low"
        )
        keys_process, series_process, modes_process = run_maintained(
            "intermittent-low", executor="process:2"
        )
        assert series_process == series_serial
        assert modes_process == modes_serial
        for a, b in zip(keys_serial, keys_process, strict=True):
            assert np.array_equal(a, b)

    def test_incremental_path_actually_runs(self):
        _, _, modes = run_maintained("intermittent-low", n_steps=8)
        assert "incremental" in modes

    def test_repeat_run_is_deterministic(self):
        first = run_maintained("intermittent-low")
        second = run_maintained("intermittent-low")
        assert first[1] == second[1]
        assert first[2] == second[2]


# ----------------------------------------------------------------------
# Fallback semantics
# ----------------------------------------------------------------------
class TestFallback:
    def test_forced_fallback_matches_plain_full_join(self):
        """churn_threshold=0.0 must reproduce the plain re-join exactly —
        result keys, overlap tests and tuner resolution."""
        keys, series, modes = run_maintained(
            "intermittent-low", churn_threshold=0.0
        )
        assert "incremental" not in modes
        assert "fallback" in modes

        dataset = small_dataset()
        motion = MOTIONS["intermittent-low"](dataset)
        plain = ThermalJoin()
        for step_keys, (n_results, overlap_tests) in zip(keys, series, strict=True):
            result = plain.step(dataset)
            assert result.n_results == n_results
            assert result.stats.overlap_tests == overlap_tests
            assert np.array_equal(result_keys(result, len(dataset)), step_keys)
            motion.step(dataset)

    def test_fallback_counter_increments(self):
        dataset = small_dataset()
        motion = MOTIONS["intermittent-low"](dataset)
        algorithm = ThermalJoin(pair_maintenance=True, churn_threshold=0.0)
        delta = None
        for _ in range(5):
            algorithm.step_delta(dataset, delta)
            delta = motion.step(dataset)
        counters = algorithm.metrics.snapshot()["incremental"]
        assert counters["fallbacks"] > 0
        assert counters["incremental_steps"] == 0

    def test_none_delta_runs_full(self):
        dataset = small_dataset()
        algorithm = ThermalJoin(pair_maintenance=True)
        algorithm.step_delta(dataset, None)
        assert algorithm._incr["mode"] == "full"

    def test_stale_delta_runs_full(self):
        """A delta that skipped a committed motion step is inapplicable."""
        dataset = small_dataset()
        motion = MOTIONS["intermittent-low"](dataset)
        algorithm = ThermalJoin(pair_maintenance=True, resolution=4)
        algorithm.step_delta(dataset, None)
        motion.step(dataset)  # committed but never joined
        stale = motion.step(dataset)
        result = algorithm.step_delta(dataset, stale)
        assert algorithm._incr["mode"] == "full"
        assert np.array_equal(
            result_keys(result, len(dataset)), oracle_keys(dataset)
        )

    def test_foreign_dataset_delta_runs_full(self):
        dataset = small_dataset()
        other = small_dataset(seed=8)
        motion = MOTIONS["intermittent-low"](other)
        algorithm = ThermalJoin(pair_maintenance=True, resolution=4)
        algorithm.step_delta(dataset, None)
        foreign = motion.step(other)
        algorithm.step_delta(dataset, foreign)
        assert algorithm._incr["mode"] == "full"


# ----------------------------------------------------------------------
# Fault injection: recovery must not perturb the maintained set
# ----------------------------------------------------------------------
class TestFaults:
    @pytest.fixture(autouse=True)
    def _clean_fault_state(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        install_fault_plan(None)
        faults_module._env_cache = (None, None)
        yield
        install_fault_plan(None)
        faults_module._env_cache = (None, None)

    def test_injected_raise_is_invisible_in_results(self, monkeypatch):
        reference = run_maintained("intermittent-low", executor="thread:2")
        monkeypatch.setenv("REPRO_FAULTS", "raise@1,raise@4")
        faults_module._env_cache = (None, None)
        faulted = run_maintained("intermittent-low", executor="thread:2")
        assert faulted[1] == reference[1]
        assert faulted[2] == reference[2]
        for a, b in zip(reference[0], faulted[0], strict=True):
            assert np.array_equal(a, b)


# ----------------------------------------------------------------------
# Runner integration: delta threading and the incremental record block
# ----------------------------------------------------------------------
class TestRunnerIntegration:
    def test_runner_series_matches_plain_run(self):
        def workload():
            dataset = small_dataset()
            return dataset, MOTIONS["intermittent-low"](dataset)

        dataset, motion = workload()
        maintained = SimulationRunner(
            dataset, motion, ThermalJoin(pair_maintenance=True, count_only=True)
        )
        records = maintained.run(8)

        dataset, motion = workload()
        plain = SimulationRunner(
            dataset, motion, ThermalJoin(count_only=True)
        )
        plain_records = plain.run(8)

        assert [r.n_results for r in records] == [
            r.n_results for r in plain_records
        ]
        # Tuner decisions must be unaffected by maintenance (incremental
        # steps are gated on convergence and never feed the tuner).
        assert [r.index_counters["tuner"]["resolution"] for r in records] == [
            r.index_counters["tuner"]["resolution"] for r in plain_records
        ]
        modes = [r.incremental["mode"] for r in records]
        assert modes[0] == "full"
        assert "incremental" in modes
        for record in records:
            assert "pairs_reused" in record.incremental
            assert "fallbacks" in record.incremental

    def test_incremental_block_empty_without_provider(self):
        dataset = small_dataset(n=120)
        motion = MOTIONS["intermittent-low"](dataset)
        runner = SimulationRunner(
            dataset, motion, PlaneSweepJoin(count_only=True)
        )
        records = runner.run(2)
        assert all(record.incremental == {} for record in records)

    def test_base_step_delta_ignores_the_delta(self):
        dataset = small_dataset(n=120)
        motion = MOTIONS["intermittent-low"](dataset)
        algorithm = PlaneSweepJoin()
        algorithm.step_delta(dataset, None)
        delta = motion.step(dataset)
        result = algorithm.step_delta(dataset, delta)
        assert np.array_equal(
            result_keys(result, len(dataset)), oracle_keys(dataset)
        )


# ----------------------------------------------------------------------
# Layer units: MotionDelta, commit_motion, MaintainedPairSet, ChurnPolicy
# ----------------------------------------------------------------------
class TestMotionDelta:
    def test_from_positions_diffs_changed_rows(self):
        before = np.zeros((5, 3))
        after = before.copy()
        after[1] += (1.0, 0.0, 0.0)
        after[4] += (0.0, -2.0, 0.0)
        delta = MotionDelta.from_positions(
            before, after, dataset_uid=1, base_version=0, version=1
        )
        assert delta.moved.tolist() == [1, 4]
        assert delta.n_moved == 2
        assert delta.moved_fraction == pytest.approx(0.4)
        assert delta.max_displacement == pytest.approx(2.0)
        assert delta.moved_mask().tolist() == [False, True, False, False, True]
        np.testing.assert_allclose(
            delta.displacement, [(1.0, 0.0, 0.0), (0.0, -2.0, 0.0)]
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            MotionDelta(
                dataset_uid=0,
                base_version=0,
                version=1,
                n_objects=3,
                moved=np.array([2, 1]),  # not strictly increasing
                displacement=np.zeros((2, 3)),
            )
        with pytest.raises(ValueError):
            MotionDelta(
                dataset_uid=0,
                base_version=0,
                version=1,
                n_objects=3,
                moved=np.array([0, 5]),  # out of range
                displacement=np.zeros((2, 3)),
            )
        with pytest.raises(ValueError):
            MotionDelta(
                dataset_uid=0,
                base_version=0,
                version=1,
                n_objects=3,
                moved=np.array([0, 1]),
                displacement=np.zeros((3, 3)),  # shape mismatch
            )

    def test_commit_motion_bumps_version(self):
        dataset = small_dataset(n=50)
        before = dataset.centers.copy()
        dataset.centers[3] += 1.0
        version = dataset.version
        delta = dataset.commit_motion(before)
        assert dataset.version == version + 1
        assert delta.base_version == version
        assert delta.version == dataset.version
        assert delta.dataset_uid == dataset.uid
        assert delta.moved.tolist() == [3]

    def test_commit_motion_rejects_shape_mismatch(self):
        dataset = small_dataset(n=50)
        with pytest.raises(ValueError):
            dataset.commit_motion(np.zeros((3, 3)))

    def test_motion_models_report_exactly_the_moved_rows(self):
        for name, factory in MOTIONS.items():
            dataset = small_dataset(n=80)
            motion = factory(dataset)
            before = dataset.centers.copy()
            delta = motion.step(dataset)
            changed = np.flatnonzero((before != dataset.centers).any(axis=1))
            assert delta.moved.tolist() == changed.tolist(), name
            np.testing.assert_allclose(
                dataset.centers[delta.moved],
                before[delta.moved] + delta.displacement,
                err_msg=name,
            )

    def test_intermittent_translation_is_deterministic(self):
        runs = []
        for _ in range(2):
            dataset = small_dataset(n=80)
            motion = IntermittentTranslation(
                dataset, distance=4.0, move_fraction=0.2, seed=5
            )
            motion.step(dataset)
            motion.step(dataset)
            runs.append(dataset.centers.copy())
        np.testing.assert_array_equal(runs[0], runs[1])

    def test_intermittent_translation_validation(self):
        dataset = small_dataset(n=10)
        with pytest.raises(ValueError):
            IntermittentTranslation(dataset, distance=-1.0)
        with pytest.raises(ValueError):
            IntermittentTranslation(dataset, move_fraction=1.5)


class TestMaintainedPairSet:
    def test_matches_set_oracle(self):
        rng = np.random.default_rng(0)
        n = 60
        i_idx = rng.integers(0, n, 500)
        j_idx = rng.integers(0, n, 500)
        keep = i_idx != j_idx
        maintained = MaintainedPairSet(n, i_idx[keep], j_idx[keep])
        oracle = {
            (min(a, b), max(a, b))
            for a, b in zip(i_idx[keep].tolist(), j_idx[keep].tolist())
        }
        assert len(maintained) == len(oracle)

        moved = np.zeros(n, dtype=bool)
        moved[rng.choice(n, 10, replace=False)] = True
        dropped = maintained.remove_incident(moved)
        survivors = {
            pair for pair in oracle if not (moved[pair[0]] or moved[pair[1]])
        }
        assert dropped == len(oracle) - len(survivors)

        fresh_i = rng.integers(0, n, 120)
        fresh_j = rng.integers(0, n, 120)
        keep = fresh_i != fresh_j
        added = maintained.merge_delta(fresh_i[keep], fresh_j[keep])
        merged = survivors | {
            (min(a, b), max(a, b))
            for a, b in zip(fresh_i[keep].tolist(), fresh_j[keep].tolist())
        }
        assert len(maintained) == len(merged)
        assert added == len(merged) - len(survivors)
        got = set(zip(*(arr.tolist() for arr in maintained.as_arrays())))
        assert got == merged

    def test_keys_stay_sorted_unique(self):
        maintained = MaintainedPairSet(10, np.array([3, 1]), np.array([1, 3]))
        assert len(maintained) == 1
        maintained.merge_delta(np.array([0, 5, 0]), np.array([2, 4, 2]))
        keys = maintained.packed_keys()
        assert np.all(np.diff(keys) > 0)

    def test_merge_into_empty_set(self):
        maintained = MaintainedPairSet(5, np.array([], dtype=np.int64), np.array([], dtype=np.int64))
        assert len(maintained) == 0
        assert maintained.merge_delta(np.array([0]), np.array([1])) == 1
        assert len(maintained) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            MaintainedPairSet(0, np.array([0]), np.array([1]))
        maintained = MaintainedPairSet(5, np.array([0]), np.array([1]))
        with pytest.raises(ValueError):
            maintained.remove_incident(np.zeros(4, dtype=bool))


class TestChurnPolicy:
    def test_admits_below_threshold(self):
        policy = ChurnPolicy(threshold=0.3, adaptive=False)
        assert policy.admits(0.3)
        assert not policy.admits(0.31)

    def test_forced_fallback_configuration(self):
        policy = ChurnPolicy(threshold=0.0, adaptive=False)
        assert policy.admits(0.0)
        assert not policy.admits(0.01)
        policy.observe_full(1e6)
        policy.observe_incremental(1.0, 0.5)
        assert policy.threshold == 0.0  # non-adaptive: observations ignored

    def test_adaptive_threshold_tracks_break_even(self):
        policy = ChurnPolicy()
        policy.observe_full(1000.0)
        policy.observe_incremental(100.0, 0.1)  # unit cost 1000 → break-even 1.0
        assert policy.threshold == policy.ceiling
        policy = ChurnPolicy()
        policy.observe_full(100.0)
        policy.observe_incremental(1000.0, 0.1)  # unit cost 10000 → 0.01
        assert policy.threshold == policy.floor

    def test_no_motion_step_carries_no_signal(self):
        policy = ChurnPolicy()
        policy.observe_full(100.0)
        policy.observe_incremental(50.0, 0.0)
        assert policy._unit_cost is None

    def test_validation(self):
        with pytest.raises(ValueError):
            ChurnPolicy(threshold=1.5)
        with pytest.raises(ValueError):
            ChurnPolicy(floor=0.5, ceiling=0.2)
        with pytest.raises(ValueError):
            ChurnPolicy(ema=0.0)


class TestEnvOptIn:
    def test_env_var_enables_maintenance(self, monkeypatch):
        monkeypatch.setenv("REPRO_INCREMENTAL", "1")
        assert ThermalJoin().pair_maintenance
        monkeypatch.setenv("REPRO_INCREMENTAL", "off")
        assert not ThermalJoin().pair_maintenance
        monkeypatch.delenv("REPRO_INCREMENTAL")
        assert not ThermalJoin().pair_maintenance

    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_INCREMENTAL", "1")
        assert not ThermalJoin(pair_maintenance=False).pair_maintenance
