"""Simulation driver and metric aggregation."""

from repro.simulation.metrics import converged_at, series, speedup, speedup_table
from repro.simulation.runner import SimulationRunner, StepRecord

__all__ = [
    "SimulationRunner",
    "StepRecord",
    "series",
    "speedup",
    "speedup_table",
    "converged_at",
]
