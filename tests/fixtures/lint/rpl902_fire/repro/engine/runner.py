"""Per-file analysis cannot see what the callee reads in its module."""

from .tasks import work


def run(pool, payload):
    return pool.submit(work, payload).result()
