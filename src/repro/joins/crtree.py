"""CR-Tree join: cache-conscious R-Tree with quantized MBRs (Kim et al. [18]).

The CR-Tree compresses directory entries by storing each child MBR as a
*quantized relative MBR* (QRMBR): coordinates are expressed relative to
the parent node's MBR on a small fixed-point grid (8 bits per coordinate
here).  Quantization shrinks entries from 56 to 14 bytes, fitting more
entries per cache line — the effect the paper's evaluation shows as the
CR-Tree's smaller memory footprint.

The trade-off the paper points out (§2.1): quantized MBRs are
*conservative* — rounded outward — so "the approximated MBRs lead to
more overlap" and the traversal visits (and tests) more node pairs than
an exact R-Tree; exactness is restored at the leaves where the object
MBRs are evaluated precisely.

Configuration follows the paper's parameter sweep: fan-out 11.
"""

from __future__ import annotations

import numpy as np

from repro.joins.base import POINTER_BYTES
from repro.joins.rtree import SynchronousRTreeJoin

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.datasets import SpatialDataset
    from repro.engine import Executor

__all__ = ["CRTreeJoin"]

#: Quantization grid per dimension (8 bits per coordinate).
QUANT_LEVELS = 256
#: Bytes per CR-Tree directory entry: six 8-bit quantized coordinates
#: plus the child pointer.
QRMBR_BYTES = 6


class CRTreeJoin(SynchronousRTreeJoin):
    """Synchronous-traversal self-join over a CR-Tree.

    Identical traversal to :class:`SynchronousRTreeJoin`, but directory
    overlap tests use the quantized, conservatively rounded boxes, and
    the footprint model uses QRMBR entry sizes.
    """

    name = "cr-tree"
    entry_bytes = QRMBR_BYTES + POINTER_BYTES

    def __init__(self, count_only: bool = False, fanout: int = 11, executor: Executor | None = None) -> None:
        super().__init__(count_only=count_only, fanout=fanout, executor=executor)
        self._quantized = None

    def _build(self, dataset: SpatialDataset) -> None:
        super()._build(dataset)
        tree = self._tree
        quantized = []
        top = tree.n_levels - 1
        for level in range(tree.n_levels):
            lo = tree.level_lo[level]
            hi = tree.level_hi[level]
            if level == top:
                # The top level has no parent reference box; keep exact.
                quantized.append((lo, hi))
                continue
            parent = np.arange(lo.shape[0], dtype=np.int64) // tree.fanout
            p_lo = tree.level_lo[level + 1][parent]
            p_hi = tree.level_hi[level + 1][parent]
            cell = (p_hi - p_lo) / QUANT_LEVELS
            safe = np.where(cell > 0, cell, 1.0)
            q_lo = p_lo + np.floor((lo - p_lo) / safe) * safe
            q_hi = p_lo + np.ceil((hi - p_lo) / safe) * safe
            # Conservative despite floating point: never tighter than exact.
            q_lo = np.minimum(q_lo, lo)
            q_hi = np.maximum(q_hi, hi)
            quantized.append((q_lo, q_hi))
        self._quantized = quantized

    def _directory_boxes(self, level: int) -> tuple[np.ndarray, np.ndarray]:
        return self._quantized[level]
