"""Oracle coverage of the derived query surface: distance_join / neighbors.

``distance_join`` and ``neighbors`` are thin reductions onto ``step``
(§3.1 of the paper: a distance self-join is an overlap join on enlarged
extents), so a scheduling or dedup bug in any algorithm's plan shows up
here as a wrong pair set or a malformed adjacency.  Every algorithm in
the repository is checked against the brute-force oracle.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry import brute_force_pairs, pack_pairs, pairs_to_adjacency, unique_pairs

from .test_engine import _factories

DISTANCE = 4.0


@pytest.mark.parametrize("name", sorted(_factories()))
def test_distance_join_matches_enlarged_oracle(name, uniform_varied):
    result = _factories()[name]().distance_join(uniform_varied, DISTANCE)
    n = len(uniform_varied)
    got_i, got_j = unique_pairs(*result.pairs, n)

    # with_enlarged_extent grows each *width* by d (d/2 per side), so two
    # boxes join exactly when their per-dimension gap is below d.
    lo, hi = uniform_varied.boxes()
    exp_i, exp_j = brute_force_pairs(lo - DISTANCE / 2.0, hi + DISTANCE / 2.0)

    got = pack_pairs(got_i, got_j, n)
    exp = pack_pairs(exp_i, exp_j, n)
    assert np.array_equal(got, exp), (
        f"{name}: distance_join mismatch: got {got.size}, expected {exp.size}"
    )
    # Distance zero degenerates to the plain overlap join.
    zero = _factories()[name]().distance_join(uniform_varied, 0.0)
    plain_i, plain_j = brute_force_pairs(lo, hi)
    assert np.array_equal(
        pack_pairs(*unique_pairs(*zero.pairs, n), n),
        pack_pairs(plain_i, plain_j, n),
    )


@pytest.mark.parametrize("name", sorted(_factories()))
def test_neighbors_matches_oracle_adjacency(name, clustered_small):
    offsets, neighbors = _factories()[name]().neighbors(clustered_small)
    n = len(clustered_small)

    lo, hi = clustered_small.boxes()
    exp_offsets, exp_neighbors = pairs_to_adjacency(*brute_force_pairs(lo, hi), n)

    assert offsets.shape == (n + 1,)
    assert np.array_equal(offsets, exp_offsets), f"{name}: CSR offsets differ"
    assert np.array_equal(neighbors, exp_neighbors), f"{name}: neighbour lists differ"
    # The adjacency is symmetric and irreflexive by construction.
    for k in range(n):
        partners = neighbors[offsets[k] : offsets[k + 1]]
        assert k not in partners
        assert np.all(np.diff(partners) > 0)


def test_neighbors_rejects_count_only(uniform_varied):
    from repro.joins import NestedLoopJoin

    with pytest.raises(RuntimeError):
        NestedLoopJoin(count_only=True).neighbors(uniform_varied)
