"""An in-memory B+-Tree over (int64 key, int64 value) entries.

Substrate for the ST2B-style moving-object index baseline (§2.2 of the
paper): the ST2B-Tree "maps all objects on a uniform grid and indexes
each object along with its identifier in a B+-Tree (cell identifiers are
assigned based on a space-filling curve)".  Joining through such an
index means running many small range scans per time step, and its
maintenance cost is per-object deletes/inserts — the overheads the
paper contrasts with THERMAL-JOIN's grid recycling.

This is a real B+-Tree, not a dict in disguise:

* sorted keys in every node, ``bisect``-based descent;
* leaf splitting and (on deletion) borrowing/merging with siblings,
  maintaining the minimum-occupancy invariant;
* leaves linked left-to-right so range scans stream across them;
* duplicate keys allowed — entries are unique on ``(key, value)``.

The implementation favours clarity over micro-optimisation; the join
baselines batch their work per cell so tree operations are not the
bottleneck at reproduction scale.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right

__all__ = ["BPlusTree"]


class _Leaf:
    __slots__ = ("entries", "next")

    def __init__(self) -> None:
        #: sorted list of (key, value) tuples
        self.entries: list[tuple[int, int]] = []
        #: next leaf in key order (the leaf chain for range scans)
        self.next: _Leaf | None = None


class _Internal:
    __slots__ = ("keys", "children")

    def __init__(self) -> None:
        #: separator keys — composite ``(key, value)`` tuples so that
        #: duplicate keys route deterministically: ``children[i]`` holds
        #: entries < ``keys[i]``, ``children[i+1]`` entries >= ``keys[i]``.
        self.keys: list[tuple[int, int]] = []
        self.children: list[_Node] = []


#: A tree node: leaves hold entries, internals route by separator keys.
_Node = _Leaf | _Internal


class BPlusTree:
    """B+-Tree mapping ``int`` keys to sets of ``int`` values.

    Parameters
    ----------
    order:
        Maximum entries per leaf and children per internal node; nodes
        split when they exceed it and merge/borrow below ``order // 2``.
    """

    def __init__(self, order: int = 32) -> None:
        if order < 4:
            raise ValueError(f"order must be at least 4, got {order}")
        self.order = int(order)
        self._root: _Node = _Leaf()
        self._size = 0
        self._height = 1

    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        """Tree height in levels (1 = a single leaf)."""
        return self._height

    # ------------------------------------------------------------------
    # Lookup helpers
    # ------------------------------------------------------------------
    def _descend(self, route_key: tuple[int, int]) -> tuple[_Leaf, list[tuple[_Internal, int]]]:
        """Return (leaf, path) for a composite ``(key, value)`` route key;
        path is [(internal, child_idx), ...]."""
        node = self._root
        path = []
        while isinstance(node, _Internal):
            idx = bisect_right(node.keys, route_key)
            path.append((node, idx))
            node = node.children[idx]
        return node, path

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------
    def insert(self, key: int, value: int) -> bool:
        """Insert entry ``(key, value)``; returns False if already present."""
        key = int(key)
        value = int(value)
        entry = (key, value)
        leaf, path = self._descend(entry)
        idx = bisect_left(leaf.entries, entry)
        if idx < len(leaf.entries) and leaf.entries[idx] == entry:
            return False
        leaf.entries.insert(idx, entry)
        self._size += 1
        if len(leaf.entries) > self.order:
            self._split(leaf, path)
        return True

    def _split(self, node: _Node, path: list[tuple[_Internal, int]]) -> None:
        """Split an overfull node, propagating up the recorded path."""
        sibling: _Node
        if isinstance(node, _Leaf):
            sibling = _Leaf()
            mid = len(node.entries) // 2
            sibling.entries = node.entries[mid:]
            node.entries = node.entries[:mid]
            sibling.next = node.next
            node.next = sibling
            separator = sibling.entries[0]
        else:
            sibling = _Internal()
            mid = len(node.children) // 2
            separator = node.keys[mid - 1]
            sibling.keys = node.keys[mid:]
            sibling.children = node.children[mid:]
            node.keys = node.keys[: mid - 1]
            node.children = node.children[:mid]

        if not path:
            new_root = _Internal()
            new_root.keys = [separator]
            new_root.children = [node, sibling]
            self._root = new_root
            self._height += 1
            return
        parent, child_idx = path[-1]
        parent.keys.insert(child_idx, separator)
        parent.children.insert(child_idx + 1, sibling)
        if len(parent.children) > self.order:
            self._split(parent, path[:-1])

    # ------------------------------------------------------------------
    # Deletion
    # ------------------------------------------------------------------
    def delete(self, key: int, value: int) -> bool:
        """Remove entry ``(key, value)``; returns False if absent."""
        key = int(key)
        value = int(value)
        entry = (key, value)
        leaf, path = self._descend(entry)
        idx = bisect_left(leaf.entries, entry)
        if idx >= len(leaf.entries) or leaf.entries[idx] != entry:
            return False
        del leaf.entries[idx]
        self._size -= 1
        self._rebalance(leaf, path)
        return True

    def _min_fill(self) -> int:
        return self.order // 2

    def _rebalance(self, node: _Node, path: list[tuple[_Internal, int]]) -> None:
        """Restore minimum occupancy after a deletion."""
        if not path:
            # Root: collapse a childless internal root.
            if isinstance(node, _Internal) and len(node.children) == 1:
                self._root = node.children[0]
                self._height -= 1
            return
        fill = (
            len(node.entries) if isinstance(node, _Leaf) else len(node.children)
        )
        if fill >= self._min_fill():
            return
        parent, idx = path[-1]
        left = parent.children[idx - 1] if idx > 0 else None
        right = parent.children[idx + 1] if idx + 1 < len(parent.children) else None

        if isinstance(node, _Leaf):
            if left is not None and len(left.entries) > self._min_fill():
                node.entries.insert(0, left.entries.pop())
                parent.keys[idx - 1] = node.entries[0]
                return
            if right is not None and len(right.entries) > self._min_fill():
                node.entries.append(right.entries.pop(0))
                parent.keys[idx] = right.entries[0] if right.entries else parent.keys[idx]
                return
            # Merge with a sibling.
            if left is not None:
                left.entries.extend(node.entries)
                left.next = node.next
                del parent.children[idx]
                del parent.keys[idx - 1]
            else:
                node.entries.extend(right.entries)
                node.next = right.next
                del parent.children[idx + 1]
                del parent.keys[idx]
        else:
            if left is not None and len(left.children) > self._min_fill():
                node.children.insert(0, left.children.pop())
                node.keys.insert(0, parent.keys[idx - 1])
                parent.keys[idx - 1] = left.keys.pop()
                return
            if right is not None and len(right.children) > self._min_fill():
                node.children.append(right.children.pop(0))
                node.keys.append(parent.keys[idx])
                parent.keys[idx] = right.keys.pop(0)
                return
            if left is not None:
                left.keys.append(parent.keys[idx - 1])
                left.keys.extend(node.keys)
                left.children.extend(node.children)
                del parent.children[idx]
                del parent.keys[idx - 1]
            else:
                node.keys.append(parent.keys[idx])
                node.keys.extend(right.keys)
                node.children.extend(right.children)
                del parent.children[idx + 1]
                del parent.keys[idx]
        self._rebalance(parent, path[:-1])

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def range_values(self, key_lo: int, key_hi: int) -> list[int]:
        """All values with ``key_lo <= key <= key_hi`` (leaf-chain scan)."""
        key_lo = int(key_lo)
        key_hi = int(key_hi)
        leaf, _path = self._descend((key_lo, -(1 << 62)))
        out = []
        while leaf is not None:
            entries = leaf.entries
            idx = bisect_left(entries, (key_lo, -(1 << 62)))
            while idx < len(entries):
                key, value = entries[idx]
                if key > key_hi:
                    return out
                out.append(value)
                idx += 1
            leaf = leaf.next
        return out

    def values_for(self, key: int) -> list[int]:
        """All values stored under exactly ``key``."""
        return self.range_values(key, key)

    def items(self) -> list[tuple[int, int]]:
        """All ``(key, value)`` entries in key order (leaf-chain walk)."""
        node = self._root
        while isinstance(node, _Internal):
            node = node.children[0]
        out = []
        while node is not None:
            out.extend(node.entries)
            node = node.next
        return out

    def node_count(self) -> int:
        """Total node count (footprint accounting)."""
        count = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            count += 1
            if isinstance(node, _Internal):
                stack.extend(node.children)
        return count

    def check_invariants(self) -> None:
        """Validate structural invariants (test helper); raises on violation."""
        entries = self.items()
        if entries != sorted(entries):
            raise AssertionError("leaf chain out of order")
        if len(entries) != self._size:
            raise AssertionError(
                f"size mismatch: counted {len(entries)}, recorded {self._size}"
            )
        self._check_node(self._root, is_root=True)

    def _check_node(self, node: _Node, is_root: bool = False) -> None:
        if isinstance(node, _Leaf):
            if not is_root and len(node.entries) < self._min_fill():
                raise AssertionError("underfull leaf")
            if len(node.entries) > self.order:
                raise AssertionError("overfull leaf")
            return
        if len(node.children) != len(node.keys) + 1:
            raise AssertionError("key/children arity mismatch")
        if not is_root and len(node.children) < self._min_fill():
            raise AssertionError("underfull internal node")
        if len(node.children) > self.order:
            raise AssertionError("overfull internal node")
        for child in node.children:
            self._check_node(child)
