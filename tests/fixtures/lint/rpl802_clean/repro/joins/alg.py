import numpy as np

from ..support.jitter import nudge


def partition(x: float, rng: np.random.Generator) -> float:
    return nudge(x, rng)
