"""Join plans and the task vocabulary of the staged execution engine.

A :class:`JoinPlan` is what an algorithm's ``partition`` stage produces:
a *context* of shared, read-only numpy arrays (box coordinates, grouped
object ids, per-group ranges — the arrays a process pool ships through
shared memory once per step) and a list of independent :class:`JoinTask`
units.  Tasks reference context arrays by key, carry only their own
small index arrays, and emit result pairs through the accumulator they
are handed — which is what makes them schedulable by any executor.

Task types
----------
``GroupSelfJoinTask``   within-group pairs of a set of groups (grid
                        cells, PBSM partitions, tree nodes).
``GroupCrossJoinTask``  pairs across explicit (group A, group B) lists
                        (EGO neighbour cells, octree ancestor levels).
``CellPairSweepTask``   THERMAL-JOIN's external join over hyperlinked
                        cell pairs (optimized sweep + enclosure
                        shortcut).
``HotCellsTask``        combinatorial hot-spot emission (no tests).
``SweepStripTask``      one strip of a partitioned global plane sweep.
``FallbackJoinTask``    wraps a legacy ``_join`` as one opaque task so
                        every algorithm runs through the engine even
                        before it is ported to emit partitions.

Tasks declare ``process_safe``: whether they are pure functions of the
context arrays (shippable to a worker process) or closures over live
index objects (run inline in the parent by the process executor).

Tasks are also the engine's unit of *recovery*: because a task only
reads the context and writes its private accumulator, executors may run
it again after a failure, hang or worker crash — on the pool or inline
in the parent — and the merged result is unchanged.  Task authors must
preserve this purity: no mutation of context arrays, no side effects
outside the accumulator and the returned counters.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.engine.verify import (
    emit_hot_cells,
    verify_cell_pairs,
    verify_cross_groups,
    verify_self_groups,
    verify_strip,
)
from repro.geometry import PairAccumulator, chunk_edges_by_volume

if TYPE_CHECKING:
    from repro.datasets import SpatialDataset
    from repro.joins.base import SpatialJoinAlgorithm

__all__ = [
    "JoinPlan",
    "JoinTask",
    "TaskResult",
    "FallbackJoinTask",
    "GroupSelfJoinTask",
    "GroupCrossJoinTask",
    "CellPairSweepTask",
    "HotCellsTask",
    "SweepStripTask",
    "chunk_by_volume",
]


def chunk_by_volume(counts: np.ndarray, n_tasks: int) -> list[tuple[int, int]]:
    """Split ``range(len(counts))`` into ≤ ``n_tasks`` contiguous slices
    of roughly equal candidate volume.

    Returns a list of ``(start, stop)`` index pairs covering the whole
    range; empty input yields no slices.  Partitioning is deterministic
    (independent of the executor), so statistics are reproducible.
    """
    counts = np.asarray(counts, dtype=np.int64)
    if counts.size == 0 or n_tasks < 1:
        return []
    edges = chunk_edges_by_volume(counts, n_chunks=n_tasks)
    return [(int(edges[k]), int(edges[k + 1])) for k in range(len(edges) - 1)]


@dataclass
class TaskResult:
    """Outcome of one executed task: counters, wall/CPU time, pair shard.

    ``seconds``/``cpu_seconds`` are measured wherever the task actually
    ran — inline, on a pool thread or in a worker process — and carried
    back through this result so the tracer can attribute time to tasks
    without any cross-process machinery.
    """

    counters: dict[str, Any]
    seconds: float
    n_pairs: int
    accumulator: PairAccumulator  # pair shard (merged in task order)
    phase: str
    cpu_seconds: float = 0.0


@dataclass
class JoinPlan:
    """Partitioned description of one join step.

    ``context`` maps names to numpy arrays shared by all tasks;
    ``tasks`` are independent work units; ``on_complete`` (optional) is
    called with the ordered :class:`TaskResult` list during the merge
    stage, letting algorithms aggregate their own diagnostics.
    """

    context: dict[str, np.ndarray] = field(default_factory=dict)
    tasks: list[JoinTask] = field(default_factory=list)
    on_complete: Callable[[list[TaskResult]], None] | None = None


class JoinTask:
    """One independent unit of join work.

    ``run(ctx, accumulator)`` executes against the plan's context arrays,
    emits result pairs into the accumulator, and returns a counters dict
    (``overlap_tests`` plus whatever the algorithm aggregates).
    """

    #: Tag merged into ``JoinStatistics.phase_seconds``.
    phase = "join"
    #: Whether the task may run in a worker process (pure function of
    #: the context arrays and its own fields).
    process_safe = False

    def run(self, ctx: Mapping[str, np.ndarray], accumulator: PairAccumulator) -> dict[str, int]:
        raise NotImplementedError


@dataclass
class FallbackJoinTask(JoinTask):
    """Single-task plan wrapping an unported algorithm's ``_join``."""

    algorithm: SpatialJoinAlgorithm
    dataset: SpatialDataset
    phase = "join"
    process_safe = False

    def run(self, ctx: Mapping[str, np.ndarray], accumulator: PairAccumulator) -> dict[str, int]:
        tests = self.algorithm._join(self.dataset, accumulator)
        return {"overlap_tests": int(tests)}


@dataclass
class GroupSelfJoinTask(JoinTask):
    """All within-group pairs of ``groups``, via the shared verify kernel."""

    groups: np.ndarray
    count: str = "full"
    pair_filter: str | None = None
    keys: tuple[str, str, str] = ("cat", "starts", "stops")
    phase: str = "join"
    process_safe = True

    def run(self, ctx: Mapping[str, np.ndarray], accumulator: PairAccumulator) -> dict[str, int]:
        cat_key, starts_key, stops_key = self.keys
        tests = verify_self_groups(
            ctx,
            accumulator,
            self.groups,
            self.count,
            pair_filter=self.pair_filter,
            cat_key=cat_key,
            starts_key=starts_key,
            stops_key=stops_key,
        )
        return {"overlap_tests": int(tests)}


@dataclass
class GroupCrossJoinTask(JoinTask):
    """Pairs across explicit (A-group, B-group) lists."""

    pair_a: np.ndarray
    pair_b: np.ndarray
    count: str = "full"
    a_keys: tuple[str, str, str] = ("cat", "starts", "stops")
    b_keys: tuple[str, str, str] = ("cat", "starts", "stops")
    phase: str = "join"
    process_safe = True

    def run(self, ctx: Mapping[str, np.ndarray], accumulator: PairAccumulator) -> dict[str, int]:
        tests = verify_cross_groups(
            ctx,
            accumulator,
            self.pair_a,
            self.pair_b,
            self.count,
            a_keys=self.a_keys,
            b_keys=self.b_keys,
        )
        return {"overlap_tests": int(tests)}


@dataclass
class CellPairSweepTask(JoinTask):
    """External join over a slice of hyperlinked cell pairs.

    Runs the optimized plane sweep with the enclosure shortcut (the
    ``cell_pair_sweep`` kernel) over its own portion of the step's
    cell-pair list.
    """

    pair_a: np.ndarray
    pair_b: np.ndarray
    enclosure_shortcut: bool = True
    phase: str = "external"
    process_safe = True

    def run(self, ctx: Mapping[str, np.ndarray], accumulator: PairAccumulator) -> dict[str, int]:
        tests, shortcuts = verify_cell_pairs(
            ctx,
            accumulator,
            self.pair_a,
            self.pair_b,
            enclosure_shortcut=self.enclosure_shortcut,
        )
        return {"overlap_tests": int(tests), "shortcut_pairs": int(shortcuts)}


@dataclass
class HotCellsTask(JoinTask):
    """Combinatorial emission for a set of hot-spot cells (zero tests)."""

    hot_slots: np.ndarray
    phase: str = "internal"
    process_safe = True

    def run(self, ctx: Mapping[str, np.ndarray], accumulator: PairAccumulator) -> dict[str, int]:
        emitted = emit_hot_cells(ctx, accumulator, self.hot_slots)
        return {"overlap_tests": 0, "shortcut_pairs": int(emitted)}


@dataclass
class SweepStripTask(JoinTask):
    """One strip of the partitioned global plane sweep.

    The dataset is x-sorted once at build; a strip owns the contiguous
    sorted positions ``[start, stop)``.  It runs the forward sweep
    within the strip plus the carried-in windows of earlier objects
    whose x-extent reaches into the strip, so each x-overlapping pair is
    charged exactly once, in the strip of its later object — the global
    sweep's candidate set and test count, decomposed.
    """

    start: int
    stop: int
    carry: np.ndarray  # sorted positions < start with xhi > strip's first xlo
    phase: str = "join"
    process_safe = True

    def run(self, ctx: Mapping[str, np.ndarray], accumulator: PairAccumulator) -> dict[str, int]:
        tests = verify_strip(ctx, accumulator, self.start, self.stop, self.carry)
        return {"overlap_tests": int(tests)}
