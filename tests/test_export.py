"""Tests for experiment-result export (JSON/CSV)."""

from __future__ import annotations

import csv
import json

import numpy as np

from repro.experiments.export import jsonable, write_csv_series, write_json


class TestJsonable:
    def test_numpy_scalars_and_arrays(self):
        out = jsonable(
            {"count": np.int64(5), "ratio": np.float64(0.5), "xs": np.arange(3)}
        )
        assert out == {"count": 5, "ratio": 0.5, "xs": [0, 1, 2]}
        json.dumps(out)  # must be serialisable

    def test_non_data_objects_dropped(self):
        class Runner:
            pass

        out = jsonable({"keep": 1, "runners": {"a": Runner()}, "list": [Runner(), 2]})
        assert out == {"keep": 1, "runners": {}, "list": [2]}

    def test_none_and_nested(self):
        out = jsonable({"a": [None, 1.5, {"b": (np.float32(2.0),)}]})
        assert out == {"a": [None, 1.5, {"b": [2.0]}]}

    def test_real_figure_output_serialises(self):
        from repro.experiments import figures

        result = figures.fig10(scale="tiny", quiet=True)
        json.dumps(jsonable(result))


class TestWriters:
    def test_write_json(self, tmp_path):
        path = tmp_path / "out.json"
        write_json({"x": [1, 2], "series": {"a": [np.float64(0.5), None]}}, path)
        loaded = json.loads(path.read_text())
        assert loaded["series"]["a"] == [0.5, None]

    def test_write_csv_series(self, tmp_path):
        path = tmp_path / "out.csv"
        write_csv_series(
            path, [10, 20], {"fast": [1.0, 2.0], "slow": [5.0, None]}, x_label="n"
        )
        with open(path) as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["n", "fast", "slow"]
        assert rows[1] == ["10", "1.0", "5.0"]
        assert rows[2] == ["20", "2.0", ""]  # DNF -> empty cell

    def test_csv_pads_short_series(self, tmp_path):
        path = tmp_path / "short.csv"
        write_csv_series(path, [1, 2, 3], {"a": [1.0]})
        with open(path) as handle:
            rows = list(csv.reader(handle))
        assert rows[2][1] == "" and rows[3][1] == ""
