"""Tests for the observability layer: spans, metrics, JSONL, bench schema.

The load-bearing invariant is at the bottom: pair sets, overlap-test
totals and tuner decisions must be bit-identical with tracing on or off.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import ThermalJoin
from repro.datasets import make_uniform_workload
from repro.joins import PBSMJoin
from repro.obs import (
    BENCH_SCHEMA_VERSION,
    JsonlWriter,
    MetricsRegistry,
    NullTracer,
    Tracer,
    get_tracer,
    run_aggregates,
    set_tracer,
    step_record_to_json,
    to_jsonable,
    validate_bench,
)
from repro.simulation import SimulationRunner


def small_workload(n=300, seed=3):
    return make_uniform_workload(
        n, width=10.0, bounds=(np.zeros(3), np.full(3, 80.0)), seed=seed
    )


@pytest.fixture
def active_tracer():
    """Install a fresh Tracer for the test; restore the previous after."""
    tracer = Tracer()
    previous = set_tracer(tracer)
    yield tracer
    set_tracer(previous)


class TestTracer:
    def test_span_tree_structure(self):
        tracer = Tracer()
        tracer.begin_step()
        with tracer.span("step") as root:
            with tracer.span("prepare", parent=root):
                pass
            with tracer.span("verify", parent=root) as verify:
                tracer.record("task:T", phase="internal", parent=verify,
                              wall_seconds=0.5, cpu_seconds=0.4,
                              counters={"task": 0})
        spans = tracer.drain()
        by_name = {span.name: span for span in spans}
        assert by_name["prepare"].parent_id == by_name["step"].span_id
        assert by_name["verify"].parent_id == by_name["step"].span_id
        assert by_name["task:T"].parent_id == by_name["verify"].span_id
        assert by_name["task:T"].wall_seconds == 0.5
        assert by_name["task:T"].cpu_seconds == 0.4
        assert by_name["task:T"].phase == "internal"
        assert all(span.step == 1 for span in spans)
        # Children close (and emit) before their parent.
        assert spans[-1].name == "step"

    def test_wall_and_cpu_time_measured(self):
        tracer = Tracer()
        with tracer.span("work"):
            sum(range(10_000))
        (span,) = tracer.drain()
        assert span.wall_seconds > 0.0
        assert span.cpu_seconds >= 0.0

    def test_drain_clears(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        assert len(tracer.drain()) == 1
        assert tracer.drain() == []

    def test_sink_receives_json_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlWriter(path) as writer:
            tracer = Tracer(sink=writer)
            tracer.begin_step()
            with tracer.span("step", counters={"n": 3}):
                pass
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(lines) == 1
        assert lines[0]["kind"] == "span"
        assert lines[0]["name"] == "step"
        assert lines[0]["counters"] == {"n": 3}
        assert lines[0]["schema_version"] == 1

    def test_null_tracer_is_inert(self):
        tracer = NullTracer()
        assert not tracer.enabled
        with tracer.span("anything") as span:
            assert span is None
        assert tracer.record("x") is None
        assert tracer.drain() == []

    def test_set_tracer_installs_and_restores(self):
        tracer = Tracer()
        previous = set_tracer(tracer)
        try:
            assert get_tracer() is tracer
        finally:
            set_tracer(previous)
        assert get_tracer() is not tracer


class TestMetricsRegistry:
    def test_snapshot_collects_providers(self):
        registry = MetricsRegistry()
        registry.register("grid", lambda: {"cells": np.int64(5), "width": 1.5})
        registry.register("empty", lambda: None)
        snapshot = registry.snapshot()
        assert snapshot == {"grid": {"cells": 5, "width": 1.5}}
        assert isinstance(snapshot["grid"]["cells"], int)  # numpy coerced

    def test_duplicate_and_invalid_providers_rejected(self):
        registry = MetricsRegistry()
        registry.register("a", dict)
        with pytest.raises(ValueError):
            registry.register("a", dict)
        with pytest.raises(TypeError):
            registry.register("b", 42)

    def test_unregister(self):
        registry = MetricsRegistry()
        registry.register("a", dict)
        registry.unregister("a")
        assert registry.names() == []
        assert registry.snapshot() == {}


class TestStatisticsPlumbing:
    def test_thermal_step_snapshots_index_counters(self):
        dataset, _motion = small_workload()
        join = ThermalJoin(count_only=True, executor="serial")
        stats = join.step(dataset).stats
        assert set(stats.index_counters) >= {"executor", "pgrid", "tgrid", "tuner"}
        assert stats.index_counters["pgrid"]["cells"] > 0
        assert stats.index_counters["executor"]["name"] == "serial"
        assert "resolution" in stats.index_counters["tuner"]

    def test_step_records_carry_index_counters(self):
        dataset, motion = small_workload()
        runner = SimulationRunner(dataset, motion, ThermalJoin(count_only=True))
        records = runner.run(3)
        assert all("pgrid" in record.index_counters for record in records)


class TestBenchSchema:
    def _document(self):
        dataset, motion = small_workload()
        runner = SimulationRunner(dataset, motion, PBSMJoin(count_only=True))
        runner.run(2)
        from repro.obs import environment_info

        return {
            "schema_version": BENCH_SCHEMA_VERSION,
            "kind": "bench_steps",
            "environment": environment_info(),
            "config": {},
            "runs": [
                {
                    "workload": "uniform",
                    "algorithm": "pbsm",
                    "executor": "serial",
                    "kernel_backend": "numpy",
                    "checkpoint_every": 0,
                    "n_objects": len(dataset),
                    "n_steps": len(runner.records),
                    "steps": [step_record_to_json(r) for r in runner.records],
                    "aggregates": run_aggregates(runner),
                }
            ],
        }

    def test_valid_document_passes_and_is_json(self):
        doc = self._document()
        assert validate_bench(doc) is doc
        json.dumps(doc)  # fully serialisable — no numpy leaks

    def test_violations_are_named(self):
        doc = self._document()
        doc["schema_version"] = 999
        with pytest.raises(ValueError, match="schema_version"):
            validate_bench(doc)

        doc = self._document()
        del doc["runs"][0]["steps"][0]["overlap_tests"]
        with pytest.raises(ValueError, match="overlap_tests"):
            validate_bench(doc)

        doc = self._document()
        doc["runs"][0]["aggregates"]["total_results"] += 1
        with pytest.raises(ValueError, match="total_results"):
            validate_bench(doc)

        doc = self._document()
        doc["runs"][0]["steps"][1]["step"] = 7
        with pytest.raises(ValueError, match="step index"):
            validate_bench(doc)

    def test_to_jsonable_handles_numpy(self):
        value = to_jsonable({"a": np.float64(1.5), "b": np.arange(3), "c": {1, 2}})
        assert value == {"a": 1.5, "b": [0, 1, 2], "c": [1, 2]}


class TestBitIdentity:
    """Tracing and metrics must never change what the join computes."""

    def _run(self, tracer):
        previous = set_tracer(tracer)
        try:
            dataset, motion = small_workload(n=400, seed=11)
            join = ThermalJoin(cost_model="operations")
            outcomes = []
            for _ in range(4):
                result = join.step(dataset)
                i_idx, j_idx = result.pairs
                outcomes.append(
                    (
                        result.n_results,
                        result.stats.overlap_tests,
                        i_idx.tobytes(),
                        j_idx.tobytes(),
                        join.current_resolution,
                    )
                )
                motion.step(dataset)
            return outcomes, list(join.tuner.history)
        finally:
            set_tracer(previous)

    def test_traced_and_untraced_runs_identical(self):
        traced_outcomes, traced_history = self._run(Tracer())
        plain_outcomes, plain_history = self._run(NullTracer())
        assert traced_outcomes == plain_outcomes
        assert traced_history == plain_history

    def test_engine_emits_expected_span_tree(self):
        tracer = Tracer()
        previous = set_tracer(tracer)
        try:
            dataset, _motion = small_workload()
            stats = ThermalJoin(count_only=True).step(dataset).stats
        finally:
            set_tracer(previous)
        spans = tracer.drain()
        names = [span.name for span in spans]
        for stage in ("prepare", "partition", "verify", "merge", "step"):
            assert stage in names
        assert any(name.startswith("task:") for name in names)
        root = next(span for span in spans if span.name == "step")
        assert root.parent_id is None
        assert root.counters["algorithm"] == "thermal-join"
        task_spans = [span for span in spans if span.name.startswith("task:")]
        verify = next(span for span in spans if span.name == "verify")
        assert all(span.parent_id == verify.span_id for span in task_spans)
        # Task-span counters sum to the step's statistics totals.
        assert (
            sum(span.counters.get("overlap_tests", 0) for span in task_spans)
            == stats.overlap_tests
        )
