"""In-memory spatial dataset with in-place position updates.

The paper's experimental methodology (Section 5.1.1) keeps the dataset
as a flat list of spatial objects — MBR, identifier and simulation
attributes — that the simulation application mutates *in place* at every
time step; join algorithms only hold pointers into the list and never
reorder it.  :class:`SpatialDataset` reproduces that contract with a
structure-of-arrays layout: object centers and extents live in numpy
arrays, positions are updated in place by the motion models, and join
algorithms address objects by their stable positional index.
"""

from __future__ import annotations

import itertools
from collections.abc import Mapping

import numpy as np

from repro.datasets.delta import MotionDelta
from repro.geometry import mbr

__all__ = ["SpatialDataset"]

#: Process-wide deterministic instance counter: datasets created in the
#: same order get the same uids, so cached join state keyed by uid stays
#: reproducible run-to-run.
_UID_COUNTER = itertools.count()

#: Byte cost of one object record in the paper's C++ layout: a 3-D MBR as
#: six doubles (48 B), a 64-bit identifier and two 64-bit attribute slots
#: (Figure 3 shows ``ID, MBR, atr1, atr2`` entries).
OBJECT_RECORD_BYTES = 48 + 8 + 16


class SpatialDataset:
    """A collection of moving 3-D spatial objects.

    Parameters
    ----------
    centers:
        ``(n, 3)`` array of object center coordinates.  Mutated in place
        by the motion models during a simulation.
    widths:
        Object extents: scalar (all objects share one cubic width — the
        paper's standard setting), ``(n,)`` per-object cubic widths, or
        ``(n, 3)`` per-object per-dimension widths.
    bounds:
        Optional ``(lo, hi)`` pair with the simulation domain bounds.
        Motion models use it to reflect objects at the boundary; when
        omitted it is derived from the initial data on first access.
    attributes:
        Optional mapping of named per-object attribute arrays (mass,
        conductivity, ...).  Carried along but never interpreted.
    """

    def __init__(
        self,
        centers: np.ndarray,
        widths: np.ndarray | float,
        bounds: tuple[np.ndarray, np.ndarray] | None = None,
        attributes: Mapping[str, np.ndarray] | None = None,
    ) -> None:
        centers = np.ascontiguousarray(centers, dtype=np.float64)
        if centers.ndim != 2 or centers.shape[1] != mbr.DIMENSIONS:
            raise ValueError(
                f"centers must have shape (n, {mbr.DIMENSIONS}), got {centers.shape}"
            )
        if centers.shape[0] == 0:
            raise ValueError("a dataset needs at least one object")
        widths = np.asarray(widths, dtype=np.float64)
        if widths.ndim == 0:
            widths_full = np.full_like(centers, float(widths))
        elif widths.ndim == 1:
            if widths.shape[0] != centers.shape[0]:
                raise ValueError(
                    f"per-object widths length {widths.shape[0]} does not "
                    f"match {centers.shape[0]} centers"
                )
            widths_full = np.repeat(widths[:, None], centers.shape[1], axis=1)
        elif widths.shape == centers.shape:
            widths_full = widths.copy()
        else:
            raise ValueError(
                f"widths shape {widths.shape} does not match centers shape "
                f"{centers.shape}"
            )
        if not np.isfinite(widths_full).all() or not (widths_full > 0).all():
            raise ValueError("object widths must be strictly positive and finite")
        self.centers = centers
        self.widths = np.ascontiguousarray(widths_full)
        self._bounds: tuple[np.ndarray, np.ndarray] | None = None
        if bounds is not None:
            b_lo = np.asarray(bounds[0], dtype=np.float64)
            b_hi = np.asarray(bounds[1], dtype=np.float64)
            if b_lo.shape != (mbr.DIMENSIONS,) or b_hi.shape != (mbr.DIMENSIONS,):
                raise ValueError("bounds must be a pair of 3-vectors")
            if not (b_lo < b_hi).all():
                raise ValueError("bounds must satisfy lo < hi componentwise")
            self._bounds = (b_lo, b_hi)
        self.attributes: dict[str, np.ndarray] = {}
        if attributes:
            for name, values in attributes.items():
                values = np.asarray(values)
                if values.shape[0] != centers.shape[0]:
                    raise ValueError(
                        f"attribute {name!r} has {values.shape[0]} entries for "
                        f"{centers.shape[0]} objects"
                    )
                self.attributes[name] = values
        #: Monotonic counter bumped by every in-place position update; join
        #: algorithms use it to detect that a rebuild/refresh is required.
        self.version = 0
        #: Deterministic per-instance identity; deltas and maintained join
        #: state are pinned to it so state cached against one dataset is
        #: never applied to another (``with_enlarged_extent`` views get a
        #: fresh uid for the same reason).
        self.uid = next(_UID_COUNTER)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.centers.shape[0]

    @property
    def n_objects(self) -> int:
        """Number of objects in the dataset."""
        return self.centers.shape[0]

    @property
    def bounds(self) -> tuple[np.ndarray, np.ndarray]:
        """Simulation domain bounds ``(lo, hi)``.

        Derived lazily from the current object boxes when not supplied at
        construction time.
        """
        if self._bounds is None:
            lo, hi = self.boxes()
            self._bounds = mbr.union_bounds(lo, hi)
        return self._bounds

    @property
    def max_width(self) -> float:
        """Largest object width over all objects and dimensions.

        THERMAL-JOIN determines this while loading the dataset (Section
        4.2.1) and sizes the P-Grid relative to it.
        """
        return float(self.widths.max())

    @property
    def min_width(self) -> float:
        """Smallest object width over all objects and dimensions."""
        return float(self.widths.min())

    def boxes(self) -> tuple[np.ndarray, np.ndarray]:
        """Current object MBRs as ``(lo, hi)`` arrays of shape ``(n, 3)``."""
        half = self.widths / 2.0
        return self.centers - half, self.centers + half

    # ------------------------------------------------------------------
    # In-place mutation (the simulation side of the contract)
    # ------------------------------------------------------------------
    def update_positions(self, new_centers: np.ndarray) -> None:
        """Overwrite all object centers in place (one simulation step)."""
        new_centers = np.asarray(new_centers, dtype=np.float64)
        if new_centers.shape != self.centers.shape:
            raise ValueError(
                f"new centers shape {new_centers.shape} does not match "
                f"{self.centers.shape}"
            )
        self.centers[:] = new_centers
        self.version += 1

    def translate(self, deltas: np.ndarray) -> None:
        """Add per-object displacement vectors to the centers in place."""
        deltas = np.asarray(deltas, dtype=np.float64)
        self.centers += deltas
        self.version += 1

    def commit_motion(self, before: np.ndarray) -> MotionDelta:
        """Commit an in-place center mutation and describe it as a delta.

        The delta-aware update path of the step lifecycle: the motion
        model snapshots ``centers`` (``before``), mutates the dataset in
        place, then calls ``commit_motion`` with the snapshot.  The
        version bump and the :class:`~repro.datasets.delta.MotionDelta`
        are produced together, so the delta provably describes exactly
        the ``version → version + 1`` transition.
        """
        before = np.asarray(before, dtype=np.float64)
        if before.shape != self.centers.shape:
            raise ValueError(
                f"snapshot shape {before.shape} does not match centers "
                f"shape {self.centers.shape}"
            )
        base_version = self.version
        self.version += 1
        return MotionDelta.from_positions(
            before,
            self.centers,
            dataset_uid=self.uid,
            base_version=base_version,
            version=self.version,
        )

    # ------------------------------------------------------------------
    # Derived datasets
    # ------------------------------------------------------------------
    def with_enlarged_extent(self, distance: float) -> SpatialDataset:
        """Dataset view for a distance join with predicate ``distance``.

        Implements the paper's reduction (Section 3.1): enlarging every
        object's extent by ``distance`` turns "pairs within distance d"
        into an ordinary overlap join.  The returned dataset *shares* the
        center array (so simulation updates remain visible) but has its
        own enlarged width array.
        """
        if distance < 0:
            raise ValueError(f"distance must be non-negative, got {distance}")
        enlarged = SpatialDataset.__new__(SpatialDataset)
        enlarged.centers = self.centers
        enlarged.widths = self.widths + distance
        enlarged._bounds = self._bounds
        enlarged.attributes = self.attributes
        enlarged.version = self.version
        enlarged.uid = next(_UID_COUNTER)
        return enlarged

    def copy(self) -> SpatialDataset:
        """Deep copy (centers, widths and attributes are duplicated)."""
        return SpatialDataset(
            self.centers.copy(),
            self.widths.copy(),
            bounds=self._bounds,
            attributes={k: v.copy() for k, v in self.attributes.items()},
        )

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def memory_nbytes(self) -> int:
        """Footprint of the raw object list in the paper's C-struct model."""
        return self.n_objects * OBJECT_RECORD_BYTES

    def __repr__(self) -> str:
        return (
            f"SpatialDataset(n={self.n_objects}, "
            f"width=[{self.min_width:.3g}, {self.max_width:.3g}], "
            f"version={self.version})"
        )
