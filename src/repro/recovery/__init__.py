"""Durable checkpoint/restore for long-running simulation runs.

The subsystem has three layers:

* :mod:`repro.recovery.atomic` — the sanctioned durable-write
  primitives (tmp + fsync + rename); repro-lint RPL501 forbids any
  other file write inside this package.
* :mod:`repro.recovery.checkpoint` — the versioned, checksummed
  manifest + ``.npz`` format with keep-last-K retention and
  newest-valid-fallback loading.
* :mod:`repro.recovery.state` — codecs between live objects (dataset,
  motion model, step records) and checkpoint (arrays, meta); the
  algorithm side of the protocol lives on
  :meth:`repro.joins.base.SpatialJoinAlgorithm.snapshot_state`.

The consumer is :class:`repro.simulation.SimulationRunner`
(``checkpoint_every=`` / ``checkpoint_dir=`` / ``resume()``); see
``docs/robustness.md``.
"""

from repro.recovery.atomic import atomic_write_bytes, write_json, write_npz
from repro.recovery.checkpoint import (
    FORMAT_VERSION,
    MANIFEST_FORMAT,
    Checkpoint,
    CheckpointError,
    CheckpointManager,
)
from repro.recovery.metrics import RecoveryMetrics
from repro.recovery.state import (
    restore_dataset,
    restore_motion,
    restore_shard,
    snapshot_dataset,
    snapshot_motion,
    snapshot_shard,
    step_record_from_jsonable,
    step_record_to_jsonable,
)

__all__ = [
    "FORMAT_VERSION",
    "MANIFEST_FORMAT",
    "Checkpoint",
    "CheckpointError",
    "CheckpointManager",
    "RecoveryMetrics",
    "atomic_write_bytes",
    "restore_dataset",
    "restore_motion",
    "restore_shard",
    "snapshot_dataset",
    "snapshot_motion",
    "snapshot_shard",
    "step_record_from_jsonable",
    "step_record_to_jsonable",
    "write_json",
    "write_npz",
]
