"""Experiment registry: experiment id -> driver function."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.experiments import figures

if TYPE_CHECKING:
    from repro.engine import Executor

__all__ = ["EXPERIMENTS", "run_experiment", "list_experiments"]

#: id -> (function, one-line description)
EXPERIMENTS = {
    "fig2": (figures.fig2, "Join selectivity motivation: 8 static joins vs object volume"),
    "fig6": (figures.fig6, "Convexity of F_t(r): THERMAL-JOIN time vs resolution"),
    "fig7": (figures.fig7, "Full neural simulation: results/time/tests/memory per step"),
    "fig8": (figures.fig8, "Neural scalability vs dataset size and object extent"),
    "fig9": (figures.fig9, "Synthetic sensitivity sweeps (a-f)"),
    "fig10": (figures.fig10, "THERMAL-JOIN phase breakdown and footprint vs r"),
    "speedups": (figures.speedups, "Headline speedup table over all competitors"),
    "tuning": (figures.tuning, "Hill-climbing convergence and re-tuning trace"),
    "ablations": (figures.ablations, "Design-choice ablations (extensions)"),
}


def list_experiments() -> list[tuple[str, str]]:
    """Return ``(id, description)`` pairs in registry order."""
    return [(name, desc) for name, (_fn, desc) in EXPERIMENTS.items()]


def run_experiment(
    name: str,
    scale: str = "default",
    quiet: bool = False,
    executor: Executor | str | None = None,
) -> dict[str, Any]:
    """Run one experiment by id; returns its structured result dict.

    ``executor`` selects the engine executor for every algorithm the
    experiment constructs (``"serial"``, ``"thread[:N]"``,
    ``"process[:N]"`` or an :class:`~repro.engine.Executor`); ``None``
    honours the ``REPRO_EXECUTOR`` environment default.
    """
    if name not in EXPERIMENTS:
        known = ", ".join(EXPERIMENTS)
        raise KeyError(f"unknown experiment {name!r}; known: {known}")
    fn, _desc = EXPERIMENTS[name]
    return fn(scale=scale, quiet=quiet, executor=executor)
