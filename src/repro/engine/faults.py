"""Fault-injection harness for the execution engine.

Production-scale parallel joins must survive worker death, hung tasks
and transient exceptions without changing the join result.  This module
lets tests (and operators chasing a flaky deployment) inject exactly
those failures into the verify stage, deterministically, so the
executors' retry and degradation machinery can be exercised end to end.

Spec syntax
-----------
The ``REPRO_FAULTS`` environment variable (or a plan installed with
:func:`install_fault_plan`) holds a comma-separated list of directives::

    action@N[:param]

``N`` is the 0-based ordinal of a *task launch*: executors number every
task the first time they schedule it, in plan order, continuing across
steps for the life of the plan.  Retries are never re-injected — a
fault fires exactly once, on the task's first launch — which is what
lets the recovery tests assert bit-identical results.

``raise@N``
    The Nth task raises :class:`InjectedFault` instead of running.
``hang@N:seconds``
    The Nth task sleeps ``seconds`` (default 3600) before running; with
    an executor ``task_timeout`` below the hang this exercises the
    timeout → inline-rerun path.
``kill@N``
    The Nth task SIGKILLs the process executing it.  Meant for the
    process executor (worker death → ``BrokenProcessPool`` → pool
    rebuild / degradation); under a serial or thread executor the
    "worker" is the parent interpreter itself.

Example: ``REPRO_FAULTS="raise@2,kill@7,hang@11:2.5"``.
"""

from __future__ import annotations

import os
import signal
import time
from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    import numpy as np

    from repro.engine.plan import JoinTask
    from repro.geometry import PairAccumulator

__all__ = [
    "FAULTS_ENV_VAR",
    "InjectedFault",
    "Fault",
    "FaultyTask",
    "FaultPlan",
    "parse_faults",
    "install_fault_plan",
    "active_plan",
    "wrap_tasks",
]

#: Environment variable naming the default fault plan.
FAULTS_ENV_VAR = "REPRO_FAULTS"

_ACTIONS = ("raise", "hang", "kill")


class InjectedFault(RuntimeError):
    """Raised by an injected ``raise`` fault (never by real join code)."""


@dataclass
class Fault:
    """One fault directive: ``action`` on task launch ``task``."""

    action: str
    task: int
    param: float | None = None
    fired: bool = False


class FaultyTask:
    """A join task wrapper that triggers its fault, then delegates.

    Mirrors the wrapped task's ``phase`` and ``process_safe`` so
    executors schedule it exactly as they would the original; a ``hang``
    still runs the real task after sleeping, so a hang *shorter* than
    the executor's timeout stays invisible in the results.
    """

    def __init__(self, inner: JoinTask, action: str, param: float | None = None) -> None:
        self.inner = inner
        self.action = action
        self.param = param
        self.phase = inner.phase
        self.process_safe = inner.process_safe

    def run(self, ctx: Mapping[str, np.ndarray], accumulator: PairAccumulator) -> dict[str, int]:
        if self.action == "raise":
            raise InjectedFault("injected task failure")
        if self.action == "hang":
            time.sleep(3600.0 if self.param is None else self.param)
        elif self.action == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        return self.inner.run(ctx, accumulator)

    def __repr__(self) -> str:
        return f"FaultyTask({self.action!r}, inner={self.inner!r})"


class FaultPlan:
    """A parsed set of faults plus the global task-launch counter."""

    def __init__(self, faults: Iterable[Fault] = ()) -> None:
        self.faults = list(faults)
        self.launched = 0

    def wrap(self, task: JoinTask) -> JoinTask:
        """Number one task launch; wrap it if an unfired fault matches."""
        ordinal = self.launched
        self.launched += 1
        for fault in self.faults:
            if not fault.fired and fault.task == ordinal:
                fault.fired = True
                return FaultyTask(task, fault.action, fault.param)
        return task

    def reset(self) -> None:
        """Rearm every fault and restart the launch counter."""
        self.launched = 0
        for fault in self.faults:
            fault.fired = False

    def __repr__(self) -> str:
        return f"FaultPlan({self.faults!r}, launched={self.launched})"


def parse_faults(spec: str) -> FaultPlan:
    """Parse a ``REPRO_FAULTS`` spec string into a :class:`FaultPlan`."""
    faults = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        action, sep, rest = part.partition("@")
        action = action.strip().lower()
        if action not in _ACTIONS or not sep:
            raise ValueError(
                f"invalid fault directive {part!r}; expected action@N[:param] "
                f"with action one of {_ACTIONS}"
            )
        ordinal, _, param = rest.partition(":")
        try:
            task = int(ordinal)
        except ValueError:
            raise ValueError(f"invalid task ordinal in fault {part!r}") from None
        if task < 0:
            raise ValueError(f"fault task ordinal must be >= 0: {part!r}")
        try:
            value = float(param) if param else None
        except ValueError:
            raise ValueError(f"invalid fault parameter in {part!r}") from None
        faults.append(Fault(action=action, task=task, param=value))
    return FaultPlan(faults)


#: Programmatically installed plan (overrides the environment).
_installed: FaultPlan | None = None
#: Cache of the environment-derived plan, keyed by the spec string so
#: firing state persists across steps but a changed spec re-parses.
_env_cache: tuple[str | None, FaultPlan | None] = (None, None)


def install_fault_plan(plan: FaultPlan | None) -> FaultPlan | None:
    """Install ``plan`` as the active fault plan (``None`` to clear)."""
    global _installed
    _installed = plan
    return plan


def active_plan() -> FaultPlan | None:
    """The installed plan, else the ``REPRO_FAULTS`` plan, else ``None``."""
    global _env_cache
    if _installed is not None:
        return _installed
    spec = os.environ.get(FAULTS_ENV_VAR)
    if not spec:
        return None
    if _env_cache[0] != spec:
        _env_cache = (spec, parse_faults(spec))
    return _env_cache[1]


def wrap_tasks(tasks: Sequence[JoinTask]) -> list[JoinTask]:
    """Number this batch of first launches against the active plan.

    Executors call this exactly once per task (on first scheduling);
    retries must re-run the *original* task so a spent fault cannot
    re-fire and ordinals stay stable under recovery.
    """
    plan = active_plan()
    if plan is None:
        return list(tasks)
    return [plan.wrap(task) for task in tasks]
