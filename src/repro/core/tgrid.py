"""The T-Grid: throw-away nested grids inside non-hot-spot P-Grid cells.

When a P-Grid cell is not itself a hot spot, THERMAL-JOIN subdivides it
with a temporary grid whose cell width — *per dimension* — equals the
width of the smallest object assigned to that P-Grid cell (Section
4.2.2, Figure 5).  Every T-Grid cell is then a hot spot by construction:

* objects within one T-Grid cell are emitted as results combinatorially,
  without overlap tests;
* objects of different T-Grid cells are joined with the optimized plane
  sweep (including the enclosure shortcut), looking
  ``ceil(max object width / T-cell width)`` layers out per dimension so
  no overlapping pair is missed.

Unlike the P-Grid's linked-hash table, the T-Grid is array-based (the
paper: few cells, negligible empty-cell overhead, very fast to build)
and thrown away after its cell is processed — Algorithm 2's
``TGrid.initialize`` / ``TGrid.clear``.

Implementation note: the planner below *batches across P-Grid cells*.
Per cell it only assigns objects to T-cells and enumerates neighbouring
T-cell pairs (cheap integer work); the actual joining — hot-spot
emission, sweeps with the enclosure shortcut — happens in the same
whole-step vectorised kernels the P-Grid level uses, over one combined
grouping of all T-cells of the step.  Results and test accounting are
identical to processing each T-Grid individually.

A pathological corner the paper's "in practice only a few cells" remark
glosses over: if one extremely small object lands in a cell of much
larger ones, the nominal T-Grid could explode to millions of cells.  We
guard with a cell budget and fall back to a plain in-cell plane sweep —
the result is identical, only the cost model changes for that cell.

The hot-spot emits verify the guarantee from the *actual* center spread
of each T-cell (spread strictly below the smallest member width in
every dimension) rather than from the nominal cell width.  In exact
arithmetic the two are equivalent; the spread form stays sound when
floating-point assignment puts a center an ulp past a cell boundary.
"""

from __future__ import annotations

import math

import numpy as np

from typing import TYPE_CHECKING

from repro.core.celljoin import emit_hot_cells_batched, join_cell_pairs_batched
from repro.core.cells import half_neighborhood_offsets
from repro.geometry import self_join_groups

if TYPE_CHECKING:
    from collections.abc import Sequence

    from repro.core.cells import PGridCell
    from repro.geometry import PairAccumulator

__all__ = ["TGrid"]


class TGrid:
    """Batched T-Grid joiner (one instance per ThermalJoin).

    Parameters
    ----------
    max_cells_per_object:
        Budget factor: a P-Grid cell with ``k`` objects may use at most
        ``max(64, max_cells_per_object * k)`` T-Grid cells before the
        plane-sweep fallback kicks in.
    """

    def __init__(self, max_cells_per_object: int = 16) -> None:
        if max_cells_per_object <= 0:
            raise ValueError(
                f"max_cells_per_object must be positive, got {max_cells_per_object}"
            )
        self.max_cells_per_object = int(max_cells_per_object)
        #: Largest combined T-Grid population (T-cells) of any step.
        self.peak_cells = 0
        #: Number of P-Grid cells joined via the fallback sweep.
        self.fallbacks = 0

    def join_cells(
        self,
        cells: Sequence[PGridCell],
        lo: np.ndarray,
        hi: np.ndarray,
        centers: np.ndarray,
        widths: np.ndarray,
        accumulator: PairAccumulator,
    ) -> tuple[int, int]:
        """Internal join of many non-hot-spot P-Grid cells, batched.

        Parameters
        ----------
        cells:
            Iterable of :class:`~repro.core.cells.PGridCell` (the large,
            non-hot-spot cells of the step).
        lo, hi:
            Global box arrays for the whole dataset.
        centers, widths:
            Global center / per-dimension width arrays.
        accumulator:
            Pair accumulator receiving the results.

        Returns
        -------
        tuple
            ``(tests, shortcut_pairs)``.
        """
        tests = 0
        shortcut_pairs = 0

        # ---- Phase 1: per-cell T-cell assignment (cheap integer work).
        cat_parts = []  # object ids grouped per T-cell, x-sorted
        starts_parts = []  # per-T-cell [start, stop) ranges (combined cat)
        stops_parts = []
        pair_a = []  # neighbouring T-cell pairs (combined slot indices)
        pair_b = []
        fallback_slots = []  # P-cells handled by a plain in-cell sweep
        position = 0  # running offset into the combined cat
        slot_base = 0  # running offset of T-cell slots

        for cell in cells:
            obj = cell.object_idx
            k = obj.size
            if k < 2:
                continue
            t_width = np.asarray(cell.min_obj_width, dtype=np.float64)
            extent = cell.hi - cell.lo
            dims = np.maximum(np.ceil(extent / t_width - 1e-9).astype(np.int64), 1)
            n_cells = int(dims.prod())
            if n_cells > max(64, self.max_cells_per_object * k):
                self.fallbacks += 1
                fallback_slots.append(cell)
                continue

            local = np.floor((centers[obj] - cell.lo) / t_width).astype(np.int64)
            np.clip(local, 0, dims - 1, out=local)
            keys = (local[:, 0] * dims[1] + local[:, 1]) * dims[2] + local[:, 2]
            order = np.argsort(keys, kind="stable")  # keeps per-key x order
            sorted_keys = keys[order]
            cat_parts.append(obj[order])

            boundaries = np.flatnonzero(sorted_keys[1:] != sorted_keys[:-1]) + 1
            starts_local = np.concatenate([[0], boundaries])
            stops_local = np.concatenate([boundaries, [k]])
            occupied_keys = sorted_keys[starts_local]
            n_occupied = occupied_keys.size
            starts_parts.append(starts_local + position)
            stops_parts.append(stops_local + position)

            # Neighbouring T-cell pairs within this P-cell, via binary
            # search over the (sorted) occupied keys.
            layers = np.minimum(
                np.asarray(
                    [
                        max(
                            1,
                            math.ceil(
                                float(cell.max_obj_width[d]) / float(t_width[d]) - 1e-9
                            ),
                        )
                        for d in range(3)
                    ],
                    dtype=np.int64,
                ),
                dims - 1,
            )
            layers = np.maximum(layers, 0)
            stride_x = int(dims[1] * dims[2])
            stride_y = int(dims[2])
            coords_x, rem = np.divmod(occupied_keys, stride_x)
            coords_y, coords_z = np.divmod(rem, stride_y)
            for ox, oy, oz in half_neighborhood_offsets(layers):
                nx = coords_x + ox
                ny = coords_y + oy
                nz = coords_z + oz
                valid = (
                    (nx >= 0) & (nx < dims[0])
                    & (ny >= 0) & (ny < dims[1])
                    & (nz >= 0) & (nz < dims[2])
                )
                if not valid.any():
                    continue
                neighbor_keys = (nx * dims[1] + ny) * dims[2] + nz
                found_slots = np.searchsorted(occupied_keys, neighbor_keys)
                found_slots = np.clip(found_slots, 0, n_occupied - 1)
                hit = valid & (occupied_keys[found_slots] == neighbor_keys)
                if hit.any():
                    src = np.flatnonzero(hit)
                    pair_a.append(src + slot_base)
                    pair_b.append(found_slots[src] + slot_base)

            position += k
            slot_base += n_occupied

        # ---- Phase 2: fallback cells — plain in-cell sweeps, batched.
        if fallback_slots:
            fb_cat = np.concatenate([c.object_idx for c in fallback_slots])
            fb_sizes = np.asarray(
                [c.object_idx.size for c in fallback_slots], dtype=np.int64
            )
            fb_stops = np.cumsum(fb_sizes)
            fb_starts = fb_stops - fb_sizes

            def on_fallback(left, right, _groups):
                accumulator.extend(left, right)

            tests += self_join_groups(
                lo,
                hi,
                fb_cat,
                fb_starts,
                fb_stops,
                np.arange(fb_sizes.size, dtype=np.int64),
                on_fallback,
                count="x-sweep",
            )

        if not starts_parts:
            return tests, shortcut_pairs

        # ---- Phase 3: combined T-cell grouping and batched joining.
        cat = np.concatenate(cat_parts)
        starts = np.concatenate(starts_parts)
        stops = np.concatenate(stops_parts)
        self.peak_cells = max(self.peak_cells, starts.size)

        sorted_centers = centers[cat]
        center_lo = np.minimum.reduceat(sorted_centers, starts, axis=0)
        center_hi = np.maximum.reduceat(sorted_centers, starts, axis=0)
        min_member_width = np.minimum.reduceat(widths[cat], starts, axis=0)
        is_hot = ((center_hi - center_lo) < min_member_width).all(axis=1)

        hot_slots = np.flatnonzero(is_hot & (stops - starts > 1))
        shortcut_pairs += emit_hot_cells_batched(
            cat, starts, stops, hot_slots, accumulator
        )
        # Floating-point edge: unverifiable T-cells sweep internally.
        cold_slots = np.flatnonzero(~is_hot & (stops - starts > 1))
        if cold_slots.size:

            def on_cold(left, right, _groups):
                accumulator.extend(left, right)

            tests += self_join_groups(
                lo, hi, cat, starts, stops, cold_slots, on_cold, count="x-sweep"
            )

        if pair_a:
            pair_tests, pair_shortcuts = join_cell_pairs_batched(
                lo,
                hi,
                cat,
                starts,
                stops,
                center_lo,
                center_hi,
                np.concatenate(pair_a),
                np.concatenate(pair_b),
                accumulator,
            )
            tests += pair_tests
            shortcut_pairs += pair_shortcuts
        return tests, shortcut_pairs
