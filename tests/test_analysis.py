"""Tests for the analytical selectivity models and dataset I/O."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    expected_cell_occupancy,
    expected_hot_spot_pair_fraction,
    expected_join_results,
    expected_partners_per_object,
    measured_selectivity,
)
from repro.datasets import SpatialDataset, make_neural_dataset, make_uniform_dataset
from repro.datasets.io import load_dataset, save_dataset
from repro.geometry import brute_force_pairs


class TestSelectivityModel:
    def test_matches_measured_on_uniform(self):
        # The closed form should predict the brute-force count within the
        # sampling tolerance of a uniform workload.
        n, width, side = 3000, 10.0, 200.0
        dataset = make_uniform_dataset(
            n, width=width, bounds=(np.zeros(3), np.full(3, side)), seed=5
        )
        i_idx, _j = brute_force_pairs(*dataset.boxes())
        predicted = expected_join_results(n, width, side**3)
        assert i_idx.size == pytest.approx(predicted, rel=0.15)

    def test_partner_scaling_with_width(self):
        # Partner count scales with the cube of the width.
        base = expected_partners_per_object(10_000, 10.0, 1000.0**3)
        doubled = expected_partners_per_object(10_000, 20.0, 1000.0**3)
        assert doubled == pytest.approx(8.0 * base)

    def test_paper_default_regime(self):
        # The paper's uniform default: 10M objects, width 15, 1000^3.
        partners = expected_partners_per_object(10_000_000, 15.0, 1000.0**3)
        assert 250 < partners < 280  # the high-selectivity regime

    def test_degenerate_inputs(self):
        assert expected_partners_per_object(1, 5.0, 100.0) == 0.0
        with pytest.raises(ValueError):
            expected_partners_per_object(10, 0.0, 100.0)

    def test_cell_occupancy(self):
        occupancy = expected_cell_occupancy(10_000_000, 15.0, 1000.0**3, 1.0)
        assert occupancy == pytest.approx(0.01 * 15.0**3)
        with pytest.raises(ValueError):
            expected_cell_occupancy(10, 1.0, 100.0, resolution=0.0)

    def test_hot_spot_fraction_bounds(self):
        # At r = 1 at most 1/8 of the pairs are same-cell pairs.
        assert expected_hot_spot_pair_fraction(1.0) == pytest.approx(0.125)
        assert expected_hot_spot_pair_fraction(0.5) < 0.125
        with pytest.raises(ValueError):
            expected_hot_spot_pair_fraction(1.5)

    def test_measured_selectivity_sampling(self):
        dataset = make_uniform_dataset(
            2000, width=12.0, bounds=(np.zeros(3), np.full(3, 150.0)), seed=9
        )
        i_idx, _j = brute_force_pairs(*dataset.boxes())
        exact = 2.0 * i_idx.size / len(dataset)
        sampled = measured_selectivity(dataset, sample=512, seed=1)
        assert sampled == pytest.approx(exact, rel=0.25)

    def test_measured_selectivity_small_inputs(self):
        assert measured_selectivity(SpatialDataset(np.zeros((1, 3)), 1.0)) == 0.0


class TestDatasetIO:
    def test_roundtrip(self, tmp_path):
        dataset, labels = make_neural_dataset(400, seed=3)
        dataset.attributes["mass"] = np.arange(400, dtype=np.float64)
        path = tmp_path / "snapshot.npz"
        save_dataset(path, dataset, labels=labels)
        loaded, loaded_labels = load_dataset(path)
        assert np.array_equal(loaded.centers, dataset.centers)
        assert np.array_equal(loaded.widths, dataset.widths)
        assert np.array_equal(loaded_labels, labels)
        assert np.array_equal(loaded.attributes["mass"], dataset.attributes["mass"])
        lo_a, hi_a = dataset.bounds
        lo_b, hi_b = loaded.bounds
        assert np.array_equal(lo_a, lo_b) and np.array_equal(hi_a, hi_b)

    def test_roundtrip_without_labels(self, tmp_path):
        dataset = make_uniform_dataset(100, seed=1)
        path = tmp_path / "plain.npz"
        save_dataset(path, dataset)
        loaded, labels = load_dataset(path)
        assert labels is None
        assert len(loaded) == 100

    def test_joins_identical_after_reload(self, tmp_path):
        from repro.core import ThermalJoin

        dataset, _labels = make_neural_dataset(500, seed=7)
        path = tmp_path / "join.npz"
        save_dataset(path, dataset)
        loaded, _ = load_dataset(path)
        original = ThermalJoin(resolution=1.0).step(dataset)
        reloaded = ThermalJoin(resolution=1.0).step(loaded)
        assert original.n_results == reloaded.n_results

    def test_label_length_mismatch_rejected(self, tmp_path):
        dataset = make_uniform_dataset(10, seed=1)
        with pytest.raises(ValueError):
            save_dataset(tmp_path / "x.npz", dataset, labels=np.arange(5))

    def test_foreign_file_rejected(self, tmp_path):
        path = tmp_path / "foreign.npz"
        np.savez(path, stuff=np.arange(3))
        with pytest.raises(ValueError):
            load_dataset(path)

    def test_truncated_snapshot_rejected_with_clear_error(self, tmp_path):
        dataset = make_uniform_dataset(50, seed=1)
        path = tmp_path / "torn.npz"
        save_dataset(path, dataset)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 3])
        with pytest.raises(ValueError, match="cannot read dataset snapshot"):
            load_dataset(path)

    def test_bitflipped_snapshot_rejected_with_clear_error(self, tmp_path):
        dataset = make_uniform_dataset(50, seed=1)
        path = tmp_path / "flipped.npz"
        save_dataset(path, dataset)
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0x01
        path.write_bytes(bytes(data))
        with pytest.raises(ValueError, match="snapshot"):
            load_dataset(path)

    def test_missing_arrays_named(self, tmp_path):
        path = tmp_path / "partial.npz"
        np.savez(
            path,
            format=np.asarray("repro-spatial-dataset-v1"),
            centers=np.zeros((4, 3)),
        )
        with pytest.raises(ValueError, match="missing arrays"):
            load_dataset(path)

    def test_bad_shapes_rejected(self, tmp_path):
        path = tmp_path / "shapes.npz"
        np.savez(
            path,
            format=np.asarray("repro-spatial-dataset-v1"),
            centers=np.zeros((4, 2)),  # must be (n, 3)
            widths=np.zeros((4, 2)),
            bounds_lo=np.zeros(3),
            bounds_hi=np.ones(3),
        )
        with pytest.raises(ValueError, match=r"shape \(n, 3\)"):
            load_dataset(path)

    def test_non_finite_geometry_rejected(self, tmp_path):
        dataset = make_uniform_dataset(10, seed=1)
        centers = dataset.centers.copy()
        centers[0, 0] = np.inf
        path = tmp_path / "nan.npz"
        np.savez(
            path,
            format=np.asarray("repro-spatial-dataset-v1"),
            centers=centers,
            widths=dataset.widths,
            bounds_lo=np.zeros(3),
            bounds_hi=np.full(3, 1000.0),
        )
        with pytest.raises(ValueError, match="non-finite"):
            load_dataset(path)

    def test_label_length_mismatch_rejected_on_load(self, tmp_path):
        dataset = make_uniform_dataset(10, seed=1)
        bounds_lo, bounds_hi = dataset.bounds
        path = tmp_path / "labels.npz"
        np.savez(
            path,
            format=np.asarray("repro-spatial-dataset-v1"),
            centers=dataset.centers,
            widths=dataset.widths,
            bounds_lo=np.asarray(bounds_lo),
            bounds_hi=np.asarray(bounds_hi),
            labels=np.arange(4),
        )
        with pytest.raises(ValueError, match="labels length"):
            load_dataset(path)


class TestValidateCLI:
    def test_agreeing_algorithms(self):
        from repro.validate import validate

        messages = []
        ok = validate(
            workload="uniform",
            n=400,
            steps=2,
            algorithms=["thermal-join", "cr-tree", "ego"],
            use_oracle=True,
            log=messages.append,
        )
        assert ok
        assert any("agree" in m for m in messages)

    def test_unknown_inputs_rejected(self):
        from repro.validate import validate

        with pytest.raises(ValueError):
            validate(workload="bogus")
        with pytest.raises(ValueError):
            validate(algorithms=["not-a-join"])

    def test_cli_exit_code(self):
        from repro.validate import main

        assert main([
            "--workload", "uniform", "--n", "300", "--steps", "1",
            "--algorithms", "thermal-join", "pbsm",
        ]) == 0
