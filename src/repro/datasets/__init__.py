"""Workload substrate: datasets, generators and motion models."""

from repro.datasets.clustered import make_clustered_dataset, make_clustered_workload
from repro.datasets.dataset import SpatialDataset
from repro.datasets.delta import MotionDelta
from repro.datasets.motion import (
    BranchJitter,
    ClusterDrift,
    IntermittentTranslation,
    MotionModel,
    RandomTranslation,
)
from repro.datasets.neural import make_neural_dataset, make_neural_workload
from repro.datasets.uniform import (
    UNIFORM_BOUNDS,
    make_uniform_dataset,
    make_uniform_workload,
)

__all__ = [
    "SpatialDataset",
    "MotionDelta",
    "MotionModel",
    "RandomTranslation",
    "IntermittentTranslation",
    "ClusterDrift",
    "BranchJitter",
    "UNIFORM_BOUNDS",
    "make_uniform_dataset",
    "make_uniform_workload",
    "make_clustered_dataset",
    "make_clustered_workload",
    "make_neural_dataset",
    "make_neural_workload",
]
