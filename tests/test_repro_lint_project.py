"""Whole-program analysis tests: cross-file rules, index cache, CLI modes.

The RPL7xx/8xx/9xx fixtures live on disk under ``tests/fixtures/lint``;
each ``*_fire`` tree splits the violation across *two* modules so that a
per-file analysis provably cannot catch it — every fire test also lints
the anchoring module **alone** and asserts silence, then lints the pair
and asserts the finding.  The trees carry a ``.repro-lint-ignore``
marker so the repository self-lint prunes them.
"""

from __future__ import annotations

import json
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from tools.repro_lint import cli  # noqa: E402
from tools.repro_lint.core import (  # noqa: E402
    iter_python_files,
    lint_file,
    lint_paths,
)
from tools.repro_lint.project import IndexCache  # noqa: E402

FIXTURES = REPO_ROOT / "tests" / "fixtures" / "lint"

#: rule code -> (fixture stem, display-path fragment of the flagged file)
FIRE_ANCHORS = {
    "RPL701": ("rpl701", "repro/service/app.py"),
    "RPL702": ("rpl702", "repro/service/app.py"),
    "RPL801": ("rpl801", "repro/core/alg.py"),
    "RPL802": ("rpl802", "repro/joins/alg.py"),
    "RPL901": ("rpl901", "repro/engine/runner.py"),
    "RPL902": ("rpl902", "repro/engine/runner.py"),
}


def codes_of(findings) -> set[str]:
    return {finding.code for finding in findings}


# ----------------------------------------------------------------------
# The six cross-file rules: fire, clean, and the per-file impossibility
# ----------------------------------------------------------------------
class TestCrossFileRules:
    @pytest.mark.parametrize("code", sorted(FIRE_ANCHORS))
    def test_fire_fixture_fires(self, code: str) -> None:
        stem, anchor = FIRE_ANCHORS[code]
        findings = cli.run_paths([str(FIXTURES / f"{stem}_fire")])
        assert codes_of(findings) == {code}
        assert all(finding.path.endswith(anchor) for finding in findings)

    @pytest.mark.parametrize("code", sorted(FIRE_ANCHORS))
    def test_clean_fixture_is_clean(self, code: str) -> None:
        stem, _anchor = FIRE_ANCHORS[code]
        findings = cli.run_paths([str(FIXTURES / f"{stem}_clean")])
        assert findings == []

    @pytest.mark.parametrize("code", sorted(FIRE_ANCHORS))
    def test_per_file_analysis_cannot_catch_it(self, code: str) -> None:
        """Linting the anchoring module alone sees nothing — the facts it
        would need (the callee's body, its async-ness, its module globals)
        live in the *other* file of the pair."""
        stem, anchor = FIRE_ANCHORS[code]
        flagged = FIXTURES / f"{stem}_fire" / anchor
        assert lint_file(flagged) == []

    def test_suppression_silences_a_project_rule(self, tmp_path: Path) -> None:
        pkg = tmp_path / "repro" / "service"
        pkg.mkdir(parents=True)
        (pkg / "__init__.py").write_text("", encoding="utf-8")
        (pkg / "helpers.py").write_text(
            "import time\n\n\ndef settle() -> None:\n    time.sleep(0.01)\n",
            encoding="utf-8",
        )
        (pkg / "app.py").write_text(
            textwrap.dedent(
                """\
                from .helpers import settle


                async def handle() -> None:
                    settle()  # repro-lint: ignore[RPL701] drains in <20ms at shutdown
                """
            ),
            encoding="utf-8",
        )
        assert cli.run_paths([str(tmp_path)]) == []


# ----------------------------------------------------------------------
# Index cache: warm hits, content-keyed invalidation, cross-file recheck
# ----------------------------------------------------------------------
class TestIndexCache:
    def _write_pair(self, tmp_path: Path, helper_body: str) -> Path:
        pkg = tmp_path / "repro"
        (pkg / "support").mkdir(parents=True, exist_ok=True)
        (pkg / "core").mkdir(parents=True, exist_ok=True)
        for sub in ("", "support", "core"):
            (pkg / sub / "__init__.py").write_text("", encoding="utf-8")
        (pkg / "support" / "timing.py").write_text(helper_body, encoding="utf-8")
        (pkg / "core" / "alg.py").write_text(
            textwrap.dedent(
                """\
                from ..support.timing import stamp


                def decide(budget: float) -> bool:
                    return stamp() < budget
                """
            ),
            encoding="utf-8",
        )
        return tmp_path / "cache.json"

    CLEAN_HELPER = "def stamp() -> float:\n    return 0.0\n"
    CLOCK_HELPER = (
        "import time\n\n\ndef stamp() -> float:\n    return time.perf_counter()\n"
    )

    def test_warm_run_hits_every_file(self, tmp_path: Path) -> None:
        cache_path = self._write_pair(tmp_path, self.CLEAN_HELPER)
        cold = lint_paths([tmp_path], cache=IndexCache(cache_path))
        assert (cold.cache_hits, cold.cache_misses) == (0, cold.checked)
        warm = lint_paths([tmp_path], cache=IndexCache(cache_path))
        assert (warm.cache_hits, warm.cache_misses) == (warm.checked, 0)
        assert warm.findings == cold.findings == []

    def test_editing_helper_rechecks_dependent_module(self, tmp_path: Path) -> None:
        """The cross-file contract is re-evaluated even for cache-hit files:
        only the edited helper misses the cache, yet the finding lands in
        the *unchanged* dependent module."""
        cache_path = self._write_pair(tmp_path, self.CLEAN_HELPER)
        assert lint_paths([tmp_path], cache=IndexCache(cache_path)).findings == []
        # Edit the transitively-called helper so it now reads a clock.
        (tmp_path / "repro" / "support" / "timing.py").write_text(
            self.CLOCK_HELPER, encoding="utf-8"
        )
        report = lint_paths([tmp_path], cache=IndexCache(cache_path))
        assert report.cache_misses == 1  # only the edited file re-analyzed
        assert report.cache_hits == report.checked - 1
        assert codes_of(report.findings) == {"RPL801"}
        assert report.findings[0].path.endswith("repro/core/alg.py")

    def test_cache_survives_corruption(self, tmp_path: Path) -> None:
        cache_path = self._write_pair(tmp_path, self.CLEAN_HELPER)
        cache_path.write_text("{not json", encoding="utf-8")
        report = lint_paths([tmp_path], cache=IndexCache(cache_path))
        assert report.findings == []
        assert report.cache_misses == report.checked


# ----------------------------------------------------------------------
# Directory walking: fixture trees are pruned from parent expansions
# ----------------------------------------------------------------------
class TestIgnoreMarker:
    def test_marker_prunes_parent_walk(self) -> None:
        walked = {p.resolve() for p in iter_python_files([REPO_ROOT / "tests"])}
        assert not any(FIXTURES in p.parents for p in walked)

    def test_marked_tree_lintable_when_passed_directly(self) -> None:
        walked = list(iter_python_files([FIXTURES / "rpl701_fire"]))
        assert any(p.name == "app.py" for p in walked)


# ----------------------------------------------------------------------
# CLI modes: SARIF, statistics, changed-only
# ----------------------------------------------------------------------
class TestCliModes:
    def test_sarif_output(self, tmp_path: Path) -> None:
        out = tmp_path / "report.sarif"
        code = cli.main(
            [
                "--no-cache",
                "--format",
                "sarif",
                "--output",
                str(out),
                str(FIXTURES / "rpl701_fire"),
            ]
        )
        assert code == 1
        document = json.loads(out.read_text(encoding="utf-8"))
        assert document["version"] == "2.1.0"
        run = document["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        rule_ids = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
        assert {"RPL001", "RPL701", "RPL902", "RPL999"} <= rule_ids
        (result,) = run["results"]
        assert result["ruleId"] == "RPL701"
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] >= 1 and region["startColumn"] >= 1

    def test_statistics_summary(self, capsys: pytest.CaptureFixture[str]) -> None:
        code = cli.main(
            ["--no-cache", "--statistics", str(FIXTURES / "rpl702_fire")]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "1  RPL702" in out

    def test_ignore_flag_drops_code(self, capsys: pytest.CaptureFixture[str]) -> None:
        code = cli.main(
            ["--no-cache", "--ignore", "RPL702", str(FIXTURES / "rpl702_fire")]
        )
        assert code == 0
        assert "clean" in capsys.readouterr().out

    def test_changed_only_filters_to_git_diff(
        self, tmp_path: Path, monkeypatch: pytest.MonkeyPatch
    ) -> None:
        core = tmp_path / "repro" / "core"
        core.mkdir(parents=True)
        (core / "a.py").write_text("import random\n", encoding="utf-8")
        (core / "b.py").write_text("x = 1\n", encoding="utf-8")
        env = {"GIT_AUTHOR_NAME": "t", "GIT_AUTHOR_EMAIL": "t@t", "HOME": str(tmp_path)}
        for cmd in (
            ["git", "init", "-q"],
            ["git", "-c", "user.name=t", "-c", "user.email=t@t", "add", "."],
            ["git", "-c", "user.name=t", "-c", "user.email=t@t", "commit", "-qm", "seed"],
        ):
            subprocess.run(cmd, cwd=tmp_path, check=True, env=env)
        # a.py's violation predates the diff; b.py picks up a fresh one.
        (core / "b.py").write_text("import random\n", encoding="utf-8")
        monkeypatch.chdir(tmp_path)
        findings = cli.run_paths(["."])
        assert len(findings) == 2  # both violations exist in the tree...
        out = tmp_path / "report.txt"
        code = cli.main(["--no-cache", "--changed-only", "--output", str(out), "."])
        assert code == 1
        # ...but only the changed file's finding is reported.
        text = out.read_text(encoding="utf-8")
        assert "b.py" in text and "a.py" not in text

    def test_changed_only_reports_nothing_when_diff_is_clean(
        self, tmp_path: Path, monkeypatch: pytest.MonkeyPatch, capsys
    ) -> None:
        core = tmp_path / "repro" / "core"
        core.mkdir(parents=True)
        (core / "a.py").write_text("import random\n", encoding="utf-8")
        env = {"HOME": str(tmp_path)}
        for cmd in (
            ["git", "init", "-q"],
            ["git", "-c", "user.name=t", "-c", "user.email=t@t", "add", "."],
            ["git", "-c", "user.name=t", "-c", "user.email=t@t", "commit", "-qm", "seed"],
        ):
            subprocess.run(cmd, cwd=tmp_path, check=True, env=env)
        monkeypatch.chdir(tmp_path)
        capsys.readouterr()
        assert cli.main(["--no-cache", "--changed-only", "."]) == 0
        assert "clean" in capsys.readouterr().out


# ----------------------------------------------------------------------
# Performance: the warm cached full-repo lint stays fast
# ----------------------------------------------------------------------
def test_warm_full_repo_lint_under_ten_seconds(tmp_path: Path) -> None:
    roots = [str(REPO_ROOT / name) for name in ("src", "benchmarks", "tools", "tests")]
    cache_path = tmp_path / "cache.json"
    lint_paths(roots, cache=IndexCache(cache_path))  # cold run seeds the cache
    started = time.perf_counter()
    report = lint_paths(roots, cache=IndexCache(cache_path))
    elapsed = time.perf_counter() - started
    assert report.cache_misses == 0
    assert elapsed < 10.0, f"warm lint took {elapsed:.2f}s"
