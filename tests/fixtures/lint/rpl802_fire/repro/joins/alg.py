"""Inside the deterministic scope: no RNG syntax in this file."""

from ..support.jitter import nudge


def partition(x: float) -> float:
    return nudge(x)
