"""Unit tests for SpatialDataset (repro.datasets.dataset)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import SpatialDataset


def make_simple(n=10, width=2.0):
    rng = np.random.default_rng(0)
    centers = rng.uniform(0, 50, size=(n, 3))
    return SpatialDataset(centers, width, bounds=(np.zeros(3), np.full(3, 50.0)))


class TestConstruction:
    def test_basic_properties(self):
        ds = make_simple(10, 2.0)
        assert len(ds) == 10
        assert ds.n_objects == 10
        assert ds.max_width == pytest.approx(2.0)
        assert ds.min_width == pytest.approx(2.0)

    def test_boxes_are_centered(self):
        ds = make_simple(5, 4.0)
        lo, hi = ds.boxes()
        assert np.allclose((lo + hi) / 2.0, ds.centers)
        assert np.allclose(hi - lo, 4.0)

    def test_per_object_widths(self):
        centers = np.zeros((3, 3))
        ds = SpatialDataset(centers + 10.0, np.array([1.0, 2.0, 3.0]))
        assert ds.min_width == pytest.approx(1.0)
        assert ds.max_width == pytest.approx(3.0)

    def test_rejects_wrong_center_shape(self):
        with pytest.raises(ValueError):
            SpatialDataset(np.zeros((3, 2)), 1.0)

    def test_rejects_nonpositive_width(self):
        with pytest.raises(ValueError):
            SpatialDataset(np.zeros((3, 3)), 0.0)

    def test_rejects_invalid_bounds(self):
        with pytest.raises(ValueError):
            SpatialDataset(np.zeros((3, 3)) + 1.0, 1.0, bounds=(np.ones(3), np.zeros(3)))

    def test_attributes_carried(self):
        ds = SpatialDataset(
            np.zeros((3, 3)) + 5.0, 1.0, attributes={"mass": np.array([1.0, 2.0, 3.0])}
        )
        assert ds.attributes["mass"].tolist() == [1.0, 2.0, 3.0]

    def test_attribute_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            SpatialDataset(np.zeros((3, 3)) + 5.0, 1.0, attributes={"mass": np.ones(2)})

    def test_bounds_derived_when_missing(self):
        centers = np.array([[0.0, 0.0, 0.0], [10.0, 10.0, 10.0]])
        ds = SpatialDataset(centers, 2.0)
        lo, hi = ds.bounds
        assert np.allclose(lo, -1.0)
        assert np.allclose(hi, 11.0)


class TestInPlaceUpdates:
    def test_update_positions_bumps_version(self):
        ds = make_simple()
        v0 = ds.version
        ds.update_positions(ds.centers + 1.0)
        assert ds.version == v0 + 1

    def test_update_positions_in_place(self):
        ds = make_simple()
        buffer_before = ds.centers
        ds.update_positions(ds.centers + 1.0)
        assert ds.centers is buffer_before  # same array object mutated

    def test_update_shape_mismatch_raises(self):
        ds = make_simple(4)
        with pytest.raises(ValueError):
            ds.update_positions(np.zeros((5, 3)))

    def test_translate(self):
        ds = make_simple(3)
        before = ds.centers.copy()
        ds.translate(np.ones((3, 3)))
        assert np.allclose(ds.centers, before + 1.0)
        assert ds.version == 1


class TestDerivedDatasets:
    def test_enlarged_extent_shares_centers(self):
        ds = make_simple(5, 2.0)
        enlarged = ds.with_enlarged_extent(3.0)
        assert enlarged.centers is ds.centers
        assert enlarged.max_width == pytest.approx(5.0)
        # Motion stays visible through the shared center array.
        ds.translate(np.ones((5, 3)))
        assert np.allclose(enlarged.centers, ds.centers)

    def test_enlarged_extent_negative_raises(self):
        with pytest.raises(ValueError):
            make_simple().with_enlarged_extent(-1.0)

    def test_copy_is_independent(self):
        ds = make_simple(5)
        dup = ds.copy()
        ds.translate(np.ones((5, 3)))
        assert not np.allclose(dup.centers, ds.centers)

    def test_memory_accounting_scales_with_n(self):
        assert make_simple(20).memory_nbytes() == 2 * make_simple(10).memory_nbytes()

    def test_repr_mentions_size(self):
        assert "n=10" in repr(make_simple(10))
