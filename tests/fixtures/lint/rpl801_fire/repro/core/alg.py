"""Inside the deterministic scope: no clock syntax in this file."""

from ..support.timing import stamp


def decide(budget: float) -> bool:
    return stamp() < budget
