"""Smoothed particle hydrodynamics (SPH) neighbour search (§3.1).

The paper names SPH [11] among the interaction frameworks whose "basic
but also most crucial task is to access all pairs of overlapping
objects".  This example runs a miniature SPH density loop: fluid
particles with smoothing length ``h`` interact when their kernels
overlap, which the join expresses as a self-join over cubes of width
``2h``; a cubic-spline kernel then turns the joined pairs into particle
densities, step after step, while the fluid sloshes.

Run::

    python examples/sph_fluid.py
"""

import numpy as np

from repro import SpatialDataset, ThermalJoin

N_PARTICLES = 6_000
SMOOTHING_LENGTH = 2.0
PARTICLE_MASS = 1.0
DT = 0.05
N_STEPS = 10
GRAVITY = np.array([0.0, 0.0, -9.8])
TANK = 60.0


def cubic_spline(r, h):
    """Standard 3-D cubic-spline SPH kernel W(r, h)."""
    sigma = 8.0 / (np.pi * h**3)
    q = r / h
    w = np.zeros_like(q)
    close = q <= 0.5
    w[close] = 6.0 * (q[close] ** 3 - q[close] ** 2) + 1.0
    far = (q > 0.5) & (q <= 1.0)
    w[far] = 2.0 * (1.0 - q[far]) ** 3
    return sigma * w


def main():
    rng = np.random.default_rng(3)
    # A block of fluid dropped into a tank.
    centers = rng.uniform(15.0, 45.0, size=(N_PARTICLES, 3))
    centers[:, 2] = rng.uniform(30.0, 55.0, size=N_PARTICLES)
    velocities = np.zeros_like(centers)

    fluid = SpatialDataset(
        centers,
        2.0 * SMOOTHING_LENGTH,  # kernels overlap within 2h center distance
        bounds=(np.zeros(3), np.full(3, TANK)),
    )
    join = ThermalJoin()

    print(f"{'step':>4} {'pairs':>10} {'join [ms]':>10} {'mean rho':>9} {'max rho':>8}")
    for step in range(N_STEPS):
        result = join.step(fluid)
        i_idx, j_idx = result.pairs
        delta = fluid.centers[i_idx] - fluid.centers[j_idx]
        dist = np.sqrt((delta * delta).sum(axis=1))
        kernel = cubic_spline(dist, SMOOTHING_LENGTH)

        # Density summation over the joined neighbour pairs plus self.
        density = np.full(
            N_PARTICLES, PARTICLE_MASS * cubic_spline(np.zeros(1), SMOOTHING_LENGTH)[0]
        )
        np.add.at(density, i_idx, PARTICLE_MASS * kernel)
        np.add.at(density, j_idx, PARTICLE_MASS * kernel)

        print(
            f"{step:>4} {result.n_results:>10,} "
            f"{result.stats.total_seconds * 1e3:>10.1f} "
            f"{density.mean():>9.3f} {density.max():>8.3f}"
        )

        # Crude integration: gravity plus a density-gradient push keeps
        # the demo lively; boundaries reflect.
        velocities += GRAVITY * DT
        fluid.translate(velocities * DT)
        below = fluid.centers < 0.0
        above = fluid.centers > TANK
        velocities[below | above] *= -0.5
        np.clip(fluid.centers, 0.0, TANK, out=fluid.centers)
        fluid.version += 1

    print(f"\ntuned resolution: r={join.current_resolution:.2f}")


if __name__ == "__main__":
    main()
