"""White-box tests of the baseline joins' internal structures.

The oracle suites prove the *results* right; these tests pin down the
structural invariants each index is supposed to maintain — STR packing
quality, octree containment, loose-octree fit, TOUCH routing, PBSM
replication, ST2B's Morton grid — so a regression inside an index shows
up as the broken invariant, not as a mysterious slowdown.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import SpatialDataset, make_uniform_dataset
from repro.joins.loose_octree import loose_containment_depths
from repro.joins.octree import (
    containment_depths,
    count_directory_nodes,
    octree_root_cube,
)
from repro.joins.rtree import STRTree, _str_order


def uniform_boxes(n=200, width=8.0, side=100.0, seed=0):
    dataset = make_uniform_dataset(
        n, width=width, bounds=(np.zeros(3), np.full(3, side)), seed=seed
    )
    return dataset, *dataset.boxes()


class TestSTRTree:
    def test_leaf_order_is_a_permutation(self):
        _ds, lo, hi = uniform_boxes(123)
        tree = STRTree(lo, hi, fanout=8)
        assert np.array_equal(np.sort(tree.leaf_order), np.arange(123))

    def test_node_mbrs_cover_children(self):
        _ds, lo, hi = uniform_boxes(300)
        tree = STRTree(lo, hi, fanout=8)
        # Leaves cover their objects...
        for leaf in range(tree.level_lo[0].shape[0]):
            start, stop = tree.leaf_object_range(leaf)
            members = tree.leaf_order[start:stop]
            assert (tree.level_lo[0][leaf] <= lo[members]).all()
            assert (tree.level_hi[0][leaf] >= hi[members]).all()
        # ...and every directory node covers its children.
        for level in range(1, tree.n_levels):
            for node in range(tree.level_lo[level].shape[0]):
                c_start, c_stop = tree.children_range(level, node)
                assert (
                    tree.level_lo[level][node]
                    <= tree.level_lo[level - 1][c_start:c_stop]
                ).all()
                assert (
                    tree.level_hi[level][node]
                    >= tree.level_hi[level - 1][c_start:c_stop]
                ).all()

    def test_top_level_fits_fanout(self):
        _ds, lo, hi = uniform_boxes(500)
        tree = STRTree(lo, hi, fanout=4)
        assert tree.level_lo[-1].shape[0] <= 4

    def test_str_beats_random_packing(self):
        # STR's whole point: spatially packed leaves have far less total
        # MBR volume than randomly packed ones.
        _ds, lo, hi = uniform_boxes(400, seed=3)
        tree = STRTree(lo, hi, fanout=8)
        str_volume = float(
            np.prod(tree.level_hi[0] - tree.level_lo[0], axis=1).sum()
        )
        rng = np.random.default_rng(0)
        shuffled = rng.permutation(400)
        random_volume = 0.0
        for start in range(0, 400, 8):
            members = shuffled[start : start + 8]
            random_volume += float(
                np.prod(hi[members].max(axis=0) - lo[members].min(axis=0))
            )
        assert str_volume < random_volume / 3

    def test_str_order_groups_by_x_slabs(self):
        _ds, lo, hi = uniform_boxes(512, seed=4)
        order = _str_order(lo, hi, leaf_capacity=8)
        centers_x = ((lo + hi) / 2.0)[order, 0]
        # The first slab's x-centers all precede the last slab's.
        slab = 8 * int(np.ceil((512 / 8) ** (1 / 3))) ** 2
        assert centers_x[:slab].max() <= centers_x[-slab:].min()

    def test_tiny_trees(self):
        _ds, lo, hi = uniform_boxes(3)
        tree = STRTree(lo, hi, fanout=8)
        assert tree.n_levels == 1
        assert tree.n_nodes() == 1

    def test_fanout_validation(self):
        _ds, lo, hi = uniform_boxes(10)
        with pytest.raises(ValueError):
            STRTree(lo, hi, fanout=1)


class TestOctreeAssignment:
    def test_assigned_cell_contains_object(self):
        # Depth >= 1 assignments are genuine containments; objects that
        # fit nowhere (including boundary objects protruding beyond the
        # root cube) stay at depth 0, where no containment is claimed.
        dataset, lo, hi = uniform_boxes(250, width=12.0, side=120.0, seed=5)
        origin, root_side = octree_root_cube(dataset)
        depths, coords = containment_depths(lo, hi, origin, root_side)
        assert (depths >= 1).any()
        for k in np.flatnonzero(depths >= 1):
            cell = root_side / (1 << int(depths[k]))
            cell_lo = origin + coords[k] * cell
            assert (lo[k] >= cell_lo - 1e-9).all()
            assert (hi[k] <= cell_lo + cell + 1e-9).all()

    def test_assignment_is_deepest_possible(self):
        dataset, lo, hi = uniform_boxes(250, width=12.0, side=120.0, seed=6)
        origin, root_side = octree_root_cube(dataset)
        depths, _coords = containment_depths(lo, hi, origin, root_side)
        for k in range(0, len(dataset), 10):
            deeper = int(depths[k]) + 1
            cell = root_side / (1 << deeper)
            lo_cell = np.floor((lo[k] - origin) / cell).astype(np.int64)
            hi_cell = np.floor((hi[k] - origin) / cell).astype(np.int64)
            assert (lo_cell != hi_cell).any(), "object would fit deeper"

    def test_plane_straddlers_stay_at_root(self):
        # An object across the root's central split can fit nowhere below.
        dataset = SpatialDataset(
            np.asarray([[50.0, 50.0, 50.0]]), 10.0,
            bounds=(np.zeros(3), np.full(3, 100.0)),
        )
        lo, hi = dataset.boxes()
        origin, root_side = octree_root_cube(dataset)
        depths, _ = containment_depths(lo, hi, origin, root_side)
        assert depths[0] == 0

    def test_directory_node_count(self):
        # Two occupied leaf cells in separate octants: root + 2 children.
        coords = [np.empty((0, 3), dtype=np.int64)] * 2
        coords[1] = np.asarray([[0, 0, 0], [1, 1, 1]], dtype=np.int64)
        coords[0] = np.empty((0, 3), dtype=np.int64)
        assert count_directory_nodes(coords) == 3


class TestLooseOctreeAssignment:
    def test_loose_cube_contains_object(self):
        dataset, lo, hi = uniform_boxes(250, width=12.0, side=120.0, seed=7)
        origin, root_side = octree_root_cube(dataset)
        p = 0.1
        depths, coords = loose_containment_depths(
            lo, hi, dataset.centers, origin, root_side, p, 10
        )
        for k in range(len(dataset)):
            cell = root_side / (1 << int(depths[k]))
            slack = p * cell / 2.0
            cube_lo = origin + coords[k] * cell - slack
            cube_hi = origin + (coords[k] + 1) * cell + slack
            assert (lo[k] >= cube_lo - 1e-9).all()
            assert (hi[k] <= cube_hi + 1e-9).all()

    def test_looseness_pushes_objects_deeper(self):
        # The design goal (§2.1): slight boundary overlap no longer pins
        # objects near the root.
        dataset, lo, hi = uniform_boxes(400, width=10.0, side=120.0, seed=8)
        origin, root_side = octree_root_cube(dataset)
        rigid_depths, _ = containment_depths(lo, hi, origin, root_side)
        loose_depths, _ = loose_containment_depths(
            lo, hi, dataset.centers, origin, root_side, 0.5, 10
        )
        assert loose_depths.mean() > rigid_depths.mean()
        assert (loose_depths >= rigid_depths - 1).all()

    def test_zero_looseness_at_least_as_shallow_as_rigid(self):
        dataset, lo, hi = uniform_boxes(200, width=10.0, side=120.0, seed=9)
        origin, root_side = octree_root_cube(dataset)
        zero_loose, _ = loose_containment_depths(
            lo, hi, dataset.centers, origin, root_side, 0.0, 10
        )
        rigid, _ = containment_depths(lo, hi, origin, root_side)
        # With p = 0 the loose rule (center's cell must contain the box)
        # is at least as strict as "some cell contains the box".
        assert (zero_loose <= rigid).all()


class TestPBSMReplication:
    def test_replication_count_matches_intersected_partitions(self):
        from repro.joins import PBSMJoin

        dataset, lo, hi = uniform_boxes(300, width=20.0, side=150.0, seed=10)
        join = PBSMJoin(partition_factor=1.0)
        join._build(dataset)
        index = join._index
        width = 1.0 * dataset.max_width
        origin, _ = dataset.bounds
        expected = int(
            np.prod(
                np.floor((hi - origin) / width).astype(np.int64)
                - np.floor((lo - origin) / width).astype(np.int64)
                + 1,
                axis=1,
            ).sum()
        )
        assert index["replicas"] == expected
        assert index["replicas"] > len(dataset)  # replication happened

    def test_larger_partitions_replicate_less(self):
        from repro.joins import PBSMJoin

        dataset, _lo, _hi = uniform_boxes(300, width=20.0, side=150.0, seed=11)
        fine = PBSMJoin(partition_factor=1.0)
        coarse = PBSMJoin(partition_factor=4.0)
        fine._build(dataset)
        coarse._build(dataset)
        assert coarse._index["replicas"] < fine._index["replicas"]

    def test_duplicate_tests_exceed_sweep(self):
        # The paper's §2.1 complaint, measured: replication makes PBSM
        # test some pairs multiple times.
        from repro.joins import PBSMJoin, PlaneSweepJoin

        dataset, _lo, _hi = uniform_boxes(400, width=18.0, side=120.0, seed=12)
        pbsm = PBSMJoin(partition_factor=1.0).step(dataset)
        sweep = PlaneSweepJoin().step(dataset)
        assert pbsm.n_results == sweep.n_results


class TestST2BGrid:
    def test_keys_follow_morton_encoding(self):
        from repro.geometry.morton import morton_decode
        from repro.joins import ST2BJoin

        dataset, _lo, _hi = uniform_boxes(200, width=10.0, side=100.0, seed=13)
        join = ST2BJoin()
        join._build(dataset)
        coords = morton_decode(join._object_keys)
        origin, _ = dataset.bounds
        expected = np.floor(
            (dataset.centers - origin) / dataset.max_width
        ).astype(np.int64)
        np.maximum(expected, 0, out=expected)
        assert np.array_equal(coords, expected)

    def test_tree_entry_per_object(self):
        from repro.joins import ST2BJoin

        dataset, _lo, _hi = uniform_boxes(150, seed=14)
        join = ST2BJoin()
        join._build(dataset)
        assert len(join._tree) == 150
        join._tree.check_invariants()

    def test_maintenance_preserves_tree_size(self):
        from repro.joins import ST2BJoin

        dataset, _lo, _hi = uniform_boxes(150, seed=15)
        join = ST2BJoin()
        join._build(dataset)
        rng = np.random.default_rng(0)
        dataset.translate(rng.normal(scale=15.0, size=dataset.centers.shape))
        np.clip(dataset.centers, *dataset.bounds, out=dataset.centers)
        join._build(dataset)  # incremental path
        assert len(join._tree) == 150
        join._tree.check_invariants()


class TestTouchRouting:
    def test_every_object_reaches_the_leaf_stage(self):
        # In a self-join every object overlaps (at least) its own leaf,
        # so no query may be dropped during routing.
        from repro.geometry import PairAccumulator
        from repro.joins import TouchJoin

        dataset, lo, hi = uniform_boxes(200, width=10.0, side=80.0, seed=16)
        join = TouchJoin()
        join._build(dataset)
        acc = PairAccumulator(count_only=True)
        tests = join._join(dataset, acc)
        # Lower bound: each object is at least compared against itself.
        assert tests >= len(dataset)
