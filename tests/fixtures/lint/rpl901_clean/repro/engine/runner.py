from .tasks import work


def run(pool, payload):
    return pool.submit(work, payload).result()
