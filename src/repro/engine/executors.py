"""Pluggable task executors: serial, thread pool, process pool.

An executor schedules a plan's tasks and returns one
:class:`~repro.engine.plan.TaskResult` per task, in task order.  Every
task emits into a private :class:`~repro.geometry.PairAccumulator`
shard, so scheduling never changes the merged result — executors differ
only in wall-clock behaviour:

``SerialExecutor``
    Runs tasks in order on the calling thread.  The default, and the
    reference for the statistics every other executor must reproduce.
``ThreadExecutor``
    A ``ThreadPoolExecutor``; the numpy kernels behind the verify stage
    release the GIL on their bulk operations, so independent tasks
    overlap on multi-core machines.
``ProcessExecutor``
    A ``ProcessPoolExecutor`` over a persistent worker pool.  The plan's
    context arrays (the MBR coordinate and grouping arrays) are published
    once per step through :mod:`multiprocessing.shared_memory`; workers
    attach and cache them for the step, so each task ships only its own
    small index arrays.  Tasks that are not ``process_safe`` (closures
    over live index objects) run inline in the parent.

Selection
---------
``resolve_executor`` accepts an :class:`Executor` instance, a spec
string (``"serial"``, ``"thread"``, ``"thread:4"``, ``"process"``,
``"process:2"``), or ``None`` — which falls back to the
``REPRO_EXECUTOR`` environment variable and finally to serial.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.engine.plan import TaskResult
from repro.geometry import PairAccumulator

__all__ = [
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "resolve_executor",
]

#: Environment variable naming the default executor spec.
EXECUTOR_ENV_VAR = "REPRO_EXECUTOR"


def _run_inline(task, ctx, count_only):
    accumulator = PairAccumulator(count_only=count_only)
    t0 = time.perf_counter()
    counters = task.run(ctx, accumulator)
    seconds = time.perf_counter() - t0
    return TaskResult(
        counters=counters,
        seconds=seconds,
        n_pairs=len(accumulator),
        accumulator=accumulator,
        phase=task.phase,
    )


class Executor:
    """Scheduling strategy for a plan's independent join tasks."""

    name = "abstract"

    def run(self, tasks, ctx, count_only):
        """Execute ``tasks`` against ``ctx``; return ordered TaskResults."""
        raise NotImplementedError

    def close(self):
        """Release pooled resources (no-op for poolless executors)."""

    def __repr__(self):
        return f"{type(self).__name__}()"


class SerialExecutor(Executor):
    """Run every task in order on the calling thread."""

    name = "serial"

    def run(self, tasks, ctx, count_only):
        return [_run_inline(task, ctx, count_only) for task in tasks]


def _default_workers():
    return max(os.cpu_count() or 1, 1)


class ThreadExecutor(Executor):
    """Run tasks on a thread pool (GIL-releasing numpy kernels overlap)."""

    name = "thread"

    def __init__(self, n_workers=None):
        if n_workers is not None and n_workers < 1:
            raise ValueError(f"n_workers must be at least 1, got {n_workers}")
        self.n_workers = int(n_workers) if n_workers else _default_workers()

    def run(self, tasks, ctx, count_only):
        if len(tasks) < 2 or self.n_workers < 2:
            return [_run_inline(task, ctx, count_only) for task in tasks]
        from concurrent.futures import ThreadPoolExecutor

        with ThreadPoolExecutor(max_workers=self.n_workers) as pool:
            futures = [
                pool.submit(_run_inline, task, ctx, count_only) for task in tasks
            ]
            return [future.result() for future in futures]

    def __repr__(self):
        return f"ThreadExecutor(n_workers={self.n_workers})"


# ----------------------------------------------------------------------
# Process executor: shared-memory context + persistent worker pool
# ----------------------------------------------------------------------
#: Worker-side cache of the current step's attached context arrays.
_WORKER_STATE = {"token": None, "arrays": None, "segments": ()}


def _attach_context(specs, token):
    """Attach (and cache) the step's shared-memory context arrays."""
    from multiprocessing import shared_memory

    state = _WORKER_STATE
    if state["token"] == token:
        return state["arrays"]
    for segment in state["segments"]:
        try:
            segment.close()
        except (OSError, BufferError):  # pragma: no cover - platform cleanup
            pass
    arrays = {}
    segments = []
    for key, (name, shape, dtype) in specs.items():
        segment = shared_memory.SharedMemory(name=name)
        segments.append(segment)
        arrays[key] = np.ndarray(shape, dtype=np.dtype(dtype), buffer=segment.buf)
    state["token"] = token
    state["arrays"] = arrays
    state["segments"] = tuple(segments)
    return arrays


def _process_worker(specs, token, task, count_only):
    """Run one task in a worker process; return a picklable result."""
    ctx = _attach_context(specs, token)
    accumulator = PairAccumulator(count_only=count_only)
    t0 = time.perf_counter()
    counters = task.run(ctx, accumulator)
    seconds = time.perf_counter() - t0
    pairs = None if count_only else accumulator.as_arrays()
    return counters, seconds, len(accumulator), pairs, task.phase


class ProcessExecutor(Executor):
    """Run process-safe tasks on a persistent ``ProcessPoolExecutor``.

    The context arrays are copied into shared memory once per step and
    unlinked after the step completes; workers cache their attachment
    for the duration of the step (keyed by a per-step token).  Tasks
    flagged ``process_safe=False`` run inline in the parent process.
    """

    name = "process"

    def __init__(self, n_workers=None):
        if n_workers is not None and n_workers < 1:
            raise ValueError(f"n_workers must be at least 1, got {n_workers}")
        self.n_workers = int(n_workers) if n_workers else _default_workers()
        self._pool = None
        self._step_token = 0

    def _ensure_pool(self):
        if self._pool is None:
            import multiprocessing
            from concurrent.futures import ProcessPoolExecutor

            context = None
            if "fork" in multiprocessing.get_all_start_methods():
                context = multiprocessing.get_context("fork")
            self._pool = ProcessPoolExecutor(
                max_workers=self.n_workers, mp_context=context
            )
        return self._pool

    def _publish_context(self, ctx):
        """Copy context arrays into shared memory; return (specs, segments)."""
        from multiprocessing import shared_memory

        specs = {}
        segments = []
        for key, array in ctx.items():
            array = np.ascontiguousarray(array)
            segment = shared_memory.SharedMemory(
                create=True, size=max(array.nbytes, 1)
            )
            segments.append(segment)
            view = np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)
            view[...] = array
            specs[key] = (segment.name, array.shape, array.dtype.str)
        return specs, segments

    def run(self, tasks, ctx, count_only):
        remote_idx = [k for k, task in enumerate(tasks) if task.process_safe]
        if len(remote_idx) < 2 or self.n_workers < 2 or not ctx:
            return [_run_inline(task, ctx, count_only) for task in tasks]

        pool = self._ensure_pool()
        self._step_token += 1
        token = (os.getpid(), self._step_token)
        specs, segments = self._publish_context(ctx)
        results = [None] * len(tasks)
        try:
            futures = {
                k: pool.submit(_process_worker, specs, token, tasks[k], count_only)
                for k in remote_idx
            }
            # Inline tasks run in the parent while the pool works.
            for k, task in enumerate(tasks):
                if k not in futures:
                    results[k] = _run_inline(task, ctx, count_only)
            for k, future in futures.items():
                counters, seconds, n_pairs, pairs, phase = future.result()
                accumulator = PairAccumulator(count_only=count_only)
                if pairs is not None:
                    accumulator.extend_canonical(*pairs)
                else:
                    accumulator.add_count(n_pairs)
                results[k] = TaskResult(
                    counters=counters,
                    seconds=seconds,
                    n_pairs=n_pairs,
                    accumulator=accumulator,
                    phase=phase,
                )
        finally:
            for segment in segments:
                segment.close()
                try:
                    segment.unlink()
                except FileNotFoundError:  # pragma: no cover
                    pass
        return results

    def close(self):
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __del__(self):  # pragma: no cover - interpreter-shutdown best effort
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self):
        return f"ProcessExecutor(n_workers={self.n_workers})"


def resolve_executor(spec):
    """Resolve an executor instance from ``spec``.

    ``None`` consults the ``REPRO_EXECUTOR`` environment variable and
    defaults to serial; strings take the form ``name`` or ``name:N``
    with ``N`` the worker count.  Instances pass through unchanged (so
    one pool can be shared by many algorithms).
    """
    if isinstance(spec, Executor):
        return spec
    if spec is None:
        spec = os.environ.get(EXECUTOR_ENV_VAR) or "serial"
    if not isinstance(spec, str):
        raise TypeError(f"executor spec must be an Executor, str or None: {spec!r}")
    name, _, workers = spec.partition(":")
    name = name.strip().lower()
    n_workers = None
    if workers:
        try:
            n_workers = int(workers)
        except ValueError:
            raise ValueError(f"invalid executor worker count in {spec!r}") from None
    if name == "serial":
        return SerialExecutor()
    if name in ("thread", "threads"):
        return ThreadExecutor(n_workers)
    if name in ("process", "processes"):
        return ProcessExecutor(n_workers)
    raise ValueError(
        f"unknown executor {spec!r}; expected serial, thread[:N] or process[:N]"
    )
