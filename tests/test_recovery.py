"""Durable checkpoint/restore: format, atomicity, resume bit-identity.

The contract under test (docs/robustness.md): a run that checkpoints,
crashes and resumes must produce *exactly* the trajectory an
uninterrupted run produces — same result counts, same overlap tests,
same footprint, same index counters — across motion models, executors
and the incremental pipeline; and a corrupted newest checkpoint must
degrade to the previous one, never to a wrong answer.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np
import pytest

from repro.core import ThermalJoin
from repro.datasets import (
    make_clustered_workload,
    make_neural_workload,
    make_uniform_workload,
)
from repro.engine.faults import (
    SimulatedCrash,
    corrupt_bitflip,
    corrupt_truncate,
    install_fault_plan,
    parse_faults,
)
from repro.recovery import (
    CheckpointError,
    CheckpointManager,
    RecoveryMetrics,
    atomic_write_bytes,
    restore_dataset,
    restore_motion,
    snapshot_dataset,
    snapshot_motion,
    step_record_from_jsonable,
    step_record_to_jsonable,
    write_json,
    write_npz,
)
from repro.simulation import SimulationRunner

N_STEPS = 8

#: Providers excluded from trajectory comparison: ``recovery`` counters
#: are runner-local (only the checkpointed run has them) and ``kernels``
#: counters are process-global cumulative call counts.
_RUN_LOCAL_PROVIDERS = ("recovery", "kernels")


def _make_workload(kind: str, seed: int = 11):
    if kind == "uniform":
        dataset, motion = make_uniform_workload(
            300, width=15.0, bounds=((0, 0, 0), (110, 110, 110)), seed=seed
        )
    elif kind == "clustered":
        dataset, motion, _labels = make_clustered_workload(
            300, n_clusters=3, seed=seed
        )
    elif kind == "neural":
        dataset, motion, _labels = make_neural_workload(300, seed=seed)
    else:  # pragma: no cover - guard against typos in parametrize lists
        raise ValueError(kind)
    return dataset, motion


def _strip_checkpoint_events(events):
    return [event for event in events if event.get("kind") != "checkpoint"]


def assert_trajectories_identical(baseline, resumed):
    """Bit-for-bit comparison of two record lists.

    Checkpoint events are excluded (the uninterrupted baseline writes
    none) and so are the run-local metrics providers; everything else —
    including float step times' *presence* and all integer series —
    must match exactly.
    """
    assert len(baseline) == len(resumed)
    for a, b in zip(baseline, resumed):
        assert a.step == b.step
        assert a.n_results == b.n_results, f"step {a.step}"
        assert a.overlap_tests == b.overlap_tests, f"step {a.step}"
        assert a.memory_bytes == b.memory_bytes, f"step {a.step}"
        assert a.task_retries == b.task_retries, f"step {a.step}"
        assert _strip_checkpoint_events(a.events) == _strip_checkpoint_events(
            b.events
        ), f"step {a.step}"
        counters_a = {
            k: v
            for k, v in a.index_counters.items()
            if k not in _RUN_LOCAL_PROVIDERS
        }
        counters_b = {
            k: v
            for k, v in b.index_counters.items()
            if k not in _RUN_LOCAL_PROVIDERS
        }
        assert counters_a == counters_b, f"step {a.step}"
        assert a.incremental == b.incremental, f"step {a.step}"


# ----------------------------------------------------------------------
# Atomic writer
# ----------------------------------------------------------------------
class TestAtomicWriter:
    def test_write_bytes_commits_and_returns_size(self, tmp_path):
        path = tmp_path / "blob.bin"
        nbytes = atomic_write_bytes(path, b"abcdef")
        assert nbytes == 6
        assert path.read_bytes() == b"abcdef"
        # No temp file left behind.
        assert sorted(p.name for p in tmp_path.iterdir()) == ["blob.bin"]

    def test_write_replaces_existing_atomically(self, tmp_path):
        path = tmp_path / "blob.bin"
        atomic_write_bytes(path, b"old")
        atomic_write_bytes(path, b"new content")
        assert path.read_bytes() == b"new content"

    def test_write_json_round_trips(self, tmp_path):
        path = tmp_path / "doc.json"
        document = {"b": 2, "a": [1, 2.5, "x"], "nested": {"k": None}}
        write_json(path, document)
        assert json.loads(path.read_text(encoding="utf-8")) == document

    def test_write_npz_round_trips(self, tmp_path):
        path = tmp_path / "arrays.npz"
        arrays = {
            "ints": np.arange(10, dtype=np.int64),
            "floats": np.linspace(0, 1, 7),
        }
        write_npz(path, arrays)
        with np.load(path, allow_pickle=False) as payload:
            assert np.array_equal(payload["ints"], arrays["ints"])
            assert np.array_equal(payload["floats"], arrays["floats"])


# ----------------------------------------------------------------------
# Checkpoint format, verification, retention
# ----------------------------------------------------------------------
class TestCheckpointManager:
    def _write_one(self, directory, step=0, value=1.0):
        manager = CheckpointManager(directory)
        manager.write(
            step,
            {"data": np.full(8, value)},
            {"note": f"step {step}"},
        )
        return manager

    def test_write_then_load_verifies(self, tmp_path):
        manager = self._write_one(tmp_path, step=3, value=2.0)
        checkpoint, skipped = manager.load_latest()
        assert skipped == 0
        assert checkpoint.step == 3
        assert np.array_equal(checkpoint.arrays["data"], np.full(8, 2.0))
        assert checkpoint.meta == {"note": "step 3"}

    def test_manifest_carries_format_and_checksums(self, tmp_path):
        self._write_one(tmp_path, step=1)
        manifest = json.loads((tmp_path / "step-000001.json").read_text())
        assert manifest["format"] == "repro-checkpoint"
        assert manifest["version"] == 1
        assert manifest["payload"] == "step-000001.npz"
        entry = manifest["arrays"]["data"]
        assert set(entry) == {"sha256", "shape", "dtype"}
        assert entry["shape"] == [8]

    def test_retention_keeps_last_k(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep_last=2)
        for step in range(5):
            manager.write(step, {"data": np.arange(step + 1)}, {})
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names == [
            "step-000003.json",
            "step-000003.npz",
            "step-000004.json",
            "step-000004.npz",
        ]

    def test_truncated_newest_falls_back(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.write(0, {"data": np.arange(4)}, {})
        manager.write(1, {"data": np.arange(5)}, {})
        corrupt_truncate(tmp_path / "step-000001.json")
        checkpoint, skipped = manager.load_latest()
        assert checkpoint.step == 0
        assert skipped == 1

    def test_bitflipped_payload_falls_back(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.write(0, {"data": np.arange(64, dtype=np.float64)}, {})
        manager.write(1, {"data": np.arange(64, dtype=np.float64)}, {})
        corrupt_bitflip(tmp_path / "step-000001.npz")
        checkpoint, skipped = manager.load_latest()
        assert checkpoint.step == 0
        assert skipped == 1

    def test_missing_payload_falls_back(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.write(0, {"data": np.arange(4)}, {})
        manager.write(1, {"data": np.arange(4)}, {})
        (tmp_path / "step-000001.npz").unlink()
        checkpoint, skipped = manager.load_latest()
        assert checkpoint.step == 0
        assert skipped == 1

    def test_all_corrupt_raises(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.write(0, {"data": np.arange(4)}, {})
        corrupt_truncate(tmp_path / "step-000000.json", keep_fraction=0.1)
        with pytest.raises(CheckpointError, match="corrupt"):
            manager.load_latest()

    def test_empty_directory_raises(self, tmp_path):
        with pytest.raises(CheckpointError, match="no checkpoints"):
            CheckpointManager(tmp_path).load_latest()

    def test_foreign_manifest_rejected(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        (tmp_path / "step-000000.json").write_text('{"foo": 1}')
        with pytest.raises(CheckpointError):
            manager.load(tmp_path / "step-000000.json")

    def test_shape_mismatch_rejected(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.write(0, {"data": np.arange(4)}, {})
        # Rewrite the payload with a different shape behind the manifest.
        write_npz(tmp_path / "step-000000.npz", {"data": np.arange(6)})
        with pytest.raises(CheckpointError, match="shape/dtype"):
            manager.load(tmp_path / "step-000000.json")


# ----------------------------------------------------------------------
# State codecs
# ----------------------------------------------------------------------
class TestStateCodecs:
    def test_dataset_round_trip(self):
        dataset, _motion = _make_workload("uniform")
        dataset.attributes["mass"] = np.arange(len(dataset), dtype=np.float64)
        dataset.version = 17
        arrays, meta = snapshot_dataset(dataset)
        restored = restore_dataset(arrays, meta)
        assert np.array_equal(restored.centers, dataset.centers)
        assert np.array_equal(restored.widths, dataset.widths)
        assert restored.version == 17
        assert np.array_equal(
            restored.attributes["mass"], dataset.attributes["mass"]
        )
        assert restored.uid != dataset.uid  # uid is process-local

    @pytest.mark.parametrize("kind", ["uniform", "clustered", "neural"])
    def test_motion_round_trip_preserves_random_stream(self, kind):
        dataset, motion = _make_workload(kind)
        dataset_copy, motion_reference = _make_workload(kind)
        # Advance both in lockstep, snapshot one, then compare streams.
        for _ in range(3):
            motion.step(dataset)
            motion_reference.step(dataset_copy)
        arrays, meta = snapshot_motion(motion)
        restored = restore_motion(arrays, meta)
        for _ in range(3):
            restored.step(dataset)
            motion_reference.step(dataset_copy)
        assert np.array_equal(dataset.centers, dataset_copy.centers)

    def test_motion_meta_is_json_safe(self):
        _dataset, motion = _make_workload("neural")
        _arrays, meta = snapshot_motion(motion)
        replayed = json.loads(json.dumps(meta))
        assert replayed == meta  # RNG state survives JSON exactly

    def test_unknown_bit_generator_rejected(self):
        # The neural motion model carries a live Generator.
        _dataset, motion = _make_workload("neural")
        arrays, meta = snapshot_motion(motion)
        rng_entries = [
            entry for entry in meta["attrs"].values() if entry["kind"] == "rng"
        ]
        assert rng_entries, "expected the motion model to carry an RNG"
        for entry in rng_entries:
            entry["state"]["bit_generator"] = "NotAGenerator"
        with pytest.raises(ValueError, match="bit generator"):
            restore_motion(arrays, meta)

    def test_step_record_round_trip(self, uniform_small):
        runner = SimulationRunner(uniform_small, None, ThermalJoin())
        runner.run(2)
        for record in runner.records:
            doc = json.loads(json.dumps(step_record_to_jsonable(record)))
            assert step_record_from_jsonable(doc) == record


# ----------------------------------------------------------------------
# Resume equals uninterrupted — the core property
# ----------------------------------------------------------------------
class TestResumeBitIdentity:
    @pytest.mark.parametrize("kind", ["uniform", "clustered", "neural"])
    def test_resume_matches_uninterrupted(self, kind, tmp_path):
        dataset, motion = _make_workload(kind)
        baseline = SimulationRunner(dataset, motion, ThermalJoin())
        baseline.run(N_STEPS)

        dataset2, motion2 = _make_workload(kind)
        first = SimulationRunner(
            dataset2, motion2, ThermalJoin(), checkpoint_dir=tmp_path,
            checkpoint_every=2,
        )
        first.run(5)  # dies after step 4; checkpoints at 1 and 3

        resumed = SimulationRunner.resume(tmp_path, ThermalJoin())
        assert resumed._next_step == 4
        resumed.run(N_STEPS)
        assert_trajectories_identical(baseline.records, resumed.records)

    def test_resume_matches_with_incremental_maintenance(self, tmp_path):
        def algo():
            return ThermalJoin(incremental=True, pair_maintenance=True)

        dataset, motion = _make_workload("uniform")
        baseline = SimulationRunner(dataset, motion, algo())
        baseline.run(N_STEPS)

        dataset2, motion2 = _make_workload("uniform")
        first = SimulationRunner(
            dataset2, motion2, algo(), checkpoint_dir=tmp_path,
            checkpoint_every=3,
        )
        first.run(6)
        resumed = SimulationRunner.resume(tmp_path, algo())
        resumed.run(N_STEPS)
        assert_trajectories_identical(baseline.records, resumed.records)

    @pytest.mark.parametrize("executor", ["serial", "thread:2"])
    def test_resume_matches_across_executors(self, executor, tmp_path):
        def algo():
            return ThermalJoin(executor=executor)

        dataset, motion = _make_workload("uniform")
        baseline = SimulationRunner(dataset, motion, algo())
        baseline.run(N_STEPS)

        dataset2, motion2 = _make_workload("uniform")
        first = SimulationRunner(
            dataset2, motion2, algo(), checkpoint_dir=tmp_path,
            checkpoint_every=2,
        )
        first.run(5)
        resumed = SimulationRunner.resume(tmp_path, algo())
        resumed.run(N_STEPS)
        assert_trajectories_identical(baseline.records, resumed.records)

    def test_resume_from_older_checkpoint_after_corruption(self, tmp_path):
        dataset, motion = _make_workload("uniform")
        baseline = SimulationRunner(dataset, motion, ThermalJoin())
        baseline.run(N_STEPS)

        dataset2, motion2 = _make_workload("uniform")
        first = SimulationRunner(
            dataset2, motion2, ThermalJoin(), checkpoint_dir=tmp_path,
            checkpoint_every=2,
        )
        first.run(6)  # checkpoints at steps 1, 3, 5
        corrupt_truncate(tmp_path / "step-000005.json")
        corrupt_bitflip(tmp_path / "step-000005.npz")

        resumed = SimulationRunner.resume(tmp_path, ThermalJoin())
        assert resumed._next_step == 4  # fell back to the step-3 checkpoint
        assert resumed.recovery.corrupt_skipped == 1
        resumed.run(N_STEPS)
        assert_trajectories_identical(baseline.records, resumed.records)

    def test_resume_validates_algorithm_config(self, tmp_path):
        dataset, motion = _make_workload("uniform")
        runner = SimulationRunner(
            dataset, motion, ThermalJoin(), checkpoint_dir=tmp_path,
            checkpoint_every=2,
        )
        runner.run(3)
        with pytest.raises(ValueError, match="config"):
            SimulationRunner.resume(tmp_path, ThermalJoin(resolution=0.25))

    def test_checkpoint_event_recorded_identically(self, tmp_path):
        # The checkpointed run and its resumed continuation must agree
        # on the checkpoint events too (they are part of the records).
        dataset, motion = _make_workload("uniform")
        full = SimulationRunner(
            dataset, motion, ThermalJoin(), checkpoint_dir=tmp_path / "a",
            checkpoint_every=2,
        )
        full.run(N_STEPS)

        dataset2, motion2 = _make_workload("uniform")
        first = SimulationRunner(
            dataset2, motion2, ThermalJoin(), checkpoint_dir=tmp_path / "b",
            checkpoint_every=2,
        )
        first.run(5)
        resumed = SimulationRunner.resume(tmp_path / "b", ThermalJoin())
        resumed.run(N_STEPS)
        for a, b in zip(full.records, resumed.records):
            assert a.events == b.events, f"step {a.step}"


# ----------------------------------------------------------------------
# Injected crashes end to end
# ----------------------------------------------------------------------
class TestCrashStep:
    def teardown_method(self):
        install_fault_plan(None)

    def test_crashstep_raises_out_of_run(self, tmp_path):
        install_fault_plan(parse_faults("crashstep@3"))
        dataset, motion = _make_workload("uniform")
        runner = SimulationRunner(
            dataset, motion, ThermalJoin(), checkpoint_dir=tmp_path,
            checkpoint_every=2,
        )
        with pytest.raises(SimulatedCrash):
            runner.run(N_STEPS)
        # Completed records and the step-3 checkpoint survive the crash.
        assert [r.step for r in runner.records] == [0, 1, 2, 3]
        assert runner.failed_step is None
        assert (tmp_path / "step-000003.json").exists()

    def test_crash_then_resume_is_bit_identical(self, tmp_path):
        dataset, motion = _make_workload("uniform")
        baseline = SimulationRunner(dataset, motion, ThermalJoin())
        baseline.run(N_STEPS)

        install_fault_plan(parse_faults("crashstep@3"))
        dataset2, motion2 = _make_workload("uniform")
        crashed = SimulationRunner(
            dataset2, motion2, ThermalJoin(), checkpoint_dir=tmp_path,
            checkpoint_every=2,
        )
        with pytest.raises(SimulatedCrash):
            crashed.run(N_STEPS)

        resumed = SimulationRunner.resume(tmp_path, ThermalJoin())
        resumed.run(N_STEPS)
        assert_trajectories_identical(baseline.records, resumed.records)

    def test_crashstep_without_checkpoints_loses_nothing_recorded(self):
        install_fault_plan(parse_faults("crashstep@1"))
        dataset, motion = _make_workload("uniform")
        runner = SimulationRunner(dataset, motion, ThermalJoin())
        with pytest.raises(SimulatedCrash):
            runner.run(4)
        assert [r.step for r in runner.records] == [0, 1]


# ----------------------------------------------------------------------
# Step-level escalation
# ----------------------------------------------------------------------
class _FlakyJoin(ThermalJoin):
    """Raises on chosen step indices, once each, past executor recovery."""

    def __init__(self, fail_steps=(), always=False, **kwargs):
        super().__init__(**kwargs)
        self._fail_steps = set(fail_steps)
        self._always = always
        self._calls = 0

    def step_delta(self, dataset, delta):
        step = self._calls
        self._calls += 1
        if self._always or step in self._fail_steps:
            self._fail_steps.discard(step)
            raise RuntimeError(f"flaky failure at call {step}")
        return super().step_delta(dataset, delta)


class TestEscalation:
    def test_retry_succeeds_and_is_recorded(self, tmp_path):
        dataset, motion = _make_workload("uniform")
        runner = SimulationRunner(
            dataset, motion, _FlakyJoin(fail_steps={2}),
            checkpoint_dir=tmp_path, checkpoint_every=100,
        )
        records = runner.run(5)
        assert runner.failed_step is None
        assert len(records) == 5
        retried = [
            e for e in records[2].events if e.get("kind") == "step_retry"
        ]
        assert len(retried) == 1
        assert runner.recovery.step_retries == 1
        assert runner.recovery.escalations == 0

    def test_second_failure_escalates(self, tmp_path):
        dataset, motion = _make_workload("uniform")
        runner = SimulationRunner(
            dataset, motion, _FlakyJoin(always=True),
            checkpoint_dir=tmp_path, checkpoint_every=100,
        )
        records = runner.run(3)
        assert records == []
        assert runner.failed_step == 0
        assert isinstance(runner.failure, RuntimeError)
        assert "flaky failure" in runner.failure_traceback
        assert runner.recovery.escalations == 1

    def test_retry_result_matches_clean_run(self):
        dataset, motion = _make_workload("uniform")
        baseline = SimulationRunner(dataset, motion, ThermalJoin())
        baseline.run(5)

        dataset2, motion2 = _make_workload("uniform")
        runner = SimulationRunner(dataset2, motion2, _FlakyJoin(fail_steps={3}))
        runner.run(5)
        for a, b in zip(baseline.records, runner.records):
            assert a.n_results == b.n_results, f"step {a.step}"


# ----------------------------------------------------------------------
# Recovery metrics provider
# ----------------------------------------------------------------------
class TestRecoveryMetrics:
    def test_counters_accumulate(self):
        metrics = RecoveryMetrics()
        metrics.record_checkpoint(100, seconds=0.25)
        metrics.record_checkpoint(50, seconds=0.5)
        metrics.record_load(corrupt_skipped=2)
        metrics.record_step_retry()
        metrics.record_escalation()
        assert metrics.snapshot() == {
            "checkpoints_written": 2,
            "checkpoint_bytes": 150,
            "checkpoint_seconds": 0.75,
            "checkpoint_loads": 1,
            "corrupt_skipped": 2,
            "step_retries": 1,
            "escalations": 1,
        }

    def test_provider_surfaces_in_step_records(self, tmp_path):
        dataset, motion = _make_workload("uniform")
        runner = SimulationRunner(
            dataset, motion, ThermalJoin(), checkpoint_dir=tmp_path,
            checkpoint_every=2,
        )
        runner.run(4)
        assert runner.recovery.checkpoints_written == 2
        assert runner.recovery.checkpoint_bytes > 0
        # The provider is live in the registry snapshot of later steps.
        assert "recovery" in runner.records[-1].index_counters
        snapshot = runner.records[-1].index_counters["recovery"]
        assert snapshot["checkpoints_written"] >= 1

    def test_no_provider_without_checkpointing(self):
        dataset, motion = _make_workload("uniform")
        runner = SimulationRunner(dataset, motion, ThermalJoin())
        runner.run(2)
        assert runner.recovery is None
        assert "recovery" not in runner.records[-1].index_counters


# ----------------------------------------------------------------------
# Corruption injection helpers
# ----------------------------------------------------------------------
class TestCorruptionHelpers:
    def test_truncate_shrinks_file(self, tmp_path):
        path = tmp_path / "f.bin"
        path.write_bytes(b"x" * 100)
        corrupt_truncate(path, keep_fraction=0.25)
        assert path.stat().st_size == 25

    def test_truncate_validates_fraction(self, tmp_path):
        path = tmp_path / "f.bin"
        path.write_bytes(b"x")
        with pytest.raises(ValueError):
            corrupt_truncate(path, keep_fraction=1.5)

    def test_bitflip_changes_exactly_one_bit(self, tmp_path):
        path = tmp_path / "f.bin"
        path.write_bytes(bytes(range(16)))
        corrupt_bitflip(path, offset=4)
        data = path.read_bytes()
        assert data[4] == 4 ^ 0x01
        assert len(data) == 16

    def test_bitflip_rejects_empty_file(self, tmp_path):
        path = tmp_path / "f.bin"
        path.write_bytes(b"")
        with pytest.raises(ValueError):
            corrupt_bitflip(path)
