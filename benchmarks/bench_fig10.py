"""Benchmark for Figure 10 — THERMAL-JOIN internals vs resolution.

Times the three phases' host step at coarse/sweet/fine resolutions and
asserts the figure's two mechanisms: internal-join time takes over for
r > 1 (cells stop being hot spots) and the footprint falls as the grid
coarsens.
"""

from __future__ import annotations

import pytest

from repro.core import ThermalJoin


@pytest.mark.parametrize("resolution", [0.5, 1.0, 2.0])
def test_fig10_step_at_resolution(benchmark, neural_dataset, resolution):
    join = ThermalJoin(resolution=resolution, count_only=True)

    result = benchmark(lambda: join.step(neural_dataset))
    assert result.n_results > 0


def test_fig10a_internal_join_dominates_when_coarse(neural_dataset):
    """r > 1: P-Grid cells are no longer hot spots, so the internal join
    (T-Grids) takes over the time budget (Figure 10a, right side)."""
    fine = ThermalJoin(resolution=1.0, count_only=True)
    coarse = ThermalJoin(resolution=2.0, count_only=True)
    fine_phases = fine.step(neural_dataset).stats.phase_seconds
    coarse_phases = coarse.step(neural_dataset).stats.phase_seconds
    assert coarse_phases["internal"] > fine_phases["internal"]


def test_fig10b_footprint_falls_as_grid_coarsens(neural_dataset):
    """Figure 10b: memory depends only on the number of instantiated
    cells, which shrinks monotonically with r."""
    footprints = []
    for r in (0.5, 1.0, 2.0):
        join = ThermalJoin(resolution=r, count_only=True)
        footprints.append(join.step(neural_dataset).stats.memory_bytes)
    assert footprints[0] > footprints[1] > footprints[2]
