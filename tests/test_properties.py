"""Property-based tests (hypothesis) for core invariants.

These complement the example-based suites with randomised adversarial
inputs: every join algorithm must agree with the brute-force oracle on
*arbitrary* box configurations, the hot-spot guarantee must hold for
whatever lands in a grid cell, identifier packing must round-trip, and
the tuner must converge on arbitrary convex landscapes.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import HillClimbingTuner, PGrid, ThermalJoin, pack_cell_ids, unpack_cell_id
from repro.datasets import SpatialDataset
from repro.geometry import (
    brute_force_pairs,
    mbr,
    pack_pairs,
    sort_by_x,
    sweep_self,
    unique_pairs,
)
from repro.joins import EGOJoin, PBSMJoin, SynchronousRTreeJoin, TouchJoin

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

#: Finite, well-scaled coordinates (extreme magnitudes are exercised by
#: dedicated unit tests; property tests target combinatorial adversity).
coordinate = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False
)
width = st.floats(min_value=0.05, max_value=40.0, allow_nan=False)


@st.composite
def box_sets(draw, min_size=2, max_size=40):
    """A random collection of boxes as (centers, widths) arrays."""
    n = draw(st.integers(min_value=min_size, max_value=max_size))
    centers = draw(
        st.lists(
            st.tuples(coordinate, coordinate, coordinate), min_size=n, max_size=n
        )
    )
    widths = draw(st.lists(width, min_size=n, max_size=n))
    return np.asarray(centers, dtype=np.float64), np.asarray(widths, dtype=np.float64)


def oracle_keys(dataset):
    lo, hi = dataset.boxes()
    i_idx, j_idx = brute_force_pairs(lo, hi)
    return pack_pairs(i_idx, j_idx, len(dataset))


def result_keys(result, n):
    return pack_pairs(*unique_pairs(*result.pairs, n), n)


# ----------------------------------------------------------------------
# Oracle equivalence of the joins
# ----------------------------------------------------------------------
class TestJoinOracleEquivalence:
    @given(box_sets(), st.sampled_from([0.4, 0.8, 1.0, 1.7]))
    @settings(max_examples=60, deadline=None)
    def test_thermal_matches_oracle(self, boxes, resolution):
        centers, widths = boxes
        dataset = SpatialDataset(centers, widths)
        result = ThermalJoin(resolution=resolution).step(dataset)
        assert np.array_equal(result_keys(result, len(dataset)), oracle_keys(dataset))

    @given(box_sets())
    @settings(max_examples=40, deadline=None)
    def test_pbsm_matches_oracle(self, boxes):
        centers, widths = boxes
        dataset = SpatialDataset(centers, widths)
        result = PBSMJoin().step(dataset)
        assert np.array_equal(result_keys(result, len(dataset)), oracle_keys(dataset))

    @given(box_sets())
    @settings(max_examples=40, deadline=None)
    def test_ego_matches_oracle(self, boxes):
        centers, widths = boxes
        dataset = SpatialDataset(centers, widths)
        result = EGOJoin().step(dataset)
        assert np.array_equal(result_keys(result, len(dataset)), oracle_keys(dataset))

    @given(box_sets(), st.sampled_from([2, 3, 8]))
    @settings(max_examples=40, deadline=None)
    def test_rtree_matches_oracle(self, boxes, fanout):
        centers, widths = boxes
        dataset = SpatialDataset(centers, widths)
        result = SynchronousRTreeJoin(fanout=fanout).step(dataset)
        assert np.array_equal(result_keys(result, len(dataset)), oracle_keys(dataset))

    @given(box_sets())
    @settings(max_examples=40, deadline=None)
    def test_touch_matches_oracle(self, boxes):
        centers, widths = boxes
        dataset = SpatialDataset(centers, widths)
        result = TouchJoin().step(dataset)
        assert np.array_equal(result_keys(result, len(dataset)), oracle_keys(dataset))

    @given(box_sets())
    @settings(max_examples=40, deadline=None)
    def test_sweep_matches_oracle(self, boxes):
        centers, widths = boxes
        lo, hi = mbr.boxes_from_centers(centers, widths)
        n = lo.shape[0]
        s_lo, s_hi, ids = sort_by_x(lo, hi)
        i_ids, j_ids, _tests = sweep_self(s_lo, s_hi, ids)
        got = pack_pairs(*unique_pairs(i_ids, j_ids, n), n)
        exp = pack_pairs(*brute_force_pairs(lo, hi), n)
        assert np.array_equal(got, exp)


# ----------------------------------------------------------------------
# Hot-spot guarantee
# ----------------------------------------------------------------------
class TestHotSpotInvariant:
    @given(box_sets(min_size=4, max_size=60), st.sampled_from([0.5, 1.0, 2.0]))
    @settings(max_examples=60, deadline=None)
    def test_hot_cells_are_cliques(self, boxes, resolution):
        """Whenever the hot-spot condition holds for a P-Grid cell, every
        pair of its objects genuinely overlaps — the guarantee that lets
        THERMAL-JOIN skip the predicate entirely."""
        centers, widths = boxes
        dataset = SpatialDataset(centers, widths)
        lo, hi = dataset.boxes()
        grid = PGrid(resolution * dataset.max_width, dataset.bounds[0])
        grid.refresh(dataset.centers, lo[:, 0], dataset.widths, dataset.max_width)
        for cell in grid.occupied:
            members = cell.object_idx
            if members.size < 2:
                continue
            spread = cell.center_hi - cell.center_lo
            if not (spread < cell.min_obj_width).all():
                continue
            for a in range(members.size):
                for b in range(a + 1, members.size):
                    ia, ib = members[a], members[b]
                    assert mbr.overlap_single(lo[ia], hi[ia], lo[ib], hi[ib])

    @given(box_sets(min_size=3, max_size=50))
    @settings(max_examples=40, deadline=None)
    def test_every_object_in_exactly_one_cell(self, boxes):
        centers, widths = boxes
        dataset = SpatialDataset(centers, widths)
        lo, _hi = dataset.boxes()
        grid = PGrid(dataset.max_width, dataset.bounds[0])
        grid.refresh(dataset.centers, lo[:, 0], dataset.widths, dataset.max_width)
        seen = np.concatenate([cell.object_idx for cell in grid.occupied])
        assert np.array_equal(np.sort(seen), np.arange(len(dataset)))


# ----------------------------------------------------------------------
# Packing and pair encodings
# ----------------------------------------------------------------------
class TestEncodings:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=-(2**20), max_value=2**20 - 1),
                st.integers(min_value=-(2**20), max_value=2**20 - 1),
                st.integers(min_value=-(2**20), max_value=2**20 - 1),
            ),
            min_size=1,
            max_size=50,
        )
    )
    @settings(max_examples=100)
    def test_cell_id_roundtrip(self, coords):
        arr = np.asarray(coords, dtype=np.int64)
        packed = pack_cell_ids(arr)
        for k in range(arr.shape[0]):
            assert unpack_cell_id(packed[k]) == tuple(arr[k])

    @given(
        st.integers(min_value=2, max_value=500),
        st.data(),
    )
    @settings(max_examples=60)
    def test_pair_pack_roundtrip(self, n, data):
        k = data.draw(st.integers(min_value=1, max_value=30))
        i_idx = data.draw(
            st.lists(st.integers(0, n - 1), min_size=k, max_size=k)
        )
        j_idx = data.draw(
            st.lists(st.integers(0, n - 1), min_size=k, max_size=k)
        )
        i_arr = np.asarray(i_idx, dtype=np.int64)
        j_arr = np.asarray(j_idx, dtype=np.int64)
        keys = pack_pairs(i_arr, j_arr, n)
        from repro.geometry import unpack_pairs

        ri, rj = unpack_pairs(keys, n)
        assert np.array_equal(ri, i_arr)
        assert np.array_equal(rj, j_arr)


# ----------------------------------------------------------------------
# Tuner convergence
# ----------------------------------------------------------------------
class TestTunerProperties:
    @given(
        st.floats(min_value=0.25, max_value=1.9),
        st.floats(min_value=1.0, max_value=500.0),
        st.floats(min_value=5.0, max_value=200.0),
    )
    @settings(max_examples=100)
    def test_converges_on_any_convex_landscape(self, optimum, curvature, base):
        tuner = HillClimbingTuner()
        for _ in range(60):
            tuner.observe(base + curvature * (tuner.current_r - optimum) ** 2)
            if tuner.converged:
                break
        assert tuner.converged
        assert tuner.r_min <= tuner.current_r <= tuner.r_max

    @given(st.lists(st.floats(min_value=0.01, max_value=1e6), min_size=1, max_size=60))
    @settings(max_examples=80)
    def test_never_leaves_bounds_on_arbitrary_costs(self, costs):
        tuner = HillClimbingTuner()
        for cost in costs:
            tuner.observe(cost)
            assert tuner.r_min <= tuner.current_r <= tuner.r_max


# ----------------------------------------------------------------------
# Simulation invariants
# ----------------------------------------------------------------------
class TestMotionInvariants:
    @given(
        st.integers(min_value=2, max_value=60),
        st.floats(min_value=0.1, max_value=80.0),
        st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=40, deadline=None)
    def test_reflection_keeps_objects_inside(self, n, distance, steps):
        from repro.datasets import RandomTranslation

        rng = np.random.default_rng(n)
        centers = rng.uniform(10.0, 40.0, size=(n, 3))
        dataset = SpatialDataset(
            centers, 1.0, bounds=(np.zeros(3), np.full(3, 50.0))
        )
        motion = RandomTranslation(dataset, distance=distance, seed=1)
        for _ in range(steps):
            motion.step(dataset)
            lo_b, hi_b = dataset.bounds
            assert (dataset.centers >= lo_b).all()
            assert (dataset.centers <= hi_b).all()

    @given(st.integers(min_value=2, max_value=40), st.integers(min_value=1, max_value=5))
    @settings(max_examples=30, deadline=None)
    def test_incremental_thermal_equals_fresh_thermal(self, n, steps):
        """After any number of maintenance cycles the incremental index
        answers exactly like a freshly built one."""
        from repro.datasets import RandomTranslation

        rng = np.random.default_rng(n * 7 + steps)
        centers = rng.uniform(0.0, 60.0, size=(n, 3))
        dataset = SpatialDataset(
            centers, 8.0, bounds=(np.zeros(3), np.full(3, 60.0))
        )
        motion = RandomTranslation(dataset, distance=15.0, seed=3)
        incremental = ThermalJoin(resolution=1.0)
        for _ in range(steps):
            incremental_result = incremental.step(dataset)
            fresh_result = ThermalJoin(resolution=1.0).step(dataset)
            assert np.array_equal(
                result_keys(incremental_result, n), result_keys(fresh_result, n)
            )
            motion.step(dataset)
