"""Step-trajectory bench driver: BENCH_steps.json producer.

Runs a small matrix of (workload, algorithm, executor) simulations
through :class:`~repro.simulation.SimulationRunner` and writes the
per-step series — the Figure-7 quantities plus engine stage times,
robustness events and the metrics-registry snapshots — as the
schema-versioned ``BENCH_steps.json`` document defined in
:mod:`repro.obs.bench`.

Two entry points:

* under pytest (``pytest benchmarks/bench_steps.py``) a smoke-scale
  matrix runs, the document is validated against the schema, and the
  tracing-on/off bit-identity invariant is asserted;
* as a script::

      PYTHONPATH=src python benchmarks/bench_steps.py            # default scale
      PYTHONPATH=src python benchmarks/bench_steps.py --smoke    # CI scale
      PYTHONPATH=src python benchmarks/bench_steps.py --scale 4000 50000 500000
      PYTHONPATH=src python benchmarks/bench_steps.py --trace results/trace.jsonl

  writing ``results/BENCH_steps.json`` (and, with ``--trace``, the span
  stream of every step).  The document is validated *before* it is
  written; a schema violation fails the run.

Schema v3 adds the scaling section: the ``uniform-scale`` runs sweep
object count × verify-kernel backend (every available backend of
:mod:`repro.geometry.kernels`) at fixed paper density, recording the
step-time-versus-object-count curve per backend.  ``--scale`` overrides
the size list — the manual ``bench-scale`` CI job uses it to push the
sweep to 500k objects.  Backends must reproduce each other's per-step
result and test counts exactly; a divergence fails the run.

Schema v4 adds the checkpoint section: the ``uniform-checkpoint``
scenario runs the same trajectory with durable checkpointing off and on
(``checkpoint_every=10`` at default scale), asserts the two series are
identical (checkpointing is purely observational), and records both
runs so the document carries the measured checkpoint overhead.

Schema v5 adds the service section: the ``uniform-service`` scenario
drives the sharded async :class:`~repro.service.JoinService` over the
uniform trajectory with a burst of concurrent clients per epoch,
asserts every answer is bit-identical to a direct library join on the
same geometry (including across an injected mid-run shard kill, which
must degrade — never corrupt — the answers), and records the per-epoch
series plus the front-end throughput/latency counters in the run-level
``service`` block.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro.core import ThermalJoin  # noqa: E402
from repro.datasets import IntermittentTranslation  # noqa: E402
from repro.experiments.workloads import scaled_neural, scaled_uniform  # noqa: E402
from repro.geometry.kernels import (  # noqa: E402
    available_backends,
    resolve_backend_name,
    set_backend,
)
from repro.joins import PBSMJoin, PlaneSweepJoin  # noqa: E402
from repro.geometry import pack_pairs  # noqa: E402
from repro.obs import (  # noqa: E402
    BENCH_SCHEMA_VERSION,
    JsonlWriter,
    Tracer,
    environment_info,
    run_aggregates,
    set_tracer,
    step_record_to_json,
    validate_bench,
)
from repro.service import JoinService  # noqa: E402
from repro.simulation import SimulationRunner  # noqa: E402

#: serial plus one parallel backend; every backend must reproduce the
#: serial counts exactly (the engine's interchangeability guarantee).
EXECUTORS = ("serial", "thread:2")

#: ``incremental_steps`` is longer than ``n_steps`` because the
#: pair-maintenance runs need the tuner to converge (a few full steps)
#: before the incremental regime shows up in the series at all.
SMOKE = {
    "uniform_n": 500,
    "neural_n": 500,
    "n_steps": 3,
    "incremental_steps": 6,
    "scale_sizes": (500, 1_000),
    "scale_steps": 2,
    "checkpoint_steps": 4,
    "checkpoint_every": 2,
    "service_steps": 3,
    "service_shards": 3,
    "service_clients": 4,
}
DEFAULT = {
    "uniform_n": 4_000,
    "neural_n": 4_000,
    "n_steps": 6,
    "incremental_steps": 10,
    "scale_sizes": (4_000, 50_000),
    "scale_steps": 3,
    "checkpoint_steps": 12,
    "checkpoint_every": 10,
    "service_steps": 6,
    "service_shards": 4,
    "service_clients": 8,
}

#: Pair-maintenance scenarios (schema v2): each is
#: ``(workload name, IntermittentTranslation kwargs, churn_threshold)``.
#: ``uniform-low-motion`` moves a tiny fraction of objects a short
#: distance each step — the regime where the incremental path should
#: beat the full re-join by a wide margin — while ``uniform-high-churn``
#: pins ``churn_threshold=0.0`` so every delta step *forces* a fallback,
#: exercising the degradation path and its counters end to end.
INCREMENTAL_SCENARIOS = (
    ("uniform-low-motion", {"move_fraction": 0.02, "distance": 3.0}, None),
    ("uniform-high-churn", {"move_fraction": 0.50, "distance": 10.0}, 0.0),
)


def _algorithms(executor):
    """The bench matrix's algorithm column: THERMAL-JOIN + 2 baselines."""
    return (
        ThermalJoin(count_only=True, executor=executor),
        PBSMJoin(count_only=True, executor=executor),
        PlaneSweepJoin(count_only=True, executor=executor),
    )


def _workloads(config, seed=7):
    """(name, factory) pairs; factories rebuild the workload from the
    same seed so every run sees an identical, fresh trajectory (motion
    models are stateful and must not be shared across runs)."""

    def uniform():
        dataset, motion = scaled_uniform(config["uniform_n"], seed=seed)
        return dataset, motion

    def neural():
        dataset, motion, _labels = scaled_neural(config["neural_n"], seed=seed)
        return dataset, motion

    return (("uniform", uniform), ("neural", neural))


def run_matrix(config, trace_path=None):
    """Run the bench matrix; returns the (validated) bench document.

    Every (workload, algorithm) pair runs once per executor backend on a
    fresh copy of the workload, so the series are directly comparable;
    a mismatch in result or overlap-test counts across backends is a
    correctness bug and fails the run immediately.
    """
    previous = None
    writer = None
    if trace_path is not None:
        writer = JsonlWriter(trace_path)
        previous = set_tracer(Tracer(sink=writer))
    try:
        runs = (
            _run_matrix_inner(config)
            + _incremental_runs(config)
            + _scaling_runs(config)
            + _checkpoint_runs(config)
            + _service_runs(config)
        )
    finally:
        if trace_path is not None:
            set_tracer(previous)
            writer.close()
    document = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "kind": "bench_steps",
        "environment": environment_info(),
        "config": dict(config),
        "runs": runs,
    }
    return validate_bench(document)


def _run_matrix_inner(config):
    runs = []
    reference = {}
    n_steps = config["n_steps"]
    for executor in EXECUTORS:
        for workload, factory in _workloads(config):
            for algorithm in _algorithms(executor):
                dataset, motion = factory()
                runner = SimulationRunner(dataset, motion, algorithm)
                records = runner.run(n_steps)
                if runner.failure is not None:
                    raise runner.failure
                counts = tuple(
                    (record.n_results, record.overlap_tests) for record in records
                )
                key = (workload, algorithm.name)
                reference.setdefault(key, counts)
                if reference[key] != counts:
                    raise AssertionError(
                        f"executor {executor!r} changed the {key} series"
                    )
                runs.append(
                    {
                        "workload": workload,
                        "algorithm": algorithm.name,
                        "executor": executor,
                        "kernel_backend": resolve_backend_name(),
                        "checkpoint_every": 0,
                        "n_objects": len(dataset),
                        "n_steps": len(records),
                        "steps": [step_record_to_json(record) for record in records],
                        "aggregates": run_aggregates(runner),
                    }
                )
                algorithm.executor.close()
    return runs


def _incremental_runs(config):
    """Pair-maintenance section of the bench matrix.

    Each scenario runs THERMAL-JOIN twice on a fresh copy of the same
    trajectory — once recomputing from scratch every step
    (``thermal-join``) and once maintaining the pair set through motion
    deltas (``thermal-join-incremental``) — and asserts that maintenance
    never changes the result series.  The maintained run's per-step
    ``incremental`` block carries the mode, the moved fraction and the
    reuse/fallback counters.
    """
    runs = []
    n_steps = config.get("incremental_steps", config["n_steps"])
    for workload, motion_kwargs, churn_threshold in INCREMENTAL_SCENARIOS:

        def factory(kwargs=motion_kwargs):
            dataset, _ = scaled_uniform(config["uniform_n"], seed=7)
            motion = IntermittentTranslation(dataset, seed=8, **kwargs)
            return dataset, motion

        series = {}
        for label, maintain in (("thermal-join", False), ("thermal-join-incremental", True)):
            algorithm_kwargs = {"pair_maintenance": maintain}
            if maintain and churn_threshold is not None:
                algorithm_kwargs["churn_threshold"] = churn_threshold
            dataset, motion = factory()
            algorithm = ThermalJoin(
                count_only=True, executor="serial", **algorithm_kwargs
            )
            runner = SimulationRunner(dataset, motion, algorithm)
            records = runner.run(n_steps)
            if runner.failure is not None:
                raise runner.failure
            series[label] = [
                (record.n_results, record.overlap_tests) for record in records
            ]
            runs.append(
                {
                    "workload": workload,
                    "algorithm": label,
                    "executor": "serial",
                    "kernel_backend": resolve_backend_name(),
                    "checkpoint_every": 0,
                    "n_objects": len(dataset),
                    "n_steps": len(records),
                    "steps": [step_record_to_json(record) for record in records],
                    "aggregates": run_aggregates(runner),
                }
            )
            algorithm.executor.close()
        full = [n for n, _ in series["thermal-join"]]
        maintained = [n for n, _ in series["thermal-join-incremental"]]
        if full != maintained:
            raise AssertionError(
                f"pair maintenance changed the {workload} result series"
            )
    return runs


def _scaling_runs(config):
    """Scaling section (schema v3): object count × kernel backend.

    THERMAL-JOIN runs the same uniform trajectory at paper density for
    every size in ``config["scale_sizes"]``, once per available verify-
    kernel backend, recording the step-time-versus-object-count curve
    per backend.  The numpy oracle defines each size's reference series;
    any other backend diverging from it fails the run immediately.
    """
    runs = []
    n_steps = config.get("scale_steps", config["n_steps"])
    sizes = config.get("scale_sizes", ())
    for size in sizes:
        reference = None
        for backend in available_backends():
            previous = set_backend(backend)
            try:
                dataset, motion = scaled_uniform(size, seed=7)
                algorithm = ThermalJoin(count_only=True, executor="serial")
                runner = SimulationRunner(dataset, motion, algorithm)
                records = runner.run(n_steps)
                if runner.failure is not None:
                    raise runner.failure
                counts = tuple(
                    (record.n_results, record.overlap_tests) for record in records
                )
                if reference is None:
                    reference = counts
                elif reference != counts:
                    raise AssertionError(
                        f"kernel backend {backend!r} changed the "
                        f"uniform-scale series at n={size}"
                    )
                runs.append(
                    {
                        "workload": "uniform-scale",
                        "algorithm": algorithm.name,
                        "executor": "serial",
                        "kernel_backend": backend,
                        "checkpoint_every": 0,
                        "n_objects": len(dataset),
                        "n_steps": len(records),
                        "steps": [step_record_to_json(record) for record in records],
                        "aggregates": run_aggregates(runner),
                    }
                )
                algorithm.executor.close()
            finally:
                set_backend(previous)
    return runs


def _checkpoint_runs(config):
    """Checkpoint section (schema v4): durable-checkpoint overhead.

    THERMAL-JOIN runs the same uniform trajectory twice — once with
    checkpointing off and once writing a durable checkpoint every
    ``config["checkpoint_every"]`` steps into a scratch directory — and
    asserts the two series are identical: checkpointing is purely
    observational and must never perturb the join.  Both runs land in
    the document; the overhead itself is read from the checkpointed
    run's ``recovery`` counters (see :func:`checkpoint_overhead`), not
    by differencing the two aggregates blocks.
    """
    runs = []
    n_steps = config.get("checkpoint_steps", config["n_steps"])
    cadence = config.get("checkpoint_every", 10)
    series = {}
    for label, every in (("thermal-join", 0), ("thermal-join-checkpointed", cadence)):
        dataset, motion = scaled_uniform(config["uniform_n"], seed=7)
        algorithm = ThermalJoin(count_only=True, executor="serial")
        with tempfile.TemporaryDirectory() as scratch:
            runner = SimulationRunner(
                dataset,
                motion,
                algorithm,
                checkpoint_dir=scratch if every else None,
                checkpoint_every=every or 10,
            )
            records = runner.run(n_steps)
        if runner.failure is not None:
            raise runner.failure
        series[label] = [
            (record.n_results, record.overlap_tests) for record in records
        ]
        if every:
            assert runner.recovery is not None
            assert runner.recovery.checkpoints_written == n_steps // every, (
                "checkpoint cadence not honoured"
            )
        runs.append(
            {
                "workload": "uniform-checkpoint",
                "algorithm": label,
                "executor": "serial",
                "kernel_backend": resolve_backend_name(),
                "checkpoint_every": every,
                "n_objects": len(dataset),
                "n_steps": len(records),
                "steps": [step_record_to_json(record) for record in records],
                "aggregates": run_aggregates(runner),
            }
        )
        algorithm.executor.close()
    if series["thermal-join"] != series["thermal-join-checkpointed"]:
        raise AssertionError("checkpointing changed the uniform result series")
    return runs


def _service_runs(config):
    """Service section (schema v5): the sharded async front-end.

    Drives a :class:`~repro.service.JoinService` over the uniform
    trajectory: each epoch a burst of concurrent clients issues the
    same join query (exercising batch dedup), the answers are checked
    bit-identical to a direct library join on the same geometry, and
    the next motion step streams in as an update.  A one-shot shard
    kill is injected at the middle epoch — the ring must re-home and
    keep answering exactly (``degraded``, never wrong).  The per-epoch
    series comes from :meth:`~repro.service.ShardRing.epoch_record`;
    the run-level ``service`` block carries the front-end
    throughput/latency counters.
    """
    n_steps = config.get("service_steps", config["n_steps"])
    n_shards = config.get("service_shards", 4)
    clients = config.get("service_clients", 8)
    kill_at = n_steps // 2
    dataset, motion = scaled_uniform(config["uniform_n"], seed=7)
    n_objects = len(dataset)
    service = JoinService(dataset, n_shards=n_shards, executor="serial")

    async def drive():
        records = []
        degraded_steps = 0
        async with service:
            started = time.perf_counter()
            for step in range(n_steps):
                if step:
                    motion.step(dataset)
                    await service.update(dataset.centers.copy())
                if step == kill_at:
                    await service.kill_shard(0)
                answers = await asyncio.gather(
                    *(service.join() for _ in range(clients))
                )
                expected = pack_pairs(
                    *ThermalJoin().join_pairs(dataset), n_objects
                )
                for answer in answers:
                    if not np.array_equal(
                        pack_pairs(*answer.pairs, n_objects), expected
                    ):
                        raise AssertionError(
                            f"service answer diverged from the library "
                            f"at epoch {step}"
                        )
                if any(answer.degraded for answer in answers):
                    degraded_steps += 1
                records.append(
                    service.ring.epoch_record(step, answers[0].n_results)
                )
            wall = time.perf_counter() - started
            frontend = service.ring.metrics.snapshot()["frontend"]
        return records, degraded_steps, wall, frontend

    records, degraded_steps, wall, frontend = asyncio.run(drive())
    if degraded_steps < 1:
        raise AssertionError("the injected shard kill left no degraded epoch")
    steps = [step_record_to_json(record) for record in records]
    return [
        {
            "workload": "uniform-service",
            "algorithm": "thermal-join-service",
            "executor": "serial",
            "kernel_backend": resolve_backend_name(),
            "checkpoint_every": 0,
            "n_objects": n_objects,
            "n_steps": len(steps),
            "steps": steps,
            "aggregates": {
                "total_seconds": sum(s["join_seconds"] for s in steps),
                "total_overlap_tests": sum(s["overlap_tests"] for s in steps),
                "peak_memory_bytes": max(s["memory_bytes"] for s in steps),
                "total_results": sum(s["n_results"] for s in steps),
                "task_retries": sum(s["task_retries"] for s in steps),
                "degraded_steps": degraded_steps,
            },
            "service": {
                "n_shards": n_shards,
                "clients": clients,
                "accepted": frontend["accepted"],
                "rejected": frontend["rejected"],
                "batched": frontend["batched"],
                "answered": frontend["answered"],
                "wall_seconds": wall,
                "throughput_qps": frontend["answered"] / wall if wall else 0.0,
                "latency_mean_seconds": frontend["latency_mean_seconds"],
                "latency_max_seconds": frontend["latency_max_seconds"],
            },
        }
    ]


def checkpoint_overhead(document):
    """Fractional step-time overhead of checkpointing on the
    ``uniform-checkpoint`` scenario (``None`` when the section is absent
    or the run measured zero join time).

    Measured *inside* the checkpointed run: the ``recovery`` counters
    accumulate wall seconds spent in checkpoint writes
    (``aggregates.checkpoint_seconds``), so the overhead is checkpoint
    time over the same run's join time.  Differencing the off/on runs'
    totals instead would drown a few-percent effect in run-to-run noise
    at bench trajectory lengths.
    """
    for run in document["runs"]:
        if (
            run["workload"] == "uniform-checkpoint"
            and run["algorithm"] == "thermal-join-checkpointed"
        ):
            aggregates = run["aggregates"]
            if not aggregates["total_seconds"]:
                return None
            return aggregates["checkpoint_seconds"] / aggregates["total_seconds"]
    return None


def incremental_speedup(document):
    """Mean full-step time / mean incremental-step time on the
    low-motion scenario (``None`` when no incremental steps ran).

    Compared over the steps in which the maintained run actually took
    the incremental path, so the tuner warm-up steps (identical in both
    runs by construction) don't dilute the ratio.
    """
    by_label = {
        run["algorithm"]: run["steps"]
        for run in document["runs"]
        if run["workload"] == "uniform-low-motion"
    }
    full = by_label.get("thermal-join")
    maintained = by_label.get("thermal-join-incremental")
    if not full or not maintained:
        return None
    incremental_steps = [
        (f, m)
        for f, m in zip(full, maintained, strict=True)
        if m["incremental"].get("mode") == "incremental"
    ]
    if not incremental_steps:
        return None
    full_mean = sum(f["join_seconds"] for f, _ in incremental_steps)
    incr_mean = sum(m["join_seconds"] for _, m in incremental_steps)
    if incr_mean <= 0:
        return None
    return full_mean / incr_mean


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI scale: tiny workloads, 3 steps (seconds, not minutes)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent
        / "results"
        / "BENCH_steps.json",
        help="output document path (default results/BENCH_steps.json)",
    )
    parser.add_argument(
        "--scale",
        type=int,
        nargs="+",
        default=None,
        metavar="N",
        help="override the scaling-section object counts "
        "(e.g. --scale 4000 50000 500000 for the manual bench-scale job)",
    )
    parser.add_argument(
        "--trace",
        type=Path,
        default=None,
        metavar="OUT.JSONL",
        help="also stream engine trace spans to this JSONL file",
    )
    args = parser.parse_args(argv)

    config = dict(SMOKE if args.smoke else DEFAULT)
    if args.scale is not None:
        config["scale_sizes"] = tuple(args.scale)
    document = run_matrix(config, trace_path=args.trace)
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(document, indent=2) + "\n")
    speedup = incremental_speedup(document)
    overhead = checkpoint_overhead(document)
    print(
        f"wrote {args.out}: {len(document['runs'])} runs, "
        f"schema v{document['schema_version']}"
        + (
            f", low-motion incremental speedup {speedup:.1f}x"
            if speedup is not None
            else ""
        )
        + (
            f", checkpoint overhead {overhead * 100:+.1f}%"
            if overhead is not None
            else ""
        )
        + (f", trace at {args.trace}" if args.trace else "")
    )
    return document


# ----------------------------------------------------------------------
# pytest entry point: smoke matrix + schema + bit-identity
# ----------------------------------------------------------------------
def test_smoke_matrix_is_schema_valid(tmp_path):
    trace_path = tmp_path / "trace.jsonl"
    traced = run_matrix(dict(SMOKE), trace_path=trace_path)
    plain = run_matrix(dict(SMOKE))
    # Tracing must be purely observational: identical series either way.
    for run_traced, run_plain in zip(traced["runs"], plain["runs"], strict=True):
        for step_traced, step_plain in zip(
        run_traced["steps"], run_plain["steps"], strict=True
    ):
            assert step_traced["n_results"] == step_plain["n_results"]
            assert step_traced["overlap_tests"] == step_plain["overlap_tests"]
            assert step_traced["memory_bytes"] == step_plain["memory_bytes"]
    assert trace_path.exists()
    spans = [json.loads(line) for line in trace_path.read_text().splitlines()]
    assert spans and all(span["kind"] == "span" for span in spans)

    # Pair-maintenance section: modes and counters must be present, the
    # low-motion run must actually take the incremental path and the
    # forced-fallback run must never take it.
    modes = {}
    for run in plain["runs"]:
        if run["algorithm"] != "thermal-join-incremental":
            continue
        blocks = [step["incremental"] for step in run["steps"]]
        assert all(block for block in blocks), "incremental counters missing"
        modes[run["workload"]] = [block["mode"] for block in blocks]
        assert all(
            "pairs_reused" in block and "fallbacks" in block for block in blocks
        )
    assert "incremental" in modes["uniform-low-motion"]
    assert "incremental" not in modes["uniform-high-churn"]
    assert "fallback" in modes["uniform-high-churn"]

    # Schema v4: the checkpoint section holds the off/on pair with
    # identical series lengths, the checkpointed run carries checkpoint
    # events and the recovery counters, and the off runs say so.
    checkpoint_runs = {
        run["algorithm"]: run
        for run in plain["runs"]
        if run["workload"] == "uniform-checkpoint"
    }
    assert set(checkpoint_runs) == {"thermal-join", "thermal-join-checkpointed"}
    assert checkpoint_runs["thermal-join"]["checkpoint_every"] == 0
    checkpointed = checkpoint_runs["thermal-join-checkpointed"]
    assert checkpointed["checkpoint_every"] == SMOKE["checkpoint_every"]
    checkpoint_events = [
        event
        for step in checkpointed["steps"]
        for event in step["events"]
        if event.get("kind") == "checkpoint"
    ]
    assert len(checkpoint_events) == (
        SMOKE["checkpoint_steps"] // SMOKE["checkpoint_every"]
    )
    assert checkpoint_overhead(plain) is not None

    # Schema v5: the service section holds the uniform-service run —
    # its front-end block carries real throughput/latency, the burst
    # dedup actually batched something, and the injected shard kill
    # shows up as degraded epochs and shard events without ever
    # breaking the (already asserted) bit-identity.
    service_runs = [
        run for run in plain["runs"] if run["workload"] == "uniform-service"
    ]
    assert len(service_runs) == 1, "service run missing from the bench"
    service_run = service_runs[0]
    block = service_run["service"]
    assert block["n_shards"] == SMOKE["service_shards"]
    assert block["clients"] == SMOKE["service_clients"]
    assert block["answered"] == block["accepted"] and block["rejected"] == 0
    assert block["batched"] > 0, "client burst never hit batch dedup"
    assert block["throughput_qps"] > 0 and block["latency_mean_seconds"] > 0
    assert service_run["aggregates"]["degraded_steps"] >= 1
    shard_events = [
        event["kind"]
        for step in service_run["steps"]
        for event in step["events"]
        if str(event.get("kind", "")).startswith("shard_")
    ]
    assert "shard_failed" in shard_events and "shard_rehomed" in shard_events

    # Schema v3: every run names its kernel backend, and the scaling
    # section covers (every size) × (every available backend).
    assert all(run["kernel_backend"] for run in plain["runs"])
    scale_runs = [run for run in plain["runs"] if run["workload"] == "uniform-scale"]
    seen = {(run["n_objects"], run["kernel_backend"]) for run in scale_runs}
    expected = {
        (size, backend)
        for size in SMOKE["scale_sizes"]
        for backend in available_backends()
    }
    assert seen == expected
    assert all(
        step["join_seconds"] >= 0 for run in scale_runs for step in run["steps"]
    )


if __name__ == "__main__":
    main()
