"""Shim for environments without the ``wheel`` package.

All project metadata lives in ``pyproject.toml``; this file only enables
the legacy ``setup.py develop`` editable-install path used when PEP 660
builds are unavailable (e.g. fully offline machines).
"""

from setuptools import setup

setup()
