"""Declarative catalogue of the verify-kernel primitives.

Every candidate-verification routine in the repository is one of five
flat, columnar *kernel primitives*.  A :class:`KernelSpec` describes one
primitive declaratively — its name, argument layout, what it emits and
which counters it returns — and :data:`KERNEL_SPECS` is the closed
catalogue.  The specs are the contract a backend implements: a backend
registered with the dispatch registry must provide one callable per spec
name, bit-identical to the numpy oracle in both the emitted pair set and
every counter (``overlap_tests`` under the declared accounting,
``shortcut_pairs`` where applicable).

The catalogue is deliberately data, not code: the dispatch registry
validates backends against it, the parity test suite iterates it, and
``docs/performance.md`` renders it — one source of truth for what a
"kernel" is in this codebase.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["KernelSpec", "KERNEL_SPECS", "kernel_names"]


@dataclass(frozen=True)
class KernelSpec:
    """Declarative description of one verify-kernel primitive.

    Attributes
    ----------
    name:
        Registry key; backends expose one callable per name.
    doc:
        One-line description of the primitive.
    layout:
        Input layout the kernel consumes (``"grouped"`` — global box
        arrays plus ``cat``/``starts``/``stops`` grouped indices;
        ``"x-sorted"`` — globally x-sorted box arrays with positional
        ranges).
    emits:
        What reaches the accumulator/callback (``"pairs"``).
    counters:
        Counter names the kernel returns, in return order.
    accounting:
        Overlap-test accountings the kernel supports (``"full"``
        nested-loop, ``"x-sweep"`` forward-sweep, or ``"none"`` for
        test-free combinatorial emission).
    """

    name: str
    doc: str
    layout: str
    emits: str
    counters: tuple[str, ...]
    accounting: tuple[str, ...]


#: The closed catalogue of verify-kernel primitives (RPL201 surface).
KERNEL_SPECS: tuple[KernelSpec, ...] = (
    KernelSpec(
        name="self_join_groups",
        doc="All unordered object pairs within each listed group.",
        layout="grouped",
        emits="pairs",
        counters=("overlap_tests",),
        accounting=("full", "x-sweep"),
    ),
    KernelSpec(
        name="cross_join_groups",
        doc="All object pairs across explicit (group A, group B) pairs.",
        layout="grouped",
        emits="pairs",
        counters=("overlap_tests",),
        accounting=("full", "x-sweep"),
    ),
    KernelSpec(
        name="cell_pair_sweep",
        doc=(
            "Optimized two-direction sweep over many cell pairs with the "
            "paper's enclosure shortcut."
        ),
        layout="grouped",
        emits="pairs",
        counters=("overlap_tests", "shortcut_pairs"),
        accounting=("x-sweep",),
    ),
    KernelSpec(
        name="strip_sweep",
        doc=(
            "One strip of the partitioned global plane sweep: within-strip "
            "forward sweep plus carried-in windows of earlier objects."
        ),
        layout="x-sorted",
        emits="pairs",
        counters=("overlap_tests",),
        accounting=("x-sweep",),
    ),
    KernelSpec(
        name="hot_cell_emit",
        doc="Combinatorial within-cell emission for hot-spot cells (no tests).",
        layout="grouped",
        emits="pairs",
        counters=("emitted_pairs",),
        accounting=("none",),
    ),
)


def kernel_names() -> tuple[str, ...]:
    """The catalogue's kernel names, in declaration order."""
    return tuple(spec.name for spec in KERNEL_SPECS)
