"""Plain-text rendering of experiment results (the harness's "figures").

The paper reports results as plots; this reproduction prints the same
series as aligned text tables so every figure can be regenerated and
eyeballed from a terminal (and diffed in CI).  Helper formatting keeps
units explicit: seconds, counts in millions, bytes in MB.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from collections.abc import Iterable, Mapping, Sequence

__all__ = [
    "format_value",
    "render_table",
    "render_series_table",
    "render_speedups",
]


def format_value(value: object) -> str:
    """Compact human formatting for one cell."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return f"{value:,}"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.3g}"
        return f"{value:.3g}"
    return str(value)


def render_table(
    headers: Sequence[object],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render a list-of-rows table with aligned columns; returns a string."""
    cells = [[format_value(v) for v in row] for row in rows]
    headers = [str(h) for h in headers]
    widths = [
        max(len(headers[c]), *(len(row[c]) for row in cells)) if cells else len(headers[c])
        for c in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths, strict=True)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(v.rjust(w) for v, w in zip(row, widths, strict=True)))
    return "\n".join(lines)


def render_series_table(
    x_label: str,
    x_values: Sequence[object],
    series_by_name: Mapping[str, Sequence[object]],
    title: str | None = None,
) -> str:
    """Render one metric series per algorithm against a swept variable.

    ``series_by_name`` maps a column name to a list aligned with
    ``x_values`` (``None`` entries render as ``-``, the paper's "did not
    finish" marker).
    """
    headers = [x_label] + list(series_by_name)
    rows = []
    for k, x in enumerate(x_values):
        row = [x]
        for name in series_by_name:
            values = series_by_name[name]
            row.append(values[k] if k < len(values) else None)
        rows.append(row)
    return render_table(headers, rows, title=title)


def render_speedups(
    speedups: Mapping[str, float], title: str = "Speedup of THERMAL-JOIN"
) -> str:
    """Render a {competitor: speedup} mapping, best competitor first."""
    rows = sorted(speedups.items(), key=lambda item: item[1])
    return render_table(
        ["competitor", "speedup"],
        [(name, f"{value:.1f}x") for name, value in rows],
        title=title,
    )
