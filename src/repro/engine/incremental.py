"""Delta-plan execution: maintain the pair set instead of recomputing it.

:func:`execute_delta_step` is the incremental sibling of
:func:`repro.engine.engine.execute_step`.  It drives the same four
stages — prepare (index refresh), partition (the algorithm's
``delta_plan`` emits re-verify tasks), verify (the ordinary executor
runs them, so retries, shared-memory publication and fault injection
apply unchanged) and merge — but instead of materialising a from-scratch
result it patches a :class:`~repro.geometry.pairs.MaintainedPairSet`:
pairs incident to a moved object are dropped and the re-verified
moved-incident pairs merged back in.  Pairs between two *settled*
objects cannot have changed, so the patched set is exactly the full
re-join's result (the property suite enforces bit-identity).

:class:`ChurnPolicy` owns the incremental-versus-fallback decision.  In
the spirit of Kipf et al.'s adaptive geospatial joins (PAPERS.md), the
threshold is *observed*, not guessed: the policy watches the measured
cost of full joins and of incremental steps and moves the break-even
churn point toward ``full_cost / cost_per_unit_churn``.  Costs must be
deterministic signals (operation counts, not wall time) so the mode
decisions — and therefore the overlap-test accounting — replay
identically across executors and runs.
"""

from __future__ import annotations

import os
import time
from collections.abc import Callable
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.geometry import PairAccumulator

if TYPE_CHECKING:
    from repro.datasets import SpatialDataset
    from repro.datasets.delta import MotionDelta
    from repro.geometry.pairs import MaintainedPairSet
    from repro.joins.base import JoinResult, SpatialJoinAlgorithm

__all__ = [
    "INCREMENTAL_ENV_VAR",
    "incremental_from_env",
    "moved_groups",
    "ChurnPolicy",
    "execute_delta_step",
]

#: Environment variable that opts a run into pair-set maintenance when
#: the algorithm was constructed with ``pair_maintenance=None``.
INCREMENTAL_ENV_VAR = "REPRO_INCREMENTAL"

_TRUTHY = frozenset({"1", "true", "yes", "on"})


def incremental_from_env() -> bool:
    """Resolve the :data:`INCREMENTAL_ENV_VAR` opt-in (default off)."""
    return os.environ.get(INCREMENTAL_ENV_VAR, "").strip().lower() in _TRUTHY


def moved_groups(delta: MotionDelta, assignment: np.ndarray) -> np.ndarray:
    """Distinct group ids whose membership intersects the delta's moved set.

    ``assignment`` maps every object index to a group id (a spatial
    shard, a partition, a cell bucket).  The result — sorted, unique —
    is the set of groups the delta *touches*: any state keyed per group
    (a shard's local index, a ``(shard, step, query)`` result-cache
    entry) is stale exactly for these groups and provably fresh for all
    others.  This is the invalidation primitive the sharded join
    service drives its result cache with.
    """
    assignment = np.asarray(assignment)
    if assignment.ndim != 1 or assignment.shape[0] != delta.n_objects:
        raise ValueError(
            f"assignment maps {assignment.shape} objects but the delta "
            f"describes {delta.n_objects}"
        )
    return np.unique(assignment[delta.moved])


@dataclass
class ChurnPolicy:
    """Observed, adaptive churn threshold for the fallback decision.

    A step is run incrementally when the delta's ``moved_fraction`` is
    at most :attr:`threshold`; otherwise the algorithm falls back to a
    full re-join.  With ``adaptive=True`` (default) the threshold is
    re-estimated from observed costs: if a full join costs ``C_full``
    and incremental steps cost ``C_incr(f) ≈ unit · f`` at moved
    fraction ``f``, the break-even point is ``C_full / unit``; the
    estimate is smoothed with an exponential moving average and clipped
    to ``[floor, ceiling]``.  Feed it deterministic cost signals
    (operation counts) — the decision sequence is then reproducible
    across executors, which the bit-identity tests rely on.

    ``ChurnPolicy(threshold=0.0, adaptive=False)`` forces a fallback on
    every step that moved anything — the forced-fallback configuration
    the bench and tests use.
    """

    threshold: float = 0.35
    adaptive: bool = True
    floor: float = 0.02
    ceiling: float = 0.75
    ema: float = 0.3

    def __post_init__(self) -> None:
        if not 0.0 <= self.threshold <= 1.0:
            raise ValueError(f"threshold must be in [0, 1], got {self.threshold}")
        if not 0.0 < self.floor <= self.ceiling <= 1.0:
            raise ValueError(
                f"need 0 < floor <= ceiling <= 1, got {self.floor}, {self.ceiling}"
            )
        if not 0.0 < self.ema <= 1.0:
            raise ValueError(f"ema must be in (0, 1], got {self.ema}")
        self._full_cost: float | None = None
        self._unit_cost: float | None = None

    def admits(self, moved_fraction: float) -> bool:
        """True when a step at ``moved_fraction`` should run incrementally."""
        return moved_fraction <= self.threshold

    def _smooth(self, old: float | None, value: float) -> float:
        if old is None:
            return value
        return (1.0 - self.ema) * old + self.ema * value

    def observe_full(self, cost: float) -> None:
        """Record the cost of one full re-join."""
        self._full_cost = self._smooth(self._full_cost, max(float(cost), 1.0))
        self._update()

    def observe_incremental(self, cost: float, moved_fraction: float) -> None:
        """Record the cost of one incremental step at ``moved_fraction``."""
        if moved_fraction <= 0.0:
            return  # a no-motion step carries no per-unit-churn signal
        unit = max(float(cost), 1.0) / moved_fraction
        self._unit_cost = self._smooth(self._unit_cost, unit)
        self._update()

    def _update(self) -> None:
        if not self.adaptive or self._full_cost is None or self._unit_cost is None:
            return
        break_even = self._full_cost / self._unit_cost
        self.threshold = float(min(max(break_even, self.floor), self.ceiling))

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, object]:
        """JSON-serializable snapshot of the adaptive state.

        The static knobs (``adaptive``/``floor``/``ceiling``/``ema``)
        come back from the algorithm's configuration; only the observed
        estimates and the current threshold travel in the checkpoint.
        """
        return {
            "threshold": self.threshold,
            "full_cost": self._full_cost,
            "unit_cost": self._unit_cost,
        }

    def load_state_dict(self, state: dict[str, object]) -> None:
        """Restore state produced by :meth:`state_dict`."""
        self.threshold = float(state["threshold"])  # type: ignore[arg-type]
        full_cost = state["full_cost"]
        unit_cost = state["unit_cost"]
        self._full_cost = None if full_cost is None else float(full_cost)  # type: ignore[arg-type]
        self._unit_cost = None if unit_cost is None else float(unit_cost)  # type: ignore[arg-type]


def execute_delta_step(
    algorithm: SpatialJoinAlgorithm,
    dataset: SpatialDataset,
    delta: MotionDelta,
    maintained: MaintainedPairSet,
    on_maintained: Callable[[dict[str, Any]], None] | None = None,
) -> JoinResult:
    """Run one incremental join step, patching ``maintained`` in place.

    Mirrors :func:`~repro.engine.engine.execute_step` stage for stage;
    the differences are confined to partition (``algorithm.delta_plan``
    instead of ``plan``) and merge (re-verified shards are folded into
    the maintained set through its delta-maintenance API instead of
    becoming the result wholesale).  Tasks always materialise their
    pairs — the maintained set needs them — regardless of the
    algorithm's ``count_only`` mode; the *returned* result honours
    ``count_only`` as usual.

    ``on_maintained`` (if given) is called with the maintenance counters
    (``pairs_reused``, ``pairs_dropped``, ``pairs_reverified``,
    ``pairs_added``, ``maintained_pairs``) after the merge but before
    the metrics-registry snapshot, so algorithms can surface them
    through their providers.
    """
    from repro.joins.base import JoinResult, JoinStatistics
    from repro.obs import get_tracer

    executor = algorithm.executor
    tracer = get_tracer()
    traced = tracer.enabled
    step_span = None
    if traced:
        tracer.begin_step()
        step_cm = tracer.span(
            "step",
            counters={
                "algorithm": algorithm.name,
                "n_objects": len(dataset),
                "mode": "incremental",
            },
        )
        step_span = step_cm.__enter__()

    try:
        t0 = time.perf_counter()
        with tracer.span("prepare", parent=step_span):
            algorithm._build(dataset)  # prepare: index refresh (cell transitions)
        t1 = time.perf_counter()
        with tracer.span("partition", parent=step_span) as partition_span:
            plan = algorithm.delta_plan(dataset, delta)
            if partition_span is not None:
                partition_span.counters["n_tasks"] = len(plan.tasks)
        t2 = time.perf_counter()
        with tracer.span("verify", parent=step_span) as verify_span:
            results = executor.run(plan.tasks, plan.context, False)
            events = executor.drain_events()  # robustness: retries, downgrades
        t3 = time.perf_counter()

        # merge: drop moved-incident pairs, fold the re-verified shards
        # back in through the maintained set's delta API.
        with tracer.span("merge", parent=step_span):
            merged = PairAccumulator(count_only=False)
            overlap_tests = 0
            for task_result in results:
                merged.merge(task_result.accumulator)
                overlap_tests += int(task_result.counters.get("overlap_tests", 0))
            if plan.on_complete is not None:
                plan.on_complete(results)
            pairs_before = len(maintained)
            reverified = len(merged)
            dropped = maintained.remove_incident(delta.moved_mask())
            added = maintained.merge_delta(*merged.as_arrays())
        t4 = time.perf_counter()

        if traced:
            for index, task_result in enumerate(results):
                tracer.record(
                    f"task:{type(plan.tasks[index]).__name__}",
                    phase=task_result.phase,
                    parent=verify_span,
                    wall_seconds=task_result.seconds,
                    cpu_seconds=task_result.cpu_seconds,
                    counters={"task": index, **task_result.counters},
                )
    finally:
        if traced:
            step_cm.__exit__(None, None, None)

    algorithm._last_prepare_seconds = t1 - t0

    # All statistics flow through the recording methods (RPL202), same
    # as the full-step driver.
    stats = JoinStatistics()
    stats.record_stage("prepare", t1 - t0)
    stats.record_stage("partition", t2 - t1)
    stats.record_stage("verify", t3 - t2)
    stats.record_stage("merge", t4 - t3)
    for task_result in results:
        stats.record_task(task_result.counters)

    for phase, seconds in algorithm._phase_seconds().items():
        stats.record_phase(phase, seconds)
    for task_result in results:
        if task_result.phase != "join" or task_result.phase in stats.phase_seconds:
            stats.record_phase(task_result.phase, task_result.seconds)

    stats.record_events(events)
    stats.record_memory(algorithm.memory_footprint())

    if on_maintained is not None:
        on_maintained(
            {
                "pairs_reused": pairs_before - dropped,
                "pairs_dropped": dropped,
                "pairs_reverified": reverified,
                "pairs_added": added,
                "maintained_pairs": len(maintained),
            }
        )

    registry = getattr(algorithm, "metrics", None)
    if registry is not None:
        stats.record_index_counters(registry.snapshot())

    algorithm.stats = stats
    pairs = None
    if not algorithm.count_only:
        pairs = maintained.as_arrays()
    result = JoinResult(n_results=len(maintained), stats=stats, pairs=pairs)
    assert (result.pairs is None) == algorithm.count_only, (
        "JoinResult.pairs must be materialised exactly when not count_only"
    )
    return result
