"""Analytical selectivity and cost models.

The paper's entire evaluation pivots on *join selectivity* — how many
object pairs actually overlap.  This module provides closed-form
estimators for the workload families in this repository so users can
size experiments (and the test suite can calibrate its fixtures)
without running a join first:

* for a uniform density, two cubes of widths ``w_i`` and ``w_j`` overlap
  when their centers are within ``(w_i + w_j) / 2`` in every dimension,
  so the expected partners per object follow from the density times the
  ``(w_i + w_j)^3`` interaction volume;
* the expected P-Grid occupancy at a given resolution follows from the
  same density, which bounds the hot-spot yield and the external-join
  candidate volume.

Estimates assume the uniform benchmark's regime (homogeneous density,
domain much larger than the object extent); clustered and neural
workloads are denser locally, so these values act as lower bounds.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:
    from repro.datasets import SpatialDataset

__all__ = [
    "expected_partners_per_object",
    "expected_join_results",
    "expected_cell_occupancy",
    "expected_hot_spot_pair_fraction",
    "measured_selectivity",
]


def expected_partners_per_object(
    n_objects: int, width: float, domain_volume: float
) -> float:
    """Expected overlap partners per object under uniform density.

    ``width`` is the shared cubic object width; the interaction volume
    for an equal-width pair is ``(2 * width)^3``.
    """
    if n_objects <= 1:
        return 0.0
    if width <= 0 or domain_volume <= 0:
        raise ValueError("width and domain_volume must be positive")
    density = n_objects / domain_volume
    return float((n_objects - 1) / n_objects * density * (2.0 * width) ** 3)


def expected_join_results(n_objects: int, width: float, domain_volume: float) -> float:
    """Expected self-join result count under uniform density."""
    partners = expected_partners_per_object(n_objects, width, domain_volume)
    return float(n_objects * partners / 2.0)


def expected_cell_occupancy(
    n_objects: int, width: float, domain_volume: float, resolution: float = 1.0
) -> float:
    """Expected objects per occupied P-Grid cell at resolution ``r``.

    Cell width is ``r * width`` (the largest-object width for equal
    extents), so occupancy is the density times the cell volume.
    """
    if resolution <= 0:
        raise ValueError(f"resolution must be positive, got {resolution}")
    density = n_objects / domain_volume
    return float(density * (resolution * width) ** 3)


def expected_hot_spot_pair_fraction(resolution: float = 1.0) -> float:
    """Fraction of overlapping pairs that fall inside one hot-spot cell.

    For equal widths ``w`` and cell width ``c = r * w`` (r <= 1 so cells
    are hot spots), a pair with per-dimension center distance uniform in
    the interaction window lands in the same cell with probability
    ``(c / (2 w)) ** 3 = (r / 2) ** 3`` per the standard same-bucket
    argument — the structural ceiling on how much of the join the
    hot-spot emit can cover at a given resolution (the remainder crosses
    cells and goes through the external sweep).
    """
    if not 0 < resolution <= 1.0:
        raise ValueError(
            f"hot spots require 0 < resolution <= 1, got {resolution}"
        )
    return float((resolution / 2.0) ** 3)


def measured_selectivity(dataset: SpatialDataset, sample: int = 2048, seed: int = 0) -> float:
    """Estimate partners-per-object by sampling exact overlap counts.

    Draws ``sample`` objects, counts their true partners against the
    whole dataset (vectorised) and extrapolates — a cheap way to check a
    generated workload's selectivity against the paper's regime before
    committing to a long run.
    """
    n = len(dataset)
    if n < 2:
        return 0.0
    lo, hi = dataset.boxes()
    rng = np.random.default_rng(seed)
    picks = (
        np.arange(n)
        if n <= sample
        else rng.choice(n, size=sample, replace=False)
    )
    total = 0
    for idx in picks:
        overlap = np.logical_and(
            (lo[idx] < hi).all(axis=1), (lo < hi[idx]).all(axis=1)
        )
        total += int(overlap.sum()) - 1  # drop the reflexive hit
    return float(total / picks.size)
