"""Candidate-volume chunking shared by the kernel and engine layers.

Both layers split lists of *groups* (cell pairs, partitions, tree-node
pairs) into contiguous chunks weighted by candidate volume — the kernels
to bound how many candidate object pairs one vectorised batch
materialises, the engine planner to hand every executor task a roughly
equal share of the verification work.  Until PR 7 each layer carried its
own copy of the cumsum/searchsorted arithmetic
(``engine.plan.chunk_by_volume`` and ``geometry.batch._chunk_edges``);
this module is the single shared implementation.

Chunk boundaries are deterministic functions of the weights alone —
never of worker counts or timing — which is what keeps pair sets and
overlap-test totals bit-identical across executors and backends.
"""

from __future__ import annotations

import numpy as np

__all__ = ["chunk_edges_by_volume"]


def chunk_edges_by_volume(
    counts: np.ndarray,
    *,
    max_volume: int | None = None,
    n_chunks: int | None = None,
) -> np.ndarray:
    """Split ``range(len(counts))`` into contiguous chunks by volume.

    Exactly one of the two modes must be selected:

    ``max_volume``
        Greedy fixed-capacity chunks: each chunk's summed ``counts`` is
        kept near ``max_volume`` (one oversized group may exceed it —
        groups are never split).  This is the kernels' batch bound.
    ``n_chunks``
        At most ``n_chunks`` chunks of roughly equal summed volume.
        This is the planner's task grain.

    Returns the ``int64`` edge array ``[e_0, ..., e_k]`` such that chunk
    ``c`` covers ``range(e_c, e_{c+1})``; the edges always start at 0 and
    end at ``len(counts)``.
    """
    if (max_volume is None) == (n_chunks is None):
        raise ValueError("specify exactly one of max_volume / n_chunks")
    counts = np.asarray(counts, dtype=np.int64)
    n = counts.size
    cum = np.cumsum(counts)
    total = int(cum[-1]) if n else 0
    if max_volume is not None:
        if max_volume < 1:
            raise ValueError(f"max_volume must be positive, got {max_volume}")
        if total <= max_volume:
            return np.asarray([0, n], dtype=np.int64)
        targets = np.arange(max_volume, total, max_volume, dtype=np.int64)
    else:
        assert n_chunks is not None
        if n_chunks < 1:
            raise ValueError(f"n_chunks must be positive, got {n_chunks}")
        if n_chunks == 1 or n <= 1 or total == 0:
            return np.asarray([0, n], dtype=np.int64)
        per_chunk = max(total // n_chunks, 1)
        targets = np.arange(per_chunk, total, per_chunk, dtype=np.int64)
        targets = targets[: n_chunks - 1]
    inner = np.searchsorted(cum, targets, side="left") + 1
    return np.unique(np.concatenate([[0], inner, [n]]))
