"""Tests for the simulation runner and metric aggregation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ThermalJoin
from repro.datasets import make_uniform_workload
from repro.joins import PlaneSweepJoin
from repro.simulation import (
    SimulationRunner,
    converged_at,
    series,
    speedup,
    speedup_table,
)


def small_workload(seed=0):
    return make_uniform_workload(
        300, width=15.0, bounds=(np.zeros(3), np.full(3, 110.0)), seed=seed
    )


class TestRunner:
    def test_records_one_entry_per_step(self):
        dataset, motion = small_workload()
        runner = SimulationRunner(dataset, motion, PlaneSweepJoin())
        records = runner.run(5)
        assert len(records) == 5
        assert [r.step for r in records] == list(range(5))

    def test_static_run_without_motion(self):
        dataset, _motion = small_workload()
        runner = SimulationRunner(dataset, None, PlaneSweepJoin())
        records = runner.run(3)
        # No motion: every step joins the identical configuration.
        assert len({r.n_results for r in records}) == 1

    def test_motion_changes_results(self):
        dataset, motion = small_workload(seed=3)
        runner = SimulationRunner(dataset, motion, PlaneSweepJoin())
        records = runner.run(6)
        assert len({r.n_results for r in records}) > 1

    def test_joins_current_state_before_moving(self):
        # Step 0 must measure the initial configuration.
        dataset, motion = small_workload(seed=5)
        expected = PlaneSweepJoin().step(dataset).n_results
        dataset2, motion2 = small_workload(seed=5)
        runner = SimulationRunner(dataset2, motion2, PlaneSweepJoin())
        records = runner.run(2)
        assert records[0].n_results == expected

    def test_aggregates(self):
        dataset, motion = small_workload()
        runner = SimulationRunner(dataset, motion, PlaneSweepJoin())
        runner.run(4)
        assert runner.total_join_seconds() == pytest.approx(
            sum(r.total_seconds for r in runner.records)
        )
        assert runner.total_overlap_tests() == sum(
            r.overlap_tests for r in runner.records
        )
        assert runner.peak_memory_bytes() == max(
            r.memory_bytes for r in runner.records
        )

    def test_time_budget_stops_early(self):
        dataset, motion = small_workload()
        runner = SimulationRunner(
            dataset, motion, PlaneSweepJoin(), time_budget=1e-9
        )
        records = runner.run(50)
        assert runner.timed_out
        assert len(records) < 50

    def test_time_budget_checked_before_motion_advances(self):
        # A timed-out run must not burn one extra motion step: the budget
        # check happens after recording the step but before motion.step.
        class CountingMotion:
            calls = 0

            def step(self, dataset):
                type(self).calls += 1

        dataset, _motion = small_workload()
        runner = SimulationRunner(
            dataset, CountingMotion(), PlaneSweepJoin(), time_budget=1e-9
        )
        records = runner.run(50)
        assert runner.timed_out
        assert len(records) == 1
        assert CountingMotion.calls == 0

    def test_stage_seconds_recorded(self):
        dataset, motion = small_workload()
        runner = SimulationRunner(dataset, motion, PlaneSweepJoin())
        records = runner.run(2)
        assert set(records[0].stage_seconds) == {
            "prepare",
            "partition",
            "verify",
            "merge",
        }

    def test_invalid_parameters(self):
        dataset, motion = small_workload()
        with pytest.raises(ValueError):
            SimulationRunner(dataset, motion, PlaneSweepJoin(), time_budget=0)
        runner = SimulationRunner(dataset, motion, PlaneSweepJoin())
        with pytest.raises(ValueError):
            runner.run(0)

    def test_phase_seconds_recorded_for_thermal(self):
        dataset, motion = small_workload()
        runner = SimulationRunner(dataset, motion, ThermalJoin(resolution=1.0))
        records = runner.run(2)
        assert set(records[0].phase_seconds) == {"building", "internal", "external"}


class TestMetrics:
    def _records(self, values):
        class FakeRecord:
            def __init__(self, t):
                self.build_seconds = t / 2
                self.join_seconds = t / 2
                self.n_results = int(t * 10)

            @property
            def total_seconds(self):
                return self.build_seconds + self.join_seconds

        return [FakeRecord(v) for v in values]

    def test_series_extraction(self):
        records = self._records([1.0, 2.0, 3.0])
        assert series(records, "total_seconds") == [1.0, 2.0, 3.0]
        assert series(records, "n_results") == [10, 20, 30]

    def test_speedup_ratio(self):
        slow = self._records([4.0, 4.0])
        fast = self._records([1.0, 1.0])
        assert speedup(slow, fast) == pytest.approx(4.0)

    def test_speedup_rejects_zero_candidate(self):
        with pytest.raises(ValueError):
            speedup(self._records([1.0]), self._records([0.0]))

    def test_speedup_table(self):
        table = speedup_table(
            {
                "fast": self._records([1.0]),
                "slow": self._records([8.0]),
                "mid": self._records([2.0]),
            },
            "fast",
        )
        assert set(table) == {"slow", "mid"}
        assert table["slow"] == pytest.approx(8.0)

    def test_speedup_table_unknown_reference(self):
        with pytest.raises(KeyError):
            speedup_table({"a": self._records([1.0])}, "missing")

    def test_converged_at_finds_plateau(self):
        values = [100, 60, 30, 29, 28.5, 28.4]
        assert converged_at(values, threshold=0.1, window=2) == 3

    def test_converged_at_never_settles(self):
        values = [100, 10, 100, 10, 100]
        assert converged_at(values, threshold=0.1) is None

    def test_converged_at_validates_window(self):
        with pytest.raises(ValueError):
            converged_at([1.0, 1.0], window=0)
