"""Saving and loading workload snapshots (``.npz``).

Reproducibility plumbing: freeze a generated workload to disk so the
exact same object configuration can be re-joined later, shared, or fed
to an external tool.  Snapshots store the structure-of-arrays state of
a :class:`~repro.datasets.dataset.SpatialDataset` — centers, widths,
bounds, attributes — plus optional per-object labels (cluster / neuron
assignments used by the motion models).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:
    from pathlib import Path

from repro.datasets.dataset import SpatialDataset

__all__ = ["save_dataset", "load_dataset"]

#: Format marker stored in every snapshot.
_FORMAT = "repro-spatial-dataset-v1"


def save_dataset(path: str | Path, dataset: SpatialDataset, labels: np.ndarray | None = None) -> None:
    """Write a dataset snapshot to ``path`` (``.npz``).

    Parameters
    ----------
    path:
        Target file path (``.npz`` appended by numpy if missing).
    dataset:
        The :class:`SpatialDataset` to freeze (current positions).
    labels:
        Optional per-object integer labels (cluster/neuron ids).
    """
    bounds_lo, bounds_hi = dataset.bounds
    payload = {
        "format": np.asarray(_FORMAT),
        "centers": dataset.centers,
        "widths": dataset.widths,
        "bounds_lo": np.asarray(bounds_lo),
        "bounds_hi": np.asarray(bounds_hi),
    }
    if labels is not None:
        labels = np.asarray(labels)
        if labels.shape[0] != len(dataset):
            raise ValueError(
                f"labels length {labels.shape[0]} does not match "
                f"{len(dataset)} objects"
            )
        payload["labels"] = labels
    for name, values in dataset.attributes.items():
        payload[f"attr_{name}"] = values
    np.savez_compressed(path, **payload)


def load_dataset(path: str | Path) -> tuple[SpatialDataset, np.ndarray | None]:
    """Load a snapshot written by :func:`save_dataset`.

    Returns
    -------
    tuple
        ``(dataset, labels)`` — ``labels`` is ``None`` when the snapshot
        carries none.
    """
    with np.load(path, allow_pickle=False) as archive:
        if "format" not in archive or str(archive["format"]) != _FORMAT:
            raise ValueError(f"{path!r} is not a repro dataset snapshot")
        attributes = {
            key[len("attr_"):]: archive[key]
            for key in archive.files
            if key.startswith("attr_")
        }
        dataset = SpatialDataset(
            archive["centers"],
            archive["widths"],
            bounds=(archive["bounds_lo"], archive["bounds_hi"]),
            attributes=attributes,
        )
        labels = archive["labels"] if "labels" in archive.files else None
    return dataset, labels
