"""Minimal SARIF 2.1.0 serialization for repro-lint findings.

SARIF (Static Analysis Results Interchange Format) is the exchange
format CI dashboards and code-scanning UIs ingest.  We emit the small
mandatory core — tool metadata with the rule catalogue, plus one
``result`` per finding with a physical location — and nothing more.
"""

from __future__ import annotations

import json
from collections.abc import Iterable

from tools.repro_lint.core import (
    PARSE_ERROR_CODE,
    PROJECT_RULES,
    RULES,
    Diagnostic,
)

__all__ = ["to_sarif", "render_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def _rule_catalogue() -> list[dict]:
    entries = [
        {
            "id": rule.code,
            "name": rule.title,
            "shortDescription": {"text": rule.title},
            "fullDescription": {"text": rule.rationale},
        }
        for rule in [*RULES, *PROJECT_RULES]
    ]
    entries.append(
        {
            "id": PARSE_ERROR_CODE,
            "name": "file cannot be parsed",
            "shortDescription": {"text": "file cannot be parsed"},
            "fullDescription": {
                "text": (
                    "The file failed to parse as Python; no rule ran on it. "
                    "Reported as a finding so one broken file does not abort "
                    "the whole run."
                )
            },
        }
    )
    return sorted(entries, key=lambda entry: entry["id"])


def to_sarif(findings: Iterable[Diagnostic]) -> dict:
    """Build the SARIF document as a plain dict."""
    rules = _rule_catalogue()
    rule_index = {entry["id"]: position for position, entry in enumerate(rules)}
    results = []
    for finding in findings:
        result = {
            "ruleId": finding.code,
            "level": "error",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": finding.path},
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.col,
                        },
                    }
                }
            ],
        }
        if finding.code in rule_index:
            result["ruleIndex"] = rule_index[finding.code]
        results.append(result)
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": "docs/static-analysis.md",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }


def render_sarif(findings: Iterable[Diagnostic]) -> str:
    return json.dumps(to_sarif(findings), indent=2, sort_keys=False)
