"""Unit tests for P-Grid cell records and id packing (repro.core.cells)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    PGridCell,
    half_neighborhood_offsets,
    pack_cell_id_scalar,
    pack_cell_ids,
    unpack_cell_id,
)


class TestPacking:
    def test_roundtrip(self):
        coords = np.array([[0, 0, 0], [1, -2, 3], [-100, 50, 7]], dtype=np.int64)
        packed = pack_cell_ids(coords)
        for k in range(coords.shape[0]):
            assert unpack_cell_id(packed[k]) == tuple(coords[k])

    def test_scalar_matches_vectorized(self):
        rng = np.random.default_rng(0)
        coords = rng.integers(-1000, 1000, size=(100, 3))
        packed = pack_cell_ids(coords)
        for k in range(100):
            assert pack_cell_id_scalar(*coords[k]) == packed[k]

    def test_distinct_coords_distinct_ids(self):
        rng = np.random.default_rng(1)
        coords = np.unique(rng.integers(-50, 50, size=(500, 3)), axis=0)
        packed = pack_cell_ids(coords)
        assert np.unique(packed).size == coords.shape[0]

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            pack_cell_ids(np.array([[1 << 21, 0, 0]]))

    def test_wrong_shape_raises(self):
        with pytest.raises(ValueError):
            pack_cell_ids(np.array([1, 2, 3]))


class TestHalfNeighborhood:
    def test_one_layer_has_13_offsets(self):
        # The paper: 13 adjacent cells in 3-D when cell width equals the
        # largest object width (Figure 4a).
        assert len(half_neighborhood_offsets(1)) == 13

    def test_count_formula(self):
        for layers in (1, 2, 3):
            expected = ((2 * layers + 1) ** 3 - 1) // 2
            assert len(half_neighborhood_offsets(layers)) == expected

    def test_no_offset_and_its_negation(self):
        offsets = set(half_neighborhood_offsets(2))
        for ox, oy, oz in offsets:
            assert (-ox, -oy, -oz) not in offsets

    def test_union_with_negation_covers_neighborhood(self):
        offsets = half_neighborhood_offsets(1)
        full = set(offsets) | {(-x, -y, -z) for x, y, z in offsets}
        assert len(full) == 26
        assert (0, 0, 0) not in full

    def test_per_dimension_layers(self):
        offsets = half_neighborhood_offsets((2, 1, 1))
        assert len(offsets) == ((5 * 3 * 3) - 1) // 2
        assert max(abs(o[0]) for o in offsets) == 2
        assert max(abs(o[1]) for o in offsets) == 1

    def test_zero_layers(self):
        assert half_neighborhood_offsets(0) == []

    def test_negative_layers_raise(self):
        with pytest.raises(ValueError):
            half_neighborhood_offsets(-1)


class TestPGridCell:
    def test_new_cell_is_vacant(self):
        cell = PGridCell((0, 0, 0), np.zeros(3), np.ones(3))
        assert cell.is_vacant
        assert cell.slot == -1

    def test_clear_resets_assignment(self):
        cell = PGridCell((0, 0, 0), np.zeros(3), np.ones(3))
        cell.object_idx = np.array([1, 2], dtype=np.int64)
        cell.slot = 5
        assert not cell.is_vacant
        cell.clear()
        assert cell.is_vacant
        assert cell.slot == -1
        assert cell.min_obj_width is None

    def test_repr_counts_objects(self):
        cell = PGridCell((1, 2, 3), np.zeros(3), np.ones(3))
        cell.object_idx = np.arange(4)
        assert "n=4" in repr(cell)
