"""Fault-injection suite: recovery must be invisible in the results.

The engine's robustness contract: an injected task exception, hang or
worker kill is survived by the executor — retry on the pool, inline
re-execution, pool rebuild, or permanent degradation to thread/serial —
and the recovered step's pair set and overlap-test count are
bit-identical to a clean :class:`SerialExecutor` run.  No shared-memory
segment outlives a step, whatever the failure path.  The only trace of
a fault is the robustness event log in ``JoinStatistics.events``.
"""

from __future__ import annotations

import pathlib

import numpy as np
import pytest

from repro.core import ThermalJoin
from repro.engine import (
    FaultPlan,
    InjectedFault,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    install_fault_plan,
    format_faults,
    parse_faults,
    publish_context,
)
from repro.engine import faults as faults_module
from repro.engine.executors import _LIVE_SEGMENTS
from repro.engine.faults import Fault, FaultyTask
from repro.geometry import pack_pairs, unique_pairs
from repro.joins import PlaneSweepJoin
from repro.joins.base import SpatialJoinAlgorithm
from repro.simulation import SimulationRunner


@pytest.fixture(autouse=True)
def _clean_fault_state(monkeypatch):
    """No fault plan leaks into (or out of) any test."""
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    install_fault_plan(None)
    faults_module._env_cache = (None, None)
    yield
    install_fault_plan(None)
    faults_module._env_cache = (None, None)


def _shm_entries():
    """Names of live /dev/shm python segments (None off-Linux)."""
    root = pathlib.Path("/dev/shm")
    if not root.is_dir():
        return None
    return {entry.name for entry in root.iterdir() if entry.name.startswith("psm_")}


def _step_keys(result, n):
    return pack_pairs(*unique_pairs(*result.pairs, n), n)


@pytest.fixture(scope="module")
def dense_dataset():
    from repro.datasets import make_uniform_dataset

    return make_uniform_dataset(
        400, width=15.0, bounds=(np.zeros(3), np.full(3, 120.0)), seed=7
    )


@pytest.fixture(scope="module")
def serial_reference(dense_dataset):
    """Reference pair keys and overlap tests from a clean serial run."""
    result = ThermalJoin(resolution=1.0, executor=SerialExecutor()).step(
        dense_dataset
    )
    return _step_keys(result, len(dense_dataset)), result.stats.overlap_tests


def _thermal_tasks_per_step(dataset):
    probe = ThermalJoin(resolution=1.0)
    probe._build(dataset)
    return len(probe.plan(dataset).tasks)


# ----------------------------------------------------------------------
# Spec parsing and plan mechanics
# ----------------------------------------------------------------------
class TestFaultSpec:
    def test_parse_directives(self):
        plan = parse_faults("raise@2, kill@7 ,hang@11:2.5")
        assert [(f.action, f.task, f.param) for f in plan.faults] == [
            ("raise", 2, None),
            ("kill", 7, None),
            ("hang", 11, 2.5),
        ]

    @pytest.mark.parametrize(
        "spec", ["explode@1", "raise", "raise@x", "raise@-1", "hang@1:soon"]
    )
    def test_invalid_specs_raise(self, spec):
        with pytest.raises(ValueError):
            parse_faults(spec)

    def test_parse_crashstep(self):
        plan = parse_faults("crashstep@4")
        assert [(f.action, f.task) for f in plan.faults] == [("crashstep", 4)]

    def test_crashstep_shares_spec_with_task_faults(self):
        # Same ordinal in *different* namespaces: step 3 and task 3.
        plan = parse_faults("raise@3,crashstep@3")
        assert len(plan.faults) == 2

    @pytest.mark.parametrize(
        "spec", ["raise@2,kill@2", "crashstep@1,crashstep@1", "raise@0,hang@0:1"]
    )
    def test_duplicate_ordinals_rejected(self, spec):
        with pytest.raises(ValueError, match="duplicate fault"):
            parse_faults(spec)

    @pytest.mark.parametrize(
        "spec", ["raise@2,kill@7,hang@11:2.5", "crashstep@4", "raise@0,crashstep@0"]
    )
    def test_format_faults_round_trips(self, spec):
        formatted = format_faults(parse_faults(spec))
        replayed = parse_faults(formatted)
        assert [
            (f.action, f.task, f.param) for f in replayed.faults
        ] == [(f.action, f.task, f.param) for f in parse_faults(spec).faults]
        # repr-based params survive a second trip exactly.
        assert format_faults(replayed) == formatted

    def test_crashstep_never_wraps_tasks(self):
        plan = parse_faults("crashstep@0")
        sentinel = object()
        assert plan.wrap(sentinel) is sentinel
        assert not plan.faults[0].fired

    def test_crash_after_step_fires_once(self):
        plan = parse_faults("crashstep@2")
        assert not plan.crash_after_step(1)
        assert plan.crash_after_step(2)
        # Spent: a resumed run sharing the plan does not re-crash.
        assert not plan.crash_after_step(2)

    def test_fault_fires_exactly_once(self):
        plan = FaultPlan([Fault(action="raise", task=1)])

        class Dummy:
            phase = "join"
            process_safe = True

        first, second = plan.wrap(Dummy()), plan.wrap(Dummy())
        assert not isinstance(first, FaultyTask)
        assert isinstance(second, FaultyTask)
        # Ordinal 1 comes around again only after reset.
        assert not isinstance(plan.wrap(Dummy()), FaultyTask)
        plan.reset()
        plan.wrap(Dummy())
        assert isinstance(plan.wrap(Dummy()), FaultyTask)

    def test_faulty_task_mirrors_scheduling_fields(self):
        class Dummy:
            phase = "external"
            process_safe = False

        wrapped = FaultyTask(Dummy(), "raise")
        assert wrapped.phase == "external"
        assert wrapped.process_safe is False
        with pytest.raises(InjectedFault):
            wrapped.run({}, None)

    def test_environment_plan_cached_and_refreshed(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "raise@0")
        plan = faults_module.active_plan()
        assert plan is faults_module.active_plan()  # state persists
        monkeypatch.setenv("REPRO_FAULTS", "raise@1")
        assert faults_module.active_plan() is not plan  # re-parsed

    def test_installed_plan_overrides_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "raise@0")
        installed = install_fault_plan(FaultPlan())
        assert faults_module.active_plan() is installed


# ----------------------------------------------------------------------
# Serial and thread recovery
# ----------------------------------------------------------------------
class TestSerialAndThreadRecovery:
    def test_serial_retries_injected_raise(self, dense_dataset, serial_reference):
        keys, tests = serial_reference
        install_fault_plan(parse_faults("raise@0"))
        join = ThermalJoin(resolution=1.0, executor=SerialExecutor())
        result = join.step(dense_dataset)
        assert np.array_equal(_step_keys(result, len(dense_dataset)), keys)
        assert result.stats.overlap_tests == tests
        assert [e["kind"] for e in result.stats.events] == ["task_retry"]
        assert result.stats.task_retries == 1

    def test_thread_retries_injected_raise(self, dense_dataset, serial_reference):
        keys, tests = serial_reference
        install_fault_plan(parse_faults("raise@1"))
        executor = ThreadExecutor(3)
        result = ThermalJoin(resolution=1.0, executor=executor).step(dense_dataset)
        executor.close()
        assert np.array_equal(_step_keys(result, len(dense_dataset)), keys)
        assert result.stats.overlap_tests == tests
        assert result.stats.task_retries == 1

    def test_thread_hang_past_timeout_reruns_inline(self, uniform_small):
        serial = PlaneSweepJoin().step(uniform_small)
        install_fault_plan(parse_faults("hang@0:1.5"))
        executor = ThreadExecutor(2, task_timeout=0.2)
        result = PlaneSweepJoin(executor=executor).step(uniform_small)
        executor.close()
        n = len(uniform_small)
        assert np.array_equal(_step_keys(result, n), _step_keys(serial, n))
        assert result.stats.overlap_tests == serial.stats.overlap_tests
        assert "task_timeout" in [e["kind"] for e in result.stats.events]

    def test_thread_pool_is_persistent_until_close(self, uniform_small):
        executor = ThreadExecutor(2)
        assert executor._pool is None  # lazy
        join = PlaneSweepJoin(executor=executor)
        join.step(uniform_small)
        pool = executor._pool
        assert pool is not None
        join.step(uniform_small)
        assert executor._pool is pool  # reused across steps
        executor.close()
        assert executor._pool is None


# ----------------------------------------------------------------------
# Process recovery: the acceptance scenarios
# ----------------------------------------------------------------------
class TestProcessRecovery:
    def _assert_recovered(self, result, dataset, serial_reference):
        keys, tests = serial_reference
        assert np.array_equal(_step_keys(result, len(dataset)), keys)
        assert result.stats.overlap_tests == tests

    def test_injected_raise_retried_on_pool(self, dense_dataset, serial_reference):
        install_fault_plan(parse_faults("raise@2"))
        executor = ProcessExecutor(n_workers=2)
        result = ThermalJoin(resolution=1.0, executor=executor).step(dense_dataset)
        executor.close()
        self._assert_recovered(result, dense_dataset, serial_reference)
        kinds = [e["kind"] for e in result.stats.events]
        assert kinds == ["task_retry"]
        assert result.stats.task_retries == 1
        assert not _LIVE_SEGMENTS

    def test_hang_past_timeout_reruns_inline(self, dense_dataset, serial_reference):
        install_fault_plan(parse_faults("hang@1:1.5"))
        executor = ProcessExecutor(n_workers=2, task_timeout=0.25)
        result = ThermalJoin(resolution=1.0, executor=executor).step(dense_dataset)
        self._assert_recovered(result, dense_dataset, serial_reference)
        assert "task_timeout" in [e["kind"] for e in result.stats.events]
        executor.close()  # waits out the hung worker
        assert not _LIVE_SEGMENTS

    def test_worker_kill_rebuilds_pool(self, dense_dataset, serial_reference):
        before = _shm_entries()
        install_fault_plan(parse_faults("kill@1"))
        executor = ProcessExecutor(n_workers=2)
        result = ThermalJoin(resolution=1.0, executor=executor).step(dense_dataset)
        self._assert_recovered(result, dense_dataset, serial_reference)
        kinds = [e["kind"] for e in result.stats.events]
        assert "pool_broken" in kinds and "pool_rebuild" in kinds
        assert executor.degraded is None  # one rebuild is tolerated
        executor.close()
        assert not _LIVE_SEGMENTS
        after = _shm_entries()
        if before is not None:
            assert after - before == set()

    def test_repeated_kills_degrade_to_thread(self, dense_dataset, serial_reference):
        n_tasks = _thermal_tasks_per_step(dense_dataset)
        install_fault_plan(parse_faults(f"kill@1,kill@{n_tasks + 1}"))
        executor = ProcessExecutor(n_workers=2)
        join = ThermalJoin(resolution=1.0, executor=executor)

        first = join.step(dense_dataset)  # kill -> pool rebuilt once
        self._assert_recovered(first, dense_dataset, serial_reference)
        assert executor.degraded is None

        second = join.step(dense_dataset)  # kill again -> permanent downgrade
        self._assert_recovered(second, dense_dataset, serial_reference)
        assert executor.degraded == "thread"
        kinds = [e["kind"] for e in second.stats.events]
        assert "pool_broken" in kinds and "degraded" in kinds
        downgrade = next(e for e in second.stats.events if e["kind"] == "degraded")
        assert downgrade["to"] == "thread"

        install_fault_plan(None)
        third = join.step(dense_dataset)  # rest of the run stays on threads
        self._assert_recovered(third, dense_dataset, serial_reference)
        assert executor.degraded == "thread"
        assert third.stats.events == []
        executor.close()
        assert not _LIVE_SEGMENTS

    def test_count_only_recovery_matches_serial(self, dense_dataset):
        serial = ThermalJoin(resolution=1.0, count_only=True).step(dense_dataset)
        install_fault_plan(parse_faults("raise@1"))
        executor = ProcessExecutor(n_workers=2)
        recovered = ThermalJoin(
            resolution=1.0, count_only=True, executor=executor
        ).step(dense_dataset)
        executor.close()
        assert recovered.n_results == serial.n_results
        assert recovered.stats.overlap_tests == serial.stats.overlap_tests

    def test_genuine_persistent_failure_still_propagates(self, uniform_small):
        # Injected faults fire once, so retries rescue them; a task that
        # fails deterministically on *every* attempt must still surface
        # instead of being swallowed by the retry machinery.
        class BuggyJoin(SpatialJoinAlgorithm):
            name = "buggy"

            def _build(self, dataset):
                pass

            def _join(self, dataset, accumulator):
                raise ValueError("deterministic bug")

            def memory_footprint(self):
                return 0

        with pytest.raises(ValueError, match="deterministic bug"):
            BuggyJoin(executor=SerialExecutor()).step(uniform_small)


# ----------------------------------------------------------------------
# Shared-memory lifecycle
# ----------------------------------------------------------------------
class TestSharedMemoryLifecycle:
    def test_partial_publication_unlinks_created_segments(self, monkeypatch):
        import multiprocessing.shared_memory as shm_mod

        real = shm_mod.SharedMemory
        created = []
        calls = {"n": 0}

        def flaky(*args, **kwargs):
            if kwargs.get("create"):
                calls["n"] += 1
                if calls["n"] == 2:
                    raise OSError("injected ENOSPC")
            segment = real(*args, **kwargs)
            if kwargs.get("create"):
                created.append(segment.name)
            return segment

        monkeypatch.setattr(shm_mod, "SharedMemory", flaky)
        ctx = {
            "a": np.arange(16, dtype=np.float64),
            "b": np.arange(8, dtype=np.float64),
            "c": np.arange(4, dtype=np.float64),
        }
        with pytest.raises(OSError):
            with publish_context(ctx):
                pytest.fail("publication must not succeed")
        monkeypatch.undo()
        assert created  # the first segment *was* created ...
        assert not _LIVE_SEGMENTS  # ... and no segment survived
        for name in created:
            with pytest.raises(FileNotFoundError):
                shm_mod.SharedMemory(name=name)

    def test_publish_context_unlinks_on_clean_exit(self):
        import multiprocessing.shared_memory as shm_mod

        ctx = {"a": np.arange(10, dtype=np.float64)}
        with publish_context(ctx) as specs:
            name = specs["a"][0]
            assert name in _LIVE_SEGMENTS
        assert not _LIVE_SEGMENTS
        with pytest.raises(FileNotFoundError):
            shm_mod.SharedMemory(name=name)

    def test_atexit_sweep_releases_registered_segments(self):
        import multiprocessing.shared_memory as shm_mod

        from repro.engine.executors import _sweep_shared_memory

        segment = shm_mod.SharedMemory(create=True, size=64)
        _LIVE_SEGMENTS[segment.name] = segment
        _sweep_shared_memory()
        assert not _LIVE_SEGMENTS
        with pytest.raises(FileNotFoundError):
            shm_mod.SharedMemory(name=segment.name)


# ----------------------------------------------------------------------
# Simulation runner: step failure and robustness surfacing
# ----------------------------------------------------------------------
class _ExplodingJoin(SpatialJoinAlgorithm):
    """Raises at a chosen step, past any executor recovery.

    ``persistent=True`` keeps raising on every later call too, so the
    runner's from-scratch step retry fails as well and the run ends
    with ``failed_step``; the default raises exactly once, which the
    escalation path recovers from.
    """

    name = "exploding"

    def __init__(self, fail_at, persistent=False):
        super().__init__(executor=SerialExecutor())
        self.fail_at = fail_at
        self.persistent = persistent
        self.calls = 0

    def _build(self, dataset):
        pass

    def plan(self, dataset):
        step, self.calls = self.calls, self.calls + 1
        if step == self.fail_at or (self.persistent and step > self.fail_at):
            raise RuntimeError("irrecoverable step failure")
        return super().plan(dataset)

    def _join(self, dataset, accumulator):
        return 0

    def memory_footprint(self):
        return 0


class TestRunnerRobustness:
    def test_transient_step_failure_recovers_via_retry(self, uniform_small):
        # One raise past executor recovery: the runner discards the
        # algorithm's cross-step state and re-runs the step from
        # scratch; the run completes with a step_retry event.
        runner = SimulationRunner(uniform_small, None, _ExplodingJoin(fail_at=2))
        records = runner.run(5)
        assert runner.failed_step is None
        assert runner.failure is None
        assert [record.step for record in records] == [0, 1, 2, 3, 4]
        retried = [e for e in records[2].events if e["kind"] == "step_retry"]
        assert len(retried) == 1
        assert "irrecoverable step failure" in retried[0]["error"]
        assert all(
            e["kind"] != "step_retry"
            for record in records
            if record.step != 2
            for e in record.events
        )

    def test_persistent_step_failure_stops_cleanly(self, uniform_small):
        runner = SimulationRunner(
            uniform_small, None, _ExplodingJoin(fail_at=2, persistent=True)
        )
        records = runner.run(5)
        assert runner.failed_step == 2
        assert isinstance(runner.failure, RuntimeError)
        assert runner.timed_out is False
        # The formatted traceback is preserved for figures/reports.
        assert "irrecoverable step failure" in runner.failure_traceback
        assert "Traceback" in runner.failure_traceback
        # Every record belongs to a *completed* step — none half-written.
        assert [record.step for record in records] == [0, 1]

    def test_clean_run_has_no_failure(self, uniform_small):
        runner = SimulationRunner(uniform_small, None, PlaneSweepJoin())
        runner.run(2)
        assert runner.failed_step is None
        assert runner.failure is None
        assert runner.degraded_steps() == []
        assert runner.total_task_retries() == 0

    def test_records_surface_retries_and_degradation(self, dense_dataset):
        n_tasks = _thermal_tasks_per_step(dense_dataset)
        install_fault_plan(
            parse_faults(f"raise@1,kill@{n_tasks + 1},kill@{2 * n_tasks + 1}")
        )
        executor = ProcessExecutor(n_workers=2)
        runner = SimulationRunner(
            dense_dataset, None, ThermalJoin(resolution=1.0, executor=executor)
        )
        records = runner.run(4)
        executor.close()
        assert runner.failed_step is None
        assert records[0].task_retries == 1 and not records[0].degraded
        assert records[1].degraded  # pool broke and was rebuilt
        assert records[2].degraded  # pool broke again: downgraded to thread
        assert records[3].events == [] and not records[3].degraded
        assert runner.degraded_steps() == [1, 2]
        assert runner.total_task_retries() >= 1
        assert not _LIVE_SEGMENTS
        # All four steps joined the same static dataset: identical counts.
        assert len({record.n_results for record in records}) == 1
        assert len({record.overlap_tests for record in records}) == 1
