"""Quickstart: iterative spatial self-join with THERMAL-JOIN.

Builds the paper's synthetic moving-object benchmark, runs a short
simulation with the self-tuning THERMAL-JOIN, and prints per-step
statistics.  This is the one-screen tour of the public API:

* a workload = a :class:`SpatialDataset` plus a motion model;
* a join algorithm implements ``step(dataset) -> JoinResult``;
* :class:`SimulationRunner` drives the move -> join -> record loop.

Run::

    python examples/quickstart.py
"""

from repro import SimulationRunner, ThermalJoin, make_uniform_workload


def main():
    # 10k objects of width 15, all moving 10 units per step with
    # reflecting boundaries (Section 5.3 of the paper).  The 100-unit
    # cube keeps the paper's object density (10M objects / 1000^3), i.e.
    # its high join selectivity — the regime THERMAL-JOIN targets.
    dataset, motion = make_uniform_workload(
        10_000, width=15.0, translation=10.0,
        bounds=((0, 0, 0), (100, 100, 100)), seed=42,
    )
    print(f"workload: {dataset}")

    # No configuration needed: THERMAL-JOIN self-tunes its grid at runtime.
    join = ThermalJoin()
    runner = SimulationRunner(dataset, motion, join)
    records = runner.run(n_steps=10)

    print(f"{'step':>4} {'results':>10} {'tests':>10} {'time [ms]':>10} {'r':>6}")
    for record in records:
        print(
            f"{record.step:>4} {record.n_results:>10,} {record.overlap_tests:>10,} "
            f"{record.total_seconds * 1e3:>10.1f} {join.current_resolution:>6.2f}"
        )
    print(
        f"\ntotal join time: {runner.total_join_seconds():.2f}s, "
        f"tuner converged: {join.tuner.converged} "
        f"(after {join.tuner.tuning_steps} tuning steps)"
    )

    # The result pairs themselves are plain index arrays:
    result = join.step(dataset)
    i_idx, j_idx = result.pairs
    print(f"first 5 overlapping pairs: {list(zip(i_idx[:5], j_idx[:5]))}")


if __name__ == "__main__":
    main()
