"""Bench-trajectory document: schema, builders and validation.

``BENCH_steps.json`` is the repo's machine-readable perf record: every
claim of the paper is a *per-time-step* quantity (join time, overlap
tests, footprint, tuner convergence), so the document stores one
per-step series per (workload, algorithm, executor) run plus aggregates
and the environment that produced them.  The schema is versioned;
:func:`validate_bench` is what CI runs against the freshly produced
document and what the test suite runs against a smoke run.

Document shape (``BENCH_SCHEMA_VERSION`` 5)::

    {
      "schema_version": 5,
      "kind": "bench_steps",
      "environment": {"python": ..., "numpy": ..., "platform": ...,
                       "cpu_count": ...},
      "config": {...},                    # driver knobs (free-form)
      "runs": [
        {
          "workload": "uniform", "algorithm": "thermal-join",
          "executor": "serial", "kernel_backend": "numpy",
          "checkpoint_every": 0,
          "n_objects": 5000, "n_steps": 6,
          "steps": [ {step record}, ... ],   # one per simulated step
          "aggregates": {"total_seconds": ..., "total_overlap_tests": ...,
                          "peak_memory_bytes": ..., "total_results": ...,
                          "task_retries": ..., "degraded_steps": ...}
        }, ...
      ]
    }

Each step record carries the Figure-7 series (``n_results``,
``join_seconds``, ``build_seconds``, ``overlap_tests``,
``memory_bytes``) plus the engine stage breakdown, the robustness
record (``events``, ``task_retries``) and the metrics-registry snapshot
(``index_counters`` — tuner resolution, P-Grid cell accounting, ...).

Schema version 2 adds the ``incremental`` step key: the pair-maintenance
counters (mode, moved fraction, pairs reused/re-verified, fallback
count) surfaced by algorithms that maintain their result across steps;
``{}`` for algorithms without the provider.

Schema version 3 adds the run-level ``kernel_backend`` key: the resolved
verify-kernel backend (:mod:`repro.geometry.kernels`, selected via
``REPRO_KERNELS``) the run executed with — the dimension the scaling
section of the bench matrix sweeps to record step time versus object
count per backend.

Schema version 4 adds the run-level ``checkpoint_every`` key: the
durable-checkpoint cadence the run executed with (``0`` when
checkpointing was off).  The ``uniform-checkpoint`` scenario runs the
same trajectory with checkpointing off and on, so the document records
the measured checkpoint overhead alongside the bit-identical series.

Schema version 5 adds the optional run-level ``service`` block: the
front-end counters of a :class:`~repro.service.JoinService` run —
shard count, concurrent clients, accepted/rejected/batched request
counts, and the measured throughput (queries per second) and latency
(mean/max seconds).  The ``uniform-service`` scenario drives the
sharded async service over the uniform trajectory, asserts its answers
are bit-identical to direct library calls (including across an
injected shard kill), and records the per-epoch series through
:meth:`~repro.service.ShardRing.epoch_record`.
"""

from __future__ import annotations

import os
import platform
import sys
from typing import TYPE_CHECKING, Any

from repro.obs.jsonl import to_jsonable

if TYPE_CHECKING:
    from repro.simulation.runner import SimulationRunner, StepRecord

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "environment_info",
    "step_record_to_json",
    "run_aggregates",
    "validate_bench",
]

BENCH_SCHEMA_VERSION = 5

#: Required keys of one per-step record.
STEP_FIELDS = (
    "step",
    "n_results",
    "join_seconds",
    "build_seconds",
    "overlap_tests",
    "memory_bytes",
    "stage_seconds",
    "index_counters",
    "events",
    "task_retries",
    "incremental",
)

#: Required keys of one run entry.
RUN_FIELDS = (
    "workload",
    "algorithm",
    "executor",
    "kernel_backend",
    "checkpoint_every",
    "n_objects",
    "n_steps",
    "steps",
    "aggregates",
)

#: Required keys of the optional run-level ``service`` block (schema
#: v5): present on runs produced through the sharded async front-end.
SERVICE_FIELDS = (
    "n_shards",
    "clients",
    "accepted",
    "rejected",
    "batched",
    "answered",
    "wall_seconds",
    "throughput_qps",
    "latency_mean_seconds",
    "latency_max_seconds",
)

#: Required keys of the aggregates block.
AGGREGATE_FIELDS = (
    "total_seconds",
    "total_overlap_tests",
    "peak_memory_bytes",
    "total_results",
    "task_retries",
    "degraded_steps",
)


def environment_info() -> dict[str, Any]:
    """The environment block: interpreter, numpy, platform, cores."""
    import numpy

    return {
        "python": sys.version.split()[0],
        "numpy": numpy.__version__,
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
    }


def step_record_to_json(record: StepRecord) -> dict[str, Any]:
    """One :class:`~repro.simulation.runner.StepRecord` as a JSON-ready
    step entry of the bench schema."""
    return to_jsonable(
        {
            "step": record.step,
            "n_results": record.n_results,
            "join_seconds": record.join_seconds,
            "build_seconds": record.build_seconds,
            "overlap_tests": record.overlap_tests,
            "memory_bytes": record.memory_bytes,
            "phase_seconds": dict(record.phase_seconds),
            "stage_seconds": dict(record.stage_seconds),
            "index_counters": dict(record.index_counters),
            "events": list(record.events),
            "task_retries": record.task_retries,
            "incremental": dict(getattr(record, "incremental", {}) or {}),
        }
    )


def run_aggregates(runner: SimulationRunner) -> dict[str, Any]:
    """Aggregates block for one completed simulation runner.

    Checkpointing runs additionally carry ``checkpoint_seconds`` (the
    run-final recovery counter, not the last step's snapshot — a
    checkpoint written after the final step's metrics snapshot would
    otherwise be missed).
    """
    aggregates = {
        "total_seconds": runner.total_join_seconds(),
        "total_overlap_tests": runner.total_overlap_tests(),
        "peak_memory_bytes": runner.peak_memory_bytes(),
        "total_results": sum(record.n_results for record in runner.records),
        "task_retries": runner.total_task_retries(),
        "degraded_steps": runner.degraded_steps(),
    }
    if runner.recovery is not None:
        aggregates["checkpoint_seconds"] = runner.recovery.checkpoint_seconds
    return aggregates


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ValueError(f"invalid bench document: {message}")


def validate_bench(doc: dict[str, Any]) -> dict[str, Any]:
    """Validate a bench document against the schema; returns ``doc``.

    Raises :class:`ValueError` naming the first violated constraint.
    Checked: versioned top level, environment block, non-empty runs,
    required run/step/aggregate fields, per-step series consistency
    (monotone step indices, aggregate totals equal to the series sums).
    """
    _require(isinstance(doc, dict), "top level must be an object")
    _require(
        doc.get("schema_version") == BENCH_SCHEMA_VERSION,
        f"schema_version must be {BENCH_SCHEMA_VERSION}",
    )
    _require(doc.get("kind") == "bench_steps", "kind must be 'bench_steps'")
    environment = doc.get("environment")
    _require(isinstance(environment, dict), "environment block missing")
    for key in ("python", "numpy", "platform", "cpu_count"):
        _require(key in environment, f"environment.{key} missing")
    runs = doc.get("runs")
    _require(isinstance(runs, list) and runs, "runs must be a non-empty list")
    for index, run in enumerate(runs):
        where = f"runs[{index}]"
        _require(isinstance(run, dict), f"{where} must be an object")
        for key in RUN_FIELDS:
            _require(key in run, f"{where}.{key} missing")
        steps = run["steps"]
        _require(isinstance(steps, list) and steps, f"{where}.steps empty")
        _require(
            len(steps) == run["n_steps"],
            f"{where}: n_steps={run['n_steps']} but {len(steps)} step records",
        )
        for k, step in enumerate(steps):
            for key in STEP_FIELDS:
                _require(key in step, f"{where}.steps[{k}].{key} missing")
            _require(
                step["step"] == k, f"{where}.steps[{k}] has step index {step['step']}"
            )
        aggregates = run["aggregates"]
        for key in AGGREGATE_FIELDS:
            _require(key in aggregates, f"{where}.aggregates.{key} missing")
        if "service" in run:
            service = run["service"]
            _require(
                isinstance(service, dict), f"{where}.service must be an object"
            )
            for key in SERVICE_FIELDS:
                _require(key in service, f"{where}.service.{key} missing")
            _require(
                service["answered"] <= service["accepted"],
                f"{where}.service: answered exceeds accepted",
            )
        _require(
            aggregates["total_overlap_tests"]
            == sum(step["overlap_tests"] for step in steps),
            f"{where}: total_overlap_tests does not equal the series sum",
        )
        _require(
            aggregates["total_results"]
            == sum(step["n_results"] for step in steps),
            f"{where}: total_results does not equal the series sum",
        )
        _require(
            aggregates["peak_memory_bytes"]
            == max(step["memory_bytes"] for step in steps),
            f"{where}: peak_memory_bytes does not equal the series max",
        )
    return doc
