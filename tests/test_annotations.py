"""Annotation-completeness gate over ``src/repro``.

The repo ships a ``py.typed`` marker and a strict-leaning mypy
configuration, but mypy itself only runs in CI.  This test enforces the
load-bearing half of that contract everywhere pytest runs: every
module-level and class-level function or method in ``src/repro`` must
annotate all of its parameters (``self``/``cls`` excepted) and its
return type.  Nested helper functions are exempt — mypy infers those
from context and they are free to stay lightweight.
"""

from __future__ import annotations

import ast
from pathlib import Path

SRC_ROOT = Path(__file__).resolve().parent.parent / "src" / "repro"


def _unannotated_defs(tree: ast.Module) -> list[tuple[int, str, list[str]]]:
    """(lineno, name, missing) for each incompletely annotated top-level def."""
    findings: list[tuple[int, str, list[str]]] = []

    class Visitor(ast.NodeVisitor):
        def __init__(self) -> None:
            self.depth = 0  # function nesting depth; class bodies stay at 0

        def _check(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
            if self.depth == 0:
                args = node.args
                positional = args.posonlyargs + args.args
                missing = []
                for index, arg in enumerate(positional + args.kwonlyargs):
                    first = index == 0 and arg in positional[:1]
                    if first and arg.arg in ("self", "cls"):
                        continue
                    if arg.annotation is None:
                        missing.append(arg.arg)
                for star in (args.vararg, args.kwarg):
                    if star is not None and star.annotation is None:
                        missing.append("*" + star.arg)
                if node.returns is None:
                    missing.append("return")
                if missing:
                    findings.append((node.lineno, node.name, missing))
            self.depth += 1
            self.generic_visit(node)
            self.depth -= 1

        def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
            self._check(node)

        def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
            self._check(node)

    Visitor().visit(tree)
    return findings


def test_package_root_exists() -> None:
    assert SRC_ROOT.is_dir(), f"missing package root {SRC_ROOT}"


def test_py_typed_marker_ships() -> None:
    """PEP 561: the marker must exist so installed copies expose types."""
    assert (SRC_ROOT / "py.typed").is_file()


def test_all_public_defs_are_fully_annotated() -> None:
    problems = []
    for path in sorted(SRC_ROOT.rglob("*.py")):
        tree = ast.parse(path.read_text(encoding="utf-8"))
        for lineno, name, missing in _unannotated_defs(tree):
            rel = path.relative_to(SRC_ROOT.parent.parent)
            problems.append(f"{rel}:{lineno}: {name} missing {', '.join(missing)}")
    assert not problems, (
        "unannotated defs in src/repro (annotate them; see docs/static-analysis.md):\n"
        + "\n".join(problems)
    )
