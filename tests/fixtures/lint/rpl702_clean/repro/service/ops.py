async def refresh() -> None:
    pass
