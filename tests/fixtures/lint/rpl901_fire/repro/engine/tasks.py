"""The submitted name is module-level HERE, but it is a lambda."""

work = lambda payload: payload  # noqa: E731
