"""The verify-kernel layer: specs, dispatch, chunking, backend parity.

Backend parity is the load-bearing contract of ``repro.geometry.kernels``:
every registered backend must reproduce the numpy oracle's pair sets and
counters bit-for-bit, across kernels, algorithms, executors, motion
models, incremental maintenance and fault recovery.  Backends whose
dependencies are missing (numba in this container) auto-skip; the
interpreted ``python`` backend runs the very same loop cores numba would
JIT, so the parity suite exercises the loop logic either way.
"""

from __future__ import annotations

import json
import pathlib
import warnings

import numpy as np
import pytest

from repro.core import ThermalJoin
from repro.datasets import (
    ClusterDrift,
    IntermittentTranslation,
    make_uniform_workload,
)
from repro.engine import chunk_by_volume, install_fault_plan, parse_faults
from repro.geometry import (
    PairAccumulator,
    brute_force_pairs,
    chunk_edges_by_volume,
    group_by_keys,
    pack_pairs,
    unique_pairs,
)
from repro.geometry import kernels
from repro.geometry.kernels import (
    DEFAULT_BACKEND,
    DEFAULT_CHUNK_CANDIDATES,
    KERNEL_SPECS,
    available_backends,
    get_kernels,
    kernel_metrics,
    kernel_names,
    registered_backends,
    reset_kernel_metrics,
    resolve_backend_name,
    set_backend,
)
from repro.joins import EGOJoin, PBSMJoin, PlaneSweepJoin
from repro.simulation import SimulationRunner

FIXTURE_PATH = pathlib.Path(__file__).parent / "fixtures" / "kernel_refactor_oracle.json"

#: Non-oracle backends; unavailable ones (numba without numba) auto-skip.
ALT_BACKENDS = [
    pytest.param(
        name,
        marks=pytest.mark.skipif(
            name not in available_backends(),
            reason=f"kernel backend {name!r} not available in this environment",
        ),
    )
    for name in registered_backends()
    if name != DEFAULT_BACKEND
]

ALL_BACKENDS = [
    pytest.param(
        name,
        marks=pytest.mark.skipif(
            name not in available_backends(),
            reason=f"kernel backend {name!r} not available in this environment",
        ),
    )
    for name in registered_backends()
]


@pytest.fixture(autouse=True)
def clean_dispatch(monkeypatch):
    """No backend selection or dispatch counters leak into (or out of) a test."""
    monkeypatch.delenv("REPRO_KERNELS", raising=False)
    previous = set_backend(None)
    reset_kernel_metrics()
    yield
    set_backend(previous)
    reset_kernel_metrics()


# ----------------------------------------------------------------------
# Shared chunking helper
# ----------------------------------------------------------------------
class TestChunkEdges:
    def test_exactly_one_mode_required(self):
        counts = np.asarray([1, 2, 3], dtype=np.int64)
        with pytest.raises(ValueError):
            chunk_edges_by_volume(counts)
        with pytest.raises(ValueError):
            chunk_edges_by_volume(counts, max_volume=4, n_chunks=2)

    def test_invalid_bounds_raise(self):
        counts = np.asarray([1, 2, 3], dtype=np.int64)
        with pytest.raises(ValueError):
            chunk_edges_by_volume(counts, max_volume=0)
        with pytest.raises(ValueError):
            chunk_edges_by_volume(counts, n_chunks=0)

    def test_max_volume_small_total_single_chunk(self):
        counts = np.asarray([3, 1, 2], dtype=np.int64)
        assert chunk_edges_by_volume(counts, max_volume=100).tolist() == [0, 3]

    def test_max_volume_known_split(self):
        counts = np.asarray([5, 5, 5], dtype=np.int64)
        assert chunk_edges_by_volume(counts, max_volume=5).tolist() == [0, 1, 2, 3]

    def test_max_volume_single_oversized_group(self):
        counts = np.asarray([10], dtype=np.int64)
        assert chunk_edges_by_volume(counts, max_volume=3).tolist() == [0, 1]

    def test_empty_counts(self):
        empty = np.empty(0, dtype=np.int64)
        assert chunk_edges_by_volume(empty, max_volume=4).tolist() == [0, 0]
        assert chunk_edges_by_volume(empty, n_chunks=4).tolist() == [0, 0]

    def test_max_volume_bounds_every_multi_group_chunk(self, rng):
        counts = rng.integers(0, 50, size=200).astype(np.int64)
        limit = 120
        edges = chunk_edges_by_volume(counts, max_volume=limit)
        assert edges[0] == 0 and edges[-1] == counts.size
        for a, b in zip(edges[:-1], edges[1:], strict=True):
            assert b > a
            # Each chunk is the smallest prefix reaching the target: it
            # may overshoot with its final group only.
            assert counts[a:b - 1].sum() < limit

    def test_n_chunks_mode_matches_chunk_by_volume(self, rng):
        for n_tasks in (1, 3, 8, 64):
            counts = rng.integers(0, 40, size=57).astype(np.int64)
            edges = chunk_edges_by_volume(counts, n_chunks=n_tasks)
            expected = chunk_by_volume(counts, n_tasks)
            got = [(int(edges[k]), int(edges[k + 1])) for k in range(len(edges) - 1)]
            assert got == expected
            assert len(got) <= n_tasks


# ----------------------------------------------------------------------
# Kernel catalogue and backend registry
# ----------------------------------------------------------------------
class TestKernelSpecs:
    def test_catalogue_names_unique_and_complete(self):
        names = [spec.name for spec in KERNEL_SPECS]
        assert len(names) == len(set(names))
        assert tuple(names) == kernel_names()
        assert set(names) == {
            "self_join_groups",
            "cross_join_groups",
            "cell_pair_sweep",
            "strip_sweep",
            "hot_cell_emit",
        }

    def test_spec_fields_are_sane(self):
        for spec in KERNEL_SPECS:
            assert spec.layout in ("grouped", "x-sorted")
            assert spec.doc
            assert spec.counters
            assert spec.accounting

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_every_available_backend_covers_the_catalogue(self, backend):
        resolved, table = get_kernels(backend)
        assert resolved == backend
        assert set(kernel_names()) <= set(table)
        assert all(callable(fn) for fn in table.values())

    def test_numpy_always_registered_and_available(self):
        assert DEFAULT_BACKEND in registered_backends()
        assert DEFAULT_BACKEND in available_backends()


class TestDispatchResolution:
    def test_default_is_the_numpy_oracle(self):
        assert resolve_backend_name() == "numpy"

    def test_environment_selects_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", "python")
        assert resolve_backend_name() == "python"

    def test_override_outranks_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", "python")
        set_backend("numpy")
        assert resolve_backend_name() == "numpy"

    def test_explicit_argument_outranks_override(self):
        set_backend("numpy")
        assert resolve_backend_name("python") == "python"

    def test_set_backend_returns_previous(self):
        assert set_backend("python") is None
        assert set_backend(None) == "python"

    def test_unknown_backend_warns_once_and_falls_back(self):
        with pytest.warns(RuntimeWarning, match="quantum"):
            assert resolve_backend_name("quantum") == "numpy"
        fallbacks = kernel_metrics()["fallbacks"]
        assert fallbacks >= 1
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # second resolution must not warn
            assert resolve_backend_name("quantum") == "numpy"
        assert kernel_metrics()["fallbacks"] > fallbacks

    @pytest.mark.skipif(
        "numba" in available_backends(), reason="numba is installed here"
    )
    def test_missing_numba_degrades_to_oracle(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", "numba")
        with pytest.warns(RuntimeWarning, match="numba"):
            assert resolve_backend_name() == "numpy"

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            kernels.register_backend("numpy", dict)

    def test_dispatch_counts_calls(self, rng):
        reset_kernel_metrics()
        lo, hi, cat, starts, stops, _cl, _ch = _grouped_boxes(rng, n=30)
        kernels.self_join_groups(
            lo, hi, cat, starts, stops, np.arange(starts.size), _Collector()
        )
        metrics = kernel_metrics()
        assert metrics["backend"] == "numpy"
        assert metrics["numpy_calls"] == 1
        assert metrics["fallbacks"] == 0

    def test_kernels_metrics_provider_in_step_stats(self, uniform_small):
        join = ThermalJoin(resolution=1.0, count_only=True)
        result = join.step(uniform_small)
        snapshot = result.stats.index_counters["kernels"]
        assert snapshot["backend"] == "numpy"
        assert snapshot["numpy_calls"] >= 1


# ----------------------------------------------------------------------
# Kernel-level backend parity (bit-identical pairs and counters)
# ----------------------------------------------------------------------
def _grouped_boxes(rng, n=160, n_groups=6, span=40.0):
    """Grouped boxes with a few giants so the enclosure shortcut fires."""
    centers = rng.uniform(0, span, size=(n, 3))
    widths = rng.uniform(1.0, 9.0, size=(n, 3))
    widths[: max(2, n // 25)] = 2.5 * span  # encloses whole cells
    lo = centers - widths / 2.0
    hi = centers + widths / 2.0
    keys = rng.integers(0, n_groups, size=n)
    cat, starts, stops, _unique = group_by_keys(keys, secondary_sort=lo[:, 0])
    center_lo = np.stack(
        [centers[cat[starts[g]:stops[g]]].min(axis=0) for g in range(starts.size)]
    )
    center_hi = np.stack(
        [centers[cat[starts[g]:stops[g]]].max(axis=0) for g in range(starts.size)]
    )
    return lo, hi, cat, starts, stops, center_lo, center_hi


class _Collector:
    """``on_pairs`` callback recording every emitted (left, right, group)."""

    def __init__(self):
        self.left = []
        self.right = []
        self.groups = []

    def __call__(self, left, right, groups):
        self.left.append(np.asarray(left))
        self.right.append(np.asarray(right))
        self.groups.append(np.asarray(groups))

    def triples(self):
        if not self.left:
            return []
        left = np.concatenate(self.left)
        right = np.concatenate(self.right)
        groups = np.concatenate(self.groups)
        return sorted(zip(left.tolist(), right.tolist(), groups.tolist(), strict=True))


def _canonical(accumulator, n):
    return pack_pairs(*accumulator.as_unique_arrays(n), n).tolist()


@pytest.mark.parametrize("backend", ALT_BACKENDS)
class TestKernelParity:
    @pytest.mark.parametrize("count", ["full", "x-sweep"])
    @pytest.mark.parametrize("chunk", [DEFAULT_CHUNK_CANDIDATES, 64])
    def test_self_join_groups(self, backend, count, chunk, rng):
        lo, hi, cat, starts, stops, _cl, _ch = _grouped_boxes(rng)
        groups = np.arange(starts.size, dtype=np.int64)
        oracle, alt = _Collector(), _Collector()
        tests_oracle = kernels.self_join_groups(
            lo, hi, cat, starts, stops, groups, oracle,
            count=count, chunk_candidates=chunk, backend="numpy",
        )
        tests_alt = kernels.self_join_groups(
            lo, hi, cat, starts, stops, groups, alt,
            count=count, chunk_candidates=chunk, backend=backend,
        )
        assert tests_alt == tests_oracle
        assert alt.triples() == oracle.triples()

    @pytest.mark.parametrize("count", ["full", "x-sweep"])
    def test_cross_join_groups(self, backend, count, rng):
        lo, hi, cat, starts, stops, _cl, _ch = _grouped_boxes(rng)
        n_groups = starts.size
        pair_a, pair_b = np.triu_indices(n_groups, k=1)
        oracle, alt = _Collector(), _Collector()
        tests_oracle = kernels.cross_join_groups(
            lo, hi, cat, starts, stops, cat, starts, stops,
            pair_a, pair_b, oracle, count=count, backend="numpy",
        )
        tests_alt = kernels.cross_join_groups(
            lo, hi, cat, starts, stops, cat, starts, stops,
            pair_a, pair_b, alt, count=count, backend=backend,
        )
        assert tests_alt == tests_oracle
        assert alt.triples() == oracle.triples()

    @pytest.mark.parametrize("shortcut", [True, False])
    @pytest.mark.parametrize("chunk", [DEFAULT_CHUNK_CANDIDATES, 64])
    def test_cell_pair_sweep(self, backend, shortcut, chunk, rng):
        lo, hi, cat, starts, stops, c_lo, c_hi = _grouped_boxes(rng)
        n = lo.shape[0]
        pair_a, pair_b = np.triu_indices(starts.size, k=1)
        acc_oracle, acc_alt = PairAccumulator(), PairAccumulator()
        counters_oracle = kernels.cell_pair_sweep(
            lo, hi, cat, starts, stops, c_lo, c_hi, pair_a, pair_b, acc_oracle,
            chunk_candidates=chunk, enclosure_shortcut=shortcut, backend="numpy",
        )
        counters_alt = kernels.cell_pair_sweep(
            lo, hi, cat, starts, stops, c_lo, c_hi, pair_a, pair_b, acc_alt,
            chunk_candidates=chunk, enclosure_shortcut=shortcut, backend=backend,
        )
        assert counters_alt == counters_oracle
        if shortcut:
            assert counters_alt[1] > 0  # the giants guarantee shortcut pairs
        assert _canonical(acc_alt, n) == _canonical(acc_oracle, n)

    def test_strip_sweep(self, backend, rng):
        n = 200
        centers = rng.uniform(0, 60, size=(n, 3))
        widths = rng.uniform(1.0, 10.0, size=(n, 3))
        lo = centers - widths / 2.0
        hi = centers + widths / 2.0
        order = np.argsort(lo[:, 0], kind="stable").astype(np.int64)
        slo, shi, ids = lo[order], hi[order], order
        union_oracle, union_alt = PairAccumulator(), PairAccumulator()
        for start, stop in ((0, 70), (70, 140), (140, n)):
            if start:
                carry = np.flatnonzero(shi[:start, 0] > slo[start, 0]).astype(np.int64)
            else:
                carry = np.empty(0, dtype=np.int64)
            acc_oracle, acc_alt = PairAccumulator(), PairAccumulator()
            tests_oracle = kernels.strip_sweep(
                slo, shi, ids, start, stop, carry, acc_oracle, backend="numpy"
            )
            tests_alt = kernels.strip_sweep(
                slo, shi, ids, start, stop, carry, acc_alt, backend=backend
            )
            assert tests_alt == tests_oracle
            assert _canonical(acc_alt, n) == _canonical(acc_oracle, n)
            union_oracle.extend(*acc_oracle.as_arrays())
            union_alt.extend(*acc_alt.as_arrays())
        # The strips decompose the global sweep: their union is the answer.
        expected = brute_force_pairs(lo, hi)
        assert _canonical(union_alt, n) == pack_pairs(*expected, n).tolist()
        assert _canonical(union_oracle, n) == pack_pairs(*expected, n).tolist()

    def test_hot_cell_emit(self, backend, rng):
        lo, hi, cat, starts, stops, _cl, _ch = _grouped_boxes(rng, n=90)
        n = lo.shape[0]
        hot = np.arange(starts.size, dtype=np.int64)
        acc_oracle, acc_alt = PairAccumulator(), PairAccumulator()
        emitted_oracle = kernels.hot_cell_emit(
            cat, starts, stops, hot, acc_oracle, backend="numpy"
        )
        emitted_alt = kernels.hot_cell_emit(
            cat, starts, stops, hot, acc_alt, backend=backend
        )
        assert emitted_alt == emitted_oracle > 0
        assert _canonical(acc_alt, n) == _canonical(acc_oracle, n)

    def test_empty_inputs(self, backend):
        empty_i = np.empty(0, dtype=np.int64)
        empty_box = np.empty((0, 3))
        acc = PairAccumulator()
        assert kernels.cell_pair_sweep(
            empty_box, empty_box, empty_i, empty_i, empty_i, empty_box, empty_box,
            empty_i, empty_i, acc, backend=backend,
        ) == (0, 0)
        assert kernels.hot_cell_emit(
            empty_i, empty_i, empty_i, empty_i, acc, backend=backend
        ) == 0
        assert kernels.self_join_groups(
            empty_box, empty_box, empty_i, empty_i, empty_i, empty_i,
            _Collector(), backend=backend,
        ) == 0
        assert len(acc) == 0


# ----------------------------------------------------------------------
# Whole-algorithm parity: backends × executors × motion × recovery
# ----------------------------------------------------------------------
def _algorithm_factories():
    return {
        "thermal-join": lambda **kw: ThermalJoin(resolution=1.0, **kw),
        "pbsm": PBSMJoin,
        "plane-sweep": PlaneSweepJoin,
        "ego": EGOJoin,
    }


def _step_pairs(result, n):
    return pack_pairs(*unique_pairs(*result.pairs, n), n)


def _series(algorithm, steps=3, motion_factory=None, n_objects=500):
    dataset, motion = make_uniform_workload(
        n_objects, width=10.0, bounds=(np.zeros(3), np.full(3, 120.0)), seed=11
    )
    if motion_factory is not None:
        motion = motion_factory(dataset)
    runner = SimulationRunner(dataset, motion, algorithm)
    records = runner.run(steps)
    assert runner.failure is None
    return [(r.n_results, r.overlap_tests) for r in records]


@pytest.mark.parametrize("backend", ALT_BACKENDS)
class TestAlgorithmParity:
    @pytest.mark.parametrize("name", sorted(_algorithm_factories()))
    def test_serial_step_matches_numpy(self, backend, name, uniform_small, monkeypatch):
        factory = _algorithm_factories()[name]
        reference = factory().step(uniform_small)
        monkeypatch.setenv("REPRO_KERNELS", backend)
        result = factory().step(uniform_small)
        n = len(uniform_small)
        assert result.stats.index_counters["kernels"]["backend"] == backend
        assert np.array_equal(_step_pairs(result, n), _step_pairs(reference, n))
        assert result.stats.overlap_tests == reference.stats.overlap_tests

    @pytest.mark.parametrize("name", sorted(_algorithm_factories()))
    @pytest.mark.parametrize("spec", ["thread:3", "process:2"])
    def test_executors_match_numpy_serial(
        self, backend, name, spec, uniform_small, monkeypatch
    ):
        factory = _algorithm_factories()[name]
        reference = factory().step(uniform_small)
        monkeypatch.setenv("REPRO_KERNELS", backend)
        join = factory(executor=spec)
        try:
            result = join.step(uniform_small)
        finally:
            join.executor.close()
        n = len(uniform_small)
        assert np.array_equal(_step_pairs(result, n), _step_pairs(reference, n))
        assert result.stats.overlap_tests == reference.stats.overlap_tests

    def test_shortcut_counters_match(self, backend, uniform_small, monkeypatch):
        def shortcuts(result):
            return sum(
                c.get("shortcut_pairs", 0) for c in result.stats.task_counters
            )

        reference = ThermalJoin(resolution=1.0).step(uniform_small)
        monkeypatch.setenv("REPRO_KERNELS", backend)
        result = ThermalJoin(resolution=1.0).step(uniform_small)
        assert shortcuts(result) == shortcuts(reference)

    @pytest.mark.parametrize("motion_name", ["random-walk", "cluster-drift", "intermittent"])
    def test_motion_model_series_match(self, backend, motion_name, monkeypatch):
        motion_factories = {
            "random-walk": None,
            "cluster-drift": lambda ds: ClusterDrift(
                ds,
                np.random.default_rng(3).integers(0, 8, size=ds.n_objects),
                distance=3.0,
                seed=3,
            ),
            "intermittent": lambda ds: IntermittentTranslation(
                ds, seed=5, move_fraction=0.1, distance=2.0
            ),
        }
        factory = motion_factories[motion_name]
        reference = _series(ThermalJoin(count_only=True), motion_factory=factory)
        monkeypatch.setenv("REPRO_KERNELS", backend)
        got = _series(ThermalJoin(count_only=True), motion_factory=factory)
        assert got == reference

    def test_incremental_maintenance_series_match(self, backend, monkeypatch):
        def intermittent(ds):
            return IntermittentTranslation(ds, seed=5, move_fraction=0.05, distance=2.0)

        monkeypatch.setenv("REPRO_INCREMENTAL", "1")
        reference = _series(
            ThermalJoin(count_only=True), steps=5, motion_factory=intermittent
        )
        monkeypatch.setenv("REPRO_KERNELS", backend)
        got = _series(ThermalJoin(count_only=True), steps=5, motion_factory=intermittent)
        assert got == reference

    def test_fault_recovery_series_match(self, backend, monkeypatch):
        reference = _series(ThermalJoin(resolution=1.0, count_only=True))
        monkeypatch.setenv("REPRO_KERNELS", backend)
        install_fault_plan(parse_faults("raise@1"))
        try:
            join = ThermalJoin(resolution=1.0, count_only=True, executor="thread:2")
            got = _series(join)
            join.executor.close()
        finally:
            install_fault_plan(None)
        assert got == reference


# ----------------------------------------------------------------------
# Pre-refactor oracle regression (recorded before the kernel layer existed)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", ALL_BACKENDS)
class TestRecordedOracle:
    """Every backend must reproduce the pre-refactor per-step series."""

    def _recorded(self, name):
        rows = json.loads(FIXTURE_PATH.read_text())["runs"][name]
        return [(row["n_results"], row["overlap_tests"]) for row in rows]

    @pytest.mark.parametrize(
        "name, factory",
        [
            ("thermal-join", lambda: ThermalJoin(count_only=True)),
            ("pbsm", lambda: PBSMJoin(count_only=True)),
            ("plane-sweep", lambda: PlaneSweepJoin(count_only=True)),
            ("ego", lambda: EGOJoin(count_only=True)),
        ],
    )
    def test_random_walk_series(self, backend, name, factory, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", backend)
        got = _series(factory(), steps=4, n_objects=900)
        assert got == self._recorded(name)

    def test_incremental_series(self, backend, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", backend)
        got = _series(
            ThermalJoin(count_only=True, pair_maintenance=True),
            steps=6,
            n_objects=900,
            motion_factory=lambda ds: IntermittentTranslation(
                ds, seed=5, move_fraction=0.05, distance=2.0
            ),
        )
        assert got == self._recorded("thermal-join-incremental")
