"""Developer tooling for the THERMAL-JOIN reproduction.

Nothing in this package ships with the ``repro`` distribution; it holds
repo-internal gates such as :mod:`tools.repro_lint`.
"""
