"""``python -m tools.repro_lint`` entry point."""

from __future__ import annotations

from tools.repro_lint.cli import main

raise SystemExit(main())
