"""Multiplayer-game visibility: the paper's non-scientific use case (§6.2).

"In multi-player games a cut-off radius (region of visibility) is
defined for all characters that are changing their location at discrete
intervals of time."  Each game tick, the self-join yields every pair of
characters that can see each other; the example maintains a per-player
visible-set and reports enter/leave events — the bookkeeping a game
server performs to decide which state updates to send to whom.

Run::

    python examples/game_visibility.py
"""

import numpy as np

from repro import RandomTranslation, SpatialDataset, ThermalJoin
from repro.geometry import pack_pairs

N_PLAYERS = 3_000
VISIBILITY_RADIUS = 40.0
WORLD_SIDE = 500.0
SPEED_PER_TICK = 12.0
N_TICKS = 12


def main():
    rng = np.random.default_rng(99)
    positions = rng.uniform(0.0, WORLD_SIDE, size=(N_PLAYERS, 3))
    world = SpatialDataset(
        positions,
        VISIBILITY_RADIUS,  # the visibility cut-off as the object extent
        bounds=(np.zeros(3), np.full(3, WORLD_SIDE)),
    )
    movement = RandomTranslation(world, distance=SPEED_PER_TICK, seed=100)
    join = ThermalJoin(cost_model="operations")

    previous = np.empty(0, dtype=np.int64)
    print(f"{'tick':>4} {'visible pairs':>13} {'entered':>8} {'left':>6} {'join [ms]':>10}")
    for tick in range(N_TICKS):
        result = join.step(world)
        current = np.sort(pack_pairs(*result.pairs, N_PLAYERS))
        entered = np.setdiff1d(current, previous, assume_unique=True)
        left = np.setdiff1d(previous, current, assume_unique=True)
        print(
            f"{tick:>4} {current.size:>13,} {entered.size:>8,} {left.size:>6,} "
            f"{result.stats.total_seconds * 1e3:>10.1f}"
        )
        previous = current
        movement.step(world)  # every character moves, every tick

    # Per-player fan-out: how many others each character currently sees.
    i_idx, j_idx = result.pairs
    fanout = np.bincount(i_idx, minlength=N_PLAYERS) + np.bincount(
        j_idx, minlength=N_PLAYERS
    )
    print(
        f"\nvisibility fan-out: mean={fanout.mean():.1f}, "
        f"p95={int(np.percentile(fanout, 95))}, max={fanout.max()}"
    )


if __name__ == "__main__":
    main()
