"""Engine layer: a sanctioned timing carrier (instrumentation output)."""

import time


def stamp() -> float:
    return time.perf_counter()
