"""Conservative whole-program call graph over a :class:`ProjectIndex`.

Resolution is name-based but *evidence-driven* — an edge exists only
when the target is provable from the summaries:

* bare names resolve to nested defs, sibling module-level functions,
  class constructors, then the import table (chasing re-export chains
  through package ``__init__`` modules);
* ``self.m()`` / ``cls.m()`` resolve within the enclosing class, then
  up its base chain, then *down* to every override in a transitive
  subclass (class-hierarchy analysis: the static type does not pin the
  dynamic receiver, so every override is a possible callee);
* ``self.attr.m()`` / ``param.m()`` / ``local.m()`` resolve through
  inferred types — ``self.x: Cls``, ``self.x = Cls(...)``, annotated
  parameters, ``x = Cls(...)`` locals, and the return annotation of a
  resolvable call — the repo is fully annotated, so this carries most
  cross-module edges;
* anything else produces *no* edge.  The analysis under-approximates
  reachability rather than drowning the tree in speculative matches;
  the per-file rules keep covering the purely local cases.

Reachability queries return, per function, the next hop towards a sink
so rules can print an explicit call chain in the diagnostic.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable, Iterable

from tools.repro_lint.project import (
    CallSite,
    FunctionInfo,
    ModuleSummary,
    ProjectIndex,
)

__all__ = ["CallGraph", "FuncNode"]

#: ``(module name, function qualname)`` — the node id of the graph.
FuncNode = tuple[str, str]

_MAX_CHASE = 12  #: re-export chains longer than this are abandoned


class CallGraph:
    def __init__(self, index: ProjectIndex) -> None:
        self.index = index
        self.functions: dict[FuncNode, FunctionInfo] = {}
        self._class_modules: dict[str, list[str]] = {}
        for summary in index.summaries:
            for qualname, info in summary.functions.items():
                self.functions[(summary.module, qualname)] = info
            for name in summary.classes:
                self._class_modules.setdefault(name, []).append(summary.module)
        self._subclasses = self._build_subclasses()
        #: node -> [(target node, call site)]
        self.edges: dict[FuncNode, list[tuple[FuncNode, CallSite]]] = {}
        self._reverse: dict[FuncNode, list[FuncNode]] = {}
        self._build_edges()

    # ------------------------------------------------------------------
    # Symbol resolution
    # ------------------------------------------------------------------
    def resolve_symbol(
        self, dotted: str, depth: int = 0
    ) -> tuple[str, str, str] | None:
        """Resolve an absolute dotted name to ``(kind, module, qualname)``.

        ``kind`` is ``"func"`` or ``"class"``.  Chases re-export chains
        (``from repro.engine.engine import execute_step`` inside
        ``repro/engine/__init__.py``) up to :data:`_MAX_CHASE` hops.
        """
        if depth > _MAX_CHASE:
            return None
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            module = ".".join(parts[:cut])
            summary = self.index.modules.get(module)
            if summary is None:
                continue
            return self._resolve_in_module(summary, parts[cut:], depth)
        return None

    def _resolve_in_module(
        self, summary: ModuleSummary, rest: list[str], depth: int
    ) -> tuple[str, str, str] | None:
        head = rest[0]
        qualname = ".".join(rest)
        if qualname in summary.functions:
            return ("func", summary.module, qualname)
        if qualname in summary.classes:
            return ("class", summary.module, qualname)
        if head in summary.imports:
            target = summary.imports[head]
            tail = ".".join(rest[1:])
            chained = f"{target}.{tail}" if tail else target
            return self.resolve_symbol(chained, depth + 1)
        return None

    def resolve_class(self, module: str, ref: str) -> tuple[str, str] | None:
        """Resolve a class-reference string relative to ``module``."""
        summary = self.index.modules.get(module)
        if summary is None:
            return None
        if "." not in ref:
            if ref in summary.classes:
                return (module, ref)
            if ref in summary.imports:
                resolved = self.resolve_symbol(summary.imports[ref])
                if resolved is not None and resolved[0] == "class":
                    return (resolved[1], resolved[2])
            homes = self._class_modules.get(ref, [])
            if len(homes) == 1:  # unique simple name anywhere in the index
                return (homes[0], ref)
            return None
        root, _, rest = ref.partition(".")
        if root in summary.imports:
            resolved = self.resolve_symbol(f"{summary.imports[root]}.{rest}")
        else:
            resolved = self.resolve_symbol(ref)
        if resolved is not None and resolved[0] == "class":
            return (resolved[1], resolved[2])
        return None

    # ------------------------------------------------------------------
    # Class hierarchy
    # ------------------------------------------------------------------
    def _build_subclasses(self) -> dict[tuple[str, str], set[tuple[str, str]]]:
        direct: dict[tuple[str, str], set[tuple[str, str]]] = {}
        for summary in self.index.summaries:
            for name, info in summary.classes.items():
                for base_ref in info.bases:
                    base = self.resolve_class(summary.module, base_ref)
                    if base is not None:
                        direct.setdefault(base, set()).add((summary.module, name))
        # Transitive closure.
        closed: dict[tuple[str, str], set[tuple[str, str]]] = {}
        for root in direct:
            seen: set[tuple[str, str]] = set()
            queue = deque(direct.get(root, ()))
            while queue:
                node = queue.popleft()
                if node in seen:
                    continue
                seen.add(node)
                queue.extend(direct.get(node, ()))
            closed[root] = seen
        return closed

    def _bases_of(self, cls: tuple[str, str]) -> list[tuple[str, str]]:
        summary = self.index.modules.get(cls[0])
        if summary is None or cls[1] not in summary.classes:
            return []
        out = []
        for ref in summary.classes[cls[1]].bases:
            base = self.resolve_class(cls[0], ref)
            if base is not None:
                out.append(base)
        return out

    def resolve_method(self, cls: tuple[str, str], method: str) -> list[FuncNode]:
        """All possible targets of ``<cls instance>.method()`` (CHA)."""
        targets: list[FuncNode] = []
        # Up the base chain for the statically named definition...
        seen: set[tuple[str, str]] = set()
        queue = deque([cls])
        defined_on: tuple[str, str] | None = None
        while queue:
            node = queue.popleft()
            if node in seen:
                continue
            seen.add(node)
            summary = self.index.modules.get(node[0])
            if summary is None:
                continue
            info = summary.classes.get(node[1])
            if info is None:
                continue
            if method in info.methods:
                defined_on = node
                break
            queue.extend(self._bases_of(node))
        if defined_on is not None:
            targets.append((defined_on[0], f"{defined_on[1]}.{method}"))
        # ...and down to every override in a transitive subclass.
        for sub in self._subclasses.get(cls, ()):  # CHA
            summary = self.index.modules.get(sub[0])
            if summary is None:
                continue
            info = summary.classes.get(sub[1])
            if info is not None and method in info.methods:
                targets.append((sub[0], f"{sub[1]}.{method}"))
        return targets

    # ------------------------------------------------------------------
    # Edges
    # ------------------------------------------------------------------
    def resolve_call(self, module: str, info: FunctionInfo, callee: str) -> list[FuncNode]:
        """Possible targets of one call site; empty when unprovable."""
        summary = self.index.modules.get(module)
        if summary is None:
            return []
        parts = callee.split(".")
        root = parts[0]
        # self.m() / cls.m() and self.attr.m()
        if root in ("self", "cls") and info.owner:
            if len(parts) == 2:
                return self.resolve_method((module, info.owner), parts[1])
            if len(parts) == 3:
                class_info = summary.classes.get(info.owner)
                if class_info is not None:
                    ref = class_info.attr_types.get(parts[1])
                    if ref is not None:
                        cls = self.resolve_class(module, ref)
                        if cls is not None:
                            return self.resolve_method(cls, parts[2])
            return []
        # Bare name: nested def, sibling, constructor, import.
        if len(parts) == 1:
            nested = f"{info.qualname}.{root}"
            if nested in summary.functions:
                return [(module, nested)]
            if root in summary.functions:
                return [(module, root)]
            if root in summary.classes:
                return self._constructor((module, root))
            if root in summary.imports:
                resolved = self.resolve_symbol(summary.imports[root])
                if resolved is not None:
                    if resolved[0] == "func":
                        return [(resolved[1], resolved[2])]
                    return self._constructor((resolved[1], resolved[2]))
            return []
        # param.m() / local.m() through inferred types.
        ref = info.params.get(root) or info.local_types.get(root)
        if ref is not None and len(parts) == 2:
            cls = self.resolve_class(module, ref)
            if cls is not None:
                return self.resolve_method(cls, parts[1])
            return []
        # imported_module.path.to.callable()
        if root in summary.imports:
            dotted = summary.imports[root] + "." + ".".join(parts[1:])
            resolved = self.resolve_symbol(dotted)
            if resolved is not None:
                if resolved[0] == "func":
                    return [(resolved[1], resolved[2])]
                return self._constructor((resolved[1], resolved[2]))
        return []

    def _constructor(self, cls: tuple[str, str]) -> list[FuncNode]:
        summary = self.index.modules.get(cls[0])
        if summary is None:
            return []
        info = summary.classes.get(cls[1])
        if info is not None and "__init__" in info.methods:
            return [(cls[0], f"{cls[1]}.__init__")]
        return []

    def _build_edges(self) -> None:
        for node, info in self.functions.items():
            out: list[tuple[FuncNode, CallSite]] = []
            for site in info.calls:
                for target in self.resolve_call(node[0], info, site.callee):
                    if target == node:
                        continue  # self-recursion adds nothing to reachability
                    out.append((target, site))
                    self._reverse.setdefault(target, []).append(node)
            self.edges[node] = out

    # ------------------------------------------------------------------
    # Reachability
    # ------------------------------------------------------------------
    def sink_closure(
        self,
        sink_kind: str,
        include: Callable[[FuncNode], bool],
        traverse_offloaded: bool = True,
    ) -> dict[FuncNode, tuple[FuncNode | None, str]]:
        """Functions that contain or can reach a ``sink_kind`` sink.

        ``include`` gates which functions may *carry* taint (sinks and
        intermediate hops alike) — rules use it to stop propagation at
        sanctioned layers.  The value maps each tainted function to
        ``(next hop towards the sink | None, sink label)`` so callers
        can render the chain.
        """
        closure: dict[FuncNode, tuple[FuncNode | None, str]] = {}
        queue: deque[FuncNode] = deque()
        for node, info in self.functions.items():
            if not include(node):
                continue
            sites = info.sinks.get(sink_kind)
            if sites:
                closure[node] = (None, sites[0][0])
                queue.append(node)
        while queue:
            node = queue.popleft()
            _, label = closure[node]
            for caller in self._reverse.get(node, ()):  # walk call edges backwards
                if caller in closure or not include(caller):
                    continue
                if not traverse_offloaded and not self._has_live_edge(caller, node):
                    continue
                closure[caller] = (node, label)
                queue.append(caller)
        return closure

    def _has_live_edge(self, caller: FuncNode, target: FuncNode) -> bool:
        return any(
            edge_target == target and not site.offloaded
            for edge_target, site in self.edges.get(caller, ())
        )

    def describe(self, node: FuncNode) -> str:
        module, qualname = node
        return f"{module}.{qualname}"

    def chain(
        self,
        start: FuncNode,
        closure: dict[FuncNode, tuple[FuncNode | None, str]],
        limit: int = 6,
    ) -> str:
        """Human-readable path from ``start`` to the sink it reaches."""
        hops: list[str] = []
        node: FuncNode | None = start
        label = closure.get(start, (None, "?"))[1]
        while node is not None and len(hops) < limit:
            hops.append(self.describe(node))
            node = closure.get(node, (None, ""))[0]
        hops.append(f"{label}()")
        return " -> ".join(hops)

    def iter_functions(
        self, predicate: Callable[[ModuleSummary], bool] | None = None
    ) -> Iterable[tuple[ModuleSummary, FunctionInfo]]:
        for summary in self.index.summaries:
            if predicate is not None and not predicate(summary):
                continue
            yield from ((summary, info) for info in summary.functions.values())
