"""Sharded async join service (the paper's dynamic-workload story, served).

Batch simulations drive the library directly; this package keeps a
long-lived sharded join state alive behind an asyncio front-end:

* :mod:`repro.service.sharding` — the :class:`ShardRing`: spatial slab
  sharding, per-shard joins on a shared executor, exact cross-shard
  boundary joins, snapshot-based re-homing and stale-but-marked
  degradation.
* :mod:`repro.service.cache` — the ``(shard, step, query)`` result
  cache invalidated through the incremental layer's
  :func:`~repro.engine.incremental.moved_groups`.
* :mod:`repro.service.service` — :class:`JoinService`: update streams,
  join/distance/neighbor queries, request batching and admission
  control.

This is the only package in the library allowed to import asyncio
(repro-lint rule RPL601): everything below the service boundary stays
synchronous and deterministic.
"""

from repro.service.cache import ResultCache
from repro.service.service import (
    JoinService,
    ServiceAnswer,
    ServiceOverloadedError,
)
from repro.service.sharding import RingAnswer, Shard, ShardRing

__all__ = [
    "JoinService",
    "ResultCache",
    "RingAnswer",
    "ServiceAnswer",
    "ServiceOverloadedError",
    "Shard",
    "ShardRing",
]
