"""Tests for the shared SpatialJoinAlgorithm conveniences."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ThermalJoin
from repro.datasets import SpatialDataset, make_uniform_dataset
from repro.geometry import brute_force_pairs, mbr, pairs_to_adjacency
from repro.joins import CRTreeJoin, PlaneSweepJoin


@pytest.fixture
def line_dataset():
    """Objects on a line with known distance structure."""
    x = np.array([0.0, 3.0, 6.0, 20.0])
    centers = np.stack([x, np.full(4, 5.0), np.full(4, 5.0)], axis=1)
    return SpatialDataset(centers, 2.0, bounds=(np.zeros(3), np.full(3, 30.0)))


class TestDistanceJoin:
    def test_predicate_widens_with_distance(self, line_dataset):
        join = ThermalJoin(resolution=1.0)
        # Width 2 boxes 3 apart: disjoint at d=0, joined at d>=1.
        assert join.distance_join(line_dataset, 0.0).n_results == 0
        within_two = ThermalJoin(resolution=1.0).distance_join(line_dataset, 2.0)
        assert within_two.n_results == 2  # (0,1) and (1,2)

    def test_matches_manual_enlargement(self, line_dataset):
        manual = ThermalJoin(resolution=1.0).step(
            line_dataset.with_enlarged_extent(2.0)
        )
        convenient = ThermalJoin(resolution=1.0).distance_join(line_dataset, 2.0)
        assert manual.n_results == convenient.n_results

    def test_all_algorithms_agree_on_distance_join(self, line_dataset):
        counts = {
            algo.name: algo.distance_join(line_dataset, 5.0).n_results
            for algo in (ThermalJoin(resolution=1.0), CRTreeJoin(), PlaneSweepJoin())
        }
        assert len(set(counts.values())) == 1


class TestNeighbors:
    def test_csr_matches_oracle(self):
        dataset = make_uniform_dataset(
            200, width=15.0, bounds=(np.zeros(3), np.full(3, 90.0)), seed=2
        )
        offsets, neighbors = ThermalJoin(resolution=1.0).neighbors(dataset)
        lo, hi = dataset.boxes()
        exp_i, exp_j = brute_force_pairs(lo, hi)
        expected = set(zip(exp_i.tolist(), exp_j.tolist(), strict=True))
        rebuilt = set()
        for obj in range(len(dataset)):
            mine = neighbors[offsets[obj]:offsets[obj + 1]]
            for other in mine.tolist():
                rebuilt.add((min(obj, other), max(obj, other)))
            # Each neighbour genuinely overlaps.
            for other in mine.tolist():
                assert mbr.overlap_single(lo[obj], hi[obj], lo[other], hi[other])
        assert rebuilt == expected

    def test_degree_sums_to_twice_pairs(self):
        dataset = make_uniform_dataset(
            150, width=15.0, bounds=(np.zeros(3), np.full(3, 80.0)), seed=3
        )
        join = ThermalJoin(resolution=1.0)
        offsets, neighbors = join.neighbors(dataset)
        result = ThermalJoin(resolution=1.0).step(dataset)
        assert neighbors.size == 2 * result.n_results
        assert offsets[-1] == neighbors.size

    def test_count_only_rejected(self, line_dataset):
        join = ThermalJoin(resolution=1.0, count_only=True)
        with pytest.raises(RuntimeError):
            join.neighbors(line_dataset)


class TestPairsToAdjacencyValidation:
    def test_rejects_nonpositive_n(self):
        with pytest.raises(ValueError):
            pairs_to_adjacency(np.asarray([0]), np.asarray([1]), 0)


class TestDatasetEdgeCases:
    def test_empty_dataset_rejected(self):
        with pytest.raises(ValueError):
            SpatialDataset(np.empty((0, 3)), 1.0)

    def test_nan_width_rejected(self):
        with pytest.raises(ValueError):
            SpatialDataset(np.zeros((2, 3)), np.asarray([1.0, np.nan]))
