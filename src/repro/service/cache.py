"""Result cache for the sharded join service.

Entries are keyed on ``(shard, step, query)`` tuples: the shard (an
integer shard id, or the reserved labels ``"boundary"`` / ``"ring"``),
the *step* the answer was computed against (the shard's committed
dataset version, or an epoch/generation pair for assembled answers)
and a hashable query descriptor.

The version component makes the cache *self-validating* — an entry
computed at version ``v`` can only ever be looked up again while the
shard is still at version ``v`` — so invalidation is not needed for
correctness.  It is needed for *memory*: without it a long-running
service accumulates one dead entry per (shard, update, query)
forever.  :meth:`invalidate_shard` is driven by the incremental
layer's :func:`~repro.engine.incremental.moved_groups` — exactly the
shards a motion delta touches are evicted, and provably-fresh entries
on untouched shards survive to keep serving hits across epochs.
"""

from __future__ import annotations

from typing import Any, Hashable

__all__ = ["ResultCache"]

#: Reserved shard labels for entries that span shards.
BOUNDARY_KEY = "boundary"
RING_KEY = "ring"


class ResultCache:
    """Bounded insertion-ordered cache of join answers.

    Keys are ``(shard, step, query)`` tuples (see the module
    docstring); values are opaque to the cache.  Eviction is FIFO on
    insertion order once ``max_entries`` is reached — answer sizes are
    dominated by the pair arrays, which the service bounds elsewhere,
    so a simple entry count is an adequate memory bound.
    """

    def __init__(self, max_entries: int = 512) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        self.max_entries = int(max_entries)
        self._entries: dict[tuple[Hashable, ...], Any] = {}
        self.hits = 0
        self.misses = 0
        self.invalidated = 0
        self.evicted = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: tuple[Hashable, ...]) -> Any | None:
        """Return the cached answer for ``key`` or ``None`` on a miss."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def put(self, key: tuple[Hashable, ...], value: Any) -> None:
        """Store ``value`` under ``key``, evicting oldest entries if full."""
        if key not in self._entries and len(self._entries) >= self.max_entries:
            oldest = next(iter(self._entries))
            del self._entries[oldest]
            self.evicted += 1
        self._entries[key] = value

    def invalidate_shard(self, shard: Hashable) -> int:
        """Evict every entry whose shard component is ``shard``.

        Returns the number of entries removed.  Called with the shard
        ids a motion delta touched (``moved_groups``), plus
        ``"boundary"`` / ``"ring"`` for the cross-shard assemblies.
        """
        stale = [key for key in self._entries if key[0] == shard]
        for key in stale:
            del self._entries[key]
        self.invalidated += len(stale)
        return len(stale)

    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""
        self.invalidated += len(self._entries)
        self._entries.clear()

    def metrics(self) -> dict[str, Any]:
        """Counter snapshot for the obs metrics registry."""
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "invalidated": self.invalidated,
            "evicted": self.evicted,
        }

    def __repr__(self) -> str:
        return (
            f"ResultCache(entries={len(self._entries)}, hits={self.hits}, "
            f"misses={self.misses})"
        )
