"""Whole-program rules: the RPL7xx/8xx/9xx families.

These run on the :class:`~tools.repro_lint.project.ProjectIndex` and
:class:`~tools.repro_lint.callgraph.CallGraph` instead of a single
file's AST, so a violation may *span modules*: the flagged line is in
the function where the contract binds (the ``async def``, the
deterministic-core caller, the ``submit`` site) while the offending
sink lives any number of calls away in any other module.  Each
diagnostic prints the resolved call chain so the reader does not have
to rediscover the path.

========  ============================================================
RPL701    blocking call reachable from an ``async def`` (no to_thread)
RPL702    coroutine called but never awaited
RPL801    wall-clock read reachable from the deterministic core
RPL802    entropy draw reachable from the deterministic core
RPL901    executor-submitted callable must resolve to a module-level def
RPL902    submitted callable closes over process-local module state
========  ============================================================
"""

from __future__ import annotations

from collections.abc import Iterator

from tools.repro_lint import config
from tools.repro_lint.callgraph import CallGraph, FuncNode
from tools.repro_lint.core import (
    Diagnostic,
    ProjectRule,
    register_project,
)
from tools.repro_lint.project import FunctionInfo, ModuleSummary, ProjectIndex


def _emit(
    summary: ModuleSummary, line: int, col: int, code: str, message: str
) -> Diagnostic | None:
    if summary.suppressed(line, code):
        return None
    return Diagnostic(summary.path, line, col + 1, code, message)


def _is_timing_whitelisted(summary: ModuleSummary, qualname: str) -> bool:
    return any(
        pattern in summary.resolved
        and (qualname == scope or qualname.startswith(scope + "."))
        for (pattern, scope), _why in config.TIMING_WHITELIST.items()
    )


# ----------------------------------------------------------------------
# RPL7xx — async-safety
# ----------------------------------------------------------------------
@register_project
class AsyncBlockingReachRule(ProjectRule):
    code = "RPL701"
    title = "blocking call reachable from async def"
    rationale = (
        "The service front-end multiplexes every client on one event "
        "loop; a blocking call (time.sleep, sync file I/O, "
        "Future.result, subprocess) anywhere in the synchronous call "
        "tree of an async def stalls all of them at once.  Blocking "
        "work crosses the loop boundary only through asyncio.to_thread "
        "(or run_in_executor).  The reach is computed on the project "
        "call graph, so a sink hidden in a helper module is found even "
        "though no single file shows both the async def and the sink."
    )

    def check_project(
        self, index: ProjectIndex, graph: CallGraph
    ) -> Iterator[Diagnostic]:
        closure = graph.sink_closure(
            "blocking", include=lambda node: True, traverse_offloaded=False
        )
        for summary, info in graph.iter_functions(
            lambda s: s.in_scope(config.LIBRARY_SCOPE)
        ):
            if not info.is_async:
                continue
            node = (summary.module, info.qualname)
            # Direct sinks in the async body itself.
            for label, line, col in info.sinks.get("blocking", ()):
                diag = _emit(
                    summary,
                    line,
                    col,
                    self.code,
                    f"async def {info.qualname} performs blocking call "
                    f"{label} directly; offload with asyncio.to_thread",
                )
                if diag is not None:
                    yield diag
            # Calls into the tainted synchronous closure.
            reported: set[int] = set()
            for target, site in graph.edges.get(node, ()):
                if site.offloaded or target not in closure:
                    continue
                target_info = graph.functions.get(target)
                if target_info is not None and target_info.is_async:
                    continue  # flagged at the deeper async frame itself
                if site.lineno in reported:
                    continue
                reported.add(site.lineno)
                diag = _emit(
                    summary,
                    site.lineno,
                    site.col,
                    self.code,
                    f"async def {info.qualname} reaches blocking call via "
                    f"{graph.chain(target, closure)}; offload the call "
                    "with asyncio.to_thread",
                )
                if diag is not None:
                    yield diag


@register_project
class UnawaitedCoroutineRule(ProjectRule):
    code = "RPL702"
    title = "coroutine called but never awaited"
    rationale = (
        "Calling an async def returns a coroutine object; dropping it "
        "on the floor means the body never runs (beyond a "
        "RuntimeWarning at GC time), which turns a service-side update "
        "or cleanup into a silent no-op.  Whether a callee is async is "
        "a fact about its *defining* module, so the per-file pass "
        "cannot see it through an import — the project index can."
    )

    def check_project(
        self, index: ProjectIndex, graph: CallGraph
    ) -> Iterator[Diagnostic]:
        for summary, info in graph.iter_functions(
            lambda s: s.in_scope(config.LIBRARY_SCOPE)
        ):
            node = (summary.module, info.qualname)
            for target, site in graph.edges.get(node, ()):
                if not site.bare_stmt or site.awaited or site.offloaded:
                    continue
                target_info = graph.functions.get(target)
                if target_info is None or not target_info.is_async:
                    continue
                diag = _emit(
                    summary,
                    site.lineno,
                    site.col,
                    self.code,
                    f"coroutine {graph.describe(target)} is called but "
                    "never awaited; await it or schedule it with "
                    "asyncio.create_task",
                )
                if diag is not None:
                    yield diag


# ----------------------------------------------------------------------
# RPL8xx — interprocedural determinism
# ----------------------------------------------------------------------
@register_project
class DeterministicClockReachRule(ProjectRule):
    code = "RPL801"
    title = "wall-clock read reachable from the deterministic core"
    rationale = (
        "RPL003 bans clock reads written *inside* core/joins/geometry "
        "files; this rule closes the loophole one call away: a helper "
        "in any other module that reads a clock and is reachable from "
        "the deterministic core makes behaviour machine-speed-"
        "dependent just the same.  The engine/obs layers are exempt "
        "carriers — timing instrumentation is their declared job and "
        "its output is the measured wall time, not a decision input."
    )

    def check_project(
        self, index: ProjectIndex, graph: CallGraph
    ) -> Iterator[Diagnostic]:
        def carries(node: FuncNode) -> bool:
            summary = index.modules.get(node[0])
            if summary is None:
                return False
            return not summary.in_scope(
                config.DETERMINISTIC_SCOPE
            ) and not summary.in_scope(config.TIMING_LAYER_SCOPE)

        closure = graph.sink_closure("clock", include=carries)
        yield from _reach_findings(
            graph,
            closure,
            self.code,
            "reads a wall clock via",
            "move the timing out of the deterministic call path or "
            "whitelist the site in TIMING_WHITELIST",
            respect_timing_whitelist=True,
        )


@register_project
class DeterministicEntropyReachRule(ProjectRule):
    code = "RPL802"
    title = "entropy draw reachable from the deterministic core"
    rationale = (
        "RPL001/002 catch global-RNG syntax in the file where it is "
        "written; they cannot see a helper in another module that "
        "calls random.random(), uuid.uuid4() or os.urandom() on "
        "behalf of the deterministic core.  Any such reachable draw "
        "breaks the bit-reproducibility contract exactly like an "
        "inline one: randomness must arrive as a seeded "
        "numpy.random.Generator parameter."
    )

    def check_project(
        self, index: ProjectIndex, graph: CallGraph
    ) -> Iterator[Diagnostic]:
        def carries(node: FuncNode) -> bool:
            summary = index.modules.get(node[0])
            return summary is not None and not summary.in_scope(
                config.DETERMINISTIC_SCOPE
            )

        closure = graph.sink_closure("entropy", include=carries)
        yield from _reach_findings(
            graph,
            closure,
            self.code,
            "draws entropy via",
            "thread a seeded numpy.random.Generator through the call "
            "instead",
        )
        # Direct draws the per-file rules do not cover (uuid/secrets/
        # os.urandom; np.random and stdlib-random syntax are RPL001/002).
        for summary, info in graph.iter_functions(
            lambda s: s.in_scope(config.DETERMINISTIC_SCOPE)
        ):
            for label, line, col in info.sinks.get("entropy", ()):
                if label not in config.ENTROPY_CALLS:
                    continue
                diag = _emit(
                    summary,
                    line,
                    col,
                    self.code,
                    f"{info.qualname} draws entropy from {label}() inside "
                    "the deterministic core; thread a seeded Generator "
                    "through instead",
                )
                if diag is not None:
                    yield diag


def _reach_findings(
    graph: CallGraph,
    closure: dict[FuncNode, tuple[FuncNode | None, str]],
    code: str,
    verb: str,
    remedy: str,
    respect_timing_whitelist: bool = False,
) -> Iterator[Diagnostic]:
    """Flag deterministic-core call sites whose target is in ``closure``."""
    for summary, info in graph.iter_functions(
        lambda s: s.in_scope(config.DETERMINISTIC_SCOPE)
    ):
        if respect_timing_whitelist and _is_timing_whitelisted(
            summary, info.qualname
        ):
            continue
        node = (summary.module, info.qualname)
        reported: set[int] = set()
        for target, site in graph.edges.get(node, ()):
            if target not in closure or site.lineno in reported:
                continue
            reported.add(site.lineno)
            diag = _emit(
                summary,
                site.lineno,
                site.col,
                code,
                f"{info.qualname} {verb} {graph.chain(target, closure)}; "
                f"{remedy}",
            )
            if diag is not None:
                yield diag


# ----------------------------------------------------------------------
# RPL9xx — executor-boundary transitivity
# ----------------------------------------------------------------------
def _chase_submitted(
    index: ProjectIndex, graph: CallGraph, summary: ModuleSummary, target: str
) -> tuple[str, FunctionInfo | None, str] | None:
    """Resolve a submitted name to its defining module.

    Returns ``(module, function info | None, global kind)``; the
    function info is ``None`` when the name lands on a non-function
    module global (e.g. a lambda binding).  ``None`` overall when the
    name cannot be proven to cross into the index.
    """
    parts = target.split(".")
    root = parts[0]
    dotted: str | None = None
    if root in summary.imports:
        tail = ".".join(parts[1:])
        dotted = summary.imports[root] + (("." + tail) if tail else "")
    elif len(parts) > 1:
        dotted = target
    if dotted is None:
        return None
    resolved = graph.resolve_symbol(dotted)
    if resolved is not None and resolved[0] == "func":
        home = index.modules[resolved[1]]
        return (resolved[1], home.functions[resolved[2]], "function")
    # Chase to a module-level *global* (a lambda or other binding).
    chased = dotted
    for _hop in range(8):
        segments = chased.split(".")
        for cut in range(len(segments) - 1, 0, -1):
            module = ".".join(segments[:cut])
            home = index.modules.get(module)
            if home is None:
                continue
            name = ".".join(segments[cut:])
            if name in home.globals:
                kind = home.globals[name]
                if kind in ("function", "async_function"):
                    info = home.functions.get(name)
                    return (module, info, "function")
                if name in home.imports:
                    chased = home.imports[name]
                    break
                return (module, None, kind)
            if name.split(".")[0] in home.imports:
                head = name.split(".")[0]
                rest = ".".join(name.split(".")[1:])
                chased = home.imports[head] + (("." + rest) if rest else "")
                break
            return None
        else:
            return None
        continue
    return None


@register_project
class SubmittedCallableResolutionRule(ProjectRule):
    code = "RPL901"
    title = "submitted callable does not resolve to a module-level def"
    rationale = (
        "RPL101 checks the submitting file: the name handed to "
        "pool.submit must be module-level *there*.  But an imported "
        "name can still be a lambda, a nested def smuggled out of a "
        "factory, or an async def in its home module — all of which "
        "pickle by qualified name and fail (or never run) on the "
        "worker.  The project index resolves the import chain to the "
        "defining module and demands an honest module-level def."
    )

    def check_project(
        self, index: ProjectIndex, graph: CallGraph
    ) -> Iterator[Diagnostic]:
        for summary, info in graph.iter_functions(
            lambda s: s.in_scope(config.LIBRARY_SCOPE)
        ):
            for submit in info.submits:
                if submit.kind == "lambda":
                    # In executors.py this is RPL101's finding.
                    if summary.in_scope(config.EXECUTORS_SCOPE):
                        continue
                    diag = _emit(
                        summary,
                        submit.lineno,
                        submit.col,
                        self.code,
                        "lambda submitted to an executor pool; submit a "
                        "module-level function",
                    )
                    if diag is not None:
                        yield diag
                    continue
                if submit.kind != "name" or submit.target.startswith(
                    ("self.", "cls.")
                ):
                    continue
                chased = _chase_submitted(index, graph, summary, submit.target)
                if chased is None:
                    continue
                home, func, kind = chased
                if home == summary.module:
                    continue  # same-file discipline is RPL101's beat
                if func is None:
                    description = config.PROCESS_LOCAL_GLOBAL_KINDS.get(kind)
                    if kind == "lambda":
                        message = (
                            f"submitted callable {submit.target!r} resolves to "
                            f"a lambda binding in {home}; {description} — "
                            "define a module-level function instead"
                        )
                    else:
                        continue
                elif func.kind != "function":
                    message = (
                        f"submitted callable {submit.target!r} resolves to "
                        f"{home}.{func.qualname}, a {func.kind} — workers "
                        "can only import a module-level function"
                    )
                elif func.is_async:
                    message = (
                        f"submitted callable {submit.target!r} resolves to "
                        f"async def {home}.{func.qualname}; a pool worker "
                        "returns the coroutine unawaited — submit a "
                        "synchronous function"
                    )
                else:
                    continue
                diag = _emit(
                    summary, submit.lineno, submit.col, self.code, message
                )
                if diag is not None:
                    yield diag


@register_project
class SubmittedCallableClosureRule(ProjectRule):
    code = "RPL902"
    title = "submitted callable closes over process-local module state"
    rationale = (
        "A function pickles by reference: the worker re-imports its "
        "module and rebinds every global from scratch.  If the "
        "submitted callable reads a module-level lock, open file, "
        "pool or shared-memory handle, each worker silently gets its "
        "own copy — mutual exclusion evaporates and handles double-"
        "close — while the submit itself looks perfectly innocent.  "
        "The defining module's globals are another file's facts; only "
        "the project index can line them up with the submit site."
    )

    def check_project(
        self, index: ProjectIndex, graph: CallGraph
    ) -> Iterator[Diagnostic]:
        for summary, info in graph.iter_functions(
            lambda s: s.in_scope(config.LIBRARY_SCOPE)
        ):
            for submit in info.submits:
                if submit.kind != "name" or submit.target.startswith(
                    ("self.", "cls.")
                ):
                    continue
                resolved = self._resolve_target(index, graph, summary, submit.target)
                if resolved is None:
                    continue
                home_module, func = resolved
                home = index.modules[home_module]
                for name in func.reads:
                    kind = home.globals.get(name)
                    description = (
                        config.PROCESS_LOCAL_GLOBAL_KINDS.get(kind)
                        if kind is not None
                        else None
                    )
                    if description is None:
                        continue
                    diag = _emit(
                        summary,
                        submit.lineno,
                        submit.col,
                        self.code,
                        f"submitted callable {submit.target!r} closes over "
                        f"{home_module}.{name} — {description}; pass the "
                        "state as a task argument or re-create it inside "
                        "the worker",
                    )
                    if diag is not None:
                        yield diag

    @staticmethod
    def _resolve_target(
        index: ProjectIndex,
        graph: CallGraph,
        summary: ModuleSummary,
        target: str,
    ) -> tuple[str, FunctionInfo] | None:
        # Same-module function first (RPL902 patrols both directions).
        if target in summary.functions:
            return (summary.module, summary.functions[target])
        chased = _chase_submitted(index, graph, summary, target)
        if chased is None or chased[1] is None:
            return None
        return (chased[0], chased[1])
