"""Asyncio front-end for the sharded join service.

:class:`JoinService` turns a :class:`~repro.service.sharding.ShardRing`
into a long-running server: clients submit object-update streams and
join/distance/neighbor queries concurrently; the service serialises
them through a single worker task so the ring (which is synchronous
and single-threaded by contract) always sees a consistent order.

Three front-end behaviours on top of the ring:

* **Admission control** — at most ``max_pending`` requests may be in
  flight; excess submissions fail fast with
  :class:`ServiceOverloadedError` instead of growing an unbounded
  backlog.
* **Request batching** — the worker drains the queue in batches (up
  to ``max_batch``); duplicate queries within a batch are computed
  once and fanned out, with the duplicates marked ``cached``.  An
  update (or shard kill) inside a batch is a barrier: answers
  computed before it are not reused after it.
* **Degradation passthrough** — a dead shard degrades the answer
  (``degraded``/``stale`` flags) instead of failing the request; the
  ring's re-homing and stale-serving ladder does the work.

Ring computations run via :func:`asyncio.to_thread` so the event loop
keeps accepting submissions while a join executes.
"""

from __future__ import annotations

import asyncio
import dataclasses
import time
from collections.abc import Hashable
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.datasets.dataset import SpatialDataset
from repro.engine.executors import Executor
from repro.geometry import pairs_to_adjacency
from repro.service.sharding import AlgorithmFactory, RingAnswer, ShardRing

__all__ = ["JoinService", "ServiceAnswer", "ServiceOverloadedError"]


class ServiceOverloadedError(RuntimeError):
    """Raised when a submission exceeds the admission-control budget."""


@dataclass(frozen=True)
class ServiceAnswer:
    """One answered query.

    ``pairs`` is the canonical ``(i, j)`` arrays for join/distance
    queries; ``adjacency`` the CSR ``(offsets, neighbors)`` form for
    neighbor queries.  ``degraded`` and ``stale`` mirror the ring's
    flags; ``cached`` marks an answer served without recomputation
    (batch dedup).
    """

    kind: str
    epoch: int
    n_results: int
    pairs: tuple[np.ndarray, np.ndarray] | None
    adjacency: tuple[np.ndarray, np.ndarray] | None
    degraded: bool
    stale: bool
    cached: bool


@dataclass
class _Request:
    kind: str
    params: tuple[Hashable, ...]
    payload: Any
    future: asyncio.Future[Any]


#: Queue sentinel that shuts the worker down.
_STOP = object()


class JoinService:
    """Long-running sharded join service over one dataset.

    Usage::

        service = JoinService(dataset, n_shards=4, executor="process:2")
        await service.start()
        await service.update(new_centers)
        answer = await service.join()
        await service.stop()

    Answers are bit-identical to direct library calls on an equally
    updated dataset — the property suite enforces it across executors,
    motion models and injected shard kills.
    """

    def __init__(
        self,
        dataset: SpatialDataset,
        n_shards: int = 4,
        executor: Executor | str | None = None,
        algorithm_factory: AlgorithmFactory | None = None,
        max_pending: int = 256,
        max_batch: int = 32,
        cache_entries: int = 512,
    ) -> None:
        if max_pending < 1:
            raise ValueError(f"max_pending must be positive, got {max_pending}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be positive, got {max_batch}")
        self.ring = ShardRing(
            dataset,
            n_shards=n_shards,
            executor=executor,
            algorithm_factory=algorithm_factory,
            cache_entries=cache_entries,
        )
        self.max_pending = int(max_pending)
        self.max_batch = int(max_batch)
        self._queue: asyncio.Queue[Any] | None = None
        self._worker: asyncio.Task[None] | None = None
        self._pending = 0
        self.accepted = 0
        self.rejected = 0
        self.batched = 0
        self._latency_sum = 0.0
        self._latency_max = 0.0
        self._answered = 0
        self.ring.metrics.register("frontend", self._frontend_metrics)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def running(self) -> bool:
        """Whether the worker task is accepting requests."""
        return self._worker is not None and not self._worker.done()

    async def start(self) -> None:
        """Start the worker task; idempotent."""
        if self.running:
            return
        self._queue = asyncio.Queue()
        self._worker = asyncio.create_task(self._run(), name="join-service")

    async def stop(self) -> None:
        """Drain the worker and release the ring's resources."""
        if self._worker is not None and self._queue is not None:
            self._queue.put_nowait(_STOP)
            await self._worker
            while not self._queue.empty():
                leftover = self._queue.get_nowait()
                if isinstance(leftover, _Request) and not leftover.future.done():
                    leftover.future.set_exception(
                        RuntimeError("join service stopped")
                    )
        self._worker = None
        self._queue = None
        # ring.close() joins the executor pool (shutdown(wait=True)); run
        # it off-loop so a slow worker cannot stall other service clients.
        await asyncio.to_thread(self.ring.close)

    async def __aenter__(self) -> JoinService:
        await self.start()
        return self

    async def __aexit__(self, *exc: object) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # Client API
    # ------------------------------------------------------------------
    async def update(self, new_centers: np.ndarray) -> int:
        """Apply one motion step to the ring; returns the new epoch."""
        epoch = await self._submit("update", (), np.asarray(new_centers))
        assert isinstance(epoch, int)
        return epoch

    async def join(self) -> ServiceAnswer:
        """Overlap self-join at the current epoch."""
        answer = await self._submit("join", (), None)
        assert isinstance(answer, ServiceAnswer)
        return answer

    async def distance(self, distance: float) -> ServiceAnswer:
        """Distance join at the current epoch."""
        answer = await self._submit("distance", (float(distance),), None)
        assert isinstance(answer, ServiceAnswer)
        return answer

    async def neighbors(self) -> ServiceAnswer:
        """Per-object CSR neighbor lists at the current epoch."""
        answer = await self._submit("neighbors", (), None)
        assert isinstance(answer, ServiceAnswer)
        return answer

    async def kill_shard(self, shard_id: int, permanent: bool = False) -> None:
        """Inject a shard failure (ordered like any other request)."""
        await self._submit("kill", (int(shard_id), bool(permanent)), None)

    async def _submit(
        self, kind: str, params: tuple[Hashable, ...], payload: Any
    ) -> Any:
        if not self.running or self._queue is None:
            raise RuntimeError("join service is not running (call start())")
        if self._pending >= self.max_pending:
            self.rejected += 1
            raise ServiceOverloadedError(
                f"{self._pending} requests already pending "
                f"(max_pending={self.max_pending})"
            )
        self._pending += 1
        self.accepted += 1
        loop = asyncio.get_running_loop()
        request = _Request(kind, params, payload, loop.create_future())
        started = time.perf_counter()
        try:
            self._queue.put_nowait(request)
            return await request.future
        finally:
            self._pending -= 1
            elapsed = time.perf_counter() - started
            self._latency_sum += elapsed
            self._latency_max = max(self._latency_max, elapsed)
            self._answered += 1

    # ------------------------------------------------------------------
    # Worker
    # ------------------------------------------------------------------
    async def _run(self) -> None:
        assert self._queue is not None
        stopping = False
        while not stopping:
            batch: list[Any] = [await self._queue.get()]
            while len(batch) < self.max_batch:
                try:
                    batch.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            # Duplicate queries in one batch are computed once; any
            # state-changing request is a barrier for the dedup map.
            answers: dict[tuple[Hashable, ...], ServiceAnswer] = {}
            for item in batch:
                if item is _STOP:
                    stopping = True
                    continue
                request = item
                assert isinstance(request, _Request)
                if request.future.done():
                    continue  # client gave up while queued
                if request.kind in ("update", "kill"):
                    answers.clear()
                dedup_key = (request.kind, *request.params)
                repeat = answers.get(dedup_key)
                if repeat is not None:
                    self.batched += 1
                    request.future.set_result(
                        dataclasses.replace(repeat, cached=True)
                    )
                    continue
                try:
                    outcome = await asyncio.to_thread(
                        self._compute, request.kind, request.params,
                        request.payload,
                    )
                except Exception as exc:
                    if not request.future.done():
                        request.future.set_exception(exc)
                    continue
                if isinstance(outcome, ServiceAnswer):
                    answers[dedup_key] = outcome
                if not request.future.done():
                    request.future.set_result(outcome)

    def _compute(
        self, kind: str, params: tuple[Hashable, ...], payload: Any
    ) -> Any:
        """Synchronous request execution against the ring (worker thread)."""
        if kind == "update":
            return self.ring.apply_update(payload)
        if kind == "kill":
            shard_id, permanent = params
            self.ring.kill_shard(int(shard_id), permanent=bool(permanent))
            return None
        if kind == "join":
            return self._wrap(self.ring.join_pairs(), adjacency=False)
        if kind == "distance":
            (distance,) = params
            return self._wrap(
                self.ring.distance_pairs(float(distance)), adjacency=False
            )
        if kind == "neighbors":
            return self._wrap(self.ring.join_pairs(), adjacency=True)
        raise ValueError(f"unknown request kind {kind!r}")

    def _wrap(self, ring_answer: RingAnswer, adjacency: bool) -> ServiceAnswer:
        csr = None
        if adjacency:
            csr = pairs_to_adjacency(*ring_answer.pairs, len(self.ring.dataset))
        return ServiceAnswer(
            kind="neighbors" if adjacency else ring_answer.kind,
            epoch=ring_answer.epoch,
            n_results=ring_answer.n_results,
            pairs=None if adjacency else ring_answer.pairs,
            adjacency=csr,
            degraded=ring_answer.degraded,
            stale=ring_answer.stale,
            cached=False,
        )

    def _frontend_metrics(self) -> dict[str, Any]:
        mean = self._latency_sum / self._answered if self._answered else 0.0
        return {
            "accepted": self.accepted,
            "rejected": self.rejected,
            "batched": self.batched,
            "pending": self._pending,
            "answered": self._answered,
            "latency_mean_seconds": mean,
            "latency_max_seconds": self._latency_max,
        }

    def __repr__(self) -> str:
        state = "running" if self.running else "stopped"
        return (
            f"JoinService({state}, epoch={self.ring.epoch}, "
            f"pending={self._pending}/{self.max_pending})"
        )
