"""R-Tree substrate: STR bulk-loading and the synchronous-traversal join.

The paper's strongest tree-based competitor is the synchronous R-Tree
traversal join [5] over a bulk-loaded tree, identified by Sowell et
al. [34] as the fastest in-memory approach when the tree is rebuilt
every step.  This module implements:

* **STR bulk-loading** (Leutenegger et al. [22]): the classic
  sort-tile-recursive packing — sort by x into slabs, by y into runs,
  by z into leaves — yielding a packed tree with contiguous children.
* **Synchronous traversal self-join**: the tree is traversed against
  itself level by level; a frontier of node pairs ``(i, j)``, ``i <= j``,
  is expanded to child pairs filtered by MBR overlap, and object pairs
  are evaluated exactly at the leaves.

Overlap-test accounting: both directory-node MBR tests and leaf-level
object MBR tests are charged — the directory tests are the work the
R-Tree trades for pruning, and the object tests dominate at high
selectivity (the regime of the paper's evaluation).

:class:`CRTreeJoin` (see ``crtree.py``) subclasses the traversal and
swaps the directory boxes for quantized ones.
"""

from __future__ import annotations

import math

import numpy as np

from repro.geometry import overlap_elementwise, window_pairs
from repro.joins.base import (
    MBR_BYTES,
    POINTER_BYTES,
    SpatialJoinAlgorithm,
)

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.datasets import SpatialDataset
    from repro.engine import Executor
    from repro.geometry import PairAccumulator

__all__ = ["STRTree", "SynchronousRTreeJoin"]


class STRTree:
    """STR bulk-loaded, level-wise (structure-of-arrays) R-Tree.

    Levels are stored bottom-up: ``levels[0]`` are the leaves and
    ``levels[-1]`` the top directory level (at most ``fanout`` nodes).
    Packing is contiguous, so node ``i`` of level ``l`` owns nodes
    ``[i * fanout, (i + 1) * fanout)`` of level ``l - 1``, and leaf ``k``
    owns objects ``leaf_order[k * leaf_capacity : (k + 1) * leaf_capacity]``.
    """

    def __init__(self, lo: np.ndarray, hi: np.ndarray, fanout: int) -> None:
        if fanout < 2:
            raise ValueError(f"fanout must be at least 2, got {fanout}")
        self.fanout = int(fanout)
        n = lo.shape[0]
        self.n_objects = n
        self.leaf_order = _str_order(lo, hi, self.fanout)

        # Leaf level: MBRs over each leaf's object slice.
        n_leaves = max(1, math.ceil(n / self.fanout))
        leaf_lo = np.empty((n_leaves, 3))
        leaf_hi = np.empty((n_leaves, 3))
        ordered_lo = lo[self.leaf_order]
        ordered_hi = hi[self.leaf_order]
        starts = np.arange(n_leaves, dtype=np.int64) * self.fanout
        np.minimum.reduceat(ordered_lo, starts, axis=0, out=leaf_lo)
        np.maximum.reduceat(ordered_hi, starts, axis=0, out=leaf_hi)

        self.level_lo = [leaf_lo]
        self.level_hi = [leaf_hi]
        while self.level_lo[-1].shape[0] > self.fanout:
            below_lo = self.level_lo[-1]
            below_hi = self.level_hi[-1]
            count = math.ceil(below_lo.shape[0] / self.fanout)
            starts = np.arange(count, dtype=np.int64) * self.fanout
            self.level_lo.append(np.minimum.reduceat(below_lo, starts, axis=0))
            self.level_hi.append(np.maximum.reduceat(below_hi, starts, axis=0))

    @property
    def n_levels(self) -> int:
        """Number of directory levels, leaves included."""
        return len(self.level_lo)

    def n_nodes(self) -> int:
        """Total node count across all levels."""
        return sum(level.shape[0] for level in self.level_lo)

    def children_range(self, level: int, node: int) -> tuple[int, int]:
        """Child index range of ``node`` at ``level`` (level > 0)."""
        below = self.level_lo[level - 1].shape[0]
        start = node * self.fanout
        return start, min(start + self.fanout, below)

    def leaf_object_range(self, leaf: int) -> tuple[int, int]:
        """Object slice (into ``leaf_order``) owned by ``leaf``."""
        start = leaf * self.fanout
        return start, min(start + self.fanout, self.n_objects)


def _str_order(lo: np.ndarray, hi: np.ndarray, leaf_capacity: int) -> np.ndarray:
    """Sort-tile-recursive object ordering for leaf packing.

    Returns a permutation placing spatially adjacent objects into the
    same (and neighbouring) leaves of capacity ``leaf_capacity``.
    """
    n = lo.shape[0]
    centers = (lo + hi) / 2.0
    n_leaves = math.ceil(n / leaf_capacity)
    s = max(1, math.ceil(n_leaves ** (1.0 / 3.0)))

    order = np.argsort(centers[:, 0], kind="stable")
    slab = leaf_capacity * s * s
    run = leaf_capacity * s
    for slab_start in range(0, n, slab):
        slab_idx = order[slab_start : slab_start + slab]
        slab_idx = slab_idx[np.argsort(centers[slab_idx, 1], kind="stable")]
        for run_start in range(0, slab_idx.size, run):
            run_idx = slab_idx[run_start : run_start + run]
            slab_idx[run_start : run_start + run] = run_idx[
                np.argsort(centers[run_idx, 2], kind="stable")
            ]
        order[slab_start : slab_start + slab] = slab_idx
    return order.astype(np.int64)


def _expand_pairs(
    pair_i: np.ndarray, pair_j: np.ndarray, fanout: int, below_count: int
) -> tuple[np.ndarray, np.ndarray]:
    """Expand node pairs to all child pairs ``(ci <= cj)`` of the level below.

    Distinct parents expand to the full cross product of their child
    ranges (already ordered because packing is contiguous); identical
    parents expand to the triangle including the diagonal.
    """
    starts_i = pair_i * fanout
    stops_i = np.minimum(starts_i + fanout, below_count)
    starts_j = pair_j * fanout
    stops_j = np.minimum(starts_j + fanout, below_count)

    eq = pair_i == pair_j
    out_i = []
    out_j = []
    if (~eq).any():
        ci_n = (stops_i - starts_i)[~eq]
        cj_n = (stops_j - starts_j)[~eq]
        counts = ci_n * cj_n
        total = int(counts.sum())
        rep = np.repeat(np.arange(counts.size, dtype=np.int64), counts)
        ends = np.cumsum(counts)
        within = np.arange(total, dtype=np.int64) - np.repeat(ends - counts, counts)
        a_off = within // cj_n[rep]
        b_off = within - a_off * cj_n[rep]
        out_i.append(starts_i[~eq][rep] + a_off)
        out_j.append(starts_j[~eq][rep] + b_off)
    if eq.any():
        e_starts = starts_i[eq]
        e_stops = stops_i[eq]
        sizes = e_stops - e_starts
        _rows, positions = window_pairs(e_starts, e_stops)
        left_row, right = window_pairs(positions, np.repeat(e_stops, sizes))
        out_i.append(positions[left_row])
        out_j.append(right)
    if not out_i:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy()
    return np.concatenate(out_i), np.concatenate(out_j)


class SynchronousRTreeJoin(SpatialJoinAlgorithm):
    """Self-join by synchronous traversal of an STR bulk-loaded R-Tree.

    The tree is rebuilt from scratch at every time step (the
    throw-away-index strategy the paper finds cheaper than updating).

    Parameters
    ----------
    fanout:
        Node capacity (children per directory node, objects per leaf).
    """

    name = "rtree-sync"
    #: Bytes per directory entry (exact MBR + child pointer).
    entry_bytes = MBR_BYTES + POINTER_BYTES

    def __init__(self, count_only: bool = False, fanout: int = 16, executor: Executor | None = None) -> None:
        super().__init__(count_only=count_only, executor=executor)
        self.fanout = int(fanout)
        self._tree = None
        self._boxes = None

    def _build(self, dataset: SpatialDataset) -> None:
        lo, hi = dataset.boxes()
        self._boxes = (lo, hi)
        self._tree = STRTree(lo, hi, self.fanout)

    def _directory_boxes(self, level: int) -> tuple[np.ndarray, np.ndarray]:
        """Boxes used for directory-level overlap tests (exact here;
        the CR-Tree overrides with quantized, conservative boxes)."""
        return self._tree.level_lo[level], self._tree.level_hi[level]

    def _join(self, dataset: SpatialDataset, accumulator: PairAccumulator) -> None:
        tree = self._tree
        lo, hi = self._boxes
        tests = 0

        # Initial frontier: all (i <= j) pairs of the top level.
        top = tree.n_levels - 1
        count_top = tree.level_lo[top].shape[0]
        pair_i, pair_j = np.triu_indices(count_top)
        pair_i = pair_i.astype(np.int64)
        pair_j = pair_j.astype(np.int64)

        for level in range(top, -1, -1):
            box_lo, box_hi = self._directory_boxes(level)
            distinct = pair_i != pair_j
            tests += int(distinct.sum())
            keep = overlap_elementwise(
                box_lo[pair_i], box_hi[pair_i], box_lo[pair_j], box_hi[pair_j]
            )
            keep |= ~distinct  # a node always joins itself
            pair_i = pair_i[keep]
            pair_j = pair_j[keep]
            if pair_i.size == 0:
                return tests
            if level > 0:
                pair_i, pair_j = _expand_pairs(
                    pair_i, pair_j, tree.fanout, tree.level_lo[level - 1].shape[0]
                )

        # Leaf level reached: evaluate object pairs exactly.
        order = tree.leaf_order
        starts_i = pair_i * tree.fanout
        stops_i = np.minimum(starts_i + tree.fanout, tree.n_objects)
        eq = pair_i == pair_j
        obj_left = []
        obj_right = []
        if (~eq).any():
            starts_j = pair_j[~eq] * tree.fanout
            stops_j = np.minimum(starts_j + tree.fanout, tree.n_objects)
            ci_n = (stops_i - starts_i)[~eq]
            cj_n = stops_j - starts_j
            counts = ci_n * cj_n
            total = int(counts.sum())
            rep = np.repeat(np.arange(counts.size, dtype=np.int64), counts)
            ends = np.cumsum(counts)
            within = np.arange(total, dtype=np.int64) - np.repeat(ends - counts, counts)
            a_off = within // cj_n[rep]
            b_off = within - a_off * cj_n[rep]
            obj_left.append(order[starts_i[~eq][rep] + a_off])
            obj_right.append(order[starts_j[rep] + b_off])
        if eq.any():
            e_starts = starts_i[eq]
            e_stops = stops_i[eq]
            sizes = e_stops - e_starts
            _rows, positions = window_pairs(e_starts, e_stops)
            left_row, right = window_pairs(positions + 1, np.repeat(e_stops, sizes))
            obj_left.append(order[positions[left_row]])
            obj_right.append(order[right])
        if not obj_left:
            return tests
        left = np.concatenate(obj_left)
        right = np.concatenate(obj_right)
        tests += int(left.size)
        overlap = overlap_elementwise(lo[left], hi[left], lo[right], hi[right])
        accumulator.extend(left[overlap], right[overlap])
        return tests

    def memory_footprint(self) -> int:
        if self._tree is None:
            return 0
        # Every node contributes one entry in its parent (or the root
        # list); leaves additionally hold one pointer per object.
        return (
            self._tree.n_nodes() * self.entry_bytes
            + self._tree.n_objects * POINTER_BYTES
        )
