"""Batched group-join primitives shared by the baseline join algorithms.

Every indexed join in the paper's evaluation ultimately compares *groups*
of objects — grid cells against neighbouring cells, tree nodes against
tree nodes, assigned sets against subtrees.  Python-level loops with one
numpy call per group pair would drown in call overhead at benchmark
scale, so this module provides two vectorised primitives that evaluate
many group pairs per numpy call while preserving each algorithm's exact
*overlap-test accounting*:

``cross_join_groups``
    All object pairs across many (group A, group B) pairs.

``self_join_groups``
    All unordered object pairs within many groups.

Both support two cost accountings, selected per algorithm to match the
sequential formulation the paper implements:

* ``count="full"`` — nested-loop accounting: every candidate pair is
  charged one overlap test (EGO's per-cell nested loops, octree
  node-vs-ancestor comparisons, R-Tree leaf processing);
* ``count="x-sweep"`` — forward plane-sweep accounting: only candidates
  whose x-intervals overlap are charged (PBSM's per-partition sweep);
  group object lists must then be sorted by lower x bound.

Emission goes through an ``on_pairs`` callback (defaulting to plain
accumulation) so algorithms can layer their own deduplication — PBSM's
reference-point test, the indexed-nested-loop ``id < id`` filter — on
the matching pairs of each batch.
"""

from __future__ import annotations

import numpy as np

from typing import Callable

__all__ = ["cross_join_groups", "self_join_groups"]

#: Per-batch emission callback: ``(left_ids, right_ids, pair_index)``.
PairCallback = Callable[[np.ndarray, np.ndarray, np.ndarray], None]


def _chunk_edges(counts: np.ndarray, chunk_candidates: int) -> np.ndarray:
    """Split group-pair lists into chunks bounded by candidate volume."""
    cum = np.cumsum(counts)
    total = int(cum[-1]) if counts.size else 0
    if total <= chunk_candidates:
        return np.asarray([0, counts.size], dtype=np.int64)
    targets = np.arange(chunk_candidates, total, chunk_candidates, dtype=np.int64)
    inner = np.searchsorted(cum, targets, side="left") + 1
    return np.unique(np.concatenate([[0], inner, [counts.size]]))


def _expand_windows(starts: np.ndarray, stops: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Flat enumeration of ``[starts, stops)`` windows: (row, position)."""
    counts = np.maximum(stops - starts, 0)
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy()
    rows = np.repeat(np.arange(starts.size, dtype=np.int64), counts)
    ends = np.cumsum(counts)
    positions = (
        np.arange(total, dtype=np.int64)
        - np.repeat(ends - counts, counts)
        + np.repeat(starts, counts)
    )
    return rows, positions


class _Columns:
    """Per-column contiguous copies of one side's grouped boxes.

    Candidate evaluation gathers individual coordinate columns by
    *position* in the grouped order; contiguous 1-D gathers are several
    times cheaper than row gathers on ``(n, 3)`` arrays, and object ids
    are only materialised for the surviving pairs.
    """

    __slots__ = ("cat", "xlo", "xhi", "ylo", "yhi", "zlo", "zhi")

    def __init__(self, lo: np.ndarray, hi: np.ndarray, cat: np.ndarray) -> None:
        self.cat = cat
        ordered_lo = lo[cat]
        ordered_hi = hi[cat]
        self.xlo = np.ascontiguousarray(ordered_lo[:, 0])
        self.xhi = np.ascontiguousarray(ordered_hi[:, 0])
        self.ylo = np.ascontiguousarray(ordered_lo[:, 1])
        self.yhi = np.ascontiguousarray(ordered_hi[:, 1])
        self.zlo = np.ascontiguousarray(ordered_lo[:, 2])
        self.zhi = np.ascontiguousarray(ordered_hi[:, 2])


def _test_and_emit(
    side_a: _Columns,
    side_b: _Columns,
    left_pos: np.ndarray,
    right_pos: np.ndarray,
    pair_groups: np.ndarray,
    count: str,
    on_pairs: PairCallback,
) -> int:
    """Shared candidate evaluation on positional indices.

    Tests dimensions progressively (x first, y/z on the survivors) and
    gathers object ids only for the pairs that overlap.  Returns the
    charged test count under the requested accounting.
    """
    x_overlap = np.logical_and(
        side_a.xlo[left_pos] < side_b.xhi[right_pos],
        side_b.xlo[right_pos] < side_a.xhi[left_pos],
    )
    # "x-sweep" charges only the x-overlapping candidates.
    tests = int(left_pos.size) if count == "full" else int(x_overlap.sum())
    left_pos = left_pos[x_overlap]
    right_pos = right_pos[x_overlap]
    if left_pos.size == 0:
        return tests
    pair_groups = pair_groups[x_overlap]
    keep = np.logical_and(
        np.logical_and(
            side_a.ylo[left_pos] < side_b.yhi[right_pos],
            side_b.ylo[right_pos] < side_a.yhi[left_pos],
        ),
        np.logical_and(
            side_a.zlo[left_pos] < side_b.zhi[right_pos],
            side_b.zlo[right_pos] < side_a.zhi[left_pos],
        ),
    )
    if keep.any():
        on_pairs(
            side_a.cat[left_pos[keep]],
            side_b.cat[right_pos[keep]],
            pair_groups[keep],
        )
    return tests


def cross_join_groups(
    lo: np.ndarray,
    hi: np.ndarray,
    cat_a: np.ndarray,
    starts_a: np.ndarray,
    stops_a: np.ndarray,
    cat_b: np.ndarray,
    starts_b: np.ndarray,
    stops_b: np.ndarray,
    pair_a: np.ndarray,
    pair_b: np.ndarray,
    on_pairs: PairCallback,
    count: str = "full",
    chunk_candidates: int = 2_000_000,
) -> int:
    """Join group ``pair_a[k]`` of side A against ``pair_b[k]`` of side B.

    Parameters
    ----------
    lo, hi:
        Global box arrays (shared by both sides).
    cat_a, starts_a, stops_a:
        Side A: concatenated object ids and per-group ranges.
    cat_b, starts_b, stops_b:
        Side B grouping (may be the same arrays as side A).
    pair_a, pair_b:
        Group-index arrays naming the group pairs to join.
    on_pairs:
        ``on_pairs(left_ids, right_ids, pair_index)`` called per batch
        with the overlapping pairs; ``pair_index`` gives each pair's
        position in ``pair_a``/``pair_b`` (for per-pair metadata such as
        PBSM's partition bounds).
    count:
        ``"full"`` or ``"x-sweep"`` (see module docstring).

    Returns
    -------
    int
        Total overlap tests charged.
    """
    if count not in ("full", "x-sweep"):
        raise ValueError(f"unknown count mode {count!r}")
    pair_a = np.asarray(pair_a, dtype=np.int64)
    pair_b = np.asarray(pair_b, dtype=np.int64)
    if pair_a.size == 0:
        return 0
    sizes_a = (stops_a - starts_a)[pair_a]
    sizes_b = (stops_b - starts_b)[pair_b]
    counts = sizes_a * sizes_b
    edges = _chunk_edges(counts, chunk_candidates)
    side_a = _Columns(lo, hi, cat_a)
    side_b = side_a if cat_b is cat_a else _Columns(lo, hi, cat_b)

    tests = 0
    for e in range(len(edges) - 1):
        sel = slice(int(edges[e]), int(edges[e + 1]))
        c_counts = counts[sel]
        total = int(c_counts.sum())
        if total == 0:
            continue
        c_pair_a = pair_a[sel]
        c_pair_b = pair_b[sel]
        # Nested window expansion: every (group pair, A-member) row, then
        # each row's B window — avoids per-candidate integer division.
        row_of_a, a_positions = _expand_windows(
            starts_a[c_pair_a], stops_a[c_pair_a]
        )
        a_row_idx, right_pos = _expand_windows(
            starts_b[c_pair_b][row_of_a], stops_b[c_pair_b][row_of_a]
        )
        left_pos = a_positions[a_row_idx]
        pair_groups = row_of_a[a_row_idx] + int(edges[e])
        tests += _test_and_emit(
            side_a, side_b, left_pos, right_pos, pair_groups, count, on_pairs
        )
    return tests


def self_join_groups(
    lo: np.ndarray,
    hi: np.ndarray,
    cat: np.ndarray,
    starts: np.ndarray,
    stops: np.ndarray,
    groups: np.ndarray,
    on_pairs: PairCallback,
    count: str = "full",
    chunk_candidates: int = 2_000_000,
) -> int:
    """All unordered object pairs within each listed group.

    Same contract as :func:`cross_join_groups` with both sides equal;
    candidates enumerate only the strict upper triangle of each group, so
    ``count="full"`` charges the nested-loop's ``k (k - 1) / 2`` tests
    per group.  ``pair_index`` passed to ``on_pairs`` is the position in
    ``groups``.
    """
    if count not in ("full", "x-sweep"):
        raise ValueError(f"unknown count mode {count!r}")
    groups = np.asarray(groups, dtype=np.int64)
    if groups.size == 0:
        return 0
    g_starts = starts[groups]
    g_stops = stops[groups]
    sizes = g_stops - g_starts
    counts = sizes * (sizes - 1) // 2
    edges = _chunk_edges(counts, chunk_candidates)
    side = _Columns(lo, hi, cat)

    tests = 0
    for e in range(len(edges) - 1):
        sel = slice(int(edges[e]), int(edges[e + 1]))
        c_starts = g_starts[sel]
        c_stops = g_stops[sel]
        if int(counts[sel].sum()) == 0:
            continue
        # Enumerate member positions, then pair each with the remainder
        # of its own group (strict upper triangle).
        row_of_pos, positions = _expand_windows(c_starts, c_stops)
        left_row, right_pos = _expand_windows(
            positions + 1, np.repeat(c_stops, c_stops - c_starts)
        )
        if left_row.size == 0:
            continue
        left_pos = positions[left_row]
        pair_groups = row_of_pos[left_row] + int(edges[e])
        tests += _test_and_emit(
            side, side, left_pos, right_pos, pair_groups, count, on_pairs
        )
    return tests
