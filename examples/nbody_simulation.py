"""N-body simulation with a cut-off radius (the paper's cosmology case).

The paper's introduction motivates the self-join with n-body cosmology:
"to compute the gravitational force on a particular planet ... all other
cosmological objects in proximity are retrieved using a spatial
self-join".  This example closes that loop: a small cluster of bodies
evolves under softened short-range gravity, and at *every* leapfrog step
THERMAL-JOIN supplies the interacting pairs within the cut-off radius.

The join algorithm is not told anything about the physics — it sees
only in-place position updates, exactly the black-box contract of §3.2.

Run::

    python examples/nbody_simulation.py
"""

import numpy as np

from repro import SpatialDataset, ThermalJoin

N_BODIES = 5_000
CUTOFF_RADIUS = 8.0  # interaction range ("object extent" in join terms)
DT = 0.05
N_STEPS = 20
G = 0.5
SOFTENING = 0.5


def main():
    rng = np.random.default_rng(11)
    # A Plummer-ish clustered initial condition inside a 200-unit box.
    centers = 100.0 + rng.normal(scale=18.0, size=(N_BODIES, 3))
    velocities = rng.normal(scale=0.4, size=(N_BODIES, 3))
    masses = rng.uniform(0.5, 2.0, size=N_BODIES)

    # Each body's spatial extent is its interaction cut-off: two bodies
    # interact when their cut-off cubes overlap (§3.2: "the spatial
    # extent ... represents a region where an object might interact").
    dataset = SpatialDataset(
        centers,
        CUTOFF_RADIUS,
        bounds=(np.zeros(3), np.full(3, 200.0)),
        attributes={"mass": masses},
    )
    join = ThermalJoin(cost_model="operations")

    print(f"{'step':>4} {'pairs':>10} {'join [ms]':>10} {'kinetic E':>12} {'max |v|':>9}")
    for step in range(N_STEPS):
        result = join.step(dataset)
        i_idx, j_idx = result.pairs

        # Softened pairwise gravity over exactly the joined pairs.
        delta = dataset.centers[j_idx] - dataset.centers[i_idx]
        dist_sq = (delta * delta).sum(axis=1) + SOFTENING**2
        inv_r3 = dist_sq ** -1.5
        pull = G * delta * inv_r3[:, None]
        acceleration = np.zeros_like(dataset.centers)
        np.add.at(acceleration, i_idx, pull * masses[j_idx, None])
        np.add.at(acceleration, j_idx, -pull * masses[i_idx, None])

        # Leapfrog step with in-place position update (the simulation
        # side of the paper's contract).
        velocities += acceleration * DT
        dataset.translate(velocities * DT)

        kinetic = 0.5 * float((masses * (velocities**2).sum(axis=1)).sum())
        if step % 2 == 0:
            print(
                f"{step:>4} {result.n_results:>10,} "
                f"{result.stats.total_seconds * 1e3:>10.1f} "
                f"{kinetic:>12.1f} {np.linalg.norm(velocities, axis=1).max():>9.2f}"
            )

    info = join.last_step_info
    print(
        f"\ntuner: converged={join.tuner.converged}, final r={join.current_resolution:.2f}, "
        f"grid cells={info['total_cells']}, gc runs={info['gc_runs']}"
    )


if __name__ == "__main__":
    main()
