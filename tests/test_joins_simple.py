"""Correctness tests for the index-free baselines (nested loop, plane sweep)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import SpatialDataset
from repro.joins import NestedLoopJoin, PlaneSweepJoin
from tests.conftest import assert_matches_oracle

ALGORITHMS = [NestedLoopJoin, PlaneSweepJoin]


@pytest.mark.parametrize("algorithm_cls", ALGORITHMS)
class TestAgainstOracle:
    def test_uniform(self, algorithm_cls, uniform_small):
        assert_matches_oracle(algorithm_cls(), uniform_small)

    def test_varied_widths(self, algorithm_cls, uniform_varied):
        assert_matches_oracle(algorithm_cls(), uniform_varied)

    def test_clustered(self, algorithm_cls, clustered_small):
        assert_matches_oracle(algorithm_cls(), clustered_small)

    def test_neural(self, algorithm_cls, neural_small):
        assert_matches_oracle(algorithm_cls(), neural_small)

    def test_no_overlaps(self, algorithm_cls):
        # Widely separated unit boxes: empty result.
        centers = np.arange(27, dtype=np.float64).reshape(-1, 1) * 100.0
        centers = np.repeat(centers, 3, axis=1)
        ds = SpatialDataset(centers, 1.0)
        result = algorithm_cls().step(ds)
        assert result.n_results == 0

    def test_complete_clique(self, algorithm_cls):
        rng = np.random.default_rng(0)
        centers = rng.uniform(0, 0.5, size=(12, 3))
        ds = SpatialDataset(centers, 10.0)
        result = algorithm_cls().step(ds)
        assert result.n_results == 12 * 11 // 2

    def test_single_object(self, algorithm_cls):
        ds = SpatialDataset(np.zeros((1, 3)), 1.0)
        result = algorithm_cls().step(ds)
        assert result.n_results == 0

    def test_count_only_matches(self, algorithm_cls, uniform_small):
        full = algorithm_cls().step(uniform_small)
        counted = algorithm_cls(count_only=True).step(uniform_small)
        assert counted.n_results == full.n_results
        assert counted.pairs is None


class TestStatistics:
    def test_nested_loop_test_count_is_quadratic(self, uniform_small):
        n = len(uniform_small)
        result = NestedLoopJoin().step(uniform_small)
        assert result.stats.overlap_tests == n * (n - 1) // 2

    def test_plane_sweep_tests_fewer_than_nested_loop(self, uniform_small):
        n = len(uniform_small)
        result = PlaneSweepJoin().step(uniform_small)
        assert 0 < result.stats.overlap_tests < n * (n - 1) // 2

    def test_timings_populated(self, uniform_small):
        result = PlaneSweepJoin().step(uniform_small)
        assert result.stats.join_seconds >= 0.0
        assert result.stats.total_seconds >= result.stats.join_seconds

    def test_join_pairs_convenience(self, uniform_small):
        algo = NestedLoopJoin()
        i_idx, j_idx = algo.join_pairs(uniform_small)
        assert (i_idx < j_idx).all()

    def test_join_pairs_rejects_count_only(self, uniform_small):
        with pytest.raises(RuntimeError):
            NestedLoopJoin(count_only=True).join_pairs(uniform_small)
