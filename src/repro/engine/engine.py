"""The staged step driver: prepare → partition → verify → merge.

:func:`execute_step` is what :meth:`SpatialJoinAlgorithm.step` delegates
to.  It times the four stages separately, schedules the plan's tasks on
the algorithm's executor, merges the per-task pair shards in task order,
aggregates per-task counters into :class:`~repro.joins.base.JoinStatistics`
(so existing figures see exactly the totals the monolithic path
produced), and asserts the :class:`~repro.joins.base.JoinResult` pairs
invariant.  Robustness events drained from the executor (task retries,
timeouts, pool rebuilds and degradations) land in
``JoinStatistics.events``/``task_retries`` so runs that survived a
fault stay visibly marked in every figure and benchmark downstream.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING

from repro.geometry import PairAccumulator

if TYPE_CHECKING:
    from repro.datasets import SpatialDataset
    from repro.joins.base import JoinResult, SpatialJoinAlgorithm

__all__ = ["execute_step", "DEFAULT_PARTITION_TASKS"]

#: Default partition grain for ported algorithms.  Fixed (rather than
#: derived from the executor's worker count) so pair sets and overlap
#: test totals are bit-identical across serial, thread and process
#: execution.
DEFAULT_PARTITION_TASKS = 8


def execute_step(
    algorithm: SpatialJoinAlgorithm, dataset: SpatialDataset
) -> JoinResult:
    """Run one full join step for ``algorithm`` through the engine.

    Returns a :class:`~repro.joins.base.JoinResult`.

    When a tracer is active (:func:`repro.obs.get_tracer`), one span is
    opened per stage plus one recorded per executed task — task timings
    arrive through the :class:`~repro.engine.plan.TaskResult` channel,
    so tasks that ran in worker processes are attributed too.  Tracing
    never changes results: spans are observational only.
    """
    from repro.joins.base import JoinResult, JoinStatistics
    from repro.obs import get_tracer

    executor = algorithm.executor
    tracer = get_tracer()
    traced = tracer.enabled
    step_span = None
    if traced:
        tracer.begin_step()
        step_cm = tracer.span(
            "step", counters={"algorithm": algorithm.name, "n_objects": len(dataset)}
        )
        step_span = step_cm.__enter__()

    try:
        t0 = time.perf_counter()
        with tracer.span("prepare", parent=step_span):
            algorithm._build(dataset)  # prepare: index build / refresh
        t1 = time.perf_counter()
        with tracer.span("partition", parent=step_span) as partition_span:
            plan = algorithm.plan(dataset)  # partition: emit independent tasks
            if partition_span is not None:
                partition_span.counters["n_tasks"] = len(plan.tasks)
        t2 = time.perf_counter()
        with tracer.span("verify", parent=step_span) as verify_span:
            results = executor.run(plan.tasks, plan.context, algorithm.count_only)
            events = executor.drain_events()  # robustness: retries, downgrades
        t3 = time.perf_counter()

        # merge: shards → canonical pairs, counters → aggregate statistics.
        with tracer.span("merge", parent=step_span):
            merged = PairAccumulator(count_only=algorithm.count_only)
            overlap_tests = 0
            task_counters = []
            for task_result in results:
                merged.merge(task_result.accumulator)
                overlap_tests += int(task_result.counters.get("overlap_tests", 0))
                task_counters.append(dict(task_result.counters))
            if plan.on_complete is not None:
                plan.on_complete(results)
        t4 = time.perf_counter()

        if traced:
            for index, task_result in enumerate(results):
                tracer.record(
                    f"task:{type(plan.tasks[index]).__name__}",
                    phase=task_result.phase,
                    parent=verify_span,
                    wall_seconds=task_result.seconds,
                    cpu_seconds=task_result.cpu_seconds,
                    counters={"task": index, **task_result.counters},
                )
    finally:
        if traced:
            step_cm.__exit__(None, None, None)

    algorithm._last_prepare_seconds = t1 - t0

    # All statistics flow through the recording methods (RPL202): they
    # own the invariants (build/join second splits, retry counting).
    stats = JoinStatistics()
    stats.record_stage("prepare", t1 - t0)
    stats.record_stage("partition", t2 - t1)
    stats.record_stage("verify", t3 - t2)
    stats.record_stage("merge", t4 - t3)
    for task_result in results:
        stats.record_task(task_result.counters)

    for phase, seconds in algorithm._phase_seconds().items():
        stats.record_phase(phase, seconds)
    for task_result in results:
        # The default "join" phase stays out of the breakdown unless the
        # algorithm declares it, matching the pre-engine convention that
        # only THERMAL-JOIN populates phase_seconds.
        if task_result.phase != "join" or task_result.phase in stats.phase_seconds:
            stats.record_phase(task_result.phase, task_result.seconds)

    stats.record_events(events)
    stats.record_memory(algorithm.memory_footprint())

    # Snapshot the index-internal counters the algorithm's components
    # maintain (P-Grid accounting, tuner state, executor rung, ...).
    registry = getattr(algorithm, "metrics", None)
    if registry is not None:
        stats.record_index_counters(registry.snapshot())

    algorithm.stats = stats
    pairs = None
    if not algorithm.count_only:
        pairs = merged.as_arrays()
    result = JoinResult(
        n_results=len(merged), stats=algorithm.stats, pairs=pairs
    )
    assert (result.pairs is None) == algorithm.count_only, (
        "JoinResult.pairs must be materialised exactly when not count_only"
    )
    return result
