"""Tests for THERMAL-JOIN's batched cell-pair kernels (repro.core.celljoin)."""

from __future__ import annotations

import numpy as np

from repro.core.celljoin import (
    emit_hot_cells_batched,
    join_cell_pairs_batched,
    join_sorted_lists,
)
from repro.geometry.kernels.numpy_backend import _bisect_runs
from repro.geometry import (
    PairAccumulator,
    all_combinations,
    group_by_keys,
    mbr,
    pack_pairs,
    unique_pairs,
)


def make_grouped_boxes(rng, n=150, n_groups=6, span=40.0, width=6.0):
    centers = rng.uniform(0, span, size=(n, 3))
    lo, hi = mbr.boxes_from_centers(centers, width)
    keys = rng.integers(0, n_groups, size=n)
    cat, starts, stops, _unique = group_by_keys(keys, secondary_sort=lo[:, 0])
    # Tight center bounds per group (what PGrid.refresh provides).
    center_lo = np.stack(
        [centers[cat[starts[g]:stops[g]]].min(axis=0) for g in range(starts.size)]
    )
    center_hi = np.stack(
        [centers[cat[starts[g]:stops[g]]].max(axis=0) for g in range(starts.size)]
    )
    return lo, hi, centers, cat, starts, stops, center_lo, center_hi


class TestBisectRuns:
    def test_matches_searchsorted_per_run(self, rng):
        # Build several sorted runs inside one array.
        runs = [np.sort(rng.uniform(0, 100, size=rng.integers(1, 30))) for _ in range(20)]
        values = np.concatenate(runs)
        bounds = np.cumsum([0] + [r.size for r in runs])
        row_lo = []
        row_hi = []
        targets = []
        expected_left = []
        expected_right = []
        for k, run in enumerate(runs):
            for _ in range(3):
                t = float(rng.uniform(-10, 110))
                row_lo.append(bounds[k])
                row_hi.append(bounds[k + 1])
                targets.append(t)
                expected_left.append(bounds[k] + np.searchsorted(run, t, side="left"))
                expected_right.append(bounds[k] + np.searchsorted(run, t, side="right"))
        row_lo = np.asarray(row_lo, dtype=np.int64)
        row_hi = np.asarray(row_hi, dtype=np.int64)
        targets = np.asarray(targets)
        got_geq = _bisect_runs(values, targets, row_lo, row_hi, strict=False)
        got_gt = _bisect_runs(values, targets, row_lo, row_hi, strict=True)
        assert got_geq.tolist() == expected_left
        assert got_gt.tolist() == expected_right

    def test_empty_rows(self):
        values = np.asarray([1.0, 2.0, 3.0])
        out = _bisect_runs(
            values,
            np.asarray([5.0]),
            np.asarray([2], dtype=np.int64),
            np.asarray([2], dtype=np.int64),
            strict=False,
        )
        assert out.tolist() == [2]

    def test_no_rows(self):
        out = _bisect_runs(
            np.asarray([1.0]),
            np.empty(0),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            strict=False,
        )
        assert out.size == 0


class TestJoinCellPairsBatched:
    def _expected_pairs(self, lo, hi, cat, starts, stops, pair_a, pair_b, n):
        expected = set()
        for ga, gb in zip(pair_a, pair_b, strict=True):
            for a in cat[starts[ga]:stops[ga]]:
                for b in cat[starts[gb]:stops[gb]]:
                    if a != b and mbr.overlap_single(lo[a], hi[a], lo[b], hi[b]):
                        expected.add((min(a, b), max(a, b)))
        return expected

    def _run(self, rng, **kwargs):
        lo, hi, centers, cat, starts, stops, c_lo, c_hi = make_grouped_boxes(rng)
        n_groups = starts.size
        pair_a = []
        pair_b = []
        for ga in range(n_groups):
            for gb in range(ga + 1, n_groups):
                pair_a.append(ga)
                pair_b.append(gb)
        acc = PairAccumulator()
        tests, shortcuts = join_cell_pairs_batched(
            lo, hi, cat, starts, stops, c_lo, c_hi,
            np.asarray(pair_a), np.asarray(pair_b), acc, **kwargs,
        )
        n = lo.shape[0]
        got = set(zip(*(arr.tolist() for arr in unique_pairs(*acc.as_arrays(), n)), strict=True))
        expected = self._expected_pairs(lo, hi, cat, starts, stops, pair_a, pair_b, n)
        return got, expected, tests, shortcuts, len(acc)

    def test_matches_naive(self, rng):
        got, expected, _t, _s, emitted = self._run(rng)
        assert got == expected
        assert emitted == len(expected)  # no duplicate emissions

    def test_enclosure_off_same_results_more_tests(self, rng):
        got_on, exp, tests_on, shortcuts_on, _ = self._run(rng)
        rng2 = np.random.default_rng(1234)  # same fixture seed
        got_off, _exp, tests_off, shortcuts_off, _ = self._run(
            rng2, enclosure_shortcut=False
        )
        assert got_on == got_off
        assert shortcuts_off == 0
        assert tests_off >= tests_on

    def test_small_chunks_equal_serial(self, rng):
        got_serial, expected, tests_serial, s_serial, _ = self._run(rng)
        rng2 = np.random.default_rng(1234)
        got_chunked, _exp, tests_chunked, s_chunked, _ = self._run(
            rng2, chunk_candidates=64
        )
        assert got_serial == got_chunked == expected
        assert tests_serial == tests_chunked
        assert s_serial == s_chunked

    def test_chunking_invariance(self, rng):
        got_big, expected, tests_big, _s, _ = self._run(rng, chunk_candidates=10**9)
        rng2 = np.random.default_rng(1234)
        got_small, _exp, tests_small, _s2, _ = self._run(rng2, chunk_candidates=16)
        assert got_big == got_small == expected
        assert tests_big == tests_small

    def test_matches_sequential_join_sorted_lists(self, rng):
        """The batched kernel is semantically the per-pair sequential
        join (same pairs, same plane-sweep test accounting)."""
        lo, hi, centers, cat, starts, stops, c_lo, c_hi = make_grouped_boxes(
            rng, n=80, n_groups=4
        )
        pair_a = np.asarray([0, 1, 2])
        pair_b = np.asarray([1, 2, 3])
        batched_acc = PairAccumulator()
        batched_tests, batched_shortcuts = join_cell_pairs_batched(
            lo, hi, cat, starts, stops, c_lo, c_hi, pair_a, pair_b, batched_acc
        )
        seq_acc = PairAccumulator()
        seq_tests = 0
        seq_shortcuts = 0
        for ga, gb in zip(pair_a, pair_b, strict=True):
            t, s = join_sorted_lists(
                lo,
                hi,
                cat[starts[ga]:stops[ga]],
                cat[starts[gb]:stops[gb]],
                c_lo[gb],
                c_hi[gb],
                seq_acc,
            )
            seq_tests += t
            seq_shortcuts += s
        n = lo.shape[0]
        assert np.array_equal(
            pack_pairs(*batched_acc.as_unique_arrays(n), n),
            pack_pairs(*seq_acc.as_unique_arrays(n), n),
        )
        assert batched_tests == seq_tests
        assert batched_shortcuts == seq_shortcuts

    def test_empty_pairs(self, rng):
        lo, hi, _c, cat, starts, stops, c_lo, c_hi = make_grouped_boxes(rng, n=20)
        acc = PairAccumulator()
        assert join_cell_pairs_batched(
            lo, hi, cat, starts, stops, c_lo, c_hi,
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64), acc,
        ) == (0, 0)


class TestEmitHotCells:
    def test_matches_per_cell_all_combinations(self, rng):
        lo, hi, _c, cat, starts, stops, _cl, _ch = make_grouped_boxes(rng, n=60)
        acc_batched = PairAccumulator()
        hot = np.arange(starts.size)
        emitted = emit_hot_cells_batched(cat, starts, stops, hot, acc_batched)
        acc_per_cell = PairAccumulator()
        for g in range(starts.size):
            i_ids, j_ids = all_combinations(cat[starts[g]:stops[g]])
            acc_per_cell.extend_canonical(i_ids, j_ids)
        n = lo.shape[0]
        assert emitted == len(acc_per_cell)
        assert np.array_equal(
            pack_pairs(*acc_batched.as_unique_arrays(n), n),
            pack_pairs(*acc_per_cell.as_unique_arrays(n), n),
        )

    def test_no_hot_cells(self, rng):
        lo, hi, _c, cat, starts, stops, _cl, _ch = make_grouped_boxes(rng, n=20)
        acc = PairAccumulator()
        assert emit_hot_cells_batched(
            cat, starts, stops, np.empty(0, dtype=np.int64), acc
        ) == 0

    def test_single_member_cells_emit_nothing(self):
        cat = np.arange(3, dtype=np.int64)
        starts = np.asarray([0, 1, 2], dtype=np.int64)
        stops = np.asarray([1, 2, 3], dtype=np.int64)
        acc = PairAccumulator()
        assert emit_hot_cells_batched(cat, starts, stops, np.arange(3), acc) == 0
