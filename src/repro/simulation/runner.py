"""Iterative-simulation driver: move all objects, join, record, repeat.

Reproduces the paper's experimental loop (§5.1.1): the simulation
application mutates the object list in place at every time step; once
the list is consistent, the self-join executes atomically; per-step
metrics are recorded.  The driver is algorithm-agnostic — anything
implementing :class:`~repro.joins.base.SpatialJoinAlgorithm` plugs in,
which is how the benchmark harness runs THERMAL-JOIN and every baseline
over identical workloads.

The loop is fault-aware: the engine's executors recover from task
failures, hangs and worker death on their own (surfaced per step in
:attr:`StepRecord.events`/:attr:`StepRecord.task_retries`), and if a
step still fails outright the run stops cleanly — the failing step is
recorded in :attr:`SimulationRunner.failed_step`/:attr:`~SimulationRunner.failure`
(analogous to :attr:`~SimulationRunner.timed_out`) with no half-written
record, instead of propagating mid-run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:
    from repro.datasets import SpatialDataset
    from repro.datasets.motion import MotionModel
    from repro.joins.base import SpatialJoinAlgorithm

__all__ = ["StepRecord", "SimulationRunner"]

#: Event kinds that mean the step ran below the requested backend.
_DEGRADED_EVENT_KINDS = ("pool_broken", "pool_rebuild", "degraded")


@dataclass
class StepRecord:
    """Metrics of one simulation time step.

    Attributes mirror the series of the paper's Figure 7: result count
    (join selectivity), join time, overlap tests and memory footprint,
    plus the finer phase breakdown used by Figure 10(a).  ``events``
    and ``task_retries`` carry the step's robustness record (see
    :class:`~repro.joins.base.JoinStatistics`); both are empty/zero on
    a clean step.  ``index_counters`` is the step's metrics-registry
    snapshot (tuner resolution, P-Grid cell accounting, executor rung —
    see :class:`~repro.obs.MetricsRegistry`), so bench trajectories and
    traces can line the index internals up with the cost series.
    """

    step: int
    n_results: int
    join_seconds: float
    build_seconds: float
    overlap_tests: int
    memory_bytes: int
    phase_seconds: dict[str, float]
    stage_seconds: dict[str, float] = field(default_factory=dict)
    events: list[dict[str, Any]] = field(default_factory=list)
    task_retries: int = 0
    index_counters: dict[str, dict[str, Any]] = field(default_factory=dict)
    #: Pair-maintenance counters for the step (the ``incremental``
    #: provider of the metrics registry: mode, moved_fraction,
    #: pairs_reused, pairs_reverified, fallbacks, ...).  Empty for
    #: algorithms without the provider, so pre-existing records and
    #: readers keep working unchanged.
    incremental: dict[str, Any] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        """Build plus join time of the step."""
        return self.build_seconds + self.join_seconds

    @property
    def degraded(self) -> bool:
        """True when the step's executor broke, rebuilt or downgraded."""
        return any(
            event.get("kind") in _DEGRADED_EVENT_KINDS for event in self.events
        )


class SimulationRunner:
    """Runs a moving-object simulation against one join algorithm.

    Parameters
    ----------
    dataset:
        The shared in-memory object list (mutated in place).
    motion:
        A :class:`~repro.datasets.motion.MotionModel`; ``None`` runs a
        static dataset (the single-time-step experiments of Figures 2
        and 6).
    algorithm:
        The join algorithm under test.  Its ``executor`` attribute (set
        via the ``executor=`` constructor argument or ``REPRO_EXECUTOR``)
        carries the serial/parallel choice for every step of the run.
    time_budget:
        Optional wall-clock budget in seconds for the *whole* run; when
        exceeded the run stops early and :attr:`timed_out` is set — the
        equivalent of the paper's 72-hour cut-off in Figure 9(a).

    Attributes
    ----------
    timed_out:
        True when the run stopped on the time budget.
    failed_step:
        Index of the step whose join raised past all executor recovery,
        or ``None``.  The run stops cleanly at that step: ``records``
        holds every *completed* step and the motion model is not
        advanced past the failure.
    failure:
        The exception that ended the run, or ``None``.
    """

    def __init__(
        self,
        dataset: SpatialDataset,
        motion: MotionModel | None,
        algorithm: SpatialJoinAlgorithm,
        time_budget: float | None = None,
    ) -> None:
        if time_budget is not None and time_budget <= 0:
            raise ValueError(f"time_budget must be positive, got {time_budget}")
        self.dataset = dataset
        self.motion = motion
        self.algorithm = algorithm
        self.time_budget = time_budget
        self.records: list[StepRecord] = []
        self.timed_out = False
        self.failed_step: int | None = None
        self.failure: Exception | None = None

    def run(self, n_steps: int) -> list[StepRecord]:
        """Execute ``n_steps`` simulation steps; returns the records.

        Each step joins the dataset's *current* state and then advances
        the motion model, so step 0 measures the initial configuration
        exactly as the paper's time-step 0 does.
        """
        if n_steps <= 0:
            raise ValueError(f"n_steps must be positive, got {n_steps}")
        started = time.perf_counter()
        # The delta committed by the previous motion step, threaded into
        # the next join step.  Step 0 has none (initial configuration).
        pending_delta = None
        for step in range(n_steps):
            try:
                result = self.algorithm.step_delta(self.dataset, pending_delta)
            except Exception as exc:
                self.failed_step = step
                self.failure = exc
                break
            stats = result.stats
            self.records.append(
                StepRecord(
                    step=step,
                    n_results=result.n_results,
                    join_seconds=stats.join_seconds,
                    build_seconds=stats.build_seconds,
                    overlap_tests=stats.overlap_tests,
                    memory_bytes=stats.memory_bytes,
                    phase_seconds=dict(stats.phase_seconds),
                    stage_seconds=dict(stats.stage_seconds),
                    events=list(stats.events),
                    task_retries=stats.task_retries,
                    index_counters=dict(stats.index_counters),
                    incremental=dict(stats.index_counters.get("incremental", {})),
                )
            )
            if (
                self.time_budget is not None
                and time.perf_counter() - started > self.time_budget
            ):
                # Check the budget before advancing the motion model so a
                # timed-out run doesn't burn one extra motion step.
                self.timed_out = True
                break
            if self.motion is not None and step + 1 < n_steps:
                pending_delta = self.motion.step(self.dataset)
        return self.records

    # ------------------------------------------------------------------
    # Aggregates over the recorded steps
    # ------------------------------------------------------------------
    def total_join_seconds(self) -> float:
        """Sum of build + join time over all recorded steps."""
        return sum(record.total_seconds for record in self.records)

    def total_overlap_tests(self) -> int:
        """Sum of overlap tests over all recorded steps."""
        return sum(record.overlap_tests for record in self.records)

    def peak_memory_bytes(self) -> int:
        """Largest per-step footprint observed."""
        return max((record.memory_bytes for record in self.records), default=0)

    def total_task_retries(self) -> int:
        """Sum of task re-executions over all recorded steps."""
        return sum(record.task_retries for record in self.records)

    def degraded_steps(self) -> list[int]:
        """Step indices whose executor broke, rebuilt or downgraded."""
        return [record.step for record in self.records if record.degraded]
