"""The repro-lint gate linting itself: per-rule fixtures, suppressions, CLI.

Each rule gets at least one violating fixture and one clean fixture,
written to a temporary tree whose directory names mimic the real
package layout — scope matching works on resolved-path substrings, so
``tmp/repro/joins/mod.py`` patrols exactly like ``src/repro/joins/``.
The CLI tests pin the ruff-style exit-code contract (0 clean, 1
findings, 2 usage/parse error) that the CI gate relies on, and a final
self-check keeps the repository itself clean.
"""

from __future__ import annotations

import sys
import textwrap
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT) not in sys.path:  # `python -m pytest` adds it; `pytest` may not
    sys.path.insert(0, str(REPO_ROOT))

from tools.repro_lint import cli  # noqa: E402
from tools.repro_lint.core import (  # noqa: E402
    PARSE_ERROR_CODE,
    PROJECT_RULES,
    RULES,
    Diagnostic,
    collect_suppressions,
    lint_file,
    lint_paths,
)

ALL_CODES = {
    "RPL001",
    "RPL002",
    "RPL003",
    "RPL101",
    "RPL102",
    "RPL201",
    "RPL202",
    "RPL203",
    "RPL301",
    "RPL401",
    "RPL501",
    "RPL601",
}

PROJECT_CODES = {
    "RPL701",
    "RPL702",
    "RPL801",
    "RPL802",
    "RPL901",
    "RPL902",
}


def lint_source(
    tmp_path: Path, rel: str, source: str, select: str | None = None
) -> list[Diagnostic]:
    """Write ``source`` at ``tmp_path/rel`` and lint it."""
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    chosen = frozenset({select}) if select else None
    return lint_file(path, select=chosen)


def codes_of(findings: list[Diagnostic]) -> set[str]:
    return {finding.code for finding in findings}


# ----------------------------------------------------------------------
# Registry sanity
# ----------------------------------------------------------------------
class TestRegistry:
    def test_all_rules_registered(self) -> None:
        assert {rule.code for rule in RULES} == ALL_CODES

    def test_all_project_rules_registered(self) -> None:
        assert {rule.code for rule in PROJECT_RULES} == PROJECT_CODES

    def test_rules_carry_title_and_rationale(self) -> None:
        for rule in [*RULES, *PROJECT_RULES]:
            assert rule.title
            assert rule.rationale


# ----------------------------------------------------------------------
# RPL001 — numpy global RNG (patrols everywhere)
# ----------------------------------------------------------------------
class TestNumpyGlobalRandom:
    def test_global_rng_call_fires(self, tmp_path: Path) -> None:
        findings = lint_source(
            tmp_path,
            "pkg/mod.py",
            """
            import numpy as np
            x = np.random.rand(3)
            """,
        )
        assert codes_of(findings) == {"RPL001"}

    def test_global_seed_fires(self, tmp_path: Path) -> None:
        findings = lint_source(
            tmp_path, "pkg/mod.py", "import numpy as np\nnp.random.seed(0)\n"
        )
        assert codes_of(findings) == {"RPL001"}

    def test_unseeded_default_rng_fires(self, tmp_path: Path) -> None:
        findings = lint_source(
            tmp_path,
            "pkg/mod.py",
            "import numpy as np\nrng = np.random.default_rng()\n",
        )
        assert codes_of(findings) == {"RPL001"}
        assert "explicit seed" in findings[0].message

    def test_legacy_import_fires(self, tmp_path: Path) -> None:
        findings = lint_source(tmp_path, "pkg/mod.py", "from numpy.random import rand\n")
        assert codes_of(findings) == {"RPL001"}

    def test_seeded_generator_is_clean(self, tmp_path: Path) -> None:
        findings = lint_source(
            tmp_path,
            "pkg/mod.py",
            """
            import numpy as np
            rng = np.random.default_rng(42)
            x = rng.random(3)
            """,
        )
        assert findings == []

    def test_generator_machinery_import_is_clean(self, tmp_path: Path) -> None:
        findings = lint_source(
            tmp_path, "pkg/mod.py", "from numpy.random import Generator, PCG64\n"
        )
        assert findings == []


# ----------------------------------------------------------------------
# RPL002 — stdlib random in the deterministic core
# ----------------------------------------------------------------------
class TestStdlibRandom:
    def test_import_in_core_fires(self, tmp_path: Path) -> None:
        findings = lint_source(tmp_path, "repro/core/mod.py", "import random\n")
        assert codes_of(findings) == {"RPL002"}

    def test_from_import_in_joins_fires(self, tmp_path: Path) -> None:
        findings = lint_source(
            tmp_path, "repro/joins/mod.py", "from random import choice\n"
        )
        assert codes_of(findings) == {"RPL002"}

    def test_out_of_scope_is_clean(self, tmp_path: Path) -> None:
        findings = lint_source(tmp_path, "repro/datasets/mod.py", "import random\n")
        assert findings == []


# ----------------------------------------------------------------------
# RPL003 — wall-clock reads in the deterministic core
# ----------------------------------------------------------------------
class TestWallClock:
    def test_perf_counter_in_joins_fires(self, tmp_path: Path) -> None:
        findings = lint_source(
            tmp_path,
            "repro/joins/mod.py",
            """
            import time

            def join(boxes):
                start = time.perf_counter()
                return start
            """,
        )
        assert codes_of(findings) == {"RPL003"}

    def test_bare_imported_clock_fires(self, tmp_path: Path) -> None:
        findings = lint_source(
            tmp_path,
            "repro/geometry/mod.py",
            """
            from time import perf_counter as clock

            def f():
                return clock()
            """,
        )
        assert codes_of(findings) == {"RPL003"}

    def test_datetime_now_fires(self, tmp_path: Path) -> None:
        findings = lint_source(
            tmp_path,
            "repro/core/mod.py",
            """
            import datetime

            def f():
                return datetime.now()
            """,
        )
        assert codes_of(findings) == {"RPL003"}

    def test_whitelisted_site_is_clean(self, tmp_path: Path) -> None:
        findings = lint_source(
            tmp_path,
            "repro/core/thermal.py",
            """
            import time

            class ThermalJoin:
                def _build(self, dataset):
                    start = time.perf_counter()
                    return time.perf_counter() - start
            """,
        )
        assert findings == []

    def test_whitelist_does_not_leak_to_other_scopes(self, tmp_path: Path) -> None:
        findings = lint_source(
            tmp_path,
            "repro/core/thermal.py",
            """
            import time

            class ThermalJoin:
                def step(self, dataset):
                    return time.perf_counter()
            """,
        )
        assert codes_of(findings) == {"RPL003"}

    def test_engine_timing_is_out_of_scope(self, tmp_path: Path) -> None:
        findings = lint_source(
            tmp_path,
            "repro/engine/mod.py",
            """
            import time

            def measure():
                return time.perf_counter()
            """,
        )
        assert findings == []


# ----------------------------------------------------------------------
# RPL101 — executor submission discipline
# ----------------------------------------------------------------------
class TestExecutorSubmission:
    def test_lambda_submission_fires(self, tmp_path: Path) -> None:
        findings = lint_source(
            tmp_path,
            "repro/engine/executors.py",
            """
            def run(pool):
                return pool.submit(lambda: 1)
            """,
        )
        assert codes_of(findings) == {"RPL101"}

    def test_nested_function_submission_fires(self, tmp_path: Path) -> None:
        findings = lint_source(
            tmp_path,
            "repro/engine/executors.py",
            """
            def run(pool):
                def task():
                    return 1
                return pool.submit(task)
            """,
        )
        assert codes_of(findings) == {"RPL101"}

    def test_computed_callable_submission_fires(self, tmp_path: Path) -> None:
        findings = lint_source(
            tmp_path,
            "repro/engine/executors.py",
            """
            def run(pool, tasks):
                return pool.submit(tasks[0])
            """,
        )
        assert codes_of(findings) == {"RPL101"}

    def test_module_level_function_is_clean(self, tmp_path: Path) -> None:
        findings = lint_source(
            tmp_path,
            "repro/engine/executors.py",
            """
            def work(chunk):
                return chunk

            def run(pool, chunk):
                return pool.submit(work, chunk)
            """,
        )
        assert findings == []

    def test_other_modules_are_rpl901_territory(self, tmp_path: Path) -> None:
        # RPL101 patrols executors.py only; outside it, the same lambda
        # submit is picked up by the whole-program rule RPL901 instead.
        findings = lint_source(
            tmp_path,
            "repro/engine/plan.py",
            """
            def run(pool):
                return pool.submit(lambda: 1)
            """,
        )
        assert codes_of(findings) == {"RPL901"}
        assert lint_source(tmp_path, "repro/engine/plan.py", "x = 1\n") == []


# ----------------------------------------------------------------------
# RPL102 — shared-memory views must be read-only
# ----------------------------------------------------------------------
class TestSharedMemoryReadOnly:
    def test_unlocked_view_fires(self, tmp_path: Path) -> None:
        findings = lint_source(
            tmp_path,
            "repro/engine/shm.py",
            """
            import numpy as np

            def attach(shm):
                view = np.ndarray((3,), dtype="f8", buffer=shm.buf)
                return view
            """,
        )
        assert codes_of(findings) == {"RPL102"}

    def test_setflags_lock_is_clean(self, tmp_path: Path) -> None:
        findings = lint_source(
            tmp_path,
            "repro/engine/shm.py",
            """
            import numpy as np

            def attach(shm):
                view = np.ndarray((3,), dtype="f8", buffer=shm.buf)
                view.setflags(write=False)
                return view
            """,
        )
        assert findings == []

    def test_writeable_flag_lock_is_clean(self, tmp_path: Path) -> None:
        findings = lint_source(
            tmp_path,
            "repro/engine/shm.py",
            """
            import numpy as np

            def attach(shm):
                view = np.ndarray((3,), dtype="f8", buffer=shm.buf)
                view.flags.writeable = False
                return view
            """,
        )
        assert findings == []


# ----------------------------------------------------------------------
# RPL201 — ad-hoc coordinate comparisons
# ----------------------------------------------------------------------
class TestUncountedOverlap:
    def test_raw_bound_comparison_fires(self, tmp_path: Path) -> None:
        findings = lint_source(
            tmp_path,
            "repro/joins/mod.py",
            """
            def overlaps(lo_a, hi_b):
                return lo_a <= hi_b
            """,
        )
        assert codes_of(findings) == {"RPL201"}

    def test_attribute_bounds_fire(self, tmp_path: Path) -> None:
        findings = lint_source(
            tmp_path,
            "repro/core/mod.py",
            """
            def check(a, b):
                return a.xlo < b.xhi
            """,
        )
        assert codes_of(findings) == {"RPL201"}

    def test_non_bound_names_are_clean(self, tmp_path: Path) -> None:
        findings = lint_source(
            tmp_path,
            "repro/joins/mod.py",
            """
            def smaller(first, second):
                return first <= second
            """,
        )
        assert findings == []

    def test_geometry_kernels_are_out_of_scope(self, tmp_path: Path) -> None:
        findings = lint_source(
            tmp_path,
            "repro/geometry/mod.py",
            """
            def overlaps(lo_a, hi_b):
                return lo_a <= hi_b
            """,
        )
        assert findings == []


# ----------------------------------------------------------------------
# RPL202 — JoinStatistics write discipline
# ----------------------------------------------------------------------
class TestStatisticsWrite:
    def test_augmented_field_write_fires(self, tmp_path: Path) -> None:
        findings = lint_source(
            tmp_path,
            "repro/joins/mod.py",
            """
            def record(stats):
                stats.overlap_tests += 5
            """,
        )
        assert codes_of(findings) == {"RPL202"}

    def test_attribute_rooted_write_fires(self, tmp_path: Path) -> None:
        findings = lint_source(
            tmp_path,
            "repro/engine/mod.py",
            """
            def record(result):
                result.stats.events = []
            """,
        )
        assert codes_of(findings) == {"RPL202"}

    def test_recording_method_is_clean(self, tmp_path: Path) -> None:
        findings = lint_source(
            tmp_path,
            "repro/joins/mod.py",
            """
            def record(stats, seconds):
                stats.record_stage("verify", seconds)
            """,
        )
        assert findings == []

    def test_base_module_recording_methods_exempt(self, tmp_path: Path) -> None:
        findings = lint_source(
            tmp_path,
            "repro/joins/base.py",
            """
            class JoinStatistics:
                def record_stage(self, stage, seconds):
                    self.stage_seconds[stage] = seconds
            """,
            select="RPL202",
        )
        assert findings == []


# ----------------------------------------------------------------------
# RPL203 — maintained pair-set write discipline
# ----------------------------------------------------------------------
class TestPairSetWrite:
    def test_key_array_write_fires(self, tmp_path: Path) -> None:
        findings = lint_source(
            tmp_path,
            "repro/core/mod.py",
            """
            def patch(maintained, keys):
                maintained._keys = keys
            """,
        )
        assert codes_of(findings) == {"RPL203"}

    def test_attribute_rooted_augmented_write_fires(self, tmp_path: Path) -> None:
        findings = lint_source(
            tmp_path,
            "repro/engine/mod.py",
            """
            def grow(algorithm):
                algorithm._maintained.n += 1
            """,
        )
        assert codes_of(findings) == {"RPL203"}

    def test_delta_maintenance_api_is_clean(self, tmp_path: Path) -> None:
        findings = lint_source(
            tmp_path,
            "repro/engine/mod.py",
            """
            def patch(maintained, delta, merged):
                dropped = maintained.remove_incident(delta)
                added = maintained.merge_delta(*merged)
                return dropped, added
            """,
        )
        assert findings == []

    def test_rebinding_the_set_itself_is_clean(self, tmp_path: Path) -> None:
        findings = lint_source(
            tmp_path,
            "repro/core/mod.py",
            """
            def seed(algorithm, build, pairs):
                algorithm._maintained = build(pairs)
            """,
            select="RPL203",
        )
        assert findings == []

    def test_pairs_module_methods_exempt(self, tmp_path: Path) -> None:
        findings = lint_source(
            tmp_path,
            "repro/geometry/pairs.py",
            """
            class MaintainedPairSet:
                def merge_delta(self, maintained, keys):
                    maintained._keys = keys
            """,
            select="RPL203",
        )
        assert findings == []


# ----------------------------------------------------------------------
# RPL301 — JoinResult.pairs contract
# ----------------------------------------------------------------------
class TestJoinResultContract:
    def test_canonical_annotation_is_clean(self, tmp_path: Path) -> None:
        findings = lint_source(
            tmp_path,
            "repro/joins/base.py",
            """
            class JoinResult:
                pairs: tuple | None = None
            """,
        )
        assert findings == []

    def test_drifted_annotation_fires(self, tmp_path: Path) -> None:
        findings = lint_source(
            tmp_path,
            "repro/joins/base.py",
            """
            class JoinResult:
                pairs: list = []
            """,
        )
        assert codes_of(findings) == {"RPL301"}

    def test_post_hoc_pairs_assignment_fires(self, tmp_path: Path) -> None:
        findings = lint_source(
            tmp_path,
            "repro/joins/mod.py",
            """
            def patch(result, i_idx, j_idx):
                result.pairs = (i_idx, j_idx)
            """,
        )
        assert codes_of(findings) == {"RPL301"}

    def test_list_pairs_construction_fires(self, tmp_path: Path) -> None:
        findings = lint_source(
            tmp_path,
            "repro/joins/mod.py",
            """
            def build(n, tests, i_idx, j_idx):
                return JoinResult(n, tests, pairs=[i_idx, j_idx])
            """,
        )
        assert codes_of(findings) == {"RPL301"}

    def test_tuple_or_none_construction_is_clean(self, tmp_path: Path) -> None:
        findings = lint_source(
            tmp_path,
            "repro/joins/mod.py",
            """
            def build(n, tests, i_idx, j_idx, count_only):
                pairs = None if count_only else (i_idx, j_idx)
                return JoinResult(n, tests, pairs=pairs)
            """,
        )
        assert findings == []


# ----------------------------------------------------------------------
# RPL401 — verify kernels invoked only via the dispatch registry
# ----------------------------------------------------------------------
class TestKernelBackendImports:
    def test_backend_submodule_import_fires(self, tmp_path: Path) -> None:
        findings = lint_source(
            tmp_path,
            "repro/engine/mod.py",
            "from repro.geometry.kernels.numpy_backend import cell_pair_sweep\n",
        )
        assert codes_of(findings) == {"RPL401"}

    def test_loop_core_import_fires(self, tmp_path: Path) -> None:
        findings = lint_source(
            tmp_path,
            "repro/core/mod.py",
            "import repro.geometry.kernels.loops\n",
        )
        assert codes_of(findings) == {"RPL401"}

    def test_dispatch_internals_import_fires(self, tmp_path: Path) -> None:
        findings = lint_source(
            tmp_path,
            "repro/joins/mod.py",
            "from repro.geometry.kernels.dispatch import _tables\n",
        )
        assert codes_of(findings) == {"RPL401"}

    def test_direct_numba_import_fires(self, tmp_path: Path) -> None:
        findings = lint_source(
            tmp_path,
            "repro/core/mod.py",
            "import numba\n",
            select="RPL401",
        )
        assert codes_of(findings) == {"RPL401"}

    def test_public_dispatch_import_is_clean(self, tmp_path: Path) -> None:
        findings = lint_source(
            tmp_path,
            "repro/engine/mod.py",
            """
            from repro.geometry.kernels import cell_pair_sweep, strip_sweep

            def run(ctx, accumulator, start, stop, carry):
                return strip_sweep(
                    ctx["lo"], ctx["hi"], ctx["ids"], start, stop, carry, accumulator
                )
            """,
            select="RPL401",
        )
        assert findings == []

    def test_kernels_package_itself_is_exempt(self, tmp_path: Path) -> None:
        findings = lint_source(
            tmp_path,
            "repro/geometry/kernels/dispatch.py",
            """
            import numba
            from repro.geometry.kernels.numpy_backend import cell_pair_sweep
            """,
            select="RPL401",
        )
        assert findings == []

    def test_outside_library_scope_is_exempt(self, tmp_path: Path) -> None:
        findings = lint_source(
            tmp_path,
            "benchmarks/mod.py",
            "from repro.geometry.kernels.loops import strip_sweep_core\n",
            select="RPL401",
        )
        assert findings == []


# ----------------------------------------------------------------------
# RPL501 — recovery-package file writes go through the atomic writer
# ----------------------------------------------------------------------
class TestRecoveryAtomicWrite:
    def test_open_write_mode_fires(self, tmp_path: Path) -> None:
        findings = lint_source(
            tmp_path,
            "repro/recovery/mod.py",
            """
            def bad(path, data):
                with open(path, "wb") as handle:
                    handle.write(data)
            """,
            select="RPL501",
        )
        assert codes_of(findings) == {"RPL501"}

    def test_numpy_savez_fires(self, tmp_path: Path) -> None:
        findings = lint_source(
            tmp_path,
            "repro/recovery/mod.py",
            """
            import numpy as np

            def bad(path, arrays):
                np.savez(path, **arrays)
            """,
            select="RPL501",
        )
        assert codes_of(findings) == {"RPL501"}

    def test_json_dump_and_os_replace_fire(self, tmp_path: Path) -> None:
        findings = lint_source(
            tmp_path,
            "repro/recovery/mod.py",
            """
            import json
            import os

            def bad(path, doc, handle):
                json.dump(doc, handle)
                os.replace(path, path)
            """,
            select="RPL501",
        )
        assert codes_of(findings) == {"RPL501"}
        assert len(findings) == 2

    def test_path_write_bytes_fires(self, tmp_path: Path) -> None:
        findings = lint_source(
            tmp_path,
            "repro/recovery/mod.py",
            "def bad(path):\n    path.write_bytes(b'x')\n",
            select="RPL501",
        )
        assert codes_of(findings) == {"RPL501"}

    def test_computed_open_mode_fires(self, tmp_path: Path) -> None:
        # A mode that can't be proven read-only counts as a write.
        findings = lint_source(
            tmp_path,
            "repro/recovery/mod.py",
            "def bad(path, mode):\n    return open(path, mode)\n",
            select="RPL501",
        )
        assert codes_of(findings) == {"RPL501"}

    def test_reads_are_clean(self, tmp_path: Path) -> None:
        findings = lint_source(
            tmp_path,
            "repro/recovery/mod.py",
            """
            import json
            import numpy as np

            def ok(path):
                with open(path, "rb") as handle:
                    data = handle.read()
                doc = json.loads(path.read_text(encoding="utf-8"))
                with np.load(path, allow_pickle=False) as payload:
                    arrays = dict(payload)
                path.unlink(missing_ok=True)
                return data, doc, arrays
            """,
            select="RPL501",
        )
        assert findings == []

    def test_atomic_module_is_exempt(self, tmp_path: Path) -> None:
        findings = lint_source(
            tmp_path,
            "repro/recovery/atomic.py",
            """
            import os

            def atomic_write_bytes(path, data):
                with open(str(path) + ".tmp", "wb") as handle:
                    handle.write(data)
                    os.fsync(handle.fileno())
                os.replace(str(path) + ".tmp", path)
            """,
            select="RPL501",
        )
        assert findings == []

    def test_outside_recovery_scope_is_exempt(self, tmp_path: Path) -> None:
        findings = lint_source(
            tmp_path,
            "repro/obs/mod.py",
            "def ok(path, doc):\n    import json\n    json.dump(doc, open(path, 'w'))\n",
            select="RPL501",
        )
        assert findings == []


# ----------------------------------------------------------------------
# RPL601 — event-loop imports confined to repro/service/
# ----------------------------------------------------------------------
class TestServiceAsyncImport:
    def test_asyncio_import_in_engine_fires(self, tmp_path: Path) -> None:
        findings = lint_source(
            tmp_path,
            "repro/engine/mod.py",
            "import asyncio\n\n\ndef bad():\n    return asyncio.get_event_loop()\n",
            select="RPL601",
        )
        assert codes_of(findings) == {"RPL601"}

    def test_from_import_and_submodule_fire(self, tmp_path: Path) -> None:
        findings = lint_source(
            tmp_path,
            "repro/joins/mod.py",
            """
            from asyncio import Queue
            import asyncio.events
            """,
            select="RPL601",
        )
        assert codes_of(findings) == {"RPL601"}
        assert len(findings) == 2

    def test_other_loop_frameworks_fire(self, tmp_path: Path) -> None:
        findings = lint_source(
            tmp_path,
            "repro/obs/mod.py",
            """
            import selectors
            import trio
            """,
            select="RPL601",
        )
        assert codes_of(findings) == {"RPL601"}
        assert len(findings) == 2

    def test_service_package_is_exempt(self, tmp_path: Path) -> None:
        findings = lint_source(
            tmp_path,
            "repro/service/mod.py",
            """
            import asyncio

            async def ok():
                await asyncio.sleep(0)
            """,
            select="RPL601",
        )
        assert findings == []

    def test_outside_library_scope_is_exempt(self, tmp_path: Path) -> None:
        findings = lint_source(
            tmp_path,
            "benchmarks/mod.py",
            "import asyncio\n",
            select="RPL601",
        )
        assert findings == []

    def test_prefix_lookalikes_are_clean(self, tmp_path: Path) -> None:
        # Only genuine module roots count, not name prefixes.
        findings = lint_source(
            tmp_path,
            "repro/engine/mod.py",
            "import asyncio_helpers\nimport triose\n",
            select="RPL601",
        )
        assert findings == []


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------
class TestSuppressions:
    SOURCE = """
    def overlaps(lo_a, hi_b):
        return lo_a <= hi_b  {comment}
    """

    def test_coded_suppression_silences_that_code(self, tmp_path: Path) -> None:
        findings = lint_source(
            tmp_path,
            "repro/joins/mod.py",
            self.SOURCE.format(
                comment="# repro-lint: ignore[RPL201] counted in the caller"
            ),
        )
        assert findings == []

    def test_bare_suppression_silences_all_codes(self, tmp_path: Path) -> None:
        findings = lint_source(
            tmp_path,
            "repro/joins/mod.py",
            self.SOURCE.format(comment="# repro-lint: ignore"),
        )
        assert findings == []

    def test_wrong_code_does_not_suppress(self, tmp_path: Path) -> None:
        findings = lint_source(
            tmp_path,
            "repro/joins/mod.py",
            self.SOURCE.format(comment="# repro-lint: ignore[RPL999]"),
        )
        assert codes_of(findings) == {"RPL201"}

    def test_suppression_is_line_scoped(self, tmp_path: Path) -> None:
        findings = lint_source(
            tmp_path,
            "repro/joins/mod.py",
            """
            # repro-lint: ignore[RPL201]
            def overlaps(lo_a, hi_b):
                return lo_a <= hi_b
            """,
        )
        assert codes_of(findings) == {"RPL201"}

    def test_collect_suppressions_parses_code_lists(self) -> None:
        got = collect_suppressions(
            "x = 1  # repro-lint: ignore[rpl201, RPL202]\ny = 2  # repro-lint: ignore\n"
        )
        assert got == {1: frozenset({"RPL201", "RPL202"}), 2: None}


# ----------------------------------------------------------------------
# Drivers and the CLI exit-code contract
# ----------------------------------------------------------------------
class TestDrivers:
    def test_lint_paths_walks_and_sorts(self, tmp_path: Path) -> None:
        (tmp_path / "repro" / "joins").mkdir(parents=True)
        (tmp_path / "repro" / "joins" / "b.py").write_text(
            "def f(lo_a, hi_b):\n    return lo_a <= hi_b\n", encoding="utf-8"
        )
        (tmp_path / "repro" / "joins" / "a.py").write_text(
            "import random\n", encoding="utf-8"
        )
        (tmp_path / "repro" / "joins" / "notes.txt").write_text("skip", encoding="utf-8")
        report = lint_paths([tmp_path])
        assert report.checked == 2
        assert [finding.code for finding in report.findings] == ["RPL002", "RPL201"]
        assert report.findings == sorted(report.findings)

    def test_diagnostic_render_format(self, tmp_path: Path) -> None:
        findings = lint_source(tmp_path, "repro/core/mod.py", "import random\n")
        (finding,) = findings
        rendered = finding.render()
        assert rendered.endswith(f": {finding.code} {finding.message}")
        assert f"{finding.path}:{finding.line}:{finding.col}:" in rendered


class TestCli:
    def _write(self, tmp_path: Path, rel: str, source: str) -> Path:
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
        return path

    def test_exit_zero_on_clean_tree(
        self, tmp_path: Path, capsys: pytest.CaptureFixture[str]
    ) -> None:
        self._write(tmp_path, "repro/joins/mod.py", "def f() -> int:\n    return 1\n")
        assert cli.main([str(tmp_path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_exit_one_on_findings(
        self, tmp_path: Path, capsys: pytest.CaptureFixture[str]
    ) -> None:
        path = self._write(tmp_path, "repro/core/mod.py", "import random\n")
        assert cli.main([str(path)]) == 1
        out = capsys.readouterr().out
        assert f"{path}:1:1: RPL002" in out
        assert "1 finding(s)" in out

    def test_exit_two_without_paths(self, capsys: pytest.CaptureFixture[str]) -> None:
        assert cli.main([]) == 2
        assert "no paths given" in capsys.readouterr().err

    def test_exit_two_on_missing_path(
        self, tmp_path: Path, capsys: pytest.CaptureFixture[str]
    ) -> None:
        assert cli.main([str(tmp_path / "nowhere")]) == 2
        assert "error" in capsys.readouterr().err

    def test_syntax_error_is_a_finding_not_an_abort(
        self, tmp_path: Path, capsys: pytest.CaptureFixture[str]
    ) -> None:
        self._write(tmp_path, "broken.py", "def f(:\n")
        self._write(tmp_path, "repro/core/mod.py", "import random\n")
        assert cli.main([str(tmp_path)]) == 1
        out = capsys.readouterr().out
        # The broken file is reported, and the rest is still linted.
        assert PARSE_ERROR_CODE in out
        assert "cannot parse" in out
        assert "RPL002" in out

    def test_exit_two_on_unknown_select_code(
        self, tmp_path: Path, capsys: pytest.CaptureFixture[str]
    ) -> None:
        path = self._write(tmp_path, "mod.py", "x = 1\n")
        assert cli.main(["--select", "RPL123", str(path)]) == 2
        assert "unknown rule code" in capsys.readouterr().err

    def test_exit_two_on_duplicate_path(
        self, tmp_path: Path, capsys: pytest.CaptureFixture[str]
    ) -> None:
        path = self._write(tmp_path, "mod.py", "x = 1\n")
        assert cli.main([str(path), str(path)]) == 2
        assert "path given twice" in capsys.readouterr().err

    def test_select_filters_rules(
        self, tmp_path: Path, capsys: pytest.CaptureFixture[str]
    ) -> None:
        path = self._write(
            tmp_path,
            "repro/core/mod.py",
            "import random\nimport numpy as np\nnp.random.seed(0)\n",
        )
        assert cli.main(["--select", "rpl002", str(path)]) == 1
        out = capsys.readouterr().out
        assert "RPL002" in out
        assert "RPL001" not in out

    def test_list_rules_prints_catalogue(
        self, capsys: pytest.CaptureFixture[str]
    ) -> None:
        assert cli.main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in sorted(ALL_CODES | PROJECT_CODES | {PARSE_ERROR_CODE}):
            assert code in out


# ----------------------------------------------------------------------
# The repository lints itself
# ----------------------------------------------------------------------
def test_repository_is_clean() -> None:
    """The CI gate (`python -m tools.repro_lint src benchmarks tools tests`) holds.

    Runs the *full* rule set — per-file and whole-program families alike.
    Deliberate-violation fixture trees under ``tests/fixtures/lint`` are
    pruned by their ``.repro-lint-ignore`` marker.
    """
    findings = cli.run_paths(
        [str(REPO_ROOT / name) for name in ("src", "benchmarks", "tools", "tests")]
    )
    assert findings == [], "\n".join(finding.render() for finding in findings)
