"""repro — a reproduction of THERMAL-JOIN (SIGMOD 2015).

A scalable in-memory spatial self-join for dynamic (moving-object)
workloads, together with the eight baseline joins, workload generators,
simulation driver and benchmark harness used by the paper's evaluation.

Quickstart
----------
>>> from repro import ThermalJoin, make_uniform_workload, SimulationRunner
>>> dataset, motion = make_uniform_workload(5000, width=15.0, seed=0)
>>> runner = SimulationRunner(dataset, motion, ThermalJoin())
>>> records = runner.run(n_steps=5)
>>> records[0].n_results > 0
True
"""

from typing import Any

from repro.datasets import (
    BranchJitter,
    ClusterDrift,
    MotionModel,
    RandomTranslation,
    SpatialDataset,
    make_clustered_dataset,
    make_clustered_workload,
    make_neural_dataset,
    make_neural_workload,
    make_uniform_dataset,
    make_uniform_workload,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "SpatialDataset",
    "MotionModel",
    "RandomTranslation",
    "ClusterDrift",
    "BranchJitter",
    "make_uniform_dataset",
    "make_uniform_workload",
    "make_clustered_dataset",
    "make_clustered_workload",
    "make_neural_dataset",
    "make_neural_workload",
]


def __getattr__(name: str) -> Any:
    """Lazy imports for the heavier subpackages (joins, core, simulation).

    Keeps ``import repro`` light while still exposing the full public API
    at the package root.
    """
    if name.startswith("_"):
        raise AttributeError(f"module 'repro' has no attribute {name!r}")
    import importlib

    api = importlib.import_module("repro._api")
    try:
        return getattr(api, name)
    except AttributeError:
        raise AttributeError(f"module 'repro' has no attribute {name!r}") from None
