"""JSONL emission: one JSON document per line, numpy-safe.

The trace sink and the bench driver both write JSON Lines — the
append-friendly format that lets a long run stream records as they
happen and a consumer (or a human with ``grep``) read them without
loading the whole file.
"""

from __future__ import annotations

import json
from pathlib import Path
from types import TracebackType
from typing import Any

__all__ = ["JsonlWriter", "json_default", "to_jsonable"]


def json_default(value: object) -> Any:
    """``json.dumps`` fallback: numpy scalars/arrays, sets, everything else
    by ``repr`` (a trace line must never fail to serialise)."""
    item = getattr(value, "item", None)
    if callable(item) and getattr(value, "ndim", 1) == 0:
        return item()
    tolist = getattr(value, "tolist", None)
    if callable(tolist):
        return tolist()
    if isinstance(value, (set, frozenset)):
        return sorted(value)
    return repr(value)


def to_jsonable(value: object) -> Any:
    """Round-trip ``value`` through the tolerant encoder into plain
    Python containers (used before schema validation)."""
    return json.loads(json.dumps(value, default=json_default))


class JsonlWriter:
    """Appends one JSON document per line to ``path``.

    Opens lazily on first :meth:`write`, flushes every line (a crashed
    run keeps everything written so far) and supports use as a context
    manager.  Parent directories are created as needed.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._file: Any = None
        self.lines_written = 0

    def write(self, obj: object) -> None:
        if self._file is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            # noqa-justified: held open across writes for streaming append;
            # closed by close()/__exit__.
            self._file = self.path.open("w", encoding="utf-8")  # noqa: SIM115
        json.dump(obj, self._file, default=json_default)
        self._file.write("\n")
        self._file.flush()
        self.lines_written += 1

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None

    def __enter__(self) -> JsonlWriter:
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:
        return f"JsonlWriter({str(self.path)!r}, lines={self.lines_written})"
