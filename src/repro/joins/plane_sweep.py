"""Global plane-sweep self-join (Preparata & Shamos [29]).

Sorts the dataset by lower x bound each step (no persistent structures)
and runs the forward sweep: every pair whose x-intervals overlap has its
remaining dimensions tested.  Efficient for low selectivity; degenerates
towards the nested loop as objects grow (Figure 2), which is precisely
the regime THERMAL-JOIN targets.
"""

from __future__ import annotations

from repro.geometry import sort_by_x, sweep_self
from repro.joins.base import ID_BYTES, SpatialJoinAlgorithm

__all__ = ["PlaneSweepJoin"]


class PlaneSweepJoin(SpatialJoinAlgorithm):
    """Forward plane sweep over the x-sorted dataset."""

    name = "plane-sweep"

    def __init__(self, count_only=False):
        super().__init__(count_only=count_only)
        self._sorted = None

    def _build(self, dataset):
        lo, hi = dataset.boxes()
        self._sorted = sort_by_x(lo, hi)

    def _join(self, dataset, accumulator):
        lo, hi, ids = self._sorted
        i_ids, j_ids, tests = sweep_self(lo, hi, ids)
        accumulator.extend(i_ids, j_ids)
        self._sorted = None  # throw-away, like the paper's variant
        return tests

    def memory_footprint(self):
        # Only the transient sort permutation is held during a step.
        if self._sorted is None:
            return 0
        return self._sorted[2].size * ID_BYTES
