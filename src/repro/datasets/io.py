"""Saving and loading workload snapshots (``.npz``).

Reproducibility plumbing: freeze a generated workload to disk so the
exact same object configuration can be re-joined later, shared, or fed
to an external tool.  Snapshots store the structure-of-arrays state of
a :class:`~repro.datasets.dataset.SpatialDataset` — centers, widths,
bounds, attributes — plus optional per-object labels (cluster / neuron
assignments used by the motion models).
"""

from __future__ import annotations

import zipfile
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:
    from pathlib import Path

from repro.datasets.dataset import SpatialDataset

__all__ = ["save_dataset", "load_dataset"]

#: Format marker stored in every snapshot.
_FORMAT = "repro-spatial-dataset-v1"


def save_dataset(path: str | Path, dataset: SpatialDataset, labels: np.ndarray | None = None) -> None:
    """Write a dataset snapshot to ``path`` (``.npz``).

    Parameters
    ----------
    path:
        Target file path (``.npz`` appended by numpy if missing).
    dataset:
        The :class:`SpatialDataset` to freeze (current positions).
    labels:
        Optional per-object integer labels (cluster/neuron ids).
    """
    bounds_lo, bounds_hi = dataset.bounds
    payload = {
        "format": np.asarray(_FORMAT),
        "centers": dataset.centers,
        "widths": dataset.widths,
        "bounds_lo": np.asarray(bounds_lo),
        "bounds_hi": np.asarray(bounds_hi),
    }
    if labels is not None:
        labels = np.asarray(labels)
        if labels.shape[0] != len(dataset):
            raise ValueError(
                f"labels length {labels.shape[0]} does not match "
                f"{len(dataset)} objects"
            )
        payload["labels"] = labels
    for name, values in dataset.attributes.items():
        payload[f"attr_{name}"] = values
    np.savez_compressed(path, **payload)


def load_dataset(path: str | Path) -> tuple[SpatialDataset, np.ndarray | None]:
    """Load a snapshot written by :func:`save_dataset`.

    A snapshot that fails to parse, is missing required arrays, or
    carries malformed/non-finite geometry raises :class:`ValueError`
    with a message naming what is wrong — truncated or bit-flipped
    files (e.g. a copy interrupted mid-transfer) must not surface as a
    bare ``zipfile``/``numpy`` traceback.

    Returns
    -------
    tuple
        ``(dataset, labels)`` — ``labels`` is ``None`` when the snapshot
        carries none.
    """
    try:
        archive_ctx = np.load(path, allow_pickle=False)
    except (OSError, ValueError, zipfile.BadZipFile) as exc:
        raise ValueError(f"cannot read dataset snapshot {path!r}: {exc}") from exc
    with archive_ctx as archive:
        if "format" not in archive.files or str(archive["format"]) != _FORMAT:
            raise ValueError(f"{path!r} is not a repro dataset snapshot")
        required = ("centers", "widths", "bounds_lo", "bounds_hi")
        missing = [name for name in required if name not in archive.files]
        if missing:
            raise ValueError(
                f"dataset snapshot {path!r} is missing arrays {missing}"
            )
        try:
            loaded = {name: archive[name] for name in archive.files}
        except (OSError, ValueError, KeyError, zipfile.BadZipFile) as exc:
            raise ValueError(
                f"dataset snapshot {path!r} holds unreadable array data: {exc}"
            ) from exc
    centers = loaded["centers"]
    widths = loaded["widths"]
    n = centers.shape[0] if centers.ndim else 0
    if centers.ndim != 2 or centers.shape[1] != 3:
        raise ValueError(
            f"snapshot {path!r}: centers must have shape (n, 3), "
            f"got {centers.shape}"
        )
    if widths.shape != centers.shape:
        raise ValueError(
            f"snapshot {path!r}: widths shape {widths.shape} does not match "
            f"centers shape {centers.shape}"
        )
    for name in ("bounds_lo", "bounds_hi"):
        if loaded[name].shape != (3,):
            raise ValueError(
                f"snapshot {path!r}: {name} must have shape (3,), "
                f"got {loaded[name].shape}"
            )
    for name in ("centers", "widths", "bounds_lo", "bounds_hi"):
        values = loaded[name]
        if not np.issubdtype(values.dtype, np.number):
            raise ValueError(
                f"snapshot {path!r}: {name} has non-numeric dtype "
                f"{values.dtype}"
            )
        if not np.all(np.isfinite(values)):
            raise ValueError(
                f"snapshot {path!r}: {name} contains non-finite values "
                "(NaN/inf) — the file is corrupt or was written from a "
                "broken dataset"
            )
    labels = loaded.get("labels")
    if labels is not None and labels.shape[0] != n:
        raise ValueError(
            f"snapshot {path!r}: labels length {labels.shape[0]} does not "
            f"match {n} objects"
        )
    attributes = {
        key[len("attr_"):]: values
        for key, values in loaded.items()
        if key.startswith("attr_")
    }
    dataset = SpatialDataset(
        centers,
        widths,
        bounds=(loaded["bounds_lo"], loaded["bounds_hi"]),
        attributes=attributes,
    )
    return dataset, labels
