import numpy as np


def nudge(x: float, rng: np.random.Generator) -> float:
    return x + float(rng.random())
