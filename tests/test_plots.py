"""Tests for the ASCII chart rendering."""

from __future__ import annotations

from repro.experiments.plots import render_chart, render_sparkline


class TestRenderChart:
    def test_contains_all_series_marks(self):
        chart = render_chart(
            [1, 2, 3],
            {"fast": [1.0, 2.0, 3.0], "slow": [10.0, 20.0, 30.0]},
        )
        assert "o fast" in chart
        assert "* slow" in chart
        plot_body = "".join(line for line in chart.splitlines() if "|" in line)
        assert "o" in plot_body and "*" in plot_body

    def test_log_scale_separates_magnitudes(self):
        # On a log axis, 1 and 1000 land at opposite edges.
        chart = render_chart([0, 1], {"a": [1.0, 1000.0]}, height=10)
        lines = chart.splitlines()
        plot_rows = [l for l in lines if "|" in l]
        assert "o" in plot_rows[0]  # top row: the 1000
        assert "o" in plot_rows[-1]  # bottom row: the 1

    def test_none_values_skipped(self):
        chart = render_chart([1, 2, 3], {"a": [1.0, None, 3.0]})
        assert chart.count("o") >= 2

    def test_all_none_handled(self):
        chart = render_chart([1, 2], {"a": [None, None]}, title="T")
        assert "(no data)" in chart

    def test_title_and_label(self):
        chart = render_chart(
            [1, 2], {"a": [1.0, 2.0]}, title="My chart", y_label="seconds"
        )
        assert chart.startswith("My chart")
        assert "seconds" in chart

    def test_nonpositive_values_force_linear(self):
        chart = render_chart([1, 2], {"a": [0.0, 5.0]}, log_y=True)
        assert "log scale" not in chart

    def test_constant_series(self):
        chart = render_chart([1, 2, 3], {"a": [2.0, 2.0, 2.0]})
        assert "o" in chart


class TestSparkline:
    def test_monotone_series(self):
        line = render_sparkline([1, 2, 3, 4, 5, 6, 7, 8])
        assert line[0] == "▁"
        assert line[-1] == "█"

    def test_constant_series(self):
        line = render_sparkline([3, 3, 3])
        assert len(line) == 3
        assert len(set(line)) == 1

    def test_none_becomes_gap(self):
        assert " " in render_sparkline([1, None, 3])

    def test_empty(self):
        assert render_sparkline([None, None]) == ""

    def test_width_resampling(self):
        line = render_sparkline(list(range(100)), width=10)
        assert len(line) == 10
