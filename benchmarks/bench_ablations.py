"""Ablation benchmarks — the design choices DESIGN.md calls out.

Times THERMAL-JOIN with each mechanism individually disabled and asserts
the mechanism's measurable effect: hot spots remove overlap tests,
incremental maintenance removes rebuild work, garbage collection bounds
the footprint.
"""

from __future__ import annotations

import pytest

from repro.core import ThermalJoin
from repro.experiments.workloads import scaled_neural, scaled_uniform
from repro.simulation import SimulationRunner

from conftest import NEURAL_N

VARIANTS = {
    "full": {},
    "no-hot-spots": {"hot_spots": False},
    "no-enclosure": {"enclosure_shortcut": False},
    "rebuild-each-step": {"incremental": False},
}


@pytest.mark.parametrize("variant", list(VARIANTS))
def test_ablation_step(benchmark, variant):
    """One moving-workload step per ablation variant."""
    dataset, motion, _labels = scaled_neural(NEURAL_N, seed=701)
    join = ThermalJoin(resolution=1.0, count_only=True, **VARIANTS[variant])

    def step():
        result = join.step(dataset)
        motion.step(dataset)
        return result

    result = benchmark(step)
    assert result.n_results > 0


def test_hot_spots_remove_overlap_tests():
    """The central mechanism: disabling hot spots adds overlap tests for
    every within-cell pair (the hot-spot emits) while leaving the result
    identical.  The magnitude depends on how much of the selectivity is
    in-cell; the direction must always hold."""
    dataset, _motion, _labels = scaled_neural(NEURAL_N, seed=702)
    with_hs_join = ThermalJoin(resolution=1.0, count_only=True)
    with_hs = with_hs_join.step(dataset)
    without_hs = ThermalJoin(
        resolution=1.0, count_only=True, hot_spots=False
    ).step(dataset)
    assert without_hs.n_results == with_hs.n_results
    assert without_hs.stats.overlap_tests > with_hs.stats.overlap_tests
    # ...and the hot spots did real work: pairs emitted without any test.
    assert with_hs_join.last_step_info["shortcut_pairs"] > 0
    assert with_hs_join.last_step_info["hot_spot_cells"] > 0


def test_incremental_maintenance_recycles_cells():
    """Incremental refresh reuses cells; rebuild-from-scratch creates
    them all again every step."""
    dataset, motion = scaled_uniform(3000, seed=703)
    incremental = ThermalJoin(resolution=1.0, count_only=True)
    rebuild = ThermalJoin(resolution=1.0, count_only=True, incremental=False)
    for _ in range(4):
        incremental.step(dataset)
        rebuild.step(dataset)
        motion.step(dataset)
    assert incremental.pgrid.cells_recycled > 0
    assert rebuild.pgrid.cells_recycled == 0


def test_gc_bounds_footprint():
    """With GC off the vacant cells accumulate; the 35% policy keeps the
    grid's footprint bounded over a long run.  Uses a sparse drifting
    cluster so plenty of cells are vacated behind the moving objects."""
    from repro.experiments.workloads import scaled_clustered

    def run(gc_threshold):
        dataset, motion, _labels = scaled_clustered(
            1500, sd_factor=0.6, translation=35.0, seed=704
        )
        join = ThermalJoin(resolution=1.0, count_only=True, gc_threshold=gc_threshold)
        runner = SimulationRunner(dataset, motion, join)
        runner.run(12)
        return len(join.pgrid.cells)

    assert run(0.35) < run(1.0)
