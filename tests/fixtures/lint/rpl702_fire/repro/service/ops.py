"""The callee's async-ness is a fact about THIS module."""


async def refresh() -> None:
    pass
