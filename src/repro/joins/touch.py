"""TOUCH: in-memory spatial join by hierarchical data-oriented partitioning
(Nobari et al. [26]).

TOUCH builds a bulk-loaded hierarchy over one dataset and *assigns* each
object of the other dataset to the lowest node it can unambiguously
descend to: starting at the root, an object follows a child as long as
it overlaps exactly one child MBR; when it overlaps none or several (or
reaches a leaf) it stops.  Each assigned object is then compared only
against the objects below the children it overlaps — a drastic
reduction of overlap tests compared to a synchronous traversal, at the
price of rebuilding the assignment every time step ("it is not designed
for iterative changes to the dataset and the index has to be rebuilt in
every iteration from scratch", §2.1 — the exact property the paper's
Figure 7(b) shows).

For the self-join both roles are played by the same dataset.  Every
qualifying pair is discovered from both sides' assignments, so an
``id < id`` filter reports it exactly once while both discoveries'
tests are counted.  Configuration follows the paper's sweep: fan-out 2.
"""

from __future__ import annotations

import numpy as np

from repro.geometry import cross_join_groups, group_by_keys, overlap_elementwise
from repro.joins.base import MBR_BYTES, POINTER_BYTES, SpatialJoinAlgorithm
from repro.joins.rtree import STRTree

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.datasets import SpatialDataset
    from repro.engine import Executor
    from repro.geometry import PairAccumulator

__all__ = ["TouchJoin"]


class TouchJoin(SpatialJoinAlgorithm):
    """TOUCH self-join over an STR-packed hierarchy.

    Parameters
    ----------
    fanout:
        Hierarchy fan-out (the paper's parameter sweep found 2 best).
    """

    name = "touch"

    def __init__(self, count_only: bool = False, fanout: int = 2, executor: Executor | None = None) -> None:
        super().__init__(count_only=count_only, executor=executor)
        self.fanout = int(fanout)
        self._tree = None
        self._boxes = None

    def _build(self, dataset: SpatialDataset) -> None:
        lo, hi = dataset.boxes()
        self._boxes = (lo, hi)
        self._tree = STRTree(lo, hi, self.fanout)

    def _subtree_object_range(self, level: int, node: int) -> tuple[int, int]:
        """Contiguous ``leaf_order`` range below ``node`` at ``level``."""
        span = self.fanout ** (level + 1)
        start = node * span
        return start, min(start + span, self._tree.n_objects)

    def _join(self, dataset: SpatialDataset, accumulator: PairAccumulator) -> None:
        tree = self._tree
        lo, hi = self._boxes
        n = tree.n_objects
        fanout = tree.fanout
        top = tree.n_levels - 1

        def child_overlaps(queries, nodes, child_level):
            """Per fan-out slot: (overlap flags, child indices)."""
            count_below = tree.level_lo[child_level].shape[0]
            box_lo = tree.level_lo[child_level]
            box_hi = tree.level_hi[child_level]
            results = []
            for off in range(fanout):
                child = nodes * fanout + off
                valid = child < count_below
                child_c = np.minimum(child, count_below - 1)
                overlap = np.logical_and(
                    valid,
                    overlap_elementwise(
                        lo[queries], hi[queries], box_lo[child_c], box_hi[child_c]
                    ),
                )
                results.append((overlap, child_c))
            return results

        # Two frontiers, processed level by level from the top:
        # * routing — queries still descending toward their assignment
        #   node (they overlap exactly one child at every step so far);
        # * scanning — range-query probes below an assignment node,
        #   descending into *every* overlapping child.
        # Both turn into exact object tests when they reach the leaves.
        route_q = np.arange(n, dtype=np.int64)
        count_top = tree.level_lo[top].shape[0]
        # A multi-node top level acts as the children of a virtual root
        # (handled below with a temporary fan-out equal to its count), so
        # every query starts at node 0 either way.
        route_node = np.zeros(n, dtype=np.int64)
        scan_q = np.empty(0, dtype=np.int64)
        scan_node = np.empty(0, dtype=np.int64)

        leaf_queries = []
        leaf_nodes = []

        level = top
        first_step = count_top > 1
        while level >= 0:
            if level == 0 and not first_step:
                if route_q.size:
                    leaf_queries.append(route_q)
                    leaf_nodes.append(route_node)
                if scan_q.size:
                    leaf_queries.append(scan_q)
                    leaf_nodes.append(scan_node)
                break
            child_level = level if first_step else level - 1
            # Route: exactly-one-child queries keep descending; the rest
            # are assigned here and spawn scans of each overlapping child.
            next_route_q = next_route_node = None
            new_scan_q = []
            new_scan_node = []
            if route_q.size:
                # First step: children of the virtual root, i.e. every
                # top-level node; afterwards the real fan-out slots.
                slots = (
                    [
                        (
                            overlap_elementwise(
                                lo[route_q],
                                hi[route_q],
                                tree.level_lo[top][c],
                                tree.level_hi[top][c],
                            ),
                            np.full(route_q.size, c, dtype=np.int64),
                        )
                        for c in range(count_top)
                    ]
                    if first_step
                    else child_overlaps(route_q, route_node, child_level)
                )
                overlap_count = np.zeros(route_q.size, dtype=np.int64)
                first_child = np.full(route_q.size, -1, dtype=np.int64)
                for overlap, child_c in slots:
                    first = np.logical_and(overlap, overlap_count == 0)
                    first_child[first] = child_c[first]
                    overlap_count += overlap
                unique = overlap_count == 1
                ambiguous = overlap_count > 1
                next_route_q = route_q[unique]
                next_route_node = first_child[unique]
                for overlap, child_c in slots:
                    scan = np.logical_and(ambiguous, overlap)
                    if scan.any():
                        new_scan_q.append(route_q[scan])
                        new_scan_node.append(child_c[scan])
            # Scan: probes descend into every overlapping child.
            if scan_q.size:
                for overlap, child_c in child_overlaps(scan_q, scan_node, child_level):
                    if overlap.any():
                        new_scan_q.append(scan_q[overlap])
                        new_scan_node.append(child_c[overlap])
            route_q = next_route_q if next_route_q is not None else np.empty(0, np.int64)
            route_node = (
                next_route_node if next_route_node is not None else np.empty(0, np.int64)
            )
            if new_scan_q:
                scan_q = np.concatenate(new_scan_q)
                scan_node = np.concatenate(new_scan_node)
            else:
                scan_q = np.empty(0, dtype=np.int64)
                scan_node = np.empty(0, dtype=np.int64)
            if not first_step:
                level -= 1
            first_step = False

        # Exact object tests at the leaves, batched per leaf.
        def on_pairs(left, right, _groups):
            # left = leaf object, right = query; emit exactly once.
            keep = left < right
            if keep.any():
                accumulator.extend(left[keep], right[keep])

        if not leaf_queries:
            return 0
        queries = np.concatenate(leaf_queries)
        nodes = np.concatenate(leaf_nodes)
        q_cat, q_starts, q_stops, unique_nodes = group_by_keys(nodes, ids=queries)
        sub_starts = unique_nodes * fanout
        sub_stops = np.minimum(sub_starts + fanout, n)
        groups = np.arange(unique_nodes.size, dtype=np.int64)
        return cross_join_groups(
            lo,
            hi,
            tree.leaf_order,
            sub_starts,
            sub_stops,
            q_cat,
            q_starts,
            q_stops,
            groups,
            groups,
            on_pairs,
            count="full",
        )

    def memory_footprint(self) -> int:
        if self._tree is None:
            return 0
        # Hierarchy entries plus one assignment pointer per object.
        return (
            self._tree.n_nodes() * (MBR_BYTES + POINTER_BYTES)
            + self._tree.n_objects * 2 * POINTER_BYTES
        )
