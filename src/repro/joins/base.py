"""Common interface, statistics and accounting for all join algorithms.

Every join in this repository — THERMAL-JOIN and the eight baselines —
implements :class:`SpatialJoinAlgorithm`.  The contract mirrors the
paper's methodology (Section 5.1.1):

* the dataset is mutated in place by the simulation between steps and is
  in a consistent state when :meth:`step` runs;
* algorithms never reorder the dataset's object list; they refer to
  objects by positional index;
* per step, an algorithm (re)builds or refreshes its index and then
  computes the full self-join, reporting canonical unique pairs;
* algorithms are instrumented: pairwise overlap-test counts (the
  machine-independent cost metric of Figure 7(c)), per-phase wall time,
  and an analytic memory footprint in a C-struct cost model so the
  footprint comparisons of Figures 7(d) and 10(b) are like-for-like
  (Python object overhead would otherwise dominate and distort them).

Footprint model constants correspond to the paper-era C++
implementation: 8-byte pointers and identifiers, 3-D MBRs as six
doubles.

Statistics are written through the recording methods on
:class:`JoinStatistics` (enforced by repro-lint rule RPL202): the
fields are aggregates with invariants — ``build_seconds`` mirrors the
prepare stage, ``join_seconds`` the remaining stages, ``task_retries``
the retry-class events — and the methods are the single place those
invariants live.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:
    import numpy as np

    from repro.datasets.dataset import SpatialDataset
    from repro.datasets.delta import MotionDelta
    from repro.engine.executors import Executor
    from repro.engine.plan import JoinPlan
    from repro.geometry.pairs import PairAccumulator
    from repro.obs.metrics import MetricsRegistry

__all__ = [
    "POINTER_BYTES",
    "ID_BYTES",
    "MBR_BYTES",
    "FLOAT_BYTES",
    "RETRY_EVENT_KINDS",
    "JoinStatistics",
    "JoinResult",
    "SpatialJoinAlgorithm",
]

#: Size of a pointer in the modelled C++ implementation.
POINTER_BYTES = 8
#: Size of an object/cell identifier.
ID_BYTES = 8
#: Size of a 3-D MBR stored as six IEEE doubles.
MBR_BYTES = 48
#: Size of one double-precision float.
FLOAT_BYTES = 8

#: Robustness-event kinds that represent a re-execution of a task.
#: Defined here because ``JoinStatistics.task_retries`` is *defined* as
#: the count of these kinds; the executors re-export the tuple.
RETRY_EVENT_KINDS = ("task_retry", "task_inline", "task_timeout")


@dataclass
class JoinStatistics:
    """Instrumentation for one join step.

    Attributes
    ----------
    overlap_tests:
        Number of pairwise MBR overlap predicates evaluated.  Hot-spot
        emits and enclosure shortcuts produce results *without* tests,
        which is exactly what the paper's Figure 7(c) measures.
    build_seconds:
        Wall time spent building or refreshing the index.
    join_seconds:
        Wall time spent computing the join proper.
    memory_bytes:
        Analytic index footprint right after the step (C-struct model).
    phase_seconds:
        Optional finer breakdown (THERMAL-JOIN reports ``internal`` and
        ``external`` join phases for Figure 10(a)).
    stage_seconds:
        Wall time per engine stage: ``prepare`` (index build/refresh),
        ``partition`` (plan emission), ``verify`` (task execution) and
        ``merge`` (shard/statistics aggregation).  ``build_seconds`` and
        ``join_seconds`` remain the stage sums existing figures consume.
    task_counters:
        One counters dict per executed plan task, in task order
        (``overlap_tests`` plus algorithm-specific counters such as
        ``shortcut_pairs``).
    events:
        Robustness events the executor recorded during the step, in
        occurrence order.  Each is a dict with a ``kind`` key —
        ``task_retry``, ``task_inline``, ``task_timeout``,
        ``pool_broken``, ``pool_rebuild`` or ``degraded`` — plus
        kind-specific detail (task index, error repr, downgrade rung).
        Empty on a clean step.
    task_retries:
        Number of task re-executions behind this step's result (the
        retry-class events above); 0 on a clean step.  Recovered steps
        still report pair sets and overlap tests identical to serial —
        these fields only make the recovery visible.
    index_counters:
        Snapshot of the algorithm's :class:`~repro.obs.MetricsRegistry`
        taken right after the step: the index-internal counters each
        component maintains (P-Grid cell accounting, T-Grid fallbacks,
        tuner state, executor degradation rung), as a
        ``{provider: {metric: scalar}}`` tree.  Empty for algorithms
        that register no providers beyond the executor default.
    """

    overlap_tests: int = 0
    build_seconds: float = 0.0
    join_seconds: float = 0.0
    memory_bytes: int = 0
    phase_seconds: dict[str, float] = field(default_factory=dict)
    stage_seconds: dict[str, float] = field(default_factory=dict)
    task_counters: list[dict[str, Any]] = field(default_factory=list)
    events: list[dict[str, Any]] = field(default_factory=list)
    task_retries: int = 0
    index_counters: dict[str, dict[str, Any]] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        """Build plus join wall time for the step."""
        return self.build_seconds + self.join_seconds

    # ------------------------------------------------------------------
    # Recording methods — the only sanctioned write paths (RPL202)
    # ------------------------------------------------------------------
    def add_overlap_tests(self, tests: int) -> None:
        """Charge ``tests`` pairwise overlap predicates to the step."""
        self.overlap_tests += int(tests)

    def record_task(self, counters: Mapping[str, Any]) -> None:
        """Fold one executed task's counters into the step aggregate.

        Appends a private copy to :attr:`task_counters` and charges the
        task's ``overlap_tests`` share, keeping the step total equal to
        the sum over tasks by construction.
        """
        self.overlap_tests += int(counters.get("overlap_tests", 0))
        self.task_counters.append(dict(counters))

    def record_stage(self, stage: str, seconds: float) -> None:
        """Record one engine stage's wall time.

        Maintains the invariant existing figures rely on:
        ``build_seconds`` is the prepare stage, ``join_seconds`` the sum
        of every other stage.
        """
        self.stage_seconds[stage] = self.stage_seconds.get(stage, 0.0) + float(seconds)
        if stage == "prepare":
            self.build_seconds += float(seconds)
        else:
            self.join_seconds += float(seconds)

    def record_phase(self, phase: str, seconds: float) -> None:
        """Accumulate wall time for an algorithm-declared join phase."""
        self.phase_seconds[phase] = self.phase_seconds.get(phase, 0.0) + float(seconds)

    def record_events(self, events: Iterable[Mapping[str, Any]]) -> None:
        """Append robustness events, counting retry-class kinds.

        ``task_retries`` mirrors the number of retry-class events by
        definition; routing every event through here keeps the two in
        lock-step.
        """
        for event in events:
            self.events.append(dict(event))
            if event.get("kind") in RETRY_EVENT_KINDS:
                self.task_retries += 1

    def record_memory(self, nbytes: int) -> None:
        """Record the post-step analytic index footprint."""
        self.memory_bytes = int(nbytes)

    def record_index_counters(self, snapshot: Mapping[str, Mapping[str, Any]]) -> None:
        """Store the per-provider index-counter snapshot for the step."""
        self.index_counters = {
            provider: dict(values) for provider, values in snapshot.items()
        }


@dataclass
class JoinResult:
    """Result of one self-join step.

    ``pairs`` holds canonical ``(i, j)`` index arrays (``i < j``, unique),
    or ``None`` when the algorithm ran in count-only mode; ``n_results``
    is always populated.
    """

    n_results: int
    stats: JoinStatistics
    pairs: tuple | None = None


class SpatialJoinAlgorithm:
    """Base class for all self-join algorithms.

    Subclasses implement :meth:`_build` (index construction or refresh
    for the dataset's current positions) and :meth:`_join` (emit pairs
    into an accumulator and return the overlap-test count).  Subclasses
    must emit each qualifying pair exactly once and no others; the test
    suite enforces this against a brute-force oracle.

    Every step runs through the staged execution engine
    (:mod:`repro.engine`): prepare (``_build``), partition (``plan``),
    verify (executor runs the plan's tasks) and merge (shards and
    counters are aggregated).  Algorithms that do not emit a partitioned
    plan inherit the default single-task fallback, so the engine
    interface is universal.

    Parameters
    ----------
    count_only:
        When true, result pairs are counted but not materialised — used
        by large benchmark sweeps where the pair lists would dominate
        memory (the paper similarly reports counts, not result dumps).
    executor:
        Task executor for the verify stage: an
        :class:`~repro.engine.Executor` instance, a spec string
        (``"serial"``, ``"thread[:N]"``, ``"process[:N]"``) or ``None``
        to consult the ``REPRO_EXECUTOR`` environment variable (default
        serial).
    """

    #: Human-readable algorithm name used by the experiment harness.
    name = "abstract"

    def __init__(
        self, count_only: bool = False, executor: Executor | str | None = None
    ) -> None:
        from repro.engine import resolve_executor
        from repro.geometry.kernels import kernel_metrics
        from repro.obs import MetricsRegistry

        self.count_only = count_only
        self.executor: Executor = resolve_executor(executor)
        self.stats = JoinStatistics()
        self._last_prepare_seconds = 0.0
        #: Read-only providers snapshot into ``JoinStatistics.index_counters``
        #: each step; subclasses register their index internals here.
        self.metrics: MetricsRegistry = MetricsRegistry()
        self.metrics.register("executor", self._executor_metrics)
        self.metrics.register("kernels", kernel_metrics)

    def _executor_metrics(self) -> dict[str, Any]:
        """Default provider: executor identity and degradation rung."""
        executor = self.executor
        values: dict[str, Any] = {"name": executor.name}
        degraded = getattr(executor, "degraded", None)
        if degraded is not None:
            values["degraded"] = degraded
        return values

    # ------------------------------------------------------------------
    # Subclass responsibilities
    # ------------------------------------------------------------------
    def _build(self, dataset: SpatialDataset) -> None:
        """(Re)build or refresh the index for the dataset's current state."""
        raise NotImplementedError

    def _join(self, dataset: SpatialDataset, accumulator: PairAccumulator) -> int:
        """Compute the self-join, emitting pairs; return the test count."""
        raise NotImplementedError

    def plan(self, dataset: SpatialDataset) -> JoinPlan:
        """Partition stage: emit this step's :class:`~repro.engine.JoinPlan`.

        The default wraps ``_join`` as one opaque task; ported
        algorithms override this to emit independent per-cell, per-strip
        or per-subtree tasks an executor can schedule concurrently.
        """
        from repro.engine import FallbackJoinTask, JoinPlan

        return JoinPlan(tasks=[FallbackJoinTask(algorithm=self, dataset=dataset)])

    def memory_footprint(self) -> int:
        """Index footprint in bytes under the C-struct cost model.

        Excludes the raw object list itself (shared by all algorithms;
        see :meth:`SpatialDataset.memory_nbytes`), matching the paper's
        per-index footprint comparison.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Driver
    # ------------------------------------------------------------------
    def step(self, dataset: SpatialDataset) -> JoinResult:
        """Run one full self-join step through the staged engine.

        Drives prepare → partition → verify → merge via
        :func:`repro.engine.execute_step` and returns a
        :class:`JoinResult`.
        """
        from repro.engine import execute_step

        return execute_step(self, dataset)

    def step_delta(
        self, dataset: SpatialDataset, delta: MotionDelta | None
    ) -> JoinResult:
        """Delta-aware step: join the dataset knowing what just moved.

        ``delta`` describes the motion committed since the previous step
        (or ``None`` when the caller has no delta — the first step of a
        run, or a motion model that predates the delta lifecycle).  The
        result contract is identical to :meth:`step`: algorithms that
        exploit the delta must return exactly the pairs a full re-join
        would.  The default ignores the delta and re-joins from scratch,
        so every algorithm is delta-safe without opting in.
        """
        return self.step(dataset)

    def join_pairs(self, dataset: SpatialDataset) -> tuple[np.ndarray, np.ndarray]:
        """Convenience: run a step and return sorted unique ``(i, j)`` arrays."""
        if self.count_only:
            raise RuntimeError("algorithm was created count_only")
        result = self.step(dataset)
        from repro.geometry import unique_pairs

        assert result.pairs is not None
        return unique_pairs(*result.pairs, len(dataset))

    def distance_join(self, dataset: SpatialDataset, distance: float) -> JoinResult:
        """Self-join with a distance predicate (the paper's §3.1 reduction).

        Pairs of objects within ``distance`` of each other (per-dimension,
        on their MBRs) are found by enlarging every extent by ``distance``
        and running the ordinary overlap join.  Returns a
        :class:`JoinResult` expressed in the original dataset's indices.
        """
        return self.step(dataset.with_enlarged_extent(distance))

    def neighbors(self, dataset: SpatialDataset) -> tuple[np.ndarray, np.ndarray]:
        """Per-object neighbour lists in CSR form (offsets, neighbors).

        The representation simulations iterate over: object ``k``'s
        overlap partners are ``neighbors[offsets[k]:offsets[k + 1]]``.
        """
        if self.count_only:
            raise RuntimeError("algorithm was created count_only")
        result = self.step(dataset)
        from repro.geometry import pairs_to_adjacency, unique_pairs

        assert result.pairs is not None
        i_idx, j_idx = unique_pairs(*result.pairs, len(dataset))
        return pairs_to_adjacency(i_idx, j_idx, len(dataset))

    def _phase_seconds(self) -> dict[str, float]:
        """Optional finer phase breakdown; subclasses may override."""
        return {}

    # ------------------------------------------------------------------
    # Checkpoint / recovery protocol
    # ------------------------------------------------------------------
    def snapshot_state(self) -> tuple[dict[str, np.ndarray], dict[str, Any]]:
        """Resumable cross-step state as (arrays, JSON-able meta).

        The base class is stateless between steps (every step re-joins
        from scratch), so only the algorithm name travels — enough for
        :meth:`restore_state` to reject a mismatched checkpoint.
        Stateful algorithms override both methods together.
        """
        return {}, {"algorithm": self.name}

    def restore_state(
        self,
        arrays: dict[str, np.ndarray],
        meta: dict[str, Any],
        dataset: SpatialDataset,
    ) -> None:
        """Restore cross-step state captured by :meth:`snapshot_state`.

        ``dataset`` is the restored dataset the next step will run on;
        stateful algorithms re-pin process-local identities (uids)
        against it.  Raises :class:`ValueError` on a checkpoint written
        by a different algorithm.
        """
        recorded = meta.get("algorithm")
        if recorded != self.name:
            raise ValueError(
                f"checkpoint was written by algorithm {recorded!r}, "
                f"cannot restore into {self.name!r}"
            )

    def reset_for_retry(self) -> None:
        """Discard cross-step state before a from-scratch step retry.

        Called by the runner's escalation path when ``step_delta``
        raised past all executor recovery: whatever incremental state
        the failure may have half-mutated is dropped so the retried
        step rebuilds everything it needs.  The stateless base has
        nothing to drop.
        """

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
