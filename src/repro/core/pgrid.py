"""The P-Grid: THERMAL-JOIN's persistent linked-hash uniform grid.

Implements Algorithm 1 and Section 4.3.1 of the paper:

* **Build** — every object is assigned to the (single) cell containing
  its *center*; only non-empty cells are materialised in a hash table;
  each cell's object list is sorted by the objects' lower x bound; and
  *hyperlinks* (direct references) are wired to the existing cells of
  the half neighbourhood so the join phase never pays hash lookups.
* **Incremental maintenance** — on subsequent steps the grid is not
  discarded: cells are recycled, object lists are re-assigned, cells
  whose population migrated away become *vacant* (their structure kept
  for future reuse) and age each step.
* **Garbage collection** — when vacant cells exceed a threshold fraction
  (the paper's policy: 35 % of all cells) the vacant cells are pruned
  and the hyperlinks referencing them dissolved.

The number of neighbour layers linked per cell follows Section 4.2.1:
``ceil(largest object width / cell width)`` — one layer (13 half
neighbours in 3-D) when the cell width equals the largest object width
(Figure 4a), more when the cells are finer (Figure 4b).
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.cells import (
    PGridCell,
    half_neighborhood_offsets,
    pack_cell_id_scalar,
    pack_cell_ids,
    unpack_cell_id,
)
from repro.joins.base import ID_BYTES, MBR_BYTES, POINTER_BYTES

__all__ = ["PGrid"]

#: Fixed per-cell record size in the C-struct footprint model: cell id,
#: cell MBR, min-object MBR, age, and the two list headers of Figure 3.
CELL_RECORD_BYTES = ID_BYTES + MBR_BYTES + MBR_BYTES + 8 + 16 + 16


def _bucket_count(n_cells: int) -> int:
    """Power-of-two hash bucket count at a 0.75 target load factor."""
    need = max(8, int(n_cells / 0.75) + 1)
    return 1 << (need - 1).bit_length()


class PGrid:
    """Persistent uniform grid over object centers.

    Parameters
    ----------
    cell_width:
        Uniform cell side length.  THERMAL-JOIN sets it to ``r`` times
        the largest object width, where ``r`` is the (tuned) normalized
        resolution of Section 4.3.2.
    origin:
        Grid origin; cell ``(0, 0, 0)`` spans ``[origin, origin + w)``.
        Fixed for the grid's lifetime so cell identifiers stay stable
        across incremental refreshes.
    gc_threshold:
        Vacant-cell fraction that triggers garbage collection (paper
        default 0.35).
    """

    def __init__(
        self,
        cell_width: float,
        origin: np.ndarray,
        gc_threshold: float = 0.35,
    ) -> None:
        if cell_width <= 0:
            raise ValueError(f"cell_width must be positive, got {cell_width}")
        if not 0.0 < gc_threshold <= 1.0:
            raise ValueError(f"gc_threshold must be in (0, 1], got {gc_threshold}")
        self.cell_width = float(cell_width)
        self.origin = np.asarray(origin, dtype=np.float64).copy()
        if self.origin.shape != (3,):
            raise ValueError(f"origin must be a 3-vector, got {self.origin.shape}")
        self.gc_threshold = float(gc_threshold)
        #: packed cell id -> PGridCell (the linked-hash table).
        self.cells: dict[int, PGridCell] = {}
        #: Cells with at least one object after the last refresh.
        self.occupied: list[PGridCell] = []
        # Stacked per-occupied-cell arrays (aligned with ``occupied``),
        # retained by refresh() so the batched join phase can work on
        # whole-grid arrays instead of per-cell slices:
        #: all object indices, grouped by cell and x-sorted within cells.
        self.cat: np.ndarray | None = None
        #: per-cell [start, stop) ranges into ``cat``.
        self.cell_starts: np.ndarray | None = None
        self.cell_stops: np.ndarray | None = None
        #: per-cell per-dimension min/max object widths.
        self.cell_min_width: np.ndarray | None = None
        self.cell_max_width: np.ndarray | None = None
        #: per-cell tight center bounds.
        self.cell_center_lo: np.ndarray | None = None
        self.cell_center_hi: np.ndarray | None = None
        #: Neighbour layers wired into the hyperlinks (set on first build).
        self.layers: int | None = None
        #: packed cell id -> vacant PGridCell.  Maintained on the vacancy
        #: transitions themselves, so refresh and GC touch only occupied
        #: and *newly* vacant cells — never the whole table.
        self._vacant_cells: dict[int, PGridCell] = {}
        #: Shared refresh epoch (one-element list so cells can read it);
        #: vacant-cell ages derive from it lazily instead of a per-step
        #: aging sweep over every cell.
        self._clock = [0]
        # Incrementally maintained totals backing the O(1) footprint.
        self._n_objects = 0
        self._n_hyperlinks = 0
        # Lifetime counters (exposed through ThermalJoin statistics).
        self.cells_created = 0
        self.cells_recycled = 0
        self.gc_runs = 0

    @property
    def n_vacant(self) -> int:
        """Number of currently vacant (structure-kept) cells."""
        return len(self._vacant_cells)

    # ------------------------------------------------------------------
    # Building and refreshing
    # ------------------------------------------------------------------
    def required_layers(self, max_object_width: float) -> int:
        """Neighbour layers needed so the external join misses no pair.

        Two objects can only overlap when their centers are closer than
        the largest object width ``W`` in every dimension, hence at most
        ``ceil(W / cell_width)`` cells apart.
        """
        ratio = max_object_width / self.cell_width
        return max(1, math.ceil(ratio - 1e-9))

    def refresh(
        self,
        centers: np.ndarray,
        xlo: np.ndarray,
        widths: np.ndarray,
        max_object_width: float,
    ) -> list[PGridCell]:
        """Assign all objects to cells, recycling structure where possible.

        Parameters
        ----------
        centers:
            ``(n, 3)`` current object centers.
        xlo:
            ``(n,)`` lower x bounds of the object MBRs (sort key for the
            per-cell object lists).
        widths:
            ``(n, 3)`` per-object per-dimension widths.
        max_object_width:
            Largest width in the dataset (drives the layer count).

        The first call builds from scratch; later calls reuse cells per
        Section 4.3.1.  If the required layer count changed (object
        extents changed), the grid is rebuilt from scratch since the
        hyperlink structure is no longer valid.
        """
        layers = self.required_layers(max_object_width)
        if self.layers is not None and layers != self.layers:
            self.clear()
        self.layers = layers
        self._clock[0] += 1

        (
            coords,
            order,
            sorted_packed,
            starts,
            stops,
            min_widths,
            max_widths,
            center_lo,
            center_hi,
        ) = self._group(centers, xlo, widths)
        self.cat = order
        self.cell_starts = starts
        self.cell_stops = stops
        self.cell_min_width = min_widths
        self.cell_max_width = max_widths
        self.cell_center_lo = center_lo
        self.cell_center_hi = center_hi

        previously_occupied = self.occupied
        self.occupied = []
        new_cells = []
        touched = set()
        offsets = half_neighborhood_offsets(self.layers)
        width_vec = np.full(3, self.cell_width)

        for k in range(starts.size):
            start = int(starts[k])
            cell_id = int(sorted_packed[start])
            touched.add(cell_id)
            cell = self.cells.get(cell_id)
            if cell is None:
                cell_coords = tuple(int(c) for c in coords[order[start]])
                lo = self.origin + np.asarray(cell_coords, dtype=np.float64) * self.cell_width
                cell = PGridCell(cell_coords, lo, lo + width_vec, clock=self._clock)
                self.cells[cell_id] = cell
                new_cells.append((cell_id, cell))
                self.cells_created += 1
            else:
                if cell.is_vacant:
                    self._vacant_cells.pop(cell_id, None)
                self.cells_recycled += 1
            cell.object_idx = order[start:int(stops[k])]
            cell.min_obj_width = min_widths[k]
            cell.max_obj_width = max_widths[k]
            cell.center_lo = center_lo[k]
            cell.center_hi = center_hi[k]
            cell.vacant_at = None
            cell.slot = k
            self.occupied.append(cell)
        self._n_objects = int(sorted_packed.size)

        # Cells whose population migrated away become (or remain) vacant;
        # already-vacant cells need no touch — their age is clock-derived.
        for cell in previously_occupied:
            cell_id = self._cell_key(cell)
            if cell_id not in touched and not cell.is_vacant:
                cell.clear()
                self._vacant_cells[cell_id] = cell

        self._wire_hyperlinks(new_cells, offsets)
        self.garbage_collect_if_needed()
        return self.occupied

    def _group(
        self, centers: np.ndarray, xlo: np.ndarray, widths: np.ndarray
    ) -> tuple[
        np.ndarray,
        np.ndarray,
        np.ndarray,
        np.ndarray,
        np.ndarray,
        np.ndarray,
        np.ndarray,
        np.ndarray,
        np.ndarray,
    ]:
        """Vectorised cell grouping: the pure part of :meth:`refresh`.

        Deterministic given (centers, xlo, widths, origin, cell_width);
        shared by :meth:`refresh` and the checkpoint-restore path
        (:meth:`_reassign`) so both produce identical group order and
        per-cell aggregates.
        """
        coords = np.floor((centers - self.origin) / self.cell_width).astype(np.int64)
        packed = pack_cell_ids(coords)
        order = np.lexsort((xlo, packed))
        sorted_packed = packed[order]

        n = sorted_packed.size
        boundaries = (
            np.empty(0, dtype=np.int64)
            if n == 0
            else np.flatnonzero(sorted_packed[1:] != sorted_packed[:-1]) + 1
        )
        starts = np.concatenate([[0], boundaries]) if n else np.empty(0, dtype=np.int64)
        stops = np.concatenate([boundaries, [n]]) if n else np.empty(0, dtype=np.int64)

        sorted_widths = widths[order]
        if n:
            min_widths = np.minimum.reduceat(sorted_widths, starts, axis=0)
            max_widths = np.maximum.reduceat(sorted_widths, starts, axis=0)
            sorted_centers = centers[order]
            center_lo = np.minimum.reduceat(sorted_centers, starts, axis=0)
            center_hi = np.maximum.reduceat(sorted_centers, starts, axis=0)
        else:
            min_widths = max_widths = np.empty((0, 3))
            center_lo = center_hi = np.empty((0, 3))
        return (
            coords,
            order,
            sorted_packed,
            starts,
            stops,
            min_widths,
            max_widths,
            center_lo,
            center_hi,
        )

    def _cell_key(self, cell: PGridCell) -> int:
        return pack_cell_id_scalar(*cell.coords)

    def _wire_hyperlinks(
        self,
        new_cells: list[tuple[int, PGridCell]],
        offsets: list[tuple[int, int, int]],
    ) -> None:
        """Link each new cell into the half-neighbourhood structure.

        For a new cell ``C`` and each half offset ``o``: an existing cell
        at ``C + o`` becomes one of ``C``'s hyperlinks, and a *pre-existing*
        cell at ``C - o`` gains a hyperlink to ``C`` (new cells at ``C - o``
        link ``C`` themselves when their own ``+o`` scan runs, so each
        unordered cell pair is linked exactly once).
        """
        if not new_cells:
            return
        new_ids = {cell_id for cell_id, _cell in new_cells}
        cells = self.cells
        wired = 0
        for _cell_id, cell in new_cells:
            cx, cy, cz = cell.coords
            links = cell.hyperlinks
            for ox, oy, oz in offsets:
                neighbor = cells.get(pack_cell_id_scalar(cx + ox, cy + oy, cz + oz))
                if neighbor is not None:
                    links.append(neighbor)
                    wired += 1
                back = pack_cell_id_scalar(cx - ox, cy - oy, cz - oz)
                if back not in new_ids:
                    neighbor = cells.get(back)
                    if neighbor is not None:
                        neighbor.hyperlinks.append(cell)
                        wired += 1
        self._n_hyperlinks += wired

    # ------------------------------------------------------------------
    # Garbage collection
    # ------------------------------------------------------------------
    def garbage_collect_if_needed(self) -> int:
        """Prune vacant cells when they exceed the threshold fraction.

        Returns the number of cells collected (0 when below threshold).
        """
        total = len(self.cells)
        if total == 0 or self.n_vacant <= self.gc_threshold * total:
            return 0
        vacant_set = set(map(id, self._vacant_cells.values()))
        removed_links = 0
        for cell_id, cell in self._vacant_cells.items():
            removed_links += len(cell.hyperlinks)
            del self.cells[cell_id]
        # Dissolve hyperlinks from surviving cells to collected ones.
        for cell in self.cells.values():
            if cell.hyperlinks:
                kept = [link for link in cell.hyperlinks if id(link) not in vacant_set]
                removed_links += len(cell.hyperlinks) - len(kept)
                cell.hyperlinks = kept
        collected = len(self._vacant_cells)
        self._vacant_cells = {}
        self._n_hyperlinks -= removed_links
        self.gc_runs += 1
        return collected

    def clear(self) -> None:
        """Drop the whole grid (used when the resolution is re-tuned).

        Resets the cell table *and* the stacked batched arrays retained
        by :meth:`refresh` — a stale ``cat``/``cell_starts`` pairing with
        an empty cell table would let a batched consumer read assignments
        from the dropped grid generation.
        """
        self.cells = {}
        self.occupied = []
        self.cat = None
        self.cell_starts = None
        self.cell_stops = None
        self.cell_min_width = None
        self.cell_max_width = None
        self.cell_center_lo = None
        self.cell_center_hi = None
        self.layers = None
        self._vacant_cells = {}
        self._n_objects = 0
        self._n_hyperlinks = 0

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------
    def snapshot_state(self) -> tuple[dict[str, np.ndarray], dict[str, object]]:
        """Structural snapshot: (arrays, meta) for the checkpoint format.

        The grid cannot be rebuilt from scratch on restore: a fresh build
        re-creates every cell (spiking ``cells_created``, which feeds the
        tuner's operation cost model) and wires hyperlinks in a different
        direction (changing cell-pair task roles and thus overlap-test
        counts).  Instead the *structure* is serialized — cell identity
        and vacancy in table insertion order plus the directed hyperlink
        edges in per-cell list order — and the per-cell object
        assignments are recomputed deterministically from the dataset by
        :meth:`_reassign`.
        """
        index = {id(cell): k for k, cell in enumerate(self.cells.values())}
        cell_ids = np.fromiter(self.cells.keys(), dtype=np.int64, count=len(self.cells))
        vacant_at = np.full(len(self.cells), -1, dtype=np.int64)
        link_src: list[int] = []
        link_dst: list[int] = []
        for k, cell in enumerate(self.cells.values()):
            if cell.vacant_at is not None:
                vacant_at[k] = cell.vacant_at
            for link in cell.hyperlinks:
                link_src.append(k)
                link_dst.append(index[id(link)])
        arrays = {
            "cell_ids": cell_ids,
            "vacant_at": vacant_at,
            "link_src": np.asarray(link_src, dtype=np.int64),
            "link_dst": np.asarray(link_dst, dtype=np.int64),
        }
        meta: dict[str, object] = {
            "cell_width": self.cell_width,
            "origin": [float(c) for c in self.origin],
            "gc_threshold": self.gc_threshold,
            "layers": self.layers,
            "clock": self._clock[0],
            "cells_created": self.cells_created,
            "cells_recycled": self.cells_recycled,
            "gc_runs": self.gc_runs,
        }
        return arrays, meta

    @classmethod
    def from_state(
        cls,
        arrays: dict[str, np.ndarray],
        meta: dict[str, object],
        centers: np.ndarray,
        xlo: np.ndarray,
        widths: np.ndarray,
    ) -> PGrid:
        """Rebuild a grid from :meth:`snapshot_state` plus the dataset.

        Raises :class:`ValueError` when the checkpointed structure does
        not match the dataset's current cell occupancy (wrong dataset,
        or a snapshot taken at a different step).
        """
        grid = cls(
            float(meta["cell_width"]),  # type: ignore[arg-type]
            np.asarray(meta["origin"], dtype=np.float64),
            float(meta["gc_threshold"]),  # type: ignore[arg-type]
        )
        layers = meta["layers"]
        grid.layers = None if layers is None else int(layers)  # type: ignore[call-overload]
        grid._clock[0] = int(meta["clock"])  # type: ignore[call-overload]
        grid.cells_created = int(meta["cells_created"])  # type: ignore[call-overload]
        grid.cells_recycled = int(meta["cells_recycled"])  # type: ignore[call-overload]
        grid.gc_runs = int(meta["gc_runs"])  # type: ignore[call-overload]

        width_vec = np.full(3, grid.cell_width)
        ordered: list[PGridCell] = []
        for cell_id, vacated in zip(
            arrays["cell_ids"].tolist(), arrays["vacant_at"].tolist(), strict=True
        ):
            cell_coords = unpack_cell_id(cell_id)
            lo = grid.origin + np.asarray(cell_coords, dtype=np.float64) * grid.cell_width
            cell = PGridCell(cell_coords, lo, lo + width_vec, clock=grid._clock)
            if vacated >= 0:
                cell.vacant_at = int(vacated)
                grid._vacant_cells[cell_id] = cell
            grid.cells[cell_id] = cell
            ordered.append(cell)
        for src, dst in zip(
            arrays["link_src"].tolist(), arrays["link_dst"].tolist(), strict=True
        ):
            ordered[src].hyperlinks.append(ordered[dst])
        grid._n_hyperlinks = int(arrays["link_src"].size)
        grid._reassign(centers, xlo, widths)
        return grid

    def _reassign(
        self, centers: np.ndarray, xlo: np.ndarray, widths: np.ndarray
    ) -> None:
        """Recompute object assignments onto the restored cell structure.

        Grouping is deterministic from the dataset, so the occupied list,
        per-cell object order and stacked batched arrays come out exactly
        as they were when the snapshot was taken.
        """
        (
            _coords,
            order,
            sorted_packed,
            starts,
            stops,
            min_widths,
            max_widths,
            center_lo,
            center_hi,
        ) = self._group(centers, xlo, widths)
        expected = len(self.cells) - len(self._vacant_cells)
        if starts.size != expected:
            raise ValueError(
                f"checkpointed grid has {expected} occupied cells but the "
                f"dataset occupies {starts.size}; snapshot/dataset mismatch"
            )
        self.occupied = []
        for k in range(starts.size):
            start = int(starts[k])
            cell_id = int(sorted_packed[start])
            cell = self.cells.get(cell_id)
            if cell is None or cell_id in self._vacant_cells:
                raise ValueError(
                    f"dataset occupies cell {cell_id} which the checkpointed "
                    "grid does not hold occupied; snapshot/dataset mismatch"
                )
            cell.object_idx = order[start:int(stops[k])]
            cell.min_obj_width = min_widths[k]
            cell.max_obj_width = max_widths[k]
            cell.center_lo = center_lo[k]
            cell.center_hi = center_hi[k]
            cell.vacant_at = None
            cell.slot = k
            self.occupied.append(cell)
        self.cat = order
        self.cell_starts = starts
        self.cell_stops = stops
        self.cell_min_width = min_widths
        self.cell_max_width = max_widths
        self.cell_center_lo = center_lo
        self.cell_center_hi = center_hi
        self._n_objects = int(order.size)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def memory_footprint(self) -> int:
        """Grid footprint in bytes under the C-struct model of Figure 3.

        O(1): the object and hyperlink totals are maintained incrementally
        by :meth:`refresh` / :meth:`garbage_collect_if_needed` instead of
        re-walking every cell on each call.
        """
        n_cells = len(self.cells)
        if n_cells == 0:
            return 0
        total = _bucket_count(n_cells) * POINTER_BYTES
        total += n_cells * CELL_RECORD_BYTES
        total += (self._n_objects + self._n_hyperlinks) * POINTER_BYTES
        return total

    def __repr__(self) -> str:
        return (
            f"PGrid(width={self.cell_width:.3g}, cells={len(self.cells)}, "
            f"occupied={len(self.occupied)}, vacant={self.n_vacant})"
        )
