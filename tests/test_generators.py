"""Tests for the workload generators (uniform, clustered, neural)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import (
    UNIFORM_BOUNDS,
    make_clustered_dataset,
    make_clustered_workload,
    make_neural_dataset,
    make_neural_workload,
    make_uniform_dataset,
    make_uniform_workload,
)
from repro.geometry import width_from_volume


class TestUniform:
    def test_size_and_width(self):
        ds = make_uniform_dataset(500, width=15.0, seed=1)
        assert len(ds) == 500
        assert ds.max_width == pytest.approx(15.0)
        assert ds.min_width == pytest.approx(15.0)

    def test_centers_inside_bounds(self):
        ds = make_uniform_dataset(1000, seed=2)
        lo, hi = UNIFORM_BOUNDS
        assert (ds.centers >= lo).all()
        assert (ds.centers <= hi).all()

    def test_reproducible_by_seed(self):
        a = make_uniform_dataset(100, seed=5)
        b = make_uniform_dataset(100, seed=5)
        assert np.array_equal(a.centers, b.centers)

    def test_different_seed_differs(self):
        a = make_uniform_dataset(100, seed=5)
        b = make_uniform_dataset(100, seed=6)
        assert not np.array_equal(a.centers, b.centers)

    def test_width_range_variation(self):
        ds = make_uniform_dataset(2000, width_range=(13.0, 17.0), seed=3)
        assert 13.0 <= ds.min_width <= 14.0
        assert 16.0 <= ds.max_width <= 17.0

    def test_invalid_width_range_raises(self):
        with pytest.raises(ValueError):
            make_uniform_dataset(10, width_range=(5.0, 3.0))

    def test_nonpositive_n_raises(self):
        with pytest.raises(ValueError):
            make_uniform_dataset(0)

    def test_workload_motion_moves_everything(self):
        ds, motion = make_uniform_workload(200, translation=10.0, seed=4)
        before = ds.centers.copy()
        motion.step(ds)
        displacement = np.linalg.norm(ds.centers - before, axis=1)
        # All objects moved, and interior objects moved by exactly 10 units.
        assert (displacement > 0).all()
        assert np.median(displacement) == pytest.approx(10.0, rel=1e-6)

    def test_motion_respects_bounds(self):
        ds, motion = make_uniform_workload(300, translation=50.0, seed=9)
        for _ in range(20):
            motion.step(ds)
        lo, hi = ds.bounds
        assert (ds.centers >= lo).all()
        assert (ds.centers <= hi).all()


class TestClustered:
    def test_labels_cover_all_clusters(self):
        _ds, labels = make_clustered_dataset(100, n_clusters=4, sd=2.0, seed=1)
        assert set(labels.tolist()) == {0, 1, 2, 3}

    def test_objects_divided_evenly(self):
        _ds, labels = make_clustered_dataset(103, n_clusters=4, sd=2.0, seed=1)
        counts = np.bincount(labels)
        assert counts.max() - counts.min() <= 1
        assert counts.sum() == 103

    def test_cluster_spread_matches_sd(self):
        ds, labels = make_clustered_dataset(4000, n_clusters=1, sd=3.0, seed=2)
        spread = ds.centers.std(axis=0)
        assert np.allclose(spread, 3.0, rtol=0.15)

    def test_smaller_sd_is_denser(self):
        tight, _ = make_clustered_dataset(1000, n_clusters=1, sd=1.0, seed=3)
        loose, _ = make_clustered_dataset(1000, n_clusters=1, sd=5.0, seed=3)
        assert tight.centers.std(axis=0).mean() < loose.centers.std(axis=0).mean()

    def test_invalid_parameters_raise(self):
        with pytest.raises(ValueError):
            make_clustered_dataset(0)
        with pytest.raises(ValueError):
            make_clustered_dataset(10, n_clusters=0)
        with pytest.raises(ValueError):
            make_clustered_dataset(10, sd=0.0)

    def test_cluster_motion_preserves_distribution(self):
        ds, motion, labels = make_clustered_workload(
            600, n_clusters=2, sd=2.0, translation=5.0, seed=4
        )
        spread_before = np.array(
            [ds.centers[labels == c].std() for c in range(2)]
        )
        for _ in range(5):
            motion.step(ds)
        spread_after = np.array(
            [ds.centers[labels == c].std() for c in range(2)]
        )
        # Coherent motion: within-cluster spread unchanged (away from walls).
        assert np.allclose(spread_before, spread_after, rtol=0.2)


class TestNeural:
    def test_requested_object_count(self):
        ds, labels = make_neural_dataset(750, seed=1)
        assert len(ds) == 750
        assert labels.shape == (750,)

    def test_extent_from_volume(self):
        ds, _ = make_neural_dataset(300, object_volume=15.0, seed=2)
        assert ds.max_width == pytest.approx(width_from_volume(15.0))

    def test_centers_inside_bounds(self):
        ds, _ = make_neural_dataset(500, seed=3)
        lo, hi = ds.bounds
        assert (ds.centers >= lo).all()
        assert (ds.centers <= hi).all()

    def test_branch_locality(self):
        # Consecutive objects of one neuron lie close together (branch
        # structure), unlike a uniform scatter.
        ds, labels = make_neural_dataset(1000, seed=4)
        same_neuron = labels[1:] == labels[:-1]
        step_dist = np.linalg.norm(np.diff(ds.centers, axis=0), axis=1)
        assert np.median(step_dist[same_neuron]) < 3.0

    def test_multiple_neurons_at_scale(self):
        _ds, labels = make_neural_dataset(5000, segments_per_neuron=500, seed=5)
        assert len(set(labels.tolist())) >= 8

    def test_reproducible_by_seed(self):
        a, _ = make_neural_dataset(400, seed=6)
        b, _ = make_neural_dataset(400, seed=6)
        assert np.array_equal(a.centers, b.centers)

    def test_invalid_parameters_raise(self):
        with pytest.raises(ValueError):
            make_neural_dataset(0)
        with pytest.raises(ValueError):
            make_neural_dataset(10, object_volume=-1.0)

    def test_neural_motion_changes_every_object(self):
        ds, motion, _labels = make_neural_workload(800, seed=7)
        before = ds.centers.copy()
        motion.step(ds)
        assert (np.linalg.norm(ds.centers - before, axis=1) > 0).all()

    def test_neural_density_creates_selectivity(self):
        # The workload must exhibit neural-tissue selectivity: each object
        # overlaps many partners on average (the regime the paper targets).
        from repro.geometry import brute_force_pairs

        ds, _ = make_neural_dataset(2000, object_volume=15.0, seed=8)
        i_idx, _j = brute_force_pairs(*ds.boxes())
        partners_per_object = 2.0 * i_idx.size / len(ds)
        assert partners_per_object > 10.0
