"""P-Grid cell records and cell-identifier packing.

THERMAL-JOIN's primary grid stores one record per *non-empty* cell
(Figure 3 of the paper): the cell identifier, the cell MBR, the smallest
object MBR assigned to the cell (for the hot-spot test), the cell age
(for garbage collection), the object list and the hyperlinks to the
neighbouring cells considered by the external join.

Cell identifiers pack the three integer grid coordinates into a single
``int64`` (21 bits per dimension, biased to allow negative coordinates),
which lets the build phase group all objects with one vectorised sort
instead of millions of Python-level hash insertions — the moral
equivalent of the paper's ``calculateCellID``.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "COORD_BITS",
    "COORD_BIAS",
    "pack_cell_ids",
    "pack_cell_id_scalar",
    "unpack_cell_id",
    "unpack_cell_ids",
    "PGridCell",
    "half_neighborhood_offsets",
]

#: Bits per grid coordinate in the packed cell identifier.
COORD_BITS = 21
#: Bias added to each coordinate so negatives pack cleanly.
COORD_BIAS = 1 << (COORD_BITS - 1)
_COORD_MASK = (1 << COORD_BITS) - 1


def pack_cell_ids(coords: np.ndarray) -> np.ndarray:
    """Pack integer grid coordinates ``(n, 3)`` into ``int64`` cell ids.

    Coordinates must lie in ``[-2^20, 2^20)``; with any practical cell
    width that covers grids far beyond the paper's scales.
    """
    coords = np.asarray(coords, dtype=np.int64)
    if coords.ndim != 2 or coords.shape[1] != 3:
        raise ValueError(f"coords must have shape (n, 3), got {coords.shape}")
    biased = coords + COORD_BIAS
    if coords.size and (biased.min() < 0 or biased.max() > _COORD_MASK):
        raise ValueError(
            "grid coordinates out of packable range; the grid resolution is "
            "too fine for the dataset extent"
        )
    return (
        (biased[:, 0] << (2 * COORD_BITS))
        | (biased[:, 1] << COORD_BITS)
        | biased[:, 2]
    )


def pack_cell_id_scalar(x: int, y: int, z: int) -> int:
    """Scalar (pure-Python-int) variant of :func:`pack_cell_ids`.

    Used on the hyperlink wiring path where per-offset numpy calls would
    dominate; no range validation (the vectorised pass already validated
    the occupied coordinates, and neighbour offsets stay in range).
    """
    return (
        ((x + COORD_BIAS) << (2 * COORD_BITS))
        | ((y + COORD_BIAS) << COORD_BITS)
        | (z + COORD_BIAS)
    )


def unpack_cell_id(cell_id: int) -> tuple[int, int, int]:
    """Invert :func:`pack_cell_ids` for a single identifier."""
    cell_id = int(cell_id)
    x = ((cell_id >> (2 * COORD_BITS)) & _COORD_MASK) - COORD_BIAS
    y = ((cell_id >> COORD_BITS) & _COORD_MASK) - COORD_BIAS
    z = (cell_id & _COORD_MASK) - COORD_BIAS
    return x, y, z


def unpack_cell_ids(cell_ids: np.ndarray) -> np.ndarray:
    """Vectorised inverse of :func:`pack_cell_ids`; returns ``(n, 3)`` coords."""
    cell_ids = np.asarray(cell_ids, dtype=np.int64)
    x = ((cell_ids >> (2 * COORD_BITS)) & _COORD_MASK) - COORD_BIAS
    y = ((cell_ids >> COORD_BITS) & _COORD_MASK) - COORD_BIAS
    z = (cell_ids & _COORD_MASK) - COORD_BIAS
    return np.stack([x, y, z], axis=1)


def half_neighborhood_offsets(layers: int | np.ndarray) -> list[tuple[int, int, int]]:
    """Lexicographically positive neighbour offsets within ``layers``.

    The external join must consider each *pair* of adjacent cells exactly
    once, so only half of the neighbourhood is linked (Section 4.2.1,
    Figure 4): of the ``(2L+1)^3 - 1`` offsets, the half whose first
    non-zero component is positive.  For ``layers == 1`` this yields the
    13 offsets the paper quotes for three dimensions.

    ``layers`` may be a scalar or a per-dimension triple (the T-Grid uses
    per-dimension layer counts because its cell width differs per
    dimension).
    """
    layers = np.broadcast_to(np.asarray(layers, dtype=np.int64), (3,))
    if (layers < 0).any():
        raise ValueError(f"layers must be non-negative, got {layers}")
    offsets = []
    for dx in range(-int(layers[0]), int(layers[0]) + 1):
        for dy in range(-int(layers[1]), int(layers[1]) + 1):
            for dz in range(-int(layers[2]), int(layers[2]) + 1):
                if (dx, dy, dz) > (0, 0, 0):
                    offsets.append((dx, dy, dz))
    return offsets


class PGridCell:
    """One non-empty P-Grid cell (the record of the paper's Figure 3).

    Attributes
    ----------
    coords:
        Integer grid coordinates ``(ix, iy, iz)``.
    lo, hi:
        The cell's half-open spatial extent ``[lo, hi)``.
    object_idx:
        ``int64`` array of dataset indices assigned to this cell (objects
        whose *center* lies in the cell), sorted ascending by the
        objects' lower x bound so the external join can plane-sweep
        without re-sorting.
    min_obj_width, max_obj_width:
        Per-dimension minimum / maximum widths over the assigned objects;
        the minimum drives the hot-spot test and the T-Grid resolution,
        the maximum drives the T-Grid neighbour layer count.
    center_lo, center_hi:
        Tight bounds of the assigned objects' centers.  Used by the
        external join's enclosure shortcut (an object MBR containing all
        of a cell's centers overlaps every object of the cell) and by
        the hot-spot test (center spread strictly below the smallest
        member width guarantees pairwise overlap).
    age:
        Number of consecutive refreshes this cell has been vacant (0
        while occupied); the garbage collector prunes old vacant cells.
        Derived lazily from the grid's shared refresh clock and the
        epoch recorded when the cell was vacated, so per-step
        maintenance never touches already-vacant cells just to age them.
    hyperlinks:
        Direct references to the existing cells in this cell's half
        neighbourhood, so the join phase never performs hash lookups.
    """

    __slots__ = (
        "coords",
        "lo",
        "hi",
        "object_idx",
        "min_obj_width",
        "max_obj_width",
        "center_lo",
        "center_hi",
        "vacant_at",
        "_clock",
        "hyperlinks",
        "slot",
    )

    def __init__(
        self,
        coords: tuple[int, int, int],
        lo: np.ndarray,
        hi: np.ndarray,
        clock: list[int] | None = None,
    ) -> None:
        self.coords = coords
        self.lo = lo
        self.hi = hi
        self.object_idx = None
        self.min_obj_width = None
        self.max_obj_width = None
        self.center_lo = None
        self.center_hi = None
        #: Refresh epoch at which the cell was vacated (None while occupied).
        self.vacant_at = None
        #: Shared one-element list holding the grid's refresh epoch
        #: (None for standalone cells, whose age stays 0).
        self._clock = clock
        self.hyperlinks = []
        #: Position in the grid's current ``occupied`` list (-1 if vacant);
        #: lets the batched join translate hyperlinks into array slots.
        self.slot = -1

    @property
    def is_vacant(self) -> bool:
        """True when no objects are currently assigned."""
        return self.object_idx is None or self.object_idx.size == 0

    @property
    def age(self) -> int:
        """Refreshes spent vacant: the vacating refresh counts as 1."""
        if self.vacant_at is None or self._clock is None:
            return 0
        return self._clock[0] - self.vacant_at + 1

    def clear(self) -> None:
        """Drop the object assignment (incremental maintenance, §4.3.1)."""
        self.object_idx = None
        self.min_obj_width = None
        self.max_obj_width = None
        self.center_lo = None
        self.center_hi = None
        self.slot = -1
        if self._clock is not None:
            self.vacant_at = self._clock[0]

    def __repr__(self) -> str:
        n = 0 if self.object_idx is None else self.object_idx.size
        return f"PGridCell(coords={self.coords}, n={n}, age={self.age})"
