"""Smoke tests for the experiment harness at the ``tiny`` scale.

These execute every figure driver end to end (tiny workloads, quiet
mode) and validate the structure of what they return — catching
harness regressions without paying benchmark runtimes.
"""

from __future__ import annotations

import pytest

from repro.experiments import figures, run_experiment


class TestFigureDrivers:
    def test_fig2_structure(self):
        out = figures.fig2(scale="tiny", time_budget=30.0, quiet=True)
        assert out["x"] == [10.0, 15.0, 20.0, 25.0, 30.0]
        assert set(out["series"]) == set(figures.FIG2_ALGORITHMS)
        for values in out["series"].values():
            assert len(values) == len(out["x"])
        assert "Figure 2" in out["table"]

    def test_fig6_structure(self):
        out = figures.fig6(scale="tiny", quiet=True)
        assert len(out["x"]) == 11
        assert len(out["series"]) == 4
        for values in out["series"].values():
            assert all(v >= 0 for v in values)

    def test_fig7_structure(self):
        out = figures.fig7(scale="tiny", time_budget=60.0, quiet=True)
        assert set(out["totals"]) == set(figures.FIG7_ALGORITHMS)
        panels = out["panels"]
        assert len(panels) == 4
        # All methods computed identical result series (panel a).
        results_panel = panels["a) join results"]
        series = {tuple(v) for v in results_panel.values()}
        assert len(series) == 1

    def test_fig8_structure(self):
        out = figures.fig8(scale="tiny", time_budget=60.0, quiet=True)
        assert len(out["sizes"]) == 2
        assert set(out["panel_a"]) == set(figures.FIG7_ALGORITHMS)
        assert set(out["panel_b"]) == set(figures.FIG7_ALGORITHMS)

    def test_fig10_structure(self):
        out = figures.fig10(scale="tiny", quiet=True)
        assert set(out["breakdown"]) == {"building", "internal", "external"}
        # Footprint falls monotonically with r (Figure 10b).
        footprint = out["footprint"]
        assert footprint == sorted(footprint, reverse=True)

    def test_speedups_structure(self):
        out = figures.speedups(scale="tiny", time_budget=60.0, quiet=True)
        assert set(out["speedups"]) == set(figures.FIG7_ALGORITHMS) - {"thermal-join"}
        assert all(v > 0 for v in out["speedups"].values())

    def test_tuning_structure(self):
        # Convergence itself is asserted at a meaningful scale in
        # bench_tuning.py; at 600 objects the cost signal is too noisy
        # for a stable optimum, so only the trace structure is checked.
        out = figures.tuning(scale="tiny", quiet=True)
        assert out["tuning_steps"] >= 1
        assert len(out["resolutions"]) == len(out["costs"]) == 24
        assert all(0.2 <= r <= 2.0 for r in out["resolutions"])
        assert all(cost >= 0 for cost in out["costs"])

    def test_ablations_structure(self):
        out = figures.ablations(scale="tiny", quiet=True)
        labels = [row[0] for row in out["rows"]]
        assert labels == [
            "full",
            "no hot spots",
            "no enclosure shortcut",
            "rebuild each step",
            "gc off",
        ]
        # GC off retains at least as many cells as the 35% policy.
        full_cells = out["rows"][0][5]
        gc_off_cells = out["rows"][4][5]
        assert gc_off_cells >= full_cells


@pytest.mark.slow
class TestFig9Driver:
    def test_fig9_structure(self):
        out = figures.fig9(scale="tiny", time_budget=30.0, quiet=True)
        panels = [key for key in out if key.startswith("Figure 9")]
        assert len(panels) == 6
        for key in panels:
            panel = out[key]
            assert set(panel["series"]) == set(figures.FIG9_ALGORITHMS)


class TestRunExperiment:
    def test_dispatch(self):
        out = run_experiment("fig10", scale="tiny", quiet=True)
        assert "footprint" in out

    def test_unknown_id(self):
        with pytest.raises(KeyError):
            run_experiment("nope", scale="tiny")


class TestCLI:
    def test_list_command(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for experiment_id in ("fig2", "fig7", "speedups", "ablations"):
            assert experiment_id in out

    def test_single_experiment(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["fig10", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "Figure 10a" in out
        assert "done in" in out

    def test_rejects_unknown_scale(self):
        from repro.experiments.__main__ import main

        with pytest.raises(SystemExit):
            main(["fig10", "--scale", "galactic"])
