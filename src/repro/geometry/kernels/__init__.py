"""The verify-kernel layer: flat columnar primitives, dispatchable backends.

Every candidate-verification routine in the repository — the batched
group joins, THERMAL-JOIN's optimized cell-pair sweep with the enclosure
shortcut, the partitioned global plane sweep's strips, hot-cell
emission — is one of the five primitives catalogued in
:data:`~repro.geometry.kernels.spec.KERNEL_SPECS` and is invoked through
the dispatch functions below.  ``REPRO_KERNELS=numpy|numba|python``
selects the backend (see :mod:`repro.geometry.kernels.dispatch`); the
numpy implementation is the permanent oracle and every other backend is
bit-identical to it in pair sets and counters.

This package is the single seam for faster verification backends: new
backends register a kernel table with :func:`register_backend` and the
whole engine — all algorithms, all executors, incremental delta
re-verification included — picks them up without further changes.
"""

from __future__ import annotations

import numpy as np

from typing import TYPE_CHECKING

from repro.geometry.kernels.dispatch import (
    DEFAULT_BACKEND,
    KERNELS_ENV_VAR,
    BackendUnavailable,
    available_backends,
    dispatch,
    get_kernels,
    kernel_metrics,
    register_backend,
    registered_backends,
    reset_kernel_metrics,
    resolve_backend_name,
    set_backend,
)
from repro.geometry.kernels.numpy_backend import (
    DEFAULT_CHUNK_CANDIDATES,
    PairCallback,
)
from repro.geometry.kernels.spec import KERNEL_SPECS, KernelSpec, kernel_names

if TYPE_CHECKING:
    from repro.geometry.pairs import PairAccumulator

__all__ = [
    "KERNEL_SPECS",
    "KernelSpec",
    "kernel_names",
    "PairCallback",
    "DEFAULT_BACKEND",
    "DEFAULT_CHUNK_CANDIDATES",
    "KERNELS_ENV_VAR",
    "BackendUnavailable",
    "available_backends",
    "registered_backends",
    "register_backend",
    "resolve_backend_name",
    "set_backend",
    "get_kernels",
    "kernel_metrics",
    "reset_kernel_metrics",
    "self_join_groups",
    "cross_join_groups",
    "cell_pair_sweep",
    "strip_sweep",
    "hot_cell_emit",
]


def self_join_groups(
    lo: np.ndarray,
    hi: np.ndarray,
    cat: np.ndarray,
    starts: np.ndarray,
    stops: np.ndarray,
    groups: np.ndarray,
    on_pairs: PairCallback,
    count: str = "full",
    chunk_candidates: int = DEFAULT_CHUNK_CANDIDATES,
    backend: str | None = None,
) -> int:
    """All unordered object pairs within each listed group; returns tests.

    See :func:`repro.geometry.kernels.numpy_backend.self_join_groups`
    for the full contract (the oracle's docstring is normative).
    """
    tests = dispatch(
        "self_join_groups", backend,
        lo, hi, cat, starts, stops, groups, on_pairs, count, chunk_candidates,
    )
    return int(tests)


def cross_join_groups(
    lo: np.ndarray,
    hi: np.ndarray,
    cat_a: np.ndarray,
    starts_a: np.ndarray,
    stops_a: np.ndarray,
    cat_b: np.ndarray,
    starts_b: np.ndarray,
    stops_b: np.ndarray,
    pair_a: np.ndarray,
    pair_b: np.ndarray,
    on_pairs: PairCallback,
    count: str = "full",
    chunk_candidates: int = DEFAULT_CHUNK_CANDIDATES,
    backend: str | None = None,
) -> int:
    """Join group ``pair_a[k]`` of side A against ``pair_b[k]`` of side B."""
    tests = dispatch(
        "cross_join_groups", backend,
        lo, hi, cat_a, starts_a, stops_a, cat_b, starts_b, stops_b,
        pair_a, pair_b, on_pairs, count, chunk_candidates,
    )
    return int(tests)


def cell_pair_sweep(
    lo: np.ndarray,
    hi: np.ndarray,
    cat: np.ndarray,
    starts: np.ndarray,
    stops: np.ndarray,
    center_lo: np.ndarray,
    center_hi: np.ndarray,
    pair_a: np.ndarray,
    pair_b: np.ndarray,
    accumulator: PairAccumulator,
    chunk_candidates: int = DEFAULT_CHUNK_CANDIDATES,
    enclosure_shortcut: bool = True,
    backend: str | None = None,
) -> tuple[int, int]:
    """Optimized sweep over many cell pairs; returns (tests, shortcuts)."""
    tests, shortcuts = dispatch(
        "cell_pair_sweep", backend,
        lo, hi, cat, starts, stops, center_lo, center_hi, pair_a, pair_b,
        accumulator, chunk_candidates, enclosure_shortcut,
    )
    return int(tests), int(shortcuts)


def strip_sweep(
    lo: np.ndarray,
    hi: np.ndarray,
    ids: np.ndarray,
    start: int,
    stop: int,
    carry: np.ndarray,
    accumulator: PairAccumulator,
    backend: str | None = None,
) -> int:
    """One strip of the partitioned global plane sweep; returns tests."""
    tests = dispatch(
        "strip_sweep", backend, lo, hi, ids, start, stop, carry, accumulator
    )
    return int(tests)


def hot_cell_emit(
    cat: np.ndarray,
    starts: np.ndarray,
    stops: np.ndarray,
    hot_slots: np.ndarray,
    accumulator: PairAccumulator,
    backend: str | None = None,
) -> int:
    """Combinatorial within-cell emission for hot cells; returns pairs."""
    emitted = dispatch(
        "hot_cell_emit", backend, cat, starts, stops, hot_slots, accumulator
    )
    return int(emitted)
