"""Staged execution engine: plans, executors, statistics.

The engine's core guarantee is that scheduling is invisible: for any
algorithm and any executor, the merged pair set and the overlap-test
total are identical to the serial run (and to the brute-force oracle).
These tests enforce that guarantee across every algorithm in the
repository, plus the plan/partition helpers and executor selection.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import (
    CellPairSweepTask,
    Executor,
    FallbackJoinTask,
    GroupSelfJoinTask,
    HotCellsTask,
    ProcessExecutor,
    SerialExecutor,
    SweepStripTask,
    ThreadExecutor,
    chunk_by_volume,
    resolve_executor,
)
from repro.geometry import PairAccumulator

from .conftest import assert_matches_oracle


def _factories():
    from repro.core import ThermalJoin
    from repro.joins import (
        CRTreeJoin,
        EGOJoin,
        IndexedNestedLoopRTreeJoin,
        LooseOctreeJoin,
        MXCIFOctreeJoin,
        NestedLoopJoin,
        PBSMJoin,
        PlaneSweepJoin,
        ST2BJoin,
        SynchronousRTreeJoin,
        TouchJoin,
    )

    return {
        "thermal-join": lambda **kw: ThermalJoin(resolution=1.0, **kw),
        "nested-loop": NestedLoopJoin,
        "plane-sweep": PlaneSweepJoin,
        "pbsm": PBSMJoin,
        "ego": EGOJoin,
        "mxcif-octree": MXCIFOctreeJoin,
        "loose-octree": LooseOctreeJoin,
        "rtree-sync": SynchronousRTreeJoin,
        "cr-tree": CRTreeJoin,
        "touch": TouchJoin,
        "inl-rtree": IndexedNestedLoopRTreeJoin,
        "st2b": ST2BJoin,
    }


# ----------------------------------------------------------------------
# chunk_by_volume
# ----------------------------------------------------------------------
class TestChunkByVolume:
    def test_slices_cover_range_without_overlap(self):
        counts = np.array([5, 0, 12, 3, 3, 40, 1, 1])
        slices = chunk_by_volume(counts, 3)
        assert slices[0][0] == 0
        assert slices[-1][1] == counts.size
        for (_, stop), (nxt, _) in zip(slices, slices[1:], strict=False):
            assert stop == nxt

    def test_respects_task_bound(self):
        rng = np.random.default_rng(0)
        counts = rng.integers(0, 100, size=200)
        assert len(chunk_by_volume(counts, 8)) <= 8

    def test_deterministic(self):
        counts = np.arange(50)
        assert chunk_by_volume(counts, 6) == chunk_by_volume(counts, 6)

    def test_empty_and_single(self):
        assert chunk_by_volume(np.array([], dtype=np.int64), 4) == []
        assert chunk_by_volume(np.array([7]), 4) == [(0, 1)]

    def test_all_zero_volume_yields_one_slice(self):
        assert chunk_by_volume(np.zeros(9, dtype=np.int64), 4) == [(0, 9)]

    def test_roughly_balanced(self):
        counts = np.full(64, 10)
        slices = chunk_by_volume(counts, 4)
        volumes = [counts[a:b].sum() for a, b in slices]
        assert max(volumes) <= 2 * min(volumes)


# ----------------------------------------------------------------------
# Executor selection
# ----------------------------------------------------------------------
class TestResolveExecutor:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_EXECUTOR", raising=False)
        assert isinstance(resolve_executor(None), SerialExecutor)

    def test_environment_variable_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "thread:5")
        executor = resolve_executor(None)
        assert isinstance(executor, ThreadExecutor)
        assert executor.n_workers == 5

    def test_spec_strings(self):
        assert isinstance(resolve_executor("serial"), SerialExecutor)
        assert isinstance(resolve_executor("thread"), ThreadExecutor)
        assert resolve_executor("thread:3").n_workers == 3
        process = resolve_executor("process:2")
        assert isinstance(process, ProcessExecutor)
        assert process.n_workers == 2

    def test_instances_pass_through(self):
        executor = SerialExecutor()
        assert resolve_executor(executor) is executor

    def test_invalid_specs_raise(self):
        with pytest.raises(ValueError):
            resolve_executor("quantum")
        with pytest.raises(ValueError):
            resolve_executor("thread:zero")
        with pytest.raises(TypeError):
            resolve_executor(3)
        with pytest.raises(ValueError):
            ThreadExecutor(0)
        with pytest.raises(ValueError):
            ProcessExecutor(-1)

    def test_algorithm_honours_environment(self, monkeypatch):
        from repro.joins import NestedLoopJoin

        monkeypatch.setenv("REPRO_EXECUTOR", "thread:2")
        join = NestedLoopJoin()
        assert isinstance(join.executor, ThreadExecutor)
        assert join.executor.n_workers == 2

    def test_thermal_n_workers_maps_to_thread_executor(self):
        from repro.core import ThermalJoin

        join = ThermalJoin(n_workers=3)
        assert isinstance(join.executor, ThreadExecutor)
        assert join.executor.n_workers == 3


# ----------------------------------------------------------------------
# All algorithms × all executors against the oracle
# ----------------------------------------------------------------------
class TestExecutorsMatchOracle:
    @pytest.fixture(scope="class")
    def process_pool(self):
        executor = ProcessExecutor(n_workers=2)
        yield executor
        executor.close()

    @pytest.mark.parametrize("name", sorted(_factories()))
    def test_serial_matches_oracle(self, name, uniform_small):
        assert_matches_oracle(_factories()[name](), uniform_small)

    @pytest.mark.parametrize("name", sorted(_factories()))
    def test_thread_matches_oracle_and_serial_stats(self, name, uniform_small):
        factory = _factories()[name]
        serial = factory().step(uniform_small)
        threaded = factory(executor="thread:3")
        assert_matches_oracle(threaded, uniform_small)
        assert threaded.stats.overlap_tests == serial.stats.overlap_tests

    @pytest.mark.parametrize("name", sorted(_factories()))
    def test_process_matches_oracle_and_serial_stats(
        self, name, uniform_small, process_pool
    ):
        factory = _factories()[name]
        serial = factory().step(uniform_small)
        processed = factory(executor=process_pool)
        assert_matches_oracle(processed, uniform_small)
        assert processed.stats.overlap_tests == serial.stats.overlap_tests

    def test_count_only_counts_agree_across_executors(self, uniform_varied):
        from repro.core import ThermalJoin

        counts = set()
        for spec in ("serial", "thread:2", "process:2"):
            join = ThermalJoin(resolution=1.0, count_only=True, executor=spec)
            result = join.step(uniform_varied)
            assert result.pairs is None
            counts.add(result.n_results)
            join.executor.close()
        assert len(counts) == 1


# ----------------------------------------------------------------------
# Plans and statistics
# ----------------------------------------------------------------------
class TestPlansAndStatistics:
    def test_thermal_plan_task_vocabulary(self, uniform_small):
        from repro.core import ThermalJoin

        join = ThermalJoin(resolution=1.0)
        join._build(uniform_small)
        plan = join.plan(uniform_small)
        kinds = {type(task) for task in plan.tasks}
        assert CellPairSweepTask in kinds
        assert HotCellsTask in kinds or GroupSelfJoinTask in kinds
        assert {"lo", "hi", "cat", "starts", "stops"} <= set(plan.context)

    def test_plane_sweep_plan_emits_strips(self, uniform_small):
        from repro.joins import PlaneSweepJoin

        join = PlaneSweepJoin()
        join._build(uniform_small)
        plan = join.plan(uniform_small)
        assert plan.tasks and all(
            isinstance(task, SweepStripTask) for task in plan.tasks
        )
        assert plan.tasks[0].start == 0
        assert plan.tasks[-1].stop == len(uniform_small)

    def test_unported_algorithm_gets_fallback_plan(self, uniform_small):
        from repro.joins import TouchJoin

        join = TouchJoin()
        join._build(uniform_small)
        plan = join.plan(uniform_small)
        assert len(plan.tasks) == 1
        assert isinstance(plan.tasks[0], FallbackJoinTask)

    def test_stage_seconds_and_task_counters_recorded(self, uniform_small):
        from repro.joins import PBSMJoin

        join = PBSMJoin()
        result = join.step(uniform_small)
        assert set(result.stats.stage_seconds) == {
            "prepare",
            "partition",
            "verify",
            "merge",
        }
        assert all(v >= 0.0 for v in result.stats.stage_seconds.values())
        assert result.stats.task_counters
        assert result.stats.overlap_tests == sum(
            c["overlap_tests"] for c in result.stats.task_counters
        )

    def test_thermal_phase_breakdown_sums_task_times(self, uniform_small):
        from repro.core import ThermalJoin

        join = ThermalJoin(resolution=1.0)
        result = join.step(uniform_small)
        phases = result.stats.phase_seconds
        assert set(phases) == {"building", "internal", "external"}
        assert all(v >= 0.0 for v in phases.values())

    def test_pairs_annotation_contract(self, uniform_small):
        from repro.joins import NestedLoopJoin

        materialised = NestedLoopJoin().step(uniform_small)
        assert isinstance(materialised.pairs, tuple)
        counted = NestedLoopJoin(count_only=True).step(uniform_small)
        assert counted.pairs is None
        assert counted.n_results == materialised.n_results

    def test_executor_base_class_is_abstract(self):
        with pytest.raises(NotImplementedError):
            Executor().run([], {}, False)


# ----------------------------------------------------------------------
# Accumulator support for parallel shards
# ----------------------------------------------------------------------
class TestAddCount:
    def test_add_count_in_count_only_mode(self):
        accumulator = PairAccumulator(count_only=True)
        accumulator.add_count(7)
        accumulator.add_count(3)
        assert len(accumulator) == 10

    def test_add_count_rejected_when_materialising(self):
        accumulator = PairAccumulator()
        with pytest.raises(RuntimeError):
            accumulator.add_count(1)
