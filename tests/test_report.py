"""Tests for the harness's table rendering and workload presets."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.report import (
    format_value,
    render_series_table,
    render_speedups,
    render_table,
)
from repro.experiments.workloads import (
    PAPER_UNIFORM_DENSITY,
    SCALES,
    scaled_clustered,
    scaled_neural,
    scaled_uniform,
)


class TestFormatting:
    def test_none_renders_as_dash(self):
        assert format_value(None) == "-"

    def test_integers_get_thousands_separators(self):
        assert format_value(1234567) == "1,234,567"

    def test_floats_compact(self):
        assert format_value(0.12345) == "0.123"
        assert format_value(3.14159) == "3.14"
        assert format_value(0.0) == "0"

    def test_strings_pass_through(self):
        assert format_value("abc") == "abc"


class TestTables:
    def test_columns_aligned(self):
        table = render_table(["a", "bbb"], [[1, 2], [333, 4]])
        lines = table.splitlines()
        assert len({len(line) for line in lines}) == 1  # rectangular

    def test_title_included(self):
        assert render_table(["x"], [[1]], title="T").startswith("T\n")

    def test_series_table_with_missing_values(self):
        table = render_series_table(
            "n", [1, 2, 3], {"algo": [0.5, None, 2.0]}
        )
        assert "-" in table

    def test_series_table_shorter_series_padded(self):
        table = render_series_table("n", [1, 2], {"algo": [1.0]})
        assert table.count("-") >= 1

    def test_speedups_sorted_ascending(self):
        table = render_speedups({"b": 9.0, "a": 2.0})
        lines = table.splitlines()
        assert lines.index([l for l in lines if "a" in l and "2.0x" in l][0]) < (
            lines.index([l for l in lines if "b" in l and "9.0x" in l][0])
        )


class TestWorkloadPresets:
    def test_all_scales_define_required_keys(self):
        required = {"neural_n", "uniform_n", "clustered_n", "fig7_steps"}
        for name, preset in SCALES.items():
            assert required <= set(preset), name

    def test_scaled_uniform_preserves_paper_density(self):
        for n in (2_000, 16_000):
            dataset, _motion = scaled_uniform(n, seed=1)
            lo, hi = dataset.bounds
            volume = float(np.prod(hi - lo))
            assert n / volume == pytest.approx(PAPER_UNIFORM_DENSITY, rel=1e-6)

    def test_scaled_uniform_width_range(self):
        dataset, _motion = scaled_uniform(2_000, width_range=(10.0, 20.0), seed=2)
        assert dataset.min_width >= 10.0
        assert dataset.max_width <= 20.0

    def test_scaled_clustered_sd_factor_shrinks_spread(self):
        tight, _m, _l = scaled_clustered(2_000, sd_factor=0.5, seed=3)
        loose, _m, _l = scaled_clustered(2_000, sd_factor=1.5, seed=3)
        assert tight.centers.std(axis=0).mean() < loose.centers.std(axis=0).mean()

    def test_scaled_neural_returns_labels(self):
        dataset, motion, labels = scaled_neural(1_500, seed=4)
        assert len(dataset) == 1_500
        assert labels.shape == (1_500,)
        before = dataset.centers.copy()
        motion.step(dataset)
        assert not np.array_equal(before, dataset.centers)


class TestRegistry:
    def test_every_experiment_listed(self):
        from repro.experiments import EXPERIMENTS, list_experiments

        listed = dict(list_experiments())
        assert set(listed) == set(EXPERIMENTS)
        assert all(desc for desc in listed.values())

    def test_unknown_experiment_raises(self):
        from repro.experiments import run_experiment

        with pytest.raises(KeyError):
            run_experiment("fig99")
