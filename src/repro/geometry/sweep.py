"""Plane-sweep join primitives over x-sorted box collections.

The forward plane sweep (Preparata & Shamos [29]) is the workhorse
comparison routine of this reproduction: the global plane-sweep baseline
runs it over the whole dataset, PBSM runs it inside each partition, and
THERMAL-JOIN runs it for the external join between a cell and its
hyperlinked neighbours (Section 4.2.1 of the paper).

All routines assume their inputs are sorted ascending by the box's lower
x bound (``lo[:, 0]``) — exactly the order Algorithm 1 establishes for
every cell's object list — and return:

* two ``int64`` arrays with the matching pairs expressed in the caller's
  *global* object indices, and
* the number of pairwise overlap tests performed, defined as the number
  of candidate pairs whose x-intervals overlap and therefore had their
  remaining dimensions evaluated.  This is the machine-independent cost
  metric of the paper's Figure 7(c).

The sweeps are vectorised: candidate windows are located with binary
search over the sorted x bounds and the y/z predicates are evaluated in
bulk.  The candidate set — and hence the test count — is identical to
the classical pointer-walking formulation.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "sort_by_x",
    "window_pairs",
    "sweep_self",
    "sweep_between",
]


def sort_by_x(lo: np.ndarray, hi: np.ndarray, ids: np.ndarray | None = None) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sort boxes (and optional global ids) ascending by lower x bound.

    Returns ``(lo, hi, ids)`` where ``ids`` defaults to positional
    indices.  Every cell in THERMAL-JOIN keeps its object list in this
    order so joins never re-sort.
    """
    lo = np.asarray(lo, dtype=np.float64)
    hi = np.asarray(hi, dtype=np.float64)
    ids = (
        np.arange(lo.shape[0], dtype=np.int64)
        if ids is None
        else np.asarray(ids, dtype=np.int64)
    )
    order = np.argsort(lo[:, 0], kind="stable")
    return lo[order], hi[order], ids[order]


def window_pairs(starts: np.ndarray, stops: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Expand per-row candidate windows into flat pair index arrays.

    Given ``starts``/``stops`` (exclusive) window bounds per left-hand
    row, return ``(left, right)`` arrays enumerating every (row, window
    member) combination.  This is the vectorised replacement for the
    nested sweep loop.
    """
    starts = np.asarray(starts, dtype=np.int64)
    stops = np.asarray(stops, dtype=np.int64)
    counts = np.maximum(stops - starts, 0)
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy()
    left = np.repeat(np.arange(starts.size, dtype=np.int64), counts)
    # Offsets within each window: a global arange minus each window's start
    # position in the flattened output, plus the window's start index.
    ends = np.cumsum(counts)
    right = (
        np.arange(total, dtype=np.int64)
        - np.repeat(ends - counts, counts)
        + np.repeat(starts, counts)
    )
    return left, right


def _filter_yz(
    lo_a: np.ndarray, hi_a: np.ndarray, lo_b: np.ndarray, hi_b: np.ndarray, left: np.ndarray, right: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Keep pairs whose y and z intervals strictly overlap."""
    if left.size == 0:
        return left, right
    keep = np.logical_and(
        np.logical_and(lo_a[left, 1] < hi_b[right, 1], lo_b[right, 1] < hi_a[left, 1]),
        np.logical_and(lo_a[left, 2] < hi_b[right, 2], lo_b[right, 2] < hi_a[left, 2]),
    )
    return left[keep], right[keep]


def sweep_self(lo: np.ndarray, hi: np.ndarray, ids: np.ndarray | None = None) -> tuple[np.ndarray, np.ndarray, int]:
    """Forward plane-sweep self-join of one x-sorted box collection.

    For each box ``i`` the sweep scans forward over boxes ``k > i`` while
    ``lo_k.x < hi_i.x``; every scanned pair x-overlaps by construction
    and is charged one overlap test for its y/z evaluation.

    Returns ``(i_ids, j_ids, tests)`` with pairs in global ids (canonical
    ordering is *not* applied here; positional ``i < k`` holds, which is
    canonical when ``ids`` is sorted, and callers otherwise canonicalise
    via the accumulator).
    """
    lo = np.asarray(lo, dtype=np.float64)
    hi = np.asarray(hi, dtype=np.float64)
    n = lo.shape[0]
    ids = (
        np.arange(n, dtype=np.int64)
        if ids is None
        else np.asarray(ids, dtype=np.int64)
    )
    if n < 2:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy(), 0
    xlo = lo[:, 0]
    starts = np.arange(1, n + 1, dtype=np.int64)
    stops = np.searchsorted(xlo, hi[:, 0], side="left").astype(np.int64)
    left, right = window_pairs(starts, stops)
    tests = int(left.size)
    left, right = _filter_yz(lo, hi, lo, hi, left, right)
    return ids[left], ids[right], tests


def sweep_between(
    lo_a: np.ndarray, hi_a: np.ndarray, ids_a: np.ndarray, lo_b: np.ndarray, hi_b: np.ndarray, ids_b: np.ndarray
) -> tuple[np.ndarray, np.ndarray, int]:
    """Forward plane-sweep join between two disjoint x-sorted collections.

    Each x-overlapping (a, b) pair is scanned exactly once: from the ``a``
    side when ``lo_a.x <= lo_b.x`` and from the ``b`` side when
    ``lo_b.x < lo_a.x`` (ties broken toward the ``a`` side).  The
    collections must not share objects; THERMAL-JOIN guarantees this
    because every object belongs to exactly one P-Grid cell.

    Returns ``(a_ids, b_ids, tests)``.
    """
    lo_a = np.asarray(lo_a, dtype=np.float64)
    hi_a = np.asarray(hi_a, dtype=np.float64)
    lo_b = np.asarray(lo_b, dtype=np.float64)
    hi_b = np.asarray(hi_b, dtype=np.float64)
    ids_a = np.asarray(ids_a, dtype=np.int64)
    ids_b = np.asarray(ids_b, dtype=np.int64)
    if lo_a.shape[0] == 0 or lo_b.shape[0] == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy(), 0

    xlo_a = lo_a[:, 0]
    xlo_b = lo_b[:, 0]

    # Scan from a over b: b's window is lo_b.x in [lo_a.x, hi_a.x).
    starts_ab = np.searchsorted(xlo_b, xlo_a, side="left").astype(np.int64)
    stops_ab = np.searchsorted(xlo_b, hi_a[:, 0], side="left").astype(np.int64)
    left_ab, right_ab = window_pairs(starts_ab, stops_ab)

    # Scan from b over a: a's window is lo_a.x in (lo_b.x, hi_b.x).
    starts_ba = np.searchsorted(xlo_a, xlo_b, side="right").astype(np.int64)
    stops_ba = np.searchsorted(xlo_a, hi_b[:, 0], side="left").astype(np.int64)
    left_ba, right_ba = window_pairs(starts_ba, stops_ba)

    tests = int(left_ab.size + left_ba.size)
    left_ab, right_ab = _filter_yz(lo_a, hi_a, lo_b, hi_b, left_ab, right_ab)
    left_ba, right_ba = _filter_yz(lo_b, hi_b, lo_a, hi_a, left_ba, right_ba)

    a_ids = np.concatenate([ids_a[left_ab], ids_a[right_ba]])
    b_ids = np.concatenate([ids_b[right_ab], ids_b[left_ba]])
    return a_ids, b_ids, tests
