"""Lightweight trace spans for the staged join engine.

A *span* is one timed region of a join step: the step itself, each of
the engine's four stages (prepare / partition / verify / merge) and one
span per executed plan task.  Spans carry a name, an optional phase tag,
wall and CPU time, a counters dict and a parent reference, so a trace
consumer can reconstruct the step tree exactly — the fine-grained phase
attribution that parallel in-memory join work (Tsitsigkos & Mamoulis)
and adaptive geospatial joins (Kipf et al.) rely on to explain cost.

Tracing is **observational only**: the engine produces bit-identical
pair sets, overlap-test totals and tuner decisions with tracing on or
off (the test suite enforces it), and the disabled path is a single
attribute check plus a shared no-op context manager — no allocation,
no measurable overhead.

Task spans are not measured by the tracer itself: every executor
already times each task (wall and CPU) wherever it ran — inline, on a
pool thread or in a worker process — and ships the measurement back
through the existing result channel (:class:`~repro.engine.plan.TaskResult`
and the process executor's payload).  The engine turns those results
into child spans of the verify stage via :meth:`Tracer.record`, so
worker-side time is attributed without any cross-process tracing
machinery.

Usage::

    from repro.obs import Tracer, set_tracer, get_tracer

    set_tracer(Tracer())            # or Tracer(sink=JsonlWriter(path))
    ...                             # run joins; spans accumulate
    spans = get_tracer().drain()

The ``REPRO_TRACE`` environment variable names a JSONL file to trace
into for the whole process (consulted once, lazily).
"""

from __future__ import annotations

import os
import time
from typing import TYPE_CHECKING

from dataclasses import dataclass, field
from types import TracebackType
from typing import Any

if TYPE_CHECKING:
    from repro.obs.jsonl import JsonlWriter

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "Span",
    "Tracer",
    "NullTracer",
    "get_tracer",
    "set_tracer",
    "emit_record",
]

#: Version stamped on every span line a sink writes.
TRACE_SCHEMA_VERSION = 1

#: Environment variable naming a JSONL file to trace into by default.
TRACE_ENV_VAR = "REPRO_TRACE"


@dataclass
class Span:
    """One timed region of a join step.

    ``span_id``/``parent_id`` encode the tree (``parent_id`` is ``None``
    for a step's root span); ``step`` is the tracer's step sequence
    number, so spans of different steps never interleave ambiguously.
    """

    span_id: int
    parent_id: int | None
    name: str
    phase: str | None = None
    step: int | None = None
    start: float = 0.0
    wall_seconds: float = 0.0
    cpu_seconds: float = 0.0
    counters: dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> dict[str, Any]:
        """The span as a JSON-ready dict (one trace JSONL line)."""
        return {
            "kind": "span",
            "schema_version": TRACE_SCHEMA_VERSION,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "phase": self.phase,
            "step": self.step,
            "start": self.start,
            "wall_seconds": self.wall_seconds,
            "cpu_seconds": self.cpu_seconds,
            "counters": dict(self.counters),
        }


class _SpanContext:
    """Context manager measuring one live span."""

    __slots__ = ("_tracer", "span", "_t0", "_c0")

    def __init__(self, tracer: Tracer, span: Span) -> None:
        self._tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        self._t0 = time.perf_counter()
        self._c0 = time.process_time()
        return self.span

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> bool:
        self.span.wall_seconds = time.perf_counter() - self._t0
        self.span.cpu_seconds = time.process_time() - self._c0
        self._tracer._emit(self.span)
        return False


class _NullSpanContext:
    """Shared no-op context manager for the disabled tracer."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> bool:
        return False


_NULL_SPAN = _NullSpanContext()


class Tracer:
    """Collects spans; optionally streams them to a ``sink``.

    ``sink`` is anything with a ``write(dict)`` method (see
    :class:`~repro.obs.jsonl.JsonlWriter`).  Spans are also kept in
    :attr:`spans` until :meth:`drain` is called, so in-process consumers
    (tests, the bench driver) need no sink at all.
    """

    enabled = True

    def __init__(self, sink: JsonlWriter | None = None) -> None:
        self.sink = sink
        self.spans: list[Span] = []
        self._next_id = 1
        self._step = 0
        self._origin = time.perf_counter()

    # ------------------------------------------------------------------
    def begin_step(self) -> int:
        """Advance the step sequence number; returns it."""
        self._step += 1
        return self._step

    def span(
        self,
        name: str,
        phase: str | None = None,
        parent: Span | None = None,
        counters: dict[str, Any] | None = None,
    ) -> _SpanContext:
        """Open a live span as a context manager; yields the Span."""
        span = Span(
            span_id=self._take_id(),
            parent_id=parent.span_id if parent is not None else None,
            name=name,
            phase=phase,
            step=self._step,
            start=time.perf_counter() - self._origin,
            counters=dict(counters) if counters else {},
        )
        return _SpanContext(self, span)

    def record(
        self,
        name: str,
        phase: str | None = None,
        parent: Span | None = None,
        wall_seconds: float = 0.0,
        cpu_seconds: float = 0.0,
        counters: dict[str, Any] | None = None,
    ) -> Span:
        """Emit an already-measured span (e.g. a task timed by a worker
        process and shipped back through the result channel)."""
        span = Span(
            span_id=self._take_id(),
            parent_id=parent.span_id if parent is not None else None,
            name=name,
            phase=phase,
            step=self._step,
            start=time.perf_counter() - self._origin,
            wall_seconds=float(wall_seconds),
            cpu_seconds=float(cpu_seconds),
            counters=dict(counters) if counters else {},
        )
        self._emit(span)
        return span

    def drain(self) -> list[Span]:
        """Return and clear the collected spans."""
        spans, self.spans = self.spans, []
        return spans

    # ------------------------------------------------------------------
    def _take_id(self) -> int:
        span_id = self._next_id
        self._next_id += 1
        return span_id

    def _emit(self, span: Span) -> None:
        self.spans.append(span)
        if self.sink is not None:
            self.sink.write(span.to_json())

    def __repr__(self) -> str:
        return f"Tracer(spans={len(self.spans)}, sink={self.sink!r})"


class NullTracer:
    """Disabled tracer: every operation is a constant-time no-op."""

    enabled = False
    sink: JsonlWriter | None = None

    def begin_step(self) -> int:
        return 0

    def span(
        self,
        name: str,
        phase: str | None = None,
        parent: Span | None = None,
        counters: dict[str, Any] | None = None,
    ) -> _NullSpanContext:
        return _NULL_SPAN

    def record(self, *args: Any, **kwargs: Any) -> None:
        return None

    def drain(self) -> list[Span]:
        return []

    def __repr__(self) -> str:
        return "NullTracer()"


# ----------------------------------------------------------------------
# Active-tracer management
# ----------------------------------------------------------------------
_ACTIVE: Tracer | NullTracer = NullTracer()
_ENV_CHECKED = False


def get_tracer() -> Tracer | NullTracer:
    """The process-wide active tracer (a :class:`NullTracer` by default).

    On first call, the ``REPRO_TRACE`` environment variable is consulted:
    when set, a :class:`Tracer` writing JSONL to that path is installed.
    """
    global _ACTIVE, _ENV_CHECKED
    if not _ENV_CHECKED:
        _ENV_CHECKED = True
        path = os.environ.get(TRACE_ENV_VAR)
        if path and not _ACTIVE.enabled:
            from repro.obs.jsonl import JsonlWriter

            _ACTIVE = Tracer(sink=JsonlWriter(path))
    return _ACTIVE


def set_tracer(tracer: Tracer | NullTracer | None) -> Tracer | NullTracer:
    """Install ``tracer`` as the active tracer; returns the previous one."""
    global _ACTIVE, _ENV_CHECKED
    _ENV_CHECKED = True  # an explicit tracer overrides the environment
    previous = _ACTIVE
    _ACTIVE = tracer if tracer is not None else NullTracer()
    return previous


def emit_record(kind: str, payload: dict[str, Any]) -> None:
    """Write a non-span record (series dump, experiment result) to the
    active tracer's sink, if tracing into one; no-op otherwise."""
    tracer = get_tracer()
    if tracer.enabled and tracer.sink is not None:
        tracer.sink.write({"kind": kind, **payload})
