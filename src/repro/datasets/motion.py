"""Motion models: unpredictable in-place position updates per step.

Every model mutates a :class:`~repro.datasets.dataset.SpatialDataset` in
place and returns a typed :class:`~repro.datasets.delta.MotionDelta`
describing exactly which objects moved and by how much.  The paper's
workload moves *all* objects at every step (Section 3.2) and the join
algorithms treat the updates as a black box ("we therefore treat the
simulation application as a black box"); the delta does not change that
contract — a join is free to ignore it — but it enables incremental
pair-set maintenance (ROADMAP item 2) for consumers that opt in.

Models
------
``RandomTranslation``
    The synthetic moving-object benchmark of Section 5.3 (after Chen,
    Jensen & Lin [6]): each object gets a uniform random motion vector of
    fixed length at initialisation and is translated by it every step;
    components are inverted when the object would cross the domain
    boundary, keeping the spatial extent constant.

``IntermittentTranslation``
    Low-churn variant of ``RandomTranslation``: only a seeded random
    subset of objects moves at each step (think equilibrated regions of
    a thermal simulation where most particles sit below the displacement
    threshold).  This is the motion-coherent regime where maintaining
    the pair set beats recomputing it.

``ClusterDrift``
    The skewed benchmark's motion: all objects of a cluster share one
    motion vector so the clustered distribution is preserved over time.

``BranchJitter``
    Neural-plasticity stand-in for the rat-brain workload: per-neuron
    coherent drift plus per-object jitter, slowly morphing branch shapes
    while preserving the skewed density structure.  See DESIGN.md §2 for
    the substitution rationale.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.datasets.delta import MotionDelta

if TYPE_CHECKING:
    from repro.datasets.dataset import SpatialDataset

__all__ = [
    "MotionModel",
    "RandomTranslation",
    "IntermittentTranslation",
    "ClusterDrift",
    "BranchJitter",
]


def _unit_vectors(rng: np.random.Generator, n: int) -> np.ndarray:
    """Draw ``n`` isotropic random unit vectors."""
    vec = rng.normal(size=(n, 3))
    norms = np.linalg.norm(vec, axis=1, keepdims=True)
    # Resample the (measure-zero, but possible) zero vectors.
    bad = norms[:, 0] == 0.0
    while bad.any():
        vec[bad] = rng.normal(size=(int(bad.sum()), 3))
        norms = np.linalg.norm(vec, axis=1, keepdims=True)
        bad = norms[:, 0] == 0.0
    return vec / norms


def _reflect(centers: np.ndarray, velocities: np.ndarray, lo: np.ndarray, hi: np.ndarray) -> None:
    """Reflect object motion at the domain boundary, in place.

    Components of the motion vector are inverted when an object leaves
    the domain and the object is folded back inside, so the spatial
    boundaries of the workload remain constant (Section 5.3).
    """
    for _ in range(8):  # a step can cross a thin domain more than once
        below = centers < lo
        above = centers > hi
        if not (below.any() or above.any()):
            break
        centers[below] = (2.0 * lo - centers)[below]
        centers[above] = (2.0 * hi - centers)[above]
        velocities[below | above] *= -1.0
    np.clip(centers, lo, hi, out=centers)


class MotionModel:
    """Base class: one in-place dataset update per :meth:`step` call."""

    def step(self, dataset: SpatialDataset) -> MotionDelta:
        """Advance one time step, mutating ``dataset``; return the delta."""
        raise NotImplementedError

    def run(self, dataset: SpatialDataset, n_steps: int) -> None:
        """Advance ``n_steps`` steps (convenience for tests/examples)."""
        for _ in range(n_steps):
            self.step(dataset)


class RandomTranslation(MotionModel):
    """Fixed-length uniform random motion vectors with boundary reflection.

    Parameters
    ----------
    dataset:
        The dataset the model will drive; its size fixes the number of
        motion vectors and its ``bounds`` give the reflecting box.
    distance:
        Translation distance per time step (the paper's default is 10
        units; Figure 9(d) sweeps 5–45).
    seed:
        Seed for the private random generator.
    """

    def __init__(self, dataset: SpatialDataset, distance: float = 10.0, seed: int = 0) -> None:
        if distance < 0:
            raise ValueError(f"distance must be non-negative, got {distance}")
        self.distance = float(distance)
        rng = np.random.default_rng(seed)
        self.velocities = _unit_vectors(rng, dataset.n_objects) * self.distance
        self._bounds = dataset.bounds

    def step(self, dataset: SpatialDataset) -> MotionDelta:
        before = dataset.centers.copy()
        dataset.centers += self.velocities
        lo, hi = self._bounds
        _reflect(dataset.centers, self.velocities, lo, hi)
        return dataset.commit_motion(before)


class IntermittentTranslation(MotionModel):
    """``RandomTranslation`` where only a random subset moves per step.

    Each object keeps a persistent fixed-length motion vector, but at
    every step an independent seeded coin decides per object whether it
    moves at all.  With ``move_fraction`` well below one this produces
    the low-churn, motion-coherent workload where incremental pair-set
    maintenance pays off; at ``move_fraction=1.0`` it degenerates to
    :class:`RandomTranslation`.

    Parameters
    ----------
    dataset:
        The dataset the model will drive.
    distance:
        Translation distance per step for the objects that do move.
    move_fraction:
        Probability that a given object moves at a given step.
    seed:
        Seed for the private random generator.
    """

    def __init__(
        self,
        dataset: SpatialDataset,
        distance: float = 10.0,
        move_fraction: float = 0.05,
        seed: int = 0,
    ) -> None:
        if distance < 0:
            raise ValueError(f"distance must be non-negative, got {distance}")
        if not 0.0 <= move_fraction <= 1.0:
            raise ValueError(f"move_fraction must be in [0, 1], got {move_fraction}")
        self.distance = float(distance)
        self.move_fraction = float(move_fraction)
        self._rng = np.random.default_rng(seed)
        self.velocities = _unit_vectors(self._rng, dataset.n_objects) * self.distance
        self._bounds = dataset.bounds

    def step(self, dataset: SpatialDataset) -> MotionDelta:
        before = dataset.centers.copy()
        idx = np.flatnonzero(self._rng.random(dataset.n_objects) < self.move_fraction)
        lo, hi = self._bounds
        moved_centers = dataset.centers[idx] + self.velocities[idx]
        moved_velocities = self.velocities[idx]
        _reflect(moved_centers, moved_velocities, lo, hi)
        dataset.centers[idx] = moved_centers
        self.velocities[idx] = moved_velocities
        return dataset.commit_motion(before)


class ClusterDrift(MotionModel):
    """Per-cluster shared motion vectors (skewed benchmark of Section 5.3).

    Parameters
    ----------
    dataset:
        The dataset to drive.
    cluster_labels:
        ``(n,)`` integer array assigning each object to a cluster; the
        clustered generator provides it.
    distance:
        Translation distance per step.
    seed:
        Seed for the private random generator.
    """

    def __init__(
        self,
        dataset: SpatialDataset,
        cluster_labels: np.ndarray,
        distance: float = 10.0,
        seed: int = 0,
    ) -> None:
        cluster_labels = np.asarray(cluster_labels, dtype=np.int64)
        if cluster_labels.shape[0] != dataset.n_objects:
            raise ValueError("cluster_labels must have one entry per object")
        self.cluster_labels = cluster_labels
        n_clusters = int(cluster_labels.max()) + 1 if cluster_labels.size else 0
        rng = np.random.default_rng(seed)
        cluster_velocities = _unit_vectors(rng, max(n_clusters, 1)) * float(distance)
        self.velocities = cluster_velocities[cluster_labels]
        self._bounds = dataset.bounds

    def step(self, dataset: SpatialDataset) -> MotionDelta:
        before = dataset.centers.copy()
        dataset.centers += self.velocities
        lo, hi = self._bounds
        _reflect(dataset.centers, self.velocities, lo, hi)
        return dataset.commit_motion(before)


class BranchJitter(MotionModel):
    """Neural-plasticity motion stand-in: coherent drift plus local jitter.

    Each neuron's skeleton (the objects' offsets from the neuron
    centroid) is preserved while the centroid performs a reflected random
    walk and every object additionally receives a fresh jitter around its
    skeleton position each step.  The combination changes *every*
    object's position *unpredictably* each step — the temporal properties
    the paper's join problem depends on — while keeping the spatial
    distribution stationary, the way real plasticity remodels tissue
    without dissolving its branch-level clustering (the paper's tuning
    assumption in §4.3.2: locations change, the distribution does not
    change drastically between steps).

    Parameters
    ----------
    dataset:
        The dataset to drive (its current state defines the skeleton).
    neuron_labels:
        ``(n,)`` integer array mapping each object to its neuron; the
        neural generator provides it.
    drift:
        Per-step distance of each neuron's random centroid walk.
    jitter:
        Standard deviation of the fresh per-object displacement around
        the skeleton position (does not accumulate over steps).
    seed:
        Seed for the private random generator.
    """

    def __init__(
        self,
        dataset: SpatialDataset,
        neuron_labels: np.ndarray,
        drift: float = 2.0,
        jitter: float = 0.5,
        seed: int = 0,
    ) -> None:
        neuron_labels = np.asarray(neuron_labels, dtype=np.int64)
        if neuron_labels.shape[0] != dataset.n_objects:
            raise ValueError("neuron_labels must have one entry per object")
        self.neuron_labels = neuron_labels
        self.drift = float(drift)
        self.jitter = float(jitter)
        self._rng = np.random.default_rng(seed)
        n_neurons = int(neuron_labels.max()) + 1 if neuron_labels.size else 0
        n_neurons = max(n_neurons, 1)
        # Per-neuron centroids and the fixed skeleton offsets around them.
        sums = np.zeros((n_neurons, 3))
        np.add.at(sums, neuron_labels, dataset.centers)
        counts = np.maximum(np.bincount(neuron_labels, minlength=n_neurons), 1)
        self._centroids = sums / counts[:, None]
        self._skeleton = dataset.centers - self._centroids[neuron_labels]
        self._velocities = np.zeros((n_neurons, 3))
        self._bounds = dataset.bounds
        self._scratch = np.zeros_like(dataset.centers)

    def step(self, dataset: SpatialDataset) -> MotionDelta:
        before = dataset.centers.copy()
        # Unpredictable centroid walk: a fresh random direction per step.
        self._velocities = _unit_vectors(self._rng, self._centroids.shape[0])
        self._velocities *= self.drift
        self._centroids += self._velocities
        lo, hi = self._bounds
        _reflect(self._centroids, self._velocities, lo, hi)
        # Fresh (non-accumulating) jitter keeps branch density stationary.
        noise = self._rng.normal(scale=self.jitter, size=dataset.centers.shape)
        dataset.centers[:] = (
            self._centroids[self.neuron_labels] + self._skeleton + noise
        )
        # Fold protruding branches back inside (reflection, not clipping:
        # clipping would pin objects onto the boundary across steps).
        self._scratch[:] = 0.0
        _reflect(dataset.centers, self._scratch, lo, hi)
        return dataset.commit_motion(before)
