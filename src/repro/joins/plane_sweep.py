"""Global plane-sweep self-join (Preparata & Shamos [29]).

Sorts the dataset by lower x bound each step (no persistent structures)
and runs the forward sweep: every pair whose x-intervals overlap has its
remaining dimensions tested.  Efficient for low selectivity; degenerates
towards the nested loop as objects grow (Figure 2), which is precisely
the regime THERMAL-JOIN targets.

Under the engine the sweep is decomposed into strips of the sorted
order: a strip runs the forward sweep within its own slice plus the
carried-in windows of earlier objects whose x-extent reaches into the
strip.  Every x-overlapping pair is charged exactly once — in the strip
of its later object — so the strip decomposition reproduces the global
sweep's pair set and test count for any strip boundaries.
"""

from __future__ import annotations

import numpy as np

from repro.engine import (
    DEFAULT_PARTITION_TASKS,
    JoinPlan,
    SweepStripTask,
    chunk_by_volume,
)
from repro.geometry import sort_by_x
from repro.joins.base import ID_BYTES, SpatialJoinAlgorithm

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.datasets import SpatialDataset
    from repro.engine import Executor

__all__ = ["PlaneSweepJoin"]


class PlaneSweepJoin(SpatialJoinAlgorithm):
    """Forward plane sweep over the x-sorted dataset."""

    name = "plane-sweep"

    def __init__(self, count_only: bool = False, executor: Executor | None = None) -> None:
        super().__init__(count_only=count_only, executor=executor)
        self._sorted = None

    def _build(self, dataset: SpatialDataset) -> None:
        lo, hi = dataset.boxes()
        self._sorted = sort_by_x(lo, hi)

    def plan(self, dataset: SpatialDataset) -> JoinPlan:
        """Split the sorted order into sweep strips of balanced volume.

        Strip boundaries are placed by each position's forward-window
        size (its share of the sweep's candidate volume); the carry-in
        set of a strip is every earlier position whose upper x bound
        exceeds the strip's first lower x bound.
        """
        lo, hi, ids = self._sorted
        context = {"lo": lo, "hi": hi, "ids": ids}
        n = ids.size
        tasks = []
        if n:
            windows = np.searchsorted(lo[:, 0], hi[:, 0], side="left")
            window_sizes = np.maximum(
                windows - np.arange(1, n + 1, dtype=np.int64), 0
            )
            for start, stop in chunk_by_volume(
                window_sizes, DEFAULT_PARTITION_TASKS
            ):
                carry = np.flatnonzero(hi[:start, 0] > lo[start, 0])  # repro-lint: ignore[RPL201] sorted-x carry-in window, not a pairwise predicate; the sweep kernel charges candidates
                tasks.append(SweepStripTask(start=start, stop=stop, carry=carry))

        def on_complete(_results):
            self._sorted = None  # throw-away, like the paper's variant

        return JoinPlan(context=context, tasks=tasks, on_complete=on_complete)

    def memory_footprint(self) -> int:
        # Only the transient sort permutation is held during a step.
        if self._sorted is None:
            return 0
        return self._sorted[2].size * ID_BYTES
