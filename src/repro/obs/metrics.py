"""Metrics registry: snapshot index-internal counters into statistics.

The substrates of THERMAL-JOIN already compute rich diagnostics — the
P-Grid's lifetime cell accounting (``cells_created``, ``cells_recycled``,
``gc_runs``, ``n_vacant``), the T-Grid's fallback and peak-cell numbers,
the tuner's convergence state and the executor's degradation rung — but
until this layer they were dropped on the floor after each step.

A :class:`MetricsRegistry` holds named *providers*: zero-argument
callables returning a flat dict of scalars (or ``None``/``{}`` when the
component has nothing to report yet, e.g. a P-Grid before the first
build).  :meth:`snapshot` evaluates every provider and returns a
``{provider_name: {metric: value}}`` tree of JSON-ready scalars, which
the engine stores into ``JoinStatistics.index_counters`` each step and
the simulation runner copies into ``StepRecord.index_counters`` — so
every figure, benchmark and trace line can see the index internals of
the exact step it measured.

Providers are read-only by contract: a snapshot must never mutate the
component it observes (results stay bit-identical with metrics on,
which the test suite enforces).
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from typing import Any

#: A provider: zero-argument callable returning a flat metric dict (or
#: ``None``/``{}`` when the component has nothing to report yet).
MetricsProvider = Callable[[], "Mapping[str, Any] | None"]

__all__ = ["MetricsRegistry", "MetricsProvider"]

_SCALAR_TYPES = (bool, int, float, str, type(None))


def _scalar(value: object) -> bool | int | float | str | None:
    """Coerce a provider value to a JSON-ready scalar."""
    if isinstance(value, _SCALAR_TYPES):
        return value
    item = getattr(value, "item", None)  # numpy scalars
    if callable(item):
        return item()
    return repr(value)


class MetricsRegistry:
    """Named read-only providers of per-component counter snapshots."""

    def __init__(self) -> None:
        self._providers: dict[str, MetricsProvider] = {}

    def register(self, name: str, provider: MetricsProvider) -> None:
        """Register ``provider`` under ``name``; names must be unique."""
        if not callable(provider):
            raise TypeError(f"provider for {name!r} must be callable")
        if name in self._providers:
            raise ValueError(f"metrics provider {name!r} already registered")
        self._providers[name] = provider

    def unregister(self, name: str) -> None:
        """Remove a provider; unknown names are ignored."""
        self._providers.pop(name, None)

    def names(self) -> list[str]:
        """Registered provider names, in registration order."""
        return list(self._providers)

    def __contains__(self, name: str) -> bool:
        return name in self._providers

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """Evaluate every provider into a ``{name: {metric: scalar}}`` tree.

        Providers returning ``None`` or an empty dict are omitted, so a
        component that has not run yet simply contributes nothing.
        """
        out: dict[str, dict[str, Any]] = {}
        for name, provider in self._providers.items():
            values = provider()
            if values:
                out[name] = {key: _scalar(value) for key, value in values.items()}
        return out

    def __repr__(self) -> str:
        return f"MetricsRegistry({', '.join(self._providers) or 'empty'})"
