"""Command-line entry point: ``python -m tools.repro_lint src benchmarks tests``.

Exit codes follow the ruff convention the CI gate relies on:

* ``0`` — no findings;
* ``1`` — at least one finding (printed as ``path:line:col: CODE msg``);
* ``2`` — usage error, missing path, or unparsable source.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

# Importing the rules module populates the registry.
from tools.repro_lint import rules  # noqa: F401  (imported for registration)
from tools.repro_lint.core import RULES, Diagnostic, lint_paths

__all__ = ["main", "run_paths"]


def run_paths(
    paths: Sequence[str],
    select: frozenset[str] | None = None,
) -> list[Diagnostic]:
    """Programmatic API used by the test suite: lint and return findings."""
    findings, _checked = lint_paths(paths, select=select)
    return findings


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Project-specific AST lint for the THERMAL-JOIN reproduction: "
            "determinism, executor safety, instrumentation honesty and API "
            "contracts.  Suppress a finding with "
            "'# repro-lint: ignore[RPLxxx] justification'."
        ),
    )
    parser.add_argument("paths", nargs="*", help="files or directories to lint")
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue and exit"
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in sorted(RULES, key=lambda rule: rule.code):
            print(f"{rule.code}  {rule.title}")
            print(f"       {rule.rationale}")
        return 0

    if not args.paths:
        parser.print_usage(sys.stderr)
        print("repro-lint: error: no paths given", file=sys.stderr)
        return 2

    select: frozenset[str] | None = None
    if args.select:
        select = frozenset(code.strip().upper() for code in args.select.split(","))
        known = {rule.code for rule in RULES}
        unknown = select - known
        if unknown:
            print(
                f"repro-lint: error: unknown rule code(s): {', '.join(sorted(unknown))}",
                file=sys.stderr,
            )
            return 2

    try:
        findings, checked = lint_paths(args.paths, select=select)
    except FileNotFoundError as error:
        print(f"repro-lint: error: {error}", file=sys.stderr)
        return 2
    except SyntaxError as error:
        print(f"repro-lint: error: cannot parse {error.filename}: {error}", file=sys.stderr)
        return 2

    for finding in findings:
        print(finding.render())
    if findings:
        print(f"repro-lint: {len(findings)} finding(s) in {checked} file(s)")
        return 1
    print(f"repro-lint: clean ({checked} file(s) checked)")
    return 0
