"""Fault-injection harness for the execution engine.

Production-scale parallel joins must survive worker death, hung tasks
and transient exceptions without changing the join result.  This module
lets tests (and operators chasing a flaky deployment) inject exactly
those failures into the verify stage, deterministically, so the
executors' retry and degradation machinery can be exercised end to end.

Spec syntax
-----------
The ``REPRO_FAULTS`` environment variable (or a plan installed with
:func:`install_fault_plan`) holds a comma-separated list of directives::

    action@N[:param]

``N`` is the 0-based ordinal of a *task launch*: executors number every
task the first time they schedule it, in plan order, continuing across
steps for the life of the plan.  Retries are never re-injected — a
fault fires exactly once, on the task's first launch — which is what
lets the recovery tests assert bit-identical results.

``raise@N``
    The Nth task raises :class:`InjectedFault` instead of running.
``hang@N:seconds``
    The Nth task sleeps ``seconds`` (default 3600) before running; with
    an executor ``task_timeout`` below the hang this exercises the
    timeout → inline-rerun path.
``kill@N``
    The Nth task SIGKILLs the process executing it.  Meant for the
    process executor (worker death → ``BrokenProcessPool`` → pool
    rebuild / degradation); under a serial or thread executor the
    "worker" is the parent interpreter itself.
``crashstep@N``
    Simulated *process death* after simulation step ``N`` completes
    (and after its checkpoint, if any, was committed): the runner
    raises :class:`SimulatedCrash` out of ``run()``.  ``N`` here is a
    **step** index, a separate ordinal namespace from the task-scoped
    actions above — ``raise@3,crashstep@3`` are two independent
    directives.  The recovery tests pair it with
    ``SimulationRunner.resume()`` to prove restart-without-recompute.

Duplicate ordinals within a namespace are rejected at parse time: two
directives racing for one launch would make which-fires-first depend on
list order, and the loser would silently never fire.

Example: ``REPRO_FAULTS="raise@2,kill@7,hang@11:2.5,crashstep@4"``.
"""

from __future__ import annotations

import os
import signal
import time
from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    import numpy as np

    from repro.engine.plan import JoinTask
    from repro.geometry import PairAccumulator

__all__ = [
    "FAULTS_ENV_VAR",
    "InjectedFault",
    "SimulatedCrash",
    "Fault",
    "FaultyTask",
    "FaultPlan",
    "parse_faults",
    "format_faults",
    "install_fault_plan",
    "active_plan",
    "wrap_tasks",
    "corrupt_truncate",
    "corrupt_bitflip",
]

#: Environment variable naming the default fault plan.
FAULTS_ENV_VAR = "REPRO_FAULTS"

_ACTIONS = ("raise", "hang", "kill", "crashstep")
#: Actions whose ordinal counts *steps*, not task launches.
_STEP_ACTIONS = frozenset({"crashstep"})


class InjectedFault(RuntimeError):
    """Raised by an injected ``raise`` fault (never by real join code)."""


class SimulatedCrash(RuntimeError):
    """Raised by a ``crashstep`` fault: simulated process death.

    Deliberately *not* an :class:`InjectedFault` subclass — the runner's
    escalation path must treat it as a crash (propagate out of ``run()``
    with the completed records intact), never as a failed step to retry.
    """


@dataclass
class Fault:
    """One fault directive: ``action`` on task launch ``task``."""

    action: str
    task: int
    param: float | None = None
    fired: bool = False


class FaultyTask:
    """A join task wrapper that triggers its fault, then delegates.

    Mirrors the wrapped task's ``phase`` and ``process_safe`` so
    executors schedule it exactly as they would the original; a ``hang``
    still runs the real task after sleeping, so a hang *shorter* than
    the executor's timeout stays invisible in the results.
    """

    def __init__(self, inner: JoinTask, action: str, param: float | None = None) -> None:
        self.inner = inner
        self.action = action
        self.param = param
        self.phase = inner.phase
        self.process_safe = inner.process_safe

    def run(self, ctx: Mapping[str, np.ndarray], accumulator: PairAccumulator) -> dict[str, int]:
        if self.action == "raise":
            raise InjectedFault("injected task failure")
        if self.action == "hang":
            time.sleep(3600.0 if self.param is None else self.param)
        elif self.action == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        return self.inner.run(ctx, accumulator)

    def __repr__(self) -> str:
        return f"FaultyTask({self.action!r}, inner={self.inner!r})"


class FaultPlan:
    """A parsed set of faults plus the global task-launch counter."""

    def __init__(self, faults: Iterable[Fault] = ()) -> None:
        self.faults = list(faults)
        self.launched = 0

    def wrap(self, task: JoinTask) -> JoinTask:
        """Number one task launch; wrap it if an unfired fault matches.

        Step-scoped faults (``crashstep``) live in their own ordinal
        namespace and never match a task launch.
        """
        ordinal = self.launched
        self.launched += 1
        for fault in self.faults:
            if (
                fault.action not in _STEP_ACTIONS
                and not fault.fired
                and fault.task == ordinal
            ):
                fault.fired = True
                return FaultyTask(task, fault.action, fault.param)
        return task

    def crash_after_step(self, step: int) -> bool:
        """True when an unfired ``crashstep`` directive matches ``step``.

        The fault is marked fired, so a resumed run sharing the plan
        does not crash again at the same (already completed) step.
        """
        for fault in self.faults:
            if fault.action == "crashstep" and not fault.fired and fault.task == step:
                fault.fired = True
                return True
        return False

    def reset(self) -> None:
        """Rearm every fault and restart the launch counter."""
        self.launched = 0
        for fault in self.faults:
            fault.fired = False

    def __repr__(self) -> str:
        return f"FaultPlan({self.faults!r}, launched={self.launched})"


def parse_faults(spec: str) -> FaultPlan:
    """Parse a ``REPRO_FAULTS`` spec string into a :class:`FaultPlan`.

    Rejects duplicate ordinals within a namespace (task-scoped actions
    share one launch-counter namespace; ``crashstep`` counts steps in
    its own) — with two directives on one ordinal, only the first in
    list order could ever fire and the other would be dead weight.
    """
    faults = []
    seen: dict[tuple[bool, int], str] = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        action, sep, rest = part.partition("@")
        action = action.strip().lower()
        if action not in _ACTIONS or not sep:
            raise ValueError(
                f"invalid fault directive {part!r}; expected action@N[:param] "
                f"with action one of {_ACTIONS}"
            )
        ordinal, _, param = rest.partition(":")
        try:
            task = int(ordinal)
        except ValueError:
            raise ValueError(f"invalid task ordinal in fault {part!r}") from None
        if task < 0:
            raise ValueError(f"fault task ordinal must be >= 0: {part!r}")
        try:
            value = float(param) if param else None
        except ValueError:
            raise ValueError(f"invalid fault parameter in {part!r}") from None
        key = (action in _STEP_ACTIONS, task)
        if key in seen:
            kind = "step" if key[0] else "task"
            raise ValueError(
                f"duplicate fault {kind} ordinal {task} in {part!r} "
                f"(already claimed by {seen[key]!r}); only one directive "
                f"may target each {kind} ordinal"
            )
        seen[key] = part
        faults.append(Fault(action=action, task=task, param=value))
    return FaultPlan(faults)


def format_faults(plan: FaultPlan) -> str:
    """Render a plan back into spec syntax (``parse_faults`` round-trip).

    Lets the active plan be logged verbatim into run reports; fired
    state is not represented (the spec grammar has no syntax for it).
    """
    parts = []
    for fault in plan.faults:
        part = f"{fault.action}@{fault.task}"
        if fault.param is not None:
            part += f":{fault.param!r}"
        parts.append(part)
    return ",".join(parts)


#: Programmatically installed plan (overrides the environment).
_installed: FaultPlan | None = None
#: Cache of the environment-derived plan, keyed by the spec string so
#: firing state persists across steps but a changed spec re-parses.
_env_cache: tuple[str | None, FaultPlan | None] = (None, None)


def install_fault_plan(plan: FaultPlan | None) -> FaultPlan | None:
    """Install ``plan`` as the active fault plan (``None`` to clear)."""
    global _installed
    _installed = plan
    return plan


def active_plan() -> FaultPlan | None:
    """The installed plan, else the ``REPRO_FAULTS`` plan, else ``None``."""
    global _env_cache
    if _installed is not None:
        return _installed
    spec = os.environ.get(FAULTS_ENV_VAR)
    if not spec:
        return None
    if _env_cache[0] != spec:
        _env_cache = (spec, parse_faults(spec))
    return _env_cache[1]


def wrap_tasks(tasks: Sequence[JoinTask]) -> list[JoinTask]:
    """Number this batch of first launches against the active plan.

    Executors call this exactly once per task (on first scheduling);
    retries must re-run the *original* task so a spent fault cannot
    re-fire and ordinals stay stable under recovery.
    """
    plan = active_plan()
    if plan is None:
        return list(tasks)
    return [plan.wrap(task) for task in tasks]


# ----------------------------------------------------------------------
# Checkpoint-corruption injection
# ----------------------------------------------------------------------
def corrupt_truncate(path: str | os.PathLike[str], keep_fraction: float = 0.5) -> None:
    """Truncate a checkpoint file to ``keep_fraction`` of its size.

    Models a torn write that bypassed the atomic protocol (power loss
    mid-copy, a full disk): the loader must detect the damage through
    parse/checksum failure and fall back to an older checkpoint.
    """
    if not 0.0 <= keep_fraction < 1.0:
        raise ValueError(f"keep_fraction must be in [0, 1), got {keep_fraction}")
    size = os.path.getsize(path)
    with open(path, "r+b") as handle:
        handle.truncate(int(size * keep_fraction))


def corrupt_bitflip(path: str | os.PathLike[str], offset: int | None = None) -> None:
    """Flip one bit of a checkpoint file (silent media corruption).

    ``offset`` defaults to the middle byte — deterministic, and in an
    ``.npz`` payload that lands inside array data, exercising the
    content-verification path rather than a parse failure.
    """
    size = os.path.getsize(path)
    if size == 0:
        raise ValueError(f"cannot bit-flip empty file {os.fspath(path)!r}")
    if offset is None:
        offset = size // 2
    if not 0 <= offset < size:
        raise ValueError(f"offset {offset} outside file of {size} bytes")
    with open(path, "r+b") as handle:
        handle.seek(offset)
        byte = handle.read(1)
        handle.seek(offset)
        handle.write(bytes([byte[0] ^ 0x01]))
