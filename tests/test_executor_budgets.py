"""Regression tests for executor timeout and retry budgets.

Covers the three executor bugfixes:

* ``task_timeout`` is one *shared per-step deadline*: two hung tasks
  are both abandoned within a single budget instead of serialising
  N × timeout waits (the timing assertions fail against the pre-fix
  per-wait semantics);
* ``Executor._attempt_inline`` honours ``max_retries`` instead of
  retrying exactly once;
* ``resolve_executor`` spec strings pick up
  ``REPRO_TASK_TIMEOUT`` / ``REPRO_TASK_RETRIES`` and the budgets
  round-trip through ``repr``.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core import ThermalJoin
from repro.engine import (
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    install_fault_plan,
    parse_faults,
    resolve_executor,
)
from repro.engine import faults as faults_module
from repro.geometry import pack_pairs, unique_pairs


@pytest.fixture(autouse=True)
def _clean_fault_state(monkeypatch):
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    install_fault_plan(None)
    faults_module._env_cache = (None, None)
    yield
    install_fault_plan(None)
    faults_module._env_cache = (None, None)


@pytest.fixture(scope="module")
def dense_dataset():
    from repro.datasets import make_uniform_dataset

    return make_uniform_dataset(
        400, width=15.0, bounds=(np.zeros(3), np.full(3, 120.0)), seed=7
    )


@pytest.fixture(scope="module")
def serial_keys(dense_dataset):
    result = ThermalJoin(resolution=1.0).step(dense_dataset)
    n = len(dense_dataset)
    return pack_pairs(*unique_pairs(*result.pairs, n), n)


class FlakyTask:
    """Minimal JoinTask that fails its first ``failures`` attempts."""

    phase = "join"
    process_safe = False

    def __init__(self, failures: int) -> None:
        self.failures = failures
        self.attempts = 0

    def run(self, ctx, accumulator):
        self.attempts += 1
        if self.attempts <= self.failures:
            raise RuntimeError(f"injected failure #{self.attempts}")
        return {"overlap_tests": 0}


# ----------------------------------------------------------------------
# Shared per-step deadline (pre-fix: each wait got its own timeout)
# ----------------------------------------------------------------------
class TestSharedDeadline:
    TIMEOUT = 0.75
    HANG = 2.5

    def _assert_one_budget(self, executor, dense_dataset, serial_keys):
        """Two hung tasks must both be abandoned within ONE budget.

        Pre-fix semantics wait ``task_timeout`` per hung future, so the
        step blocks for at least ``2 × TIMEOUT`` — the elapsed bound
        below fails against that code.
        """
        install_fault_plan(parse_faults(f"hang@0:{self.HANG},hang@1:{self.HANG}"))
        join = ThermalJoin(resolution=1.0, executor=executor)
        started = time.monotonic()
        result = join.step(dense_dataset)
        elapsed = time.monotonic() - started
        n = len(dense_dataset)
        assert np.array_equal(
            pack_pairs(*unique_pairs(*result.pairs, n), n), serial_keys
        )
        kinds = [e["kind"] for e in result.stats.events]
        assert kinds.count("task_timeout") >= 2
        assert elapsed < 2 * self.TIMEOUT * 0.95, (
            f"step took {elapsed:.2f}s: hung tasks were waited for "
            f"sequentially instead of sharing one {self.TIMEOUT}s deadline"
        )

    def test_thread_hangs_share_one_deadline(self, dense_dataset, serial_keys):
        executor = ThreadExecutor(2, task_timeout=self.TIMEOUT)
        try:
            self._assert_one_budget(executor, dense_dataset, serial_keys)
        finally:
            executor.close()  # waits out the hung workers

    def test_process_hangs_share_one_deadline(self, dense_dataset, serial_keys):
        executor = ProcessExecutor(n_workers=2, task_timeout=self.TIMEOUT)
        try:
            self._assert_one_budget(executor, dense_dataset, serial_keys)
        finally:
            executor.close()

    def test_no_timeout_means_no_deadline(self):
        executor = SerialExecutor()
        assert executor.task_timeout is None
        assert executor._step_deadline() is None


# ----------------------------------------------------------------------
# Inline retry budgets (pre-fix: always exactly one retry)
# ----------------------------------------------------------------------
class TestInlineRetryBudget:
    def test_inline_retries_up_to_budget(self):
        executor = SerialExecutor(max_retries=3)
        task = FlakyTask(failures=3)
        results = executor.run([task], {}, False)
        assert len(results) == 1
        assert task.attempts == 4  # first launch + three retries
        events = executor.drain_events()
        assert [e["kind"] for e in events] == ["task_retry"] * 3
        assert [e["task"] for e in events] == [0, 0, 0]

    def test_inline_budget_exhaustion_raises_last_error(self):
        executor = SerialExecutor(max_retries=2)
        task = FlakyTask(failures=10)
        with pytest.raises(RuntimeError, match="injected failure #3"):
            executor.run([task], {}, False)
        assert task.attempts == 3  # first launch + two retries, then give up
        assert [e["kind"] for e in executor.drain_events()] == ["task_retry"] * 2

    def test_inline_zero_retries_fails_fast(self):
        executor = SerialExecutor(max_retries=0)
        task = FlakyTask(failures=1)
        with pytest.raises(RuntimeError, match="injected failure #1"):
            executor.run([task], {}, False)
        assert task.attempts == 1
        assert executor.drain_events() == []

    def test_inline_success_after_multiple_retries_matches_direct_run(self):
        # Regression: pre-fix code raised after one retry even with a
        # larger configured budget.
        executor = SerialExecutor(max_retries=2)
        task = FlakyTask(failures=2)
        results = executor.run([task], {}, False)
        assert results[0].counters == {"overlap_tests": 0}
        assert task.attempts == 3


# ----------------------------------------------------------------------
# Environment plumbing and repr round-trips
# ----------------------------------------------------------------------
class TestBudgetEnvPlumbing:
    def test_spec_strings_honour_env_budgets(self, monkeypatch):
        monkeypatch.setenv("REPRO_TASK_TIMEOUT", "1.5")
        monkeypatch.setenv("REPRO_TASK_RETRIES", "3")
        executor = resolve_executor("thread:2")
        assert isinstance(executor, ThreadExecutor)
        assert executor.n_workers == 2
        assert executor.task_timeout == 1.5
        assert executor.max_retries == 3

    def test_serial_spec_honours_env_budgets(self, monkeypatch):
        monkeypatch.setenv("REPRO_TASK_RETRIES", "4")
        executor = resolve_executor("serial")
        assert isinstance(executor, SerialExecutor)
        assert executor.max_retries == 4

    def test_process_spec_honours_env_budgets(self, monkeypatch):
        monkeypatch.setenv("REPRO_TASK_TIMEOUT", "0.25")
        executor = resolve_executor("process:2")
        assert isinstance(executor, ProcessExecutor)
        assert executor.task_timeout == 0.25
        executor.close()

    def test_instances_pass_through_unchanged(self, monkeypatch):
        monkeypatch.setenv("REPRO_TASK_TIMEOUT", "9.0")
        executor = SerialExecutor(max_retries=2)
        assert resolve_executor(executor) is executor
        assert executor.task_timeout is None

    @pytest.mark.parametrize(
        "var,value",
        [
            ("REPRO_TASK_TIMEOUT", "soon"),
            ("REPRO_TASK_RETRIES", "many"),
            ("REPRO_TASK_RETRIES", "1.5"),
        ],
    )
    def test_invalid_env_values_name_the_variable(self, monkeypatch, var, value):
        monkeypatch.setenv(var, value)
        with pytest.raises(ValueError, match=var):
            resolve_executor("serial")

    def test_blank_env_values_are_ignored(self, monkeypatch):
        monkeypatch.setenv("REPRO_TASK_TIMEOUT", "  ")
        monkeypatch.setenv("REPRO_TASK_RETRIES", "")
        executor = resolve_executor("serial")
        assert executor.task_timeout is None
        assert executor.max_retries == 1

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: SerialExecutor(max_retries=3, task_timeout=2.0),
            lambda: ThreadExecutor(2, max_retries=2, task_timeout=0.5),
            lambda: ProcessExecutor(n_workers=2, max_retries=0, task_timeout=1.25),
        ],
    )
    def test_repr_round_trips_budgets(self, factory):
        executor = factory()
        namespace = {
            "SerialExecutor": SerialExecutor,
            "ThreadExecutor": ThreadExecutor,
            "ProcessExecutor": ProcessExecutor,
        }
        clone = eval(repr(executor), namespace)
        try:
            assert type(clone) is type(executor)
            assert clone.max_retries == executor.max_retries
            assert clone.task_timeout == executor.task_timeout
            assert getattr(clone, "n_workers", None) == getattr(
                executor, "n_workers", None
            )
        finally:
            clone.close()
            executor.close()
