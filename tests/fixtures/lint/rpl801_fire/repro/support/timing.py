"""Outside the deterministic scope: RPL003 does not patrol here."""

import time


def stamp() -> float:
    return time.perf_counter()
