"""Command-line entry point: ``python -m tools.repro_lint src benchmarks tests``.

Exit codes follow the ruff convention the CI gate relies on:

* ``0`` — no findings;
* ``1`` — at least one finding (printed as ``path:line:col: CODE msg``),
  including parse failures (RPL999) — one broken file no longer aborts
  the run;
* ``2`` — usage error (no/duplicate/missing paths, unknown rule code).
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from collections.abc import Sequence
from pathlib import Path

# Importing the rule modules populates the registries.
from tools.repro_lint import project_rules, rules  # noqa: F401  (registration)
from tools.repro_lint.core import (
    PARSE_ERROR_CODE,
    PROJECT_RULES,
    RULES,
    Diagnostic,
    all_rule_codes,
    lint_paths,
)
from tools.repro_lint.project import IndexCache
from tools.repro_lint.sarif import render_sarif

__all__ = ["main", "run_paths"]

DEFAULT_CACHE = ".repro-lint-cache.json"


def run_paths(
    paths: Sequence[str],
    select: frozenset[str] | None = None,
    ignore: frozenset[str] | None = None,
    cache_path: str | None = None,
) -> list[Diagnostic]:
    """Programmatic API used by the test suite: lint and return findings."""
    cache = IndexCache(Path(cache_path)) if cache_path else None
    report = lint_paths(paths, select=select, ignore=ignore, cache=cache)
    return report.findings


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Project-specific AST lint for the THERMAL-JOIN reproduction: "
            "determinism, executor safety, instrumentation honesty and API "
            "contracts — checked per file and across the whole project call "
            "graph.  Suppress a finding with "
            "'# repro-lint: ignore[RPLxxx] justification'."
        ),
    )
    parser.add_argument("paths", nargs="*", help="files or directories to lint")
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue and exit"
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="CODES",
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--statistics",
        action="store_true",
        help="print a findings-per-rule summary after the run",
    )
    parser.add_argument(
        "--format",
        choices=("text", "sarif"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        help="write the report to FILE instead of stdout (sarif is always "
        "written whole; text writes the findings)",
    )
    parser.add_argument(
        "--cache",
        metavar="FILE",
        default=None,
        help=f"project-index cache file (default: {DEFAULT_CACHE} next to the "
        "first path; warm runs only re-analyze changed files)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the project-index cache for this run",
    )
    parser.add_argument(
        "--changed-only",
        action="store_true",
        help="index everything but only report findings in files git "
        "considers changed (working tree vs --base, default HEAD)",
    )
    parser.add_argument(
        "--base",
        metavar="REF",
        default="HEAD",
        help="git ref to diff against for --changed-only (default: HEAD)",
    )
    return parser


def _parse_codes(raw: str, flag: str) -> frozenset[str] | int:
    codes = frozenset(code.strip().upper() for code in raw.split(",") if code.strip())
    unknown = codes - all_rule_codes()
    if unknown:
        print(
            f"repro-lint: error: unknown rule code(s) for {flag}: "
            f"{', '.join(sorted(unknown))}",
            file=sys.stderr,
        )
        return 2
    return codes


def _git_changed_files(base: str) -> set[str] | None:
    """Resolved POSIX paths of files changed vs ``base`` (plus untracked)."""
    changed: set[str] = set()
    try:
        diff = subprocess.run(
            ["git", "diff", "--name-only", base, "--"],
            capture_output=True,
            text=True,
            check=True,
        )
        untracked = subprocess.run(
            ["git", "ls-files", "--others", "--exclude-standard"],
            capture_output=True,
            text=True,
            check=True,
        )
        top = subprocess.run(
            ["git", "rev-parse", "--show-toplevel"],
            capture_output=True,
            text=True,
            check=True,
        )
    except (OSError, subprocess.CalledProcessError) as error:
        detail = getattr(error, "stderr", "") or str(error)
        print(
            f"repro-lint: error: --changed-only needs git: {detail.strip()}",
            file=sys.stderr,
        )
        return None
    root = Path(top.stdout.strip())
    for listing in (diff.stdout, untracked.stdout):
        for name in listing.splitlines():
            if name.strip():
                changed.add((root / name.strip()).resolve().as_posix())
    return changed


def _default_cache_path(paths: Sequence[str]) -> Path:
    anchor = Path(paths[0])
    base = anchor if anchor.is_dir() else anchor.parent
    return base / DEFAULT_CACHE


def main(argv: Sequence[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        catalogue = sorted(
            [*RULES, *PROJECT_RULES], key=lambda rule: rule.code
        )
        for rule in catalogue:
            print(f"{rule.code}  {rule.title}")
            print(f"       {rule.rationale}")
        print(f"{PARSE_ERROR_CODE}  file cannot be parsed")
        print(
            "       Reported as a finding so one broken file does not abort "
            "the whole run."
        )
        return 0

    if not args.paths:
        parser.print_usage(sys.stderr)
        print("repro-lint: error: no paths given", file=sys.stderr)
        return 2

    seen_paths: set[str] = set()
    for raw in args.paths:
        key = Path(raw).resolve().as_posix()
        if key in seen_paths:
            print(
                f"repro-lint: error: path given twice: {raw}", file=sys.stderr
            )
            return 2
        seen_paths.add(key)

    select: frozenset[str] | None = None
    if args.select:
        parsed = _parse_codes(args.select, "--select")
        if isinstance(parsed, int):
            return parsed
        select = parsed
    ignore: frozenset[str] | None = None
    if args.ignore:
        parsed = _parse_codes(args.ignore, "--ignore")
        if isinstance(parsed, int):
            return parsed
        ignore = parsed

    changed: set[str] | None = None
    if args.changed_only:
        changed = _git_changed_files(args.base)
        if changed is None:
            return 2

    cache: IndexCache | None = None
    if not args.no_cache:
        cache_path = Path(args.cache) if args.cache else _default_cache_path(args.paths)
        cache = IndexCache(cache_path)

    try:
        report = lint_paths(args.paths, select=select, ignore=ignore, cache=cache)
    except FileNotFoundError as error:
        print(f"repro-lint: error: {error}", file=sys.stderr)
        return 2

    findings = report.findings
    if changed is not None:
        display_to_resolved = {
            summary.path: summary.resolved for summary in report.summaries
        }
        findings = [
            finding
            for finding in findings
            if display_to_resolved.get(finding.path, finding.path) in changed
        ]

    out = sys.stdout
    close_out = False
    if args.output:
        out = open(args.output, "w", encoding="utf-8")  # noqa: SIM115
        close_out = True
    try:
        if args.format == "sarif":
            print(render_sarif(findings), file=out)
        else:
            for finding in findings:
                print(finding.render(), file=out)
    finally:
        if close_out:
            out.close()

    summary_parts = [f"{len(findings)} finding(s) in {report.checked} file(s)"]
    if report.parse_errors:
        summary_parts.append(f"{report.parse_errors} unparsable")
    if cache is not None:
        summary_parts.append(
            f"cache: {report.cache_hits} hit(s), {report.cache_misses} miss(es)"
        )
    if args.changed_only:
        summary_parts.append(f"changed-only vs {args.base}")
    if findings:
        print(f"repro-lint: {', '.join(summary_parts)}")
        if args.statistics:
            for code, count in sorted(
                _count_by_code(findings).items(), key=lambda item: (-item[1], item[0])
            ):
                print(f"{count:5d}  {code}")
        return 1
    print(
        f"repro-lint: clean ({report.checked} file(s) checked"
        + (f", cache: {report.cache_hits} hit(s))" if cache is not None else ")")
    )
    if args.statistics:
        print("    0  findings")
    return 0


def _count_by_code(findings: Sequence[Diagnostic]) -> dict[str, int]:
    counts: dict[str, int] = {}
    for finding in findings:
        counts[finding.code] = counts.get(finding.code, 0) + 1
    return counts
