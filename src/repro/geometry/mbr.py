"""Axis-aligned minimum bounding rectangles (MBRs) in three dimensions.

The paper (Section 3.2) follows standard practice and abstracts every
spatial object by its minimum bounding rectangle.  This module is the
geometric substrate shared by THERMAL-JOIN and by every baseline join:
box construction, strict positive-volume overlap predicates (scalar,
element-wise and broadcast forms), enclosure and containment tests, and
small helpers for object extents ("widths") and volumes.

Conventions
-----------
* Boxes are stored as two ``float64`` arrays ``lo`` and ``hi`` of shape
  ``(n, 3)`` (structure-of-arrays), with ``lo < hi`` in every dimension.
* Overlap is *strict*: two boxes overlap only if the intersection has
  positive volume (``overlap(w_i, w_j) > 0`` in the paper's notation).
  Boxes that merely touch on a face, edge or corner do not join.
* Object "width" follows the paper's usage: the full side length of the
  (cubic, unless stated otherwise) object extent, so a box spans
  ``center - width / 2`` to ``center + width / 2``.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "DIMENSIONS",
    "boxes_from_centers",
    "centers_from_boxes",
    "widths_from_boxes",
    "validate_boxes",
    "overlap_single",
    "overlap_elementwise",
    "overlap_matrix",
    "encloses",
    "encloses_single",
    "contains_points",
    "box_volume",
    "width_from_volume",
    "volume_from_width",
    "union_bounds",
    "enlarge_boxes",
    "intersection_volume",
]

#: Dimensionality of the simulation space.  The paper exclusively targets
#: three-dimensional scientific models; the code keeps the constant in one
#: place for clarity but is written to work for any ``d >= 1``.
DIMENSIONS = 3


def boxes_from_centers(centers: np.ndarray, widths: np.ndarray | float) -> tuple[np.ndarray, np.ndarray]:
    """Build ``(lo, hi)`` box arrays from object centers and widths.

    Parameters
    ----------
    centers:
        Array of shape ``(n, d)`` with the object center coordinates.
    widths:
        Either an array of shape ``(n, d)`` with per-object per-dimension
        full widths, a ``(n,)`` array of cubic widths, or a scalar width
        shared by all objects (the common case in the paper, where every
        object has the same extent ``w``).

    Returns
    -------
    tuple of numpy.ndarray
        ``(lo, hi)`` arrays of shape ``(n, d)``.
    """
    centers = np.asarray(centers, dtype=np.float64)
    if centers.ndim != 2:
        raise ValueError(f"centers must be 2-D, got shape {centers.shape}")
    widths = np.asarray(widths, dtype=np.float64)
    if widths.ndim == 0:
        half = np.full_like(centers, float(widths) / 2.0)
    elif widths.ndim == 1:
        if widths.shape[0] != centers.shape[0]:
            raise ValueError(
                f"per-object widths length {widths.shape[0]} does not match "
                f"{centers.shape[0]} centers"
            )
        half = np.repeat(widths[:, None] / 2.0, centers.shape[1], axis=1)
    else:
        if widths.shape != centers.shape:
            raise ValueError(
                f"widths shape {widths.shape} does not match centers shape "
                f"{centers.shape}"
            )
        half = widths / 2.0
    return centers - half, centers + half


def centers_from_boxes(lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
    """Return the box centers, shape ``(n, d)``."""
    return (np.asarray(lo) + np.asarray(hi)) / 2.0


def widths_from_boxes(lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
    """Return per-dimension full widths, shape ``(n, d)``."""
    return np.asarray(hi) - np.asarray(lo)


def validate_boxes(lo: np.ndarray, hi: np.ndarray) -> None:
    """Raise ``ValueError`` unless ``lo``/``hi`` describe proper boxes.

    Proper means matching 2-D shapes, finite values and strictly positive
    extent in every dimension (degenerate boxes would break the strict
    overlap semantics used throughout).
    """
    lo = np.asarray(lo)
    hi = np.asarray(hi)
    if lo.shape != hi.shape or lo.ndim != 2:
        raise ValueError(f"box arrays must share a 2-D shape, got {lo.shape} / {hi.shape}")
    if not (np.isfinite(lo).all() and np.isfinite(hi).all()):
        raise ValueError("box bounds must be finite")
    if not (lo < hi).all():
        raise ValueError("boxes must have strictly positive extent in every dimension")


def overlap_single(lo_a: np.ndarray, hi_a: np.ndarray, lo_b: np.ndarray, hi_b: np.ndarray) -> bool:
    """Strict overlap test for two individual boxes (1-D bound arrays)."""
    return bool(np.all(np.asarray(lo_a) < np.asarray(hi_b)) and
                np.all(np.asarray(lo_b) < np.asarray(hi_a)))


def overlap_elementwise(lo_a: np.ndarray, hi_a: np.ndarray, lo_b: np.ndarray, hi_b: np.ndarray) -> np.ndarray:
    """Row-wise strict overlap of two equally long box collections.

    Returns a boolean array of shape ``(n,)`` where entry ``k`` reports
    whether box ``a_k`` overlaps box ``b_k``.
    """
    return np.logical_and(
        (np.asarray(lo_a) < np.asarray(hi_b)).all(axis=-1),
        (np.asarray(lo_b) < np.asarray(hi_a)).all(axis=-1),
    )


def overlap_matrix(lo_a: np.ndarray, hi_a: np.ndarray, lo_b: np.ndarray, hi_b: np.ndarray) -> np.ndarray:
    """Full cross-product strict overlap between two box collections.

    Returns a boolean matrix of shape ``(len(a), len(b))``.  This is the
    vectorised equivalent of the nested-loop predicate evaluation; callers
    that need the paper's overlap-test counts charge ``len(a) * len(b)``
    tests for one call.
    """
    lo_a = np.asarray(lo_a)[:, None, :]
    hi_a = np.asarray(hi_a)[:, None, :]
    lo_b = np.asarray(lo_b)[None, :, :]
    hi_b = np.asarray(hi_b)[None, :, :]
    return np.logical_and((lo_a < hi_b).all(axis=-1), (lo_b < hi_a).all(axis=-1))


def encloses(outer_lo: np.ndarray, outer_hi: np.ndarray, inner_lo: np.ndarray, inner_hi: np.ndarray) -> np.ndarray:
    """Row-wise test whether each ``outer`` box fully encloses ``inner``.

    ``inner_lo``/``inner_hi`` may be a single box (1-D) broadcast against
    many outer boxes, which is how THERMAL-JOIN's external join checks
    whether an object's MBR encloses an entire neighbouring cell
    (Section 4.2.1).  Enclosure is inclusive: a box encloses itself.
    """
    return np.logical_and(
        (np.asarray(outer_lo) <= np.asarray(inner_lo)).all(axis=-1),
        (np.asarray(outer_hi) >= np.asarray(inner_hi)).all(axis=-1),
    )


def encloses_single(outer_lo: np.ndarray, outer_hi: np.ndarray, inner_lo: np.ndarray, inner_hi: np.ndarray) -> bool:
    """Scalar enclosure test for two individual boxes."""
    return bool(np.all(np.asarray(outer_lo) <= np.asarray(inner_lo)) and
                np.all(np.asarray(outer_hi) >= np.asarray(inner_hi)))


def contains_points(lo: np.ndarray, hi: np.ndarray, points: np.ndarray) -> np.ndarray:
    """Half-open containment of ``points`` in the single box ``[lo, hi)``.

    Grid cells throughout the system are half-open so that every point
    belongs to exactly one cell; this helper mirrors that convention.
    """
    points = np.asarray(points)
    return np.logical_and(
        (points >= np.asarray(lo)).all(axis=-1),
        (points < np.asarray(hi)).all(axis=-1),
    )


def box_volume(lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
    """Volume of each box, shape ``(n,)``."""
    return np.prod(np.asarray(hi) - np.asarray(lo), axis=-1)


def width_from_volume(volume: float, dimensions: int = DIMENSIONS) -> float:
    """Side length of a cube with the given volume.

    The paper specifies object extents as volumes (e.g. ``15 micron^3``);
    the joins operate on widths, and this converts between the two.
    """
    if volume <= 0:
        raise ValueError(f"volume must be positive, got {volume}")
    return float(volume) ** (1.0 / dimensions)


def volume_from_width(width: float, dimensions: int = DIMENSIONS) -> float:
    """Volume of a cube with the given side length."""
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    return float(width) ** dimensions


def union_bounds(lo: np.ndarray, hi: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Tight bounds ``(lo_min, hi_max)`` covering an entire box collection."""
    lo = np.asarray(lo)
    hi = np.asarray(hi)
    if lo.size == 0:
        raise ValueError("cannot compute the union of zero boxes")
    return lo.min(axis=0), hi.max(axis=0)


def enlarge_boxes(lo: np.ndarray, hi: np.ndarray, distance: float) -> tuple[np.ndarray, np.ndarray]:
    """Enlarge boxes by ``distance`` on every side (Minkowski sum with a cube).

    This implements the paper's distance-join reduction (Section 3.1):
    a distance join with predicate ``d`` is an overlap join after each
    object's extent is enlarged by ``d`` in all dimensions.  Enlarging
    *each side* by ``d / 2`` grows the full width by ``d``; to reproduce
    "find pairs within distance d" semantics between the original boxes,
    enlarge one side of the pair by the full ``d`` or both by ``d / 2`` —
    callers choose by passing the appropriate ``distance``.
    """
    if distance < 0:
        raise ValueError(f"distance must be non-negative, got {distance}")
    return np.asarray(lo) - distance, np.asarray(hi) + distance


def intersection_volume(lo_a: np.ndarray, hi_a: np.ndarray, lo_b: np.ndarray, hi_b: np.ndarray) -> np.ndarray:
    """Row-wise intersection volume of paired boxes (0 where disjoint)."""
    inter_lo = np.maximum(np.asarray(lo_a), np.asarray(lo_b))
    inter_hi = np.minimum(np.asarray(hi_a), np.asarray(hi_b))
    edges = np.clip(inter_hi - inter_lo, 0.0, None)
    return np.prod(edges, axis=-1)
