"""ASCII chart rendering for the experiment harness.

The paper communicates its evaluation through log-scale line plots; the
text tables of ``report.py`` carry the exact numbers, and this module
adds terminal-renderable charts so the *shape* — crossovers, slopes,
order-of-magnitude gaps — is visible at a glance without leaving the
shell.  Pure string output; no plotting dependencies.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from collections.abc import Mapping, Sequence

__all__ = ["render_chart", "render_sparkline"]

#: Mark characters assigned to series, in order.
_MARKS = "o*x+#@%&"


def _nice_format(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 1000 or abs(value) < 0.01:
        return f"{value:.1e}"
    return f"{value:.3g}"


def render_chart(
    x_values: Sequence[float],
    series_by_name: Mapping[str, Sequence[float | None]],
    width: int = 64,
    height: int = 16,
    log_y: bool = True,
    title: str | None = None,
    y_label: str | None = None,
) -> str:
    """Render line series as an ASCII scatter chart; returns a string.

    Parameters
    ----------
    x_values:
        Shared x coordinates (numeric).
    series_by_name:
        Mapping of series name to y values aligned with ``x_values``;
        ``None`` entries (the harness's DNF marker) are skipped.
    width, height:
        Plot-area size in characters.
    log_y:
        Log-scale the y axis (the paper's figures mostly are); values
        <= 0 fall back to linear scaling.
    """
    points = []  # (x, y, mark)
    legend = []
    for k, (name, values) in enumerate(series_by_name.items()):
        mark = _MARKS[k % len(_MARKS)]
        legend.append(f"{mark} {name}")
        for x, y in zip(x_values, values, strict=False):
            if y is None:
                continue
            points.append((float(x), float(y), mark))
    if not points:
        return (title or "") + "\n(no data)"

    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    use_log = log_y and min(ys) > 0
    ys_t = [math.log10(y) for y in ys] if use_log else ys
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys_t), max(ys_t)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for (x, _y, mark), y_t in zip(points, ys_t, strict=True):
        col = int(round((x - x_lo) / x_span * (width - 1)))
        row = int(round((y_t - y_lo) / y_span * (height - 1)))
        grid[height - 1 - row][col] = mark

    axis_top = _nice_format(10**y_hi if use_log else y_hi)
    axis_bottom = _nice_format(10**y_lo if use_log else y_lo)
    label_width = max(len(axis_top), len(axis_bottom))
    lines = []
    if title:
        lines.append(title)
    if y_label:
        lines.append(f"[{y_label}{', log scale' if use_log else ''}]")
    for r, row_chars in enumerate(grid):
        if r == 0:
            label = axis_top.rjust(label_width)
        elif r == height - 1:
            label = axis_bottom.rjust(label_width)
        else:
            label = " " * label_width
        lines.append(f"{label} |{''.join(row_chars)}")
    lines.append(" " * label_width + " +" + "-" * width)
    x_axis = (
        " " * label_width
        + "  "
        + _nice_format(x_lo)
        + _nice_format(x_hi).rjust(width - len(_nice_format(x_lo)))
    )
    lines.append(x_axis)
    lines.append("  ".join(legend))
    return "\n".join(lines)


def render_sparkline(values: Sequence[float | None], width: int | None = None) -> str:
    """Compact one-line trend of a metric series (block characters)."""
    blocks = "▁▂▃▄▅▆▇█"
    clean = [v for v in values if v is not None]
    if not clean:
        return ""
    lo, hi = min(clean), max(clean)
    span = (hi - lo) or 1.0
    chars = []
    for v in values:
        if v is None:
            chars.append(" ")
            continue
        level = int((v - lo) / span * (len(blocks) - 1))
        chars.append(blocks[level])
    line = "".join(chars)
    if width is not None and len(line) > width:
        step = len(line) / width
        line = "".join(line[int(k * step)] for k in range(width))
    return line
