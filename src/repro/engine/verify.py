"""Shared candidate-verification layer for engine tasks.

Partition tasks describe *which* group pairs to compare; this module is
the single place where candidates are handed to the verify kernels.  It
wraps the dispatchable primitives of :mod:`repro.geometry.kernels`
(backend selected via ``REPRO_KERNELS``; numpy oracle by default) and
layers the per-algorithm deduplication filters on top, so every
algorithm's verification goes through identical code:

* ``plain`` — emit every overlapping candidate (exactly-once plans);
* ``reference-point`` — PBSM's duplicate suppression: a pair is reported
  only by the partition containing the lower corner of the pair's
  intersection box.

Overlap-test accounting is inherited unchanged from the kernels
(``count="full"`` nested-loop or ``count="x-sweep"`` forward-sweep
accounting), so partitioning a join into tasks never changes its total
test count — and neither does switching kernel backends, which are
bit-identical to the oracle by contract.
"""

from __future__ import annotations

import numpy as np

from repro.geometry import PairAccumulator
from repro.geometry.kernels import (
    PairCallback,
    cell_pair_sweep,
    cross_join_groups,
    hot_cell_emit,
    self_join_groups,
    strip_sweep,
)

from collections.abc import Mapping

__all__ = [
    "verify_self_groups",
    "verify_cross_groups",
    "verify_cell_pairs",
    "verify_strip",
    "emit_hot_cells",
]


def _plain_emitter(accumulator: PairAccumulator) -> PairCallback:
    def on_pairs(left: np.ndarray, right: np.ndarray, _groups: np.ndarray) -> None:
        accumulator.extend(left, right)

    return on_pairs


def _reference_point_emitter(
    accumulator: PairAccumulator,
    lo: np.ndarray,
    groups: np.ndarray,
    part_lo: np.ndarray,
    part_hi: np.ndarray,
) -> PairCallback:
    """PBSM reference-point filter over the task's ``groups`` subset.

    ``self_join_groups`` reports each batch's pair positions relative to
    the ``groups`` array it was handed; map them back to global partition
    ids before testing the reference point against the partition bounds.
    """

    def on_pairs(left: np.ndarray, right: np.ndarray, group_pos: np.ndarray) -> None:
        partitions = groups[group_pos]
        ref = np.maximum(lo[left], lo[right])
        inside = np.logical_and(
            (ref >= part_lo[partitions]).all(axis=1),
            (ref < part_hi[partitions]).all(axis=1),
        )
        if inside.any():
            accumulator.extend(left[inside], right[inside])

    return on_pairs


def verify_self_groups(
    ctx: Mapping[str, np.ndarray],
    accumulator: PairAccumulator,
    groups: np.ndarray,
    count: str,
    pair_filter: str | None = None,
    cat_key: str = "cat",
    starts_key: str = "starts",
    stops_key: str = "stops",
) -> int:
    """Verify all within-group candidates of ``groups``; return test count."""
    lo = ctx["lo"]
    if pair_filter is None:
        on_pairs = _plain_emitter(accumulator)
    elif pair_filter == "reference-point":
        on_pairs = _reference_point_emitter(
            accumulator, lo, groups, ctx["part_lo"], ctx["part_hi"]
        )
    else:
        raise ValueError(f"unknown pair filter {pair_filter!r}")
    return self_join_groups(
        lo,
        ctx["hi"],
        ctx[cat_key],
        ctx[starts_key],
        ctx[stops_key],
        groups,
        on_pairs,
        count=count,
    )


def verify_cross_groups(
    ctx: Mapping[str, np.ndarray],
    accumulator: PairAccumulator,
    pair_a: np.ndarray,
    pair_b: np.ndarray,
    count: str,
    a_keys: tuple[str, str, str] = ("cat", "starts", "stops"),
    b_keys: tuple[str, str, str] = ("cat", "starts", "stops"),
) -> int:
    """Verify all cross-group candidates of the listed group pairs."""
    cat_a, starts_a, stops_a = (ctx[key] for key in a_keys)
    cat_b, starts_b, stops_b = (ctx[key] for key in b_keys)
    return cross_join_groups(
        ctx["lo"],
        ctx["hi"],
        cat_a,
        starts_a,
        stops_a,
        cat_b,
        starts_b,
        stops_b,
        pair_a,
        pair_b,
        _plain_emitter(accumulator),
        count=count,
    )


def verify_cell_pairs(
    ctx: Mapping[str, np.ndarray],
    accumulator: PairAccumulator,
    pair_a: np.ndarray,
    pair_b: np.ndarray,
    enclosure_shortcut: bool = True,
) -> tuple[int, int]:
    """Run the optimized cell-pair sweep (enclosure shortcut included).

    Returns ``(overlap_tests, shortcut_pairs)``.
    """
    return cell_pair_sweep(
        ctx["lo"],
        ctx["hi"],
        ctx["cat"],
        ctx["starts"],
        ctx["stops"],
        ctx["center_lo"],
        ctx["center_hi"],
        pair_a,
        pair_b,
        accumulator,
        enclosure_shortcut=enclosure_shortcut,
    )


def verify_strip(
    ctx: Mapping[str, np.ndarray],
    accumulator: PairAccumulator,
    start: int,
    stop: int,
    carry: np.ndarray,
) -> int:
    """Verify one strip of the partitioned global plane sweep."""
    return strip_sweep(
        ctx["lo"], ctx["hi"], ctx["ids"], start, stop, carry, accumulator
    )


def emit_hot_cells(
    ctx: Mapping[str, np.ndarray],
    accumulator: PairAccumulator,
    hot_slots: np.ndarray,
) -> int:
    """Combinatorial emission for hot-spot cells; returns pairs emitted."""
    return hot_cell_emit(
        ctx["cat"], ctx["starts"], ctx["stops"], hot_slots, accumulator
    )
