"""Scaled workload presets for the experiment harness.

The paper evaluates at 1 M – 50 M objects in C++; this reproduction runs
the same *workload shapes* at numpy-Python scale.  Selectivity — the
variable that actually drives every result in the paper — is preserved
by scaling the domain with the object count so the object *density*
(and hence overlap partners per object) matches the paper's setting at
any ``n``:

* uniform benchmark: 10 M objects in a 1000-unit cube = 0.01 objects per
  unit^3; with the default width 15 every object overlaps ~270 partners;
* neural workload: the generator's default domain keeps branch-level
  density constant across sizes (DESIGN.md §2);
* skewed benchmark: the cluster spread is expressed relative to a base
  deviation calibrated at reproduction scale; sweeping its factor
  reproduces Figure 9(e)'s "smaller spread → higher selectivity" axis.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.datasets import (
    make_clustered_workload,
    make_neural_workload,
    make_uniform_workload,
)

if TYPE_CHECKING:
    from repro.datasets import (
        BranchJitter,
        ClusterDrift,
        RandomTranslation,
        SpatialDataset,
    )

__all__ = [
    "PAPER_UNIFORM_DENSITY",
    "SCALES",
    "scaled_uniform",
    "scaled_clustered",
    "scaled_neural",
]

#: The paper's uniform benchmark density: 10 M objects / 1000^3 units.
PAPER_UNIFORM_DENSITY = 10_000_000 / 1000.0**3

#: Benchmark scale presets.  ``quick`` keeps the full experiment matrix
#: runnable in minutes (CI); ``default`` is the documented reproduction
#: scale; ``full`` stretches toward the paper's shapes (slow in Python).
SCALES = {
    "tiny": {
        # Smoke-test sizes: every experiment finishes in seconds.  Used
        # by the test suite; far below the selectivity regime the
        # figures' conclusions need.
        "neural_n": 600,
        "uniform_n": 600,
        "clustered_n": 400,
        "fig7_steps": 3,
        "fig8_steps": 2,
        "fig9_steps": 2,
        "fig8_sizes": (300, 600),
        "fig9_sizes": (300, 600),
    },
    "quick": {
        "neural_n": 4_000,
        "uniform_n": 4_000,
        "clustered_n": 2_000,
        "fig7_steps": 10,
        "fig8_steps": 3,
        "fig9_steps": 3,
        "fig8_sizes": (2_000, 4_000, 8_000),
        "fig9_sizes": (2_000, 4_000, 8_000),
    },
    "default": {
        "neural_n": 20_000,
        "uniform_n": 15_000,
        "clustered_n": 6_000,
        "fig7_steps": 30,
        "fig8_steps": 5,
        "fig9_steps": 4,
        "fig8_sizes": (5_000, 10_000, 20_000, 40_000),
        "fig9_sizes": (5_000, 10_000, 20_000, 40_000),
    },
    "full": {
        "neural_n": 50_000,
        "uniform_n": 40_000,
        "clustered_n": 12_000,
        "fig7_steps": 100,
        "fig8_steps": 10,
        "fig9_steps": 10,
        "fig8_sizes": (10_000, 25_000, 50_000, 100_000),
        "fig9_sizes": (10_000, 25_000, 50_000, 100_000),
    },
}


def scaled_uniform(
    n: int,
    width: float = 15.0,
    width_range: tuple[float, float] | None = None,
    translation: float = 10.0,
    density: float = PAPER_UNIFORM_DENSITY,
    seed: int = 0,
) -> tuple[SpatialDataset, RandomTranslation]:
    """Uniform benchmark at paper density, scaled to ``n`` objects.

    Returns ``(dataset, motion)``.
    """
    side = (n / density) ** (1.0 / 3.0)
    bounds = (np.zeros(3), np.full(3, side))
    return make_uniform_workload(
        n,
        width=width,
        width_range=width_range,
        translation=translation,
        bounds=bounds,
        seed=seed,
    )


def scaled_clustered(
    n: int,
    n_clusters: int = 1,
    sd_factor: float = 1.0,
    width: float = 15.0,
    translation: float = 10.0,
    seed: int = 0,
) -> tuple[SpatialDataset, ClusterDrift, np.ndarray]:
    """Skewed benchmark scaled for reproduction.

    ``sd_factor`` multiplies the base spread (two object widths), the
    axis Figure 9(e) sweeps; the domain grows with the cluster count so
    clusters stay separated as in the paper's Figure 9(f).

    Returns ``(dataset, motion, labels)``.
    """
    base_sd = 2.0 * width
    sd = base_sd * sd_factor
    side = max(12.0 * sd, 20.0 * width) * max(1.0, n_clusters ** (1.0 / 3.0))
    bounds = (np.zeros(3), np.full(3, side))
    return make_clustered_workload(
        n,
        n_clusters=n_clusters,
        sd=sd,
        width=width,
        translation=translation,
        bounds=bounds,
        seed=seed,
    )


def scaled_neural(
    n: int, object_volume: float = 15.0, seed: int = 0, **kwargs: object
) -> tuple[SpatialDataset, BranchJitter, np.ndarray]:
    """Neural workload at reproduction scale (density held by the
    generator's default domain sizing).

    Returns ``(dataset, motion, labels)``.
    """
    return make_neural_workload(n, object_volume=object_volume, seed=seed, **kwargs)
