"""Command-line entry point for the experiment harness.

Usage::

    python -m repro.experiments list
    python -m repro.experiments fig7 --scale quick
    python -m repro.experiments all --scale default
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import TYPE_CHECKING

from repro.experiments.registry import EXPERIMENTS, list_experiments, run_experiment

if TYPE_CHECKING:
    from collections.abc import Sequence


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's figures at reproduction scale.",
    )
    parser.add_argument(
        "experiment",
        help="experiment id (see 'list'), or 'all' to run the full matrix",
    )
    parser.add_argument(
        "--scale",
        default="default",
        choices=("tiny", "quick", "default", "full"),
        help="workload scale preset (default: default)",
    )
    parser.add_argument(
        "--executor",
        default=None,
        help=(
            "engine executor for every algorithm: serial, thread[:N] or "
            "process[:N] (default: the REPRO_EXECUTOR environment variable, "
            "then serial)"
        ),
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="OUT.JSONL",
        help=(
            "stream engine trace spans (step/stage/task wall+CPU times) "
            "to this JSONL file while the experiments run"
        ),
    )
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for name, description in list_experiments():
            print(f"{name:10s} {description}")
        return 0

    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    writer = None
    previous = None
    if args.trace is not None:
        from repro.obs import JsonlWriter, Tracer, set_tracer

        writer = JsonlWriter(args.trace)
        previous = set_tracer(Tracer(sink=writer))
    try:
        for name in names:
            started = time.perf_counter()
            print(f"=== {name} (scale={args.scale}) ===")
            run_experiment(name, scale=args.scale, executor=args.executor)
            print(f"--- {name} done in {time.perf_counter() - started:.1f}s ---\n")
    finally:
        if writer is not None:
            from repro.obs import set_tracer

            set_tracer(previous)
            writer.close()
            print(f"trace: {writer.lines_written} spans -> {args.trace}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
