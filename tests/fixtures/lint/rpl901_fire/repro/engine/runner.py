"""Per-file analysis sees a plain module-level name being submitted."""

from .tasks import work


def run(pool, payload):
    return pool.submit(work, payload).result()
